// Engine/Session: the stable serving surface of scalocate.
//
// An Engine loads one or more model artifacts (or adopts in-process trained
// locators) into a cipher-keyed registry and runs every model over ONE
// shared ThreadPool — a single deployment can serve AES-128, Clefia and
// Camellia models side by side, with per-request model selection by cipher.
// Sessions unify the three workloads that used to be three unrelated
// classes:
//
//   session.submit(trace)      whole-trace jobs with bounded-queue
//                              backpressure and cancellation
//                              (was CoLocator::locate / LocatorService)
//   session.open_stream()      push-based chunk ingestion with online
//                              Detection delivery via callback or poll
//                              (was StreamingLocator)
//
// Lifetime: Sessions, Streams and Jobs hold shared ownership of their model
// entry, so they stay valid even if the Engine replaces the model — but the
// Engine itself (its pool) must outlive every Session/Job. All Session
// methods are safe to call from multiple threads against one Engine;
// a single Stream is single-threaded like the StreamingLocator it wraps.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/locator.hpp"
#include "obs/registry.hpp"
#include "runtime/locator_service.hpp"
#include "runtime/streaming_locator.hpp"
#include "runtime/window_batcher.hpp"

namespace scalocate::api {

using runtime::AdmissionPolicy;
using runtime::Detection;
using runtime::StreamingConfig;
using runtime::SubmitOptions;

struct EngineConfig {
  /// Worker threads of the shared pool. 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Per-model bound on in-flight whole-trace jobs. What happens at the
  /// bound is `admission`'s call (default: submit blocks — backpressure).
  /// 0 = unbounded.
  std::size_t max_queue_depth = 0;
  /// Behavior at max_queue_depth, applied per model: kBlock (default,
  /// today's behavior), kRejectWhenFull (submit throws Overloaded), or
  /// kShedByDeadline (evict the queued job least likely to meet its
  /// deadline). See runtime::AdmissionPolicy and README "Failure model".
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Per-model cap on jobs RUNNING in the shared pool at once. 0 = the
  /// pool's worker count. Set below `workers` so one hot cipher cannot
  /// starve every other registered model of workers.
  std::size_t max_concurrency = 0;
  /// Watchdog: flag (never kill) a running job once its wall clock exceeds
  /// this multiple of its model's rolling p99 runtime — the
  /// `watchdog_trips` counter distinguishes "stuck" from "slow". 0 = off.
  double watchdog_p99_multiple = 0.0;
  /// Completed jobs required before the watchdog trusts the p99 baseline.
  std::size_t watchdog_min_samples = 32;
  /// Intra-op kernel threads per job (nn/kernels/parallel.hpp): how far
  /// one job's GEMM/conv calls may fan out across the process compute
  /// pool. Default 1 = throughput mode (many concurrent jobs, one core
  /// each — the `workers` knob is the parallelism). Set >1 (or 0 for the
  /// process default / SCALOCATE_THREADS) for latency mode: few big
  /// traces, each saturating the machine. Detections are bit-identical
  /// at every setting, so the trade is purely throughput vs latency.
  std::size_t intra_op_threads = 1;
  /// Cross-session dynamic batching — the fleet serving plane (README
  /// "Fleet serving"). 0 = off (default): every stream scores its own
  /// windows on its caller's thread, the legacy path. >0: each registered
  /// model gets a runtime::WindowBatcher, and streams opened through
  /// Sessions feed a wait-free ingest ring instead; the batcher coalesces
  /// up to this many ready windows across ALL of the model's sessions into
  /// one score_window_batch GEMM per flush. Detections are bit-identical
  /// either way (batch composition cannot change a window's score), so the
  /// knob trades nothing but latency shape for fleet throughput.
  std::size_t max_batch_windows = 0;
  /// How long a partially filled batch may wait for more windows before it
  /// is flushed anyway — the added-latency bound a quiet fleet pays.
  /// Ignored when batching is off.
  std::uint64_t batch_linger_us = 200;
  /// Intra-op kernel fan-out of the shared batch GEMM. 0 (default) =
  /// process default (SCALOCATE_THREADS): unlike per-job scoring, the
  /// batcher IS the model's shared compute path, so it defaults wide.
  /// Ignored when batching is off.
  std::size_t batch_intra_op_threads = 0;
  /// Telemetry sink (must outlive the Engine). When set, every registered
  /// model gets per-model instruments — `engine.<model>.requests`,
  /// `.queue_depth`, `.queue_wait_ns`, `.latency_ns`, `.cancelled`,
  /// `.backpressure_blocks` — and every stream opened through a Session
  /// gets `stream.<model>.samples_fed` / `.windows_scored` / `.detections`
  /// / `.emission_lag_samples`; the shared pool reports `pool.queue_depth`
  /// and `pool.tasks`; and with batching on, each model's batcher reports
  /// `batch.<model>.*` (see runtime::BatchMetrics). Null = telemetry off
  /// (zero overhead and no behavior change either way). Pass
  /// &obs::Registry::global() to publish into the process-wide registry.
  obs::Registry* registry = nullptr;
};

/// Instrument-name segment for a model: the cipher display name lowercased
/// with non-alphanumerics dropped ("AES-128" -> "aes128").
std::string metric_model_name(crypto::CipherId cipher);

/// Registry row describing one served model.
struct ModelInfo {
  crypto::CipherId cipher = crypto::CipherId::kAes128;
  std::string display_name;
  std::size_t n_inf = 0;
  std::size_t stride = 0;
  std::ptrdiff_t calibration_offset = 0;
};

namespace detail {
/// One registered model: the locator (owned or borrowed) plus its executor
/// over the engine's shared pool. Sessions share ownership of the entry.
/// `registry`/`stream_prefix` carry the engine's telemetry wiring to
/// streams opened later through a Session.
struct ModelEntry {
  ModelEntry(core::CoLocator&& loc, runtime::ThreadPool& pool,
             runtime::ServiceConfig cfg)
      : owned(std::move(loc)),
        locator(&*owned),
        registry(cfg.registry),
        service(*locator, pool, std::move(cfg)) {}
  ModelEntry(const core::CoLocator& loc, runtime::ThreadPool& pool,
             runtime::ServiceConfig cfg)
      : locator(&loc), registry(cfg.registry), service(loc, pool, std::move(cfg)) {}

  std::optional<core::CoLocator> owned;
  const core::CoLocator* locator;
  obs::Registry* registry = nullptr;  ///< null = telemetry off
  std::string stream_prefix;          ///< e.g. "stream.aes128"
  runtime::LocatorService service;
  /// Cross-session window batcher (EngineConfig::max_batch_windows > 0);
  /// null = streams self-score (legacy path). Declared last so teardown
  /// joins the scheduler thread while the locator is still alive.
  std::unique_ptr<runtime::WindowBatcher> batcher;
};
}  // namespace detail

/// A cancellable whole-trace job. Move-only handle over the job's future
/// and cancel flag.
class Job {
 public:
  /// Requests cancellation. A job not yet started never runs and get()
  /// throws scalocate::Cancelled; a job already running completes normally.
  void cancel() { flag_->store(true); }
  bool cancel_requested() const { return flag_->load(); }

  /// Blocks for the result (rethrows the job's exception, if any).
  std::vector<std::size_t> get() { return future_.get(); }
  std::future<std::vector<std::size_t>>& future() { return future_; }

 private:
  friend class Session;
  Job(runtime::LocatorService::CancelFlag flag,
      std::future<std::vector<std::size_t>> future)
      : flag_(std::move(flag)), future_(std::move(future)) {}

  runtime::LocatorService::CancelFlag flag_;
  std::future<std::vector<std::size_t>> future_;
};

/// Push-based chunk ingestion bound to one session's model. Detections are
/// delivered online, exactly as the offline pipeline would emit them:
/// through the callback when one is installed, otherwise returned from
/// feed()/finish() (poll style).
///
/// With batching on (EngineConfig::max_batch_windows > 0) the stream
/// routes through the model's runtime::WindowBatcher: feed() becomes a
/// wait-free ingest push plus an opportunistic result drain, and
/// detections surface asynchronously — a feed() may return detections
/// completed by earlier chunks, with the full set guaranteed by finish().
/// The DETECTIONS are bit-identical to the self-scoring path either way;
/// only the feed() call that happens to hand them over shifts.
class Stream {
 public:
  using Callback = std::function<void(const Detection&)>;

  /// Installs push delivery; feed()/finish() then return empty vectors.
  /// If the callback throws, delivery stops and the exception propagates;
  /// the detection being handled and every later one stay queued and are
  /// redelivered (at-least-once) by the next feed()/finish().
  void on_detection(Callback callback) { callback_ = std::move(callback); }

  std::vector<Detection> feed(std::span<const float> chunk);
  std::vector<Detection> finish();
  void reset();

  /// True when this stream scores through the model's shared batcher.
  bool batched() const { return batched_ != nullptr; }

  std::size_t samples_consumed() const {
    return batched_ ? batched_->samples_consumed()
                    : streaming_->samples_consumed();
  }
  std::size_t resident_samples() const {
    return batched_ ? batched_->resident_samples()
                    : streaming_->resident_samples();
  }
  float threshold() const {
    return batched_ ? batched_->threshold() : streaming_->threshold();
  }
  std::size_t median_k() const {
    return batched_ ? batched_->median_k() : streaming_->median_k();
  }

 private:
  friend class Session;
  Stream(std::shared_ptr<detail::ModelEntry> entry, StreamingConfig config);

  /// Hands queued detections to the callback (or returns them when none is
  /// installed). A detection leaves the queue only after its callback
  /// invocation returned, so a throw loses nothing.
  std::vector<Detection> deliver();

  std::shared_ptr<detail::ModelEntry> entry_;  ///< keeps the model alive
  StreamingConfig config_;  ///< kept so reset() can reopen the batched path
  std::unique_ptr<runtime::StreamingLocator> streaming_;  ///< legacy path
  std::shared_ptr<runtime::BatchedStream> batched_;       ///< batched path
  std::deque<Detection> pending_;  ///< finalized but not yet delivered
  Callback callback_;
};

/// Handle to one served model; cheap to copy, safe to share across threads.
class Session {
 public:
  /// Whole-trace job; the trace is moved in. At max_queue_depth the
  /// engine's AdmissionPolicy decides (default: block — backpressure).
  /// `options` carries the per-job failure-model knobs: a deadline or
  /// timeout after which the job fails with DeadlineExceeded instead of
  /// occupying a worker (see runtime::SubmitOptions).
  std::future<std::vector<std::size_t>> submit(std::vector<float> trace,
                                               SubmitOptions options = {});

  /// Whole-trace job over caller-owned samples (kept alive by the caller
  /// until the future resolves).
  std::future<std::vector<std::size_t>> submit_view(
      std::span<const float> trace, SubmitOptions options = {});

  /// Whole-trace job with a cancellation handle.
  Job submit_job(std::vector<float> trace, SubmitOptions options = {});

  using TimedResult = runtime::LocatorService::TimedResult;
  std::future<TimedResult> submit_timed(std::span<const float> trace,
                                        SubmitOptions options = {});

  /// Opens a push-based stream over this session's model.
  Stream open_stream(StreamingConfig config = {}) const;

  const core::CoLocator& locator() const { return *entry_->locator; }
  crypto::CipherId cipher() const {
    return entry_->locator->config().params.cipher;
  }

  /// This model's serving instruments (all-null when the engine was built
  /// without a telemetry registry).
  const runtime::ServiceMetrics& metrics() const {
    return entry_->service.metrics();
  }

  /// Blocks until every job submitted to this session's model so far has
  /// fully settled. A resolved future only proves the job's RESULT is
  /// ready; the service's accounting (completed count, queue_depth back to
  /// zero) lands moments later on the worker thread — call this before
  /// reading metrics() or a registry snapshot that must reconcile exactly.
  void drain() { entry_->service.drain(); }

 private:
  friend class Engine;
  explicit Session(std::shared_ptr<detail::ModelEntry> entry)
      : entry_(std::move(entry)) {}

  std::shared_ptr<detail::ModelEntry> entry_;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();  ///< Drains every model's in-flight jobs.

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Loads a versioned artifact (api/artifact) and registers the model
  /// under its cipher id, replacing any previous model for that cipher.
  /// Existing sessions keep serving the replaced model. Returns the cipher
  /// key for open_session().
  crypto::CipherId load_artifact(const std::string& path);

  /// Adopts an in-process trained locator (e.g. straight after train()).
  crypto::CipherId add_model(core::CoLocator&& locator);

  /// Serves a borrowed trained locator; the caller keeps ownership and must
  /// keep it alive for the engine's lifetime.
  crypto::CipherId attach_model(const core::CoLocator& locator);

  /// Opens a session bound to the model registered for `cipher`; throws
  /// InvalidArgument when none is registered.
  Session open_session(crypto::CipherId cipher) const;

  /// Convenience for single-model engines; throws unless exactly one model
  /// is registered.
  Session open_session() const;

  bool has_model(crypto::CipherId cipher) const;
  std::vector<ModelInfo> models() const;
  std::size_t worker_count() const { return pool_.worker_count(); }

  /// The telemetry registry this engine publishes into (null = off).
  obs::Registry* metrics_registry() const { return config_.registry; }
  /// Convenience snapshots of that registry; empty-document/placeholder
  /// output when telemetry is off.
  std::string telemetry_text() const;
  std::string telemetry_json() const;

 private:
  crypto::CipherId register_entry(std::shared_ptr<detail::ModelEntry> entry);
  runtime::ServiceConfig service_config(crypto::CipherId cipher) const;

  EngineConfig config_;
  runtime::ThreadPool pool_;  ///< declared before the registry: entries
                              ///< (services) drain against it on teardown
  mutable std::mutex mutex_;
  std::map<crypto::CipherId, std::shared_ptr<detail::ModelEntry>> registry_;
};

}  // namespace scalocate::api
