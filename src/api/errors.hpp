// Structured error types of the public scalocate::api surface.
//
// Artifact loading never crashes or returns silent garbage: every failure
// mode surfaces as a distinct subtype so deployments can branch on the kind
// (retry a truncated download, reject a foreign file, re-export after a
// format bump, rebuild after an architecture drift) while `catch
// (const scalocate::Error&)` still covers everything at one boundary.
#pragma once

#include "common/error.hpp"

namespace scalocate::api {

/// Base of every artifact load/save failure.
class ArtifactError : public Error {
 public:
  explicit ArtifactError(const std::string& what) : Error(what) {}
};

/// The file ended (or the stream failed) before the bundle was complete.
class ArtifactTruncated : public ArtifactError {
 public:
  explicit ArtifactTruncated(const std::string& what) : ArtifactError(what) {}
};

/// The file does not start with the artifact magic — not a scalocate
/// artifact at all.
class ArtifactBadMagic : public ArtifactError {
 public:
  explicit ArtifactBadMagic(const std::string& what) : ArtifactError(what) {}
};

/// The artifact was written by an incompatible format version.
class ArtifactVersionMismatch : public ArtifactError {
 public:
  explicit ArtifactVersionMismatch(const std::string& what)
      : ArtifactError(what) {}
};

/// The weight payload disagrees with the architecture descriptor
/// (parameter names, shapes, or counts) — the bundle is internally
/// inconsistent or was tampered with.
class ArtifactArchMismatch : public ArtifactError {
 public:
  explicit ArtifactArchMismatch(const std::string& what)
      : ArtifactError(what) {}
};

/// The CRC-32 trailer does not match the bundle's content: bit rot or
/// tampering that left the structure intact (a corrupted value inside an
/// otherwise well-formed field would load as plausible garbage without it).
class ArtifactChecksumMismatch : public ArtifactError {
 public:
  explicit ArtifactChecksumMismatch(const std::string& what)
      : ArtifactError(what) {}
};

}  // namespace scalocate::api
