// Structured error types of the public scalocate::api surface.
//
// Nothing here crashes or returns silent garbage: every failure mode
// surfaces as a distinct subtype so deployments can branch on the kind
// (retry a truncated download, reject a foreign file, re-export after a
// format bump, rebuild after an architecture drift, back off when shed)
// while `catch (const scalocate::Error&)` still covers everything at one
// boundary.
//
// Error taxonomy (see README "Failure model & degradation" for the full
// table). The retryability contract is the Transient mixin, tested with
// scalocate::is_transient(e) — api::with_retry retries exactly these:
//
//   transient (retryable)     Overloaded, DeadlineExceeded,
//                             runtime::InjectedFault, ArtifactTruncated
//   terminal (never retried)  Cancelled, CorruptSignal, InvalidArgument,
//                             ArtifactBadMagic, ArtifactVersionMismatch,
//                             ArtifactArchMismatch,
//                             ArtifactChecksumMismatch, IoError,
//                             ShapeError
//
// The serving-plane types (Overloaded, DeadlineExceeded, Cancelled,
// CorruptSignal) are defined in common/error.hpp because the runtime layer
// throws them; they are re-exported here so `api::` users see one complete
// error surface.
#pragma once

#include "common/error.hpp"

namespace scalocate::api {

// Serving-plane errors, re-exported from scalocate:: (common/error.hpp).
using scalocate::Cancelled;          ///< caller abandoned the job; terminal
using scalocate::CorruptSignal;      ///< NaN/Inf input samples; terminal
using scalocate::DeadlineExceeded;   ///< deadline/timeout passed; transient
using scalocate::Error;              ///< catch-all base
using scalocate::is_transient;       ///< the one retryability test
using scalocate::Overloaded;         ///< admission rejected/shed; transient
using scalocate::Transient;          ///< retryable-marker mixin

/// Base of every artifact load/save failure.
class ArtifactError : public Error {
 public:
  explicit ArtifactError(const std::string& what) : Error(what) {}
};

/// The file ended (or the stream failed) before the bundle was complete.
/// Transient: the canonical cause is reading an artifact mid-download or
/// mid-write — a retry after the writer finishes succeeds. (If the file is
/// durably truncated the retry fails the same way, which is what
/// with_retry's bounded attempts are for.)
class ArtifactTruncated : public ArtifactError, public Transient {
 public:
  explicit ArtifactTruncated(const std::string& what) : ArtifactError(what) {}
};

/// The file does not start with the artifact magic — not a scalocate
/// artifact at all.
class ArtifactBadMagic : public ArtifactError {
 public:
  explicit ArtifactBadMagic(const std::string& what) : ArtifactError(what) {}
};

/// The artifact was written by an incompatible format version.
class ArtifactVersionMismatch : public ArtifactError {
 public:
  explicit ArtifactVersionMismatch(const std::string& what)
      : ArtifactError(what) {}
};

/// The weight payload disagrees with the architecture descriptor
/// (parameter names, shapes, or counts) — the bundle is internally
/// inconsistent or was tampered with.
class ArtifactArchMismatch : public ArtifactError {
 public:
  explicit ArtifactArchMismatch(const std::string& what)
      : ArtifactError(what) {}
};

/// The CRC-32 trailer does not match the bundle's content: bit rot or
/// tampering that left the structure intact (a corrupted value inside an
/// otherwise well-formed field would load as plausible garbage without it).
class ArtifactChecksumMismatch : public ArtifactError {
 public:
  explicit ArtifactChecksumMismatch(const std::string& what)
      : ArtifactError(what) {}
};

}  // namespace scalocate::api
