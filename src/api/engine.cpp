#include "api/engine.hpp"

#include <cctype>

#include "api/artifact.hpp"
#include "common/error.hpp"

namespace scalocate::api {

// ---------------------------------------------------------------------------
// Stream
// ---------------------------------------------------------------------------

Stream::Stream(std::shared_ptr<detail::ModelEntry> entry,
               StreamingConfig config)
    : entry_(std::move(entry)), config_(std::move(config)) {
  if (entry_->batcher)
    batched_ = entry_->batcher->open_stream(config_);
  else
    streaming_ =
        std::make_unique<runtime::StreamingLocator>(*entry_->locator, config_);
}

std::vector<Detection> Stream::feed(std::span<const float> chunk) {
  if (batched_) {
    // Wait-free ingest, then an opportunistic drain: whatever the batcher
    // finalized so far (possibly from earlier chunks) is delivered now.
    batched_->feed(chunk);
    std::vector<Detection> drained;
    batched_->poll(drained);
    pending_.insert(pending_.end(), drained.begin(), drained.end());
  } else {
    const auto detections = streaming_->feed(chunk);
    pending_.insert(pending_.end(), detections.begin(), detections.end());
  }
  return deliver();
}

std::vector<Detection> Stream::finish() {
  const auto detections =
      batched_ ? batched_->finish() : streaming_->finish();
  pending_.insert(pending_.end(), detections.begin(), detections.end());
  return deliver();
}

void Stream::reset() {
  // The batched path has no in-place reset: the old BatchedStream detaches
  // (the batcher prunes it next tick) and a fresh one takes its place.
  if (batched_)
    batched_ = entry_->batcher->open_stream(config_);
  else
    streaming_->reset();
  pending_.clear();
}

std::vector<Detection> Stream::deliver() {
  if (!callback_) {
    std::vector<Detection> out(pending_.begin(), pending_.end());
    pending_.clear();
    return out;
  }
  while (!pending_.empty()) {
    callback_(pending_.front());  // a throw keeps the detection queued
    pending_.pop_front();
  }
  return {};
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

std::future<std::vector<std::size_t>> Session::submit(std::vector<float> trace,
                                                      SubmitOptions options) {
  return entry_->service.submit(std::move(trace), nullptr, options);
}

std::future<std::vector<std::size_t>> Session::submit_view(
    std::span<const float> trace, SubmitOptions options) {
  return entry_->service.submit_view(trace, nullptr, options);
}

Job Session::submit_job(std::vector<float> trace, SubmitOptions options) {
  auto flag = std::make_shared<std::atomic<bool>>(false);
  auto future = entry_->service.submit(std::move(trace), flag, options);
  return Job(std::move(flag), std::move(future));
}

std::future<Session::TimedResult> Session::submit_timed(
    std::span<const float> trace, SubmitOptions options) {
  return entry_->service.submit_timed(trace, options);
}

Stream Session::open_stream(StreamingConfig config) const {
  // Engine-level telemetry wiring, unless the caller routed the stream to a
  // registry of their own.
  if (!config.registry && entry_->registry) {
    config.registry = entry_->registry;
    config.metric_prefix = entry_->stream_prefix;
  }
  return Stream(entry_, config);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

std::string metric_model_name(crypto::CipherId cipher) {
  std::string out;
  for (const char c : crypto::cipher_display_name(cipher)) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Engine::Engine(EngineConfig config)
    : config_(config), pool_(runtime::resolve_workers(config.workers)) {
  if (config_.registry) pool_.attach_metrics(*config_.registry);
}

Engine::~Engine() = default;

crypto::CipherId Engine::register_entry(
    std::shared_ptr<detail::ModelEntry> entry) {
  scalocate::detail::require(entry->locator->is_trained(),
                  "Engine: model must be trained");
  const auto cipher = entry->locator->config().params.cipher;
  if (entry->registry) entry->stream_prefix = "stream." + metric_model_name(cipher);
  if (config_.max_batch_windows > 0) {
    runtime::BatchConfig bc;
    bc.max_batch_windows = config_.max_batch_windows;
    bc.batch_linger = std::chrono::microseconds(config_.batch_linger_us);
    bc.intra_op_threads = config_.batch_intra_op_threads;
    bc.registry = config_.registry;
    if (config_.registry)
      bc.metric_prefix = "batch." + metric_model_name(cipher);
    entry->batcher =
        std::make_unique<runtime::WindowBatcher>(*entry->locator, bc);
  }
  // A replaced entry may hold the last reference to a service with jobs
  // still in flight; its drain() must run after the registry lock is
  // released, or a hot-swap would stall every other Engine operation.
  std::shared_ptr<detail::ModelEntry> replaced;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = registry_[cipher];
    replaced = std::move(slot);
    slot = std::move(entry);
  }
  return cipher;
}

runtime::ServiceConfig Engine::service_config(crypto::CipherId cipher) const {
  runtime::ServiceConfig cfg;
  cfg.max_queue_depth = config_.max_queue_depth;
  cfg.admission = config_.admission;
  cfg.max_concurrency = config_.max_concurrency;
  cfg.watchdog_p99_multiple = config_.watchdog_p99_multiple;
  cfg.watchdog_min_samples = config_.watchdog_min_samples;
  cfg.intra_op_threads = config_.intra_op_threads;
  cfg.max_batch_windows = config_.max_batch_windows;
  cfg.batch_linger_us = config_.batch_linger_us;
  cfg.batch_intra_op_threads = config_.batch_intra_op_threads;
  if (config_.registry) {
    cfg.registry = config_.registry;
    cfg.metric_prefix = "engine." + metric_model_name(cipher);
  }
  return cfg;
}

crypto::CipherId Engine::load_artifact(const std::string& path) {
  // Load first: the model's cipher id names its instruments.
  return add_model(api::load_artifact(path));
}

crypto::CipherId Engine::add_model(core::CoLocator&& locator) {
  const auto cipher = locator.config().params.cipher;
  return register_entry(std::make_shared<detail::ModelEntry>(
      std::move(locator), pool_, service_config(cipher)));
}

crypto::CipherId Engine::attach_model(const core::CoLocator& locator) {
  const auto cipher = locator.config().params.cipher;
  return register_entry(std::make_shared<detail::ModelEntry>(
      locator, pool_, service_config(cipher)));
}

std::string Engine::telemetry_text() const {
  return config_.registry ? config_.registry->render_text()
                          : "(telemetry off: Engine built without a registry)\n";
}

std::string Engine::telemetry_json() const {
  return config_.registry ? config_.registry->render_json() : "{}";
}

Session Engine::open_session(crypto::CipherId cipher) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = registry_.find(cipher);
  scalocate::detail::require(it != registry_.end(),
                  "Engine::open_session: no model registered for cipher " +
                      crypto::cipher_display_name(cipher));
  return Session(it->second);
}

Session Engine::open_session() const {
  std::lock_guard<std::mutex> lock(mutex_);
  scalocate::detail::require(registry_.size() == 1,
                  "Engine::open_session(): engine serves " +
                      std::to_string(registry_.size()) +
                      " models; select one by cipher id");
  return Session(registry_.begin()->second);
}

bool Engine::has_model(crypto::CipherId cipher) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return registry_.count(cipher) > 0;
}

std::vector<ModelInfo> Engine::models() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ModelInfo> out;
  out.reserve(registry_.size());
  for (const auto& [cipher, entry] : registry_) {
    ModelInfo info;
    info.cipher = cipher;
    info.display_name = crypto::cipher_display_name(cipher);
    info.n_inf = entry->locator->config().params.n_inf;
    info.stride = entry->locator->config().params.stride;
    info.calibration_offset = entry->locator->calibration_offset();
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace scalocate::api
