// scalocate::api — the stable public facade.
//
// One include gives a deployment everything it needs:
//
//   #include "api/scalocate.hpp"
//
//   scalocate::api::Engine engine({.workers = 4});
//   engine.load_artifact("aes128.scart");        // train once...
//   auto session = engine.open_session();        // ...serve anywhere
//   auto starts  = session.submit(std::move(trace)).get();
//
// The facade is the library's compatibility boundary: Engine/Session/
// Stream/Job, the versioned artifact format, and the structured error types
// are kept stable; everything under core/, nn/, runtime/ may be refactored
// freely underneath it. Training still happens through core::CoLocator
// (clone-device profiling is inherently offline); export_artifact() is the
// bridge from a trained locator into this serving surface.
#pragma once

#include "api/artifact.hpp"
#include "api/engine.hpp"
#include "api/errors.hpp"
#include "api/retry.hpp"
