// with_retry: bounded, jittered exponential backoff around transient
// failures.
//
// Retryability is typed, not guessed from message strings: a failure is
// retried iff it carries the scalocate::Transient mixin (Overloaded,
// DeadlineExceeded, runtime::InjectedFault, ArtifactTruncated — see the
// taxonomy in api/errors.hpp). Everything else propagates on the first
// throw: retrying a Cancelled job would resurrect work the caller
// abandoned, and retrying an ArtifactArchMismatch re-reads the same broken
// bundle forever.
//
//   auto starts = api::with_retry([&] { return session.submit(trace).get(); });
//
// Backoff doubles per attempt (initial_backoff * multiplier^k, capped at
// max_backoff) and each delay is jittered uniformly into [backoff/2,
// backoff] so a fleet of clients rejected by one Overloaded burst does not
// re-arrive in lockstep and cause the next one.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "obs/registry.hpp"

namespace scalocate::api {

struct RetryConfig {
  /// Total invocations of the callable, first try included (>= 1). The
  /// last attempt's failure propagates even when transient.
  std::size_t max_attempts = 4;
  /// Delay before the first retry; doubles (see multiplier) per retry.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(10);
  double multiplier = 2.0;  ///< backoff growth per retry (>= 1)
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(2);
  /// Jitter PRNG seed; 0 (default) seeds from entropy — pass a fixed seed
  /// for reproducible delays in tests.
  std::uint64_t jitter_seed = 0;
  /// When set, counts each retry into `<metric_prefix or "api">.retries`.
  obs::Registry* registry = nullptr;
  std::string metric_prefix;
  /// Sleep override for tests (null = std::this_thread::sleep_for).
  std::function<void(std::chrono::nanoseconds)> sleep;
};

/// Invokes `fn` up to config.max_attempts times, sleeping a jittered
/// exponential backoff between attempts. Retries only failures carrying the
/// Transient mixin; terminal errors (and the final attempt's failure)
/// rethrow unchanged.
template <typename Fn>
auto with_retry(Fn&& fn, RetryConfig config = {}) -> decltype(fn()) {
  scalocate::detail::require(config.max_attempts >= 1,
                             "with_retry: max_attempts must be >= 1");
  scalocate::detail::require(config.multiplier >= 1.0,
                             "with_retry: multiplier must be >= 1");
  obs::Counter* retries = nullptr;
  if (config.registry) {
    const std::string p =
        config.metric_prefix.empty() ? "api" : config.metric_prefix;
    retries = &config.registry->counter(p + ".retries");
  }
  std::mt19937_64 rng(config.jitter_seed != 0 ? config.jitter_seed
                                              : std::random_device{}());
  std::chrono::nanoseconds backoff = config.initial_backoff;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const std::exception& e) {
      if (attempt >= config.max_attempts || !is_transient(e)) throw;
    }
    if (retries) retries->add();
    if (backoff.count() > 0) {
      std::uniform_int_distribution<std::chrono::nanoseconds::rep> jitter(
          backoff.count() - backoff.count() / 2, backoff.count());
      const std::chrono::nanoseconds delay{jitter(rng)};
      if (config.sleep)
        config.sleep(delay);
      else
        std::this_thread::sleep_for(delay);
    }
    const auto grown = static_cast<std::chrono::nanoseconds::rep>(
        static_cast<double>(backoff.count()) * config.multiplier);
    backoff = std::min(std::chrono::nanoseconds{grown}, config.max_backoff);
  }
}

}  // namespace scalocate::api
