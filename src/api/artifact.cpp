#include "api/artifact.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "nn/serialize.hpp"
#include "runtime/fault_injector.hpp"

namespace scalocate::api {

namespace {

template <typename T>
T rd(std::istream& is, const char* what) {
  const T value = io::read_scalar<T>(is);
  if (!is)
    throw ArtifactTruncated(std::string("artifact truncated reading ") + what);
  return value;
}

std::size_t rd_size(std::istream& is, const char* what) {
  return static_cast<std::size_t>(rd<std::uint64_t>(is, what));
}

bool rd_bool(std::istream& is, const char* what) {
  return rd<std::uint8_t>(is, what) != 0;
}

/// Length-prefixed float vector, with the declared count bounded by the
/// bytes actually left in the file BEFORE allocating: a hostile prefix
/// (CRC-32 is not cryptographic, an attacker recomputes it) must not turn
/// a 100-byte file into a multi-GiB zero-fill.
std::vector<float> rd_floats(std::istream& is, const char* what,
                             std::uint64_t max_elements) {
  const auto n = rd<std::uint64_t>(is, what);
  if (n > max_elements)
    throw ArtifactError(std::string("artifact corrupt length for ") + what);
  std::vector<float> v(static_cast<std::size_t>(n));
  if (n > 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!is)
      throw ArtifactTruncated(std::string("artifact truncated reading ") +
                              what);
  }
  return v;
}

void wr_bool(std::ostream& os, bool v) {
  io::write_scalar<std::uint8_t>(os, v ? 1 : 0);
}

void write_pipeline_params(std::ostream& os, const core::PipelineParams& p) {
  io::write_scalar<std::uint64_t>(os, p.n_train);
  io::write_scalar<std::uint64_t>(os, p.n_inf);
  io::write_scalar<std::uint64_t>(os, p.stride);
  io::write_scalar<std::uint64_t>(os, p.sizes.cipher_start);
  io::write_scalar<std::uint64_t>(os, p.sizes.cipher_rest);
  io::write_scalar<std::uint64_t>(os, p.sizes.noise);
  io::write_scalar<std::uint64_t>(os, p.batch_size);
  io::write_scalar<float>(os, p.learning_rate);
  io::write_scalar<std::uint64_t>(os, p.epochs);
  io::write_scalar<double>(os, p.train_fraction);
  io::write_scalar<double>(os, p.val_fraction);
  wr_bool(os, p.random_rest_offsets);
  io::write_scalar<std::uint64_t>(os, p.start_jitter);
  io::write_scalar<std::uint64_t>(os, p.median_filter_k);
  io::write_scalar<float>(os, p.threshold);
  io::write_scalar<std::uint64_t>(os, p.merge_gap_windows);
  io::write_scalar<double>(os, p.otsu_clip_percentile);
  io::write_scalar<std::uint64_t>(os, p.paper_mean_length);
  io::write_scalar<std::uint64_t>(os, p.paper_n_train);
  io::write_scalar<std::uint64_t>(os, p.paper_n_inf);
  io::write_scalar<std::uint64_t>(os, p.paper_stride);
  io::write_scalar<std::uint64_t>(os, p.paper_sizes.cipher_start);
  io::write_scalar<std::uint64_t>(os, p.paper_sizes.cipher_rest);
  io::write_scalar<std::uint64_t>(os, p.paper_sizes.noise);
}

core::PipelineParams read_pipeline_params(std::istream& is,
                                          crypto::CipherId cipher) {
  core::PipelineParams p;
  p.cipher = cipher;
  p.n_train = rd_size(is, "n_train");
  p.n_inf = rd_size(is, "n_inf");
  p.stride = rd_size(is, "stride");
  p.sizes.cipher_start = rd_size(is, "sizes.cipher_start");
  p.sizes.cipher_rest = rd_size(is, "sizes.cipher_rest");
  p.sizes.noise = rd_size(is, "sizes.noise");
  p.batch_size = rd_size(is, "batch_size");
  p.learning_rate = rd<float>(is, "learning_rate");
  p.epochs = rd_size(is, "epochs");
  p.train_fraction = rd<double>(is, "train_fraction");
  p.val_fraction = rd<double>(is, "val_fraction");
  p.random_rest_offsets = rd_bool(is, "random_rest_offsets");
  p.start_jitter = rd_size(is, "start_jitter");
  p.median_filter_k = rd_size(is, "median_filter_k");
  p.threshold = rd<float>(is, "threshold");
  p.merge_gap_windows = rd_size(is, "merge_gap_windows");
  p.otsu_clip_percentile = rd<double>(is, "otsu_clip_percentile");
  p.paper_mean_length = rd_size(is, "paper_mean_length");
  p.paper_n_train = rd_size(is, "paper_n_train");
  p.paper_n_inf = rd_size(is, "paper_n_inf");
  p.paper_stride = rd_size(is, "paper_stride");
  p.paper_sizes.cipher_start = rd_size(is, "paper_sizes.cipher_start");
  p.paper_sizes.cipher_rest = rd_size(is, "paper_sizes.cipher_rest");
  p.paper_sizes.noise = rd_size(is, "paper_sizes.noise");
  if (p.n_train == 0 || p.n_inf == 0 || p.stride == 0)
    throw ArtifactError("artifact corrupt pipeline parameters");
  return p;
}

}  // namespace

std::uint32_t artifact_checksum(std::span<const char> bytes) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c >> 1) ^ ((c & 1u) ? 0xedb88320u : 0u);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char b : bytes)
    crc = (crc >> 8) ^ table[(crc ^ static_cast<std::uint8_t>(b)) & 0xffu];
  return crc ^ 0xffffffffu;
}

void save_artifact(const core::CoLocator& locator, const std::string& path) {
  scalocate::detail::require(locator.is_trained(),
                  "save_artifact: locator must be trained");
  const core::LocatorConfig& cfg = locator.config();
  // The body (everything between the magic and the trailer) is assembled in
  // memory first so its checksum can be computed before anything hits disk.
  std::ostringstream os(std::ios::binary);
  io::write_scalar<std::uint32_t>(os, kArtifactVersion);
  io::write_scalar<std::uint32_t>(os,
                                  static_cast<std::uint32_t>(cfg.params.cipher));
  io::write_scalar<std::uint64_t>(os, cfg.cnn.base_filters);
  io::write_scalar<std::uint64_t>(os, cfg.cnn.kernel_size);
  io::write_scalar<std::uint64_t>(os, cfg.cnn.fc_hidden);
  io::write_scalar<std::uint64_t>(os, cfg.cnn.init_seed);
  write_pipeline_params(os, cfg.params);
  io::write_scalar<std::uint64_t>(os, cfg.seed);
  io::write_scalar<std::uint64_t>(os, cfg.calibration_captures);
  wr_bool(os, cfg.fine_align);
  io::write_scalar<std::uint64_t>(os, cfg.fine_template_length);
  io::write_scalar<std::uint64_t>(os, cfg.fine_search_radius);
  io::write_scalar<double>(os, cfg.min_separation_fraction);

  const auto cal = locator.calibration_state();
  io::write_scalar<std::int64_t>(os, cal.coarse_offset);
  io::write_scalar<std::int64_t>(os, cal.fine_offset);
  io::write_scalar<double>(os, cal.mean_co_length);
  io::write_scalar<float>(os, cal.calibrated_threshold);
  io::write_scalar<std::uint64_t>(os, cal.fine_template.size());
  if (!cal.fine_template.empty())
    os.write(reinterpret_cast<const char*>(cal.fine_template.data()),
             static_cast<std::streamsize>(cal.fine_template.size() *
                                          sizeof(float)));

  nn::write_module_payload(os, locator.model());

  const std::string body = os.str();
  auto file = io::open_for_write(path, kArtifactMagic);
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  io::write_scalar<std::uint32_t>(
      file, artifact_checksum({body.data(), body.size()}));
  io::write_scalar<std::uint64_t>(file, kArtifactEnd);
  // Flush before declaring success: a full disk otherwise only surfaces in
  // the ofstream destructor, which cannot report it.
  file.flush();
  if (!file) throw IoError("failed writing artifact: " + path);
}

core::CoLocator load_artifact(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw ArtifactError("cannot open artifact: " + path);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());

  // Chaos hook: an armed "artifact.read" site drops the tail of the bytes
  // HERE, before any field is parsed — what reading a file mid-write looks
  // like. The structural checks below must turn it into a typed
  // ArtifactTruncated, never a crash or a silently short model.
  runtime::FaultInjector::instance().truncate("artifact.read", bytes);

  // Structural checks on the raw bytes before any field is trusted: magic,
  // then completeness (the end marker only exists in a fully written file),
  // then version, then the integrity checksum.
  if (bytes.size() < sizeof(std::uint64_t))
    throw ArtifactTruncated("artifact truncated reading magic: " + path);
  std::uint64_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic != kArtifactMagic)
    throw ArtifactBadMagic("not a scalocate artifact (bad magic): " + path);

  if (bytes.size() < kVersionOffset + sizeof(std::uint32_t) + kTrailerBytes)
    throw ArtifactTruncated("artifact truncated: " + path);
  std::uint64_t end_marker = 0;
  std::memcpy(&end_marker, bytes.data() + bytes.size() - sizeof(end_marker),
              sizeof(end_marker));
  if (end_marker != kArtifactEnd)
    throw ArtifactTruncated("artifact truncated (missing end marker): " +
                            path);

  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + kVersionOffset, sizeof(version));
  if (version != kArtifactVersion)
    throw ArtifactVersionMismatch(
        "artifact format version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kArtifactVersion) +
        ": " + path);

  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - kTrailerBytes,
              sizeof(stored_crc));
  const std::uint32_t computed_crc = artifact_checksum(
      {bytes.data() + sizeof(magic), bytes.size() - sizeof(magic) - kTrailerBytes});
  if (stored_crc != computed_crc)
    throw ArtifactChecksumMismatch("artifact checksum mismatch: " + path);

  const std::size_t total = bytes.size();
  std::istringstream is(std::move(bytes), std::ios::binary);
  is.seekg(kCipherOffset);
  const auto cipher_raw = rd<std::uint32_t>(is, "cipher id");
  if (cipher_raw > static_cast<std::uint32_t>(crypto::CipherId::kSimon128))
    throw ArtifactError("artifact corrupt cipher id: " + path);
  const auto cipher = static_cast<crypto::CipherId>(cipher_raw);

  core::LocatorConfig cfg;
  cfg.cnn.base_filters = rd_size(is, "cnn.base_filters");
  cfg.cnn.kernel_size = rd_size(is, "cnn.kernel_size");
  cfg.cnn.fc_hidden = rd_size(is, "cnn.fc_hidden");
  cfg.cnn.init_seed = rd<std::uint64_t>(is, "cnn.init_seed");
  if (cfg.cnn.base_filters == 0 || cfg.cnn.kernel_size == 0 ||
      cfg.cnn.fc_hidden == 0 || cfg.cnn.base_filters > (1u << 16) ||
      cfg.cnn.kernel_size > (1u << 20) || cfg.cnn.fc_hidden > (1u << 20))
    throw ArtifactError("artifact corrupt architecture descriptor: " + path);
  // The payload must at least hold the second residual block's conv weight
  // (4*F^2*K floats) and the first fc weight (2F*H floats), so a descriptor
  // whose implied model dwarfs the file — via either the conv or the fc
  // dimensions — is rejected before build_paper_cnn can attempt the
  // allocation.
  const std::uint64_t min_payload_bytes =
      (4ull * cfg.cnn.base_filters * cfg.cnn.base_filters *
           cfg.cnn.kernel_size +
       2ull * cfg.cnn.base_filters * cfg.cnn.fc_hidden) *
      sizeof(float);
  if (min_payload_bytes > total)
    throw ArtifactError(
        "artifact architecture descriptor implies a larger payload than the "
        "file holds: " +
        path);
  cfg.params = read_pipeline_params(is, cipher);
  cfg.seed = rd<std::uint64_t>(is, "seed");
  cfg.calibration_captures = rd_size(is, "calibration_captures");
  cfg.fine_align = rd_bool(is, "fine_align");
  cfg.fine_template_length = rd_size(is, "fine_template_length");
  cfg.fine_search_radius = rd_size(is, "fine_search_radius");
  cfg.min_separation_fraction = rd<double>(is, "min_separation_fraction");

  core::CoLocator::CalibrationState cal;
  cal.coarse_offset =
      static_cast<std::ptrdiff_t>(rd<std::int64_t>(is, "coarse_offset"));
  cal.fine_offset =
      static_cast<std::ptrdiff_t>(rd<std::int64_t>(is, "fine_offset"));
  cal.mean_co_length = rd<double>(is, "mean_co_length");
  cal.calibrated_threshold = rd<float>(is, "calibrated_threshold");
  cal.fine_template = rd_floats(
      is, "fine_template",
      (total - static_cast<std::size_t>(is.tellg())) / sizeof(float));

  // Building the CNN from the descriptor and then demanding that every
  // payload parameter matches it by name and shape is what makes the load
  // safe: a descriptor/payload disagreement can never be silently zero-
  // filled or reinterpreted.
  core::CoLocator locator(cfg);
  try {
    nn::read_module_payload(is, locator.model());
  } catch (const ShapeError& e) {
    throw ArtifactArchMismatch(std::string(e.what()) + ": " + path);
  } catch (const IoError& e) {
    throw ArtifactTruncated(std::string(e.what()) + ": " + path);
  }

  // The parse must land exactly on the trailer: leftover bytes would mean
  // the fields consumed disagree with what the writer produced.
  if (static_cast<std::uint64_t>(is.tellg()) != total - kTrailerBytes)
    throw ArtifactError("artifact corrupt (payload size mismatch): " + path);

  locator.restore_calibration(std::move(cal));
  return locator;
}

}  // namespace scalocate::api

namespace scalocate::core {

void CoLocator::export_artifact(const std::string& path) const {
  api::save_artifact(*this, path);
}

CoLocator CoLocator::from_artifact(const std::string& path) {
  return api::load_artifact(path);
}

}  // namespace scalocate::core
