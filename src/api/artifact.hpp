// Versioned model artifacts: train once, serve anywhere.
//
// An artifact is a single self-describing binary bundle holding everything
// a fresh process needs to serve a trained CoLocator without retraining:
//
//   offset  field
//   ------  -----------------------------------------------------------
//        0  u64 magic "SLOCART1" (kArtifactMagic, little-endian)
//        8  u32 format version (kArtifactVersion)
//       12  u32 cipher id (crypto::CipherId, Table I order)
//       16  CnnConfig architecture descriptor (4 x u64: base_filters,
//           kernel_size, fc_hidden, init_seed)
//       48  PipelineParams (fixed-size fields in declaration order)
//       ..  LocatorConfig extras (seed, calibration_captures, fine_align,
//           fine_template_length, fine_search_radius,
//           min_separation_fraction)
//       ..  calibration results (coarse/fine offset, mean CO length,
//           calibrated Otsu threshold, fine-alignment template)
//       ..  CNN weights + batch-norm buffers, self-describing
//           (nn::write_module_payload: per-parameter name + shape + data)
//   end-12  u32 CRC-32 (IEEE) over every byte between the magic and this
//           trailer — catches bit rot / tampering inside otherwise
//           well-formed fields
//    end-8  u64 end marker (kArtifactEnd)
//
// Versioning policy: the version is bumped on any layout change; loaders
// accept exactly their own version (no silent migration). Loading is
// shape-validated field by field and raises the structured subtypes in
// api/errors.hpp instead of crashing or returning garbage.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "api/errors.hpp"
#include "core/locator.hpp"

namespace scalocate::api {

constexpr std::uint64_t kArtifactMagic = 0x31545241434f4c53ULL;  // "SLOCART1"
/// v2: PipelineParams gained merge_gap_windows + otsu_clip_percentile
/// (countermeasure robustness knobs), serialized after `threshold`.
constexpr std::uint32_t kArtifactVersion = 2;
constexpr std::uint64_t kArtifactEnd = 0x444e455f54524103ULL;

/// Stable byte offsets of the fixed header prefix (corruption tests and
/// external tooling rely on these within one format version).
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kCipherOffset = 12;
constexpr std::size_t kCnnConfigOffset = 16;
constexpr std::size_t kCnnKernelSizeOffset = kCnnConfigOffset + 8;
/// Trailer: u32 CRC at (size - kTrailerBytes), u64 end marker after it.
constexpr std::size_t kTrailerBytes = 12;

/// CRC-32 (IEEE 802.3) used for the artifact integrity trailer; exposed so
/// tooling (and the corruption tests) can recompute it after editing a
/// bundle. The checksum covers bytes [8, size - kTrailerBytes).
std::uint32_t artifact_checksum(std::span<const char> bytes);

/// Serializes a trained locator into an artifact file. Throws
/// InvalidArgument when the locator is untrained and IoError when the file
/// cannot be written.
void save_artifact(const core::CoLocator& locator, const std::string& path);

/// Loads an artifact into a ready-to-serve locator (eval mode, calibrated).
/// Throws ArtifactTruncated / ArtifactBadMagic / ArtifactVersionMismatch /
/// ArtifactArchMismatch (see api/errors.hpp), or plain ArtifactError for
/// other corruption.
core::CoLocator load_artifact(const std::string& path);

}  // namespace scalocate::api
