#include "common/io.hpp"

#include "common/error.hpp"

namespace scalocate::io {

void write_string(std::ostream& os, const std::string& s) {
  write_scalar<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_scalar<std::uint64_t>(is);
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0) is.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

std::ofstream open_for_write(const std::string& path, std::uint64_t magic) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open for writing: " + path);
  write_scalar(os, magic);
  return os;
}

std::ifstream open_for_read(const std::string& path, std::uint64_t magic) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open for reading: " + path);
  const auto found = read_scalar<std::uint64_t>(is);
  if (!is || found != magic)
    throw IoError("bad magic in file: " + path);
  return is;
}

}  // namespace scalocate::io
