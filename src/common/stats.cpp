#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace scalocate::stats {

double mean(std::span<const float> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (float x : xs) acc += static_cast<double>(x);
  return acc / static_cast<double>(xs.size());
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const float> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (float x : xs) {
    const double d = static_cast<double>(x) - m;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const float> xs) { return std::sqrt(variance(xs)); }

double pearson(std::span<const float> xs, std::span<const float> ys) {
  detail::require(xs.size() == ys.size(),
                  "stats::pearson: ranges must have equal length");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = static_cast<double>(xs[i]) - mx;
    const double dy = static_cast<double>(ys[i]) - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double median(std::span<const float> xs) {
  detail::require(!xs.empty(), "stats::median: empty input");
  std::vector<float> tmp(xs.begin(), xs.end());
  const std::size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid),
                   tmp.end());
  if (tmp.size() % 2 == 1) return tmp[mid];
  const float hi = tmp[mid];
  const float lo =
      *std::max_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (static_cast<double>(lo) + static_cast<double>(hi));
}

double percentile(std::span<const float> xs, double p) {
  detail::require(!xs.empty(), "stats::percentile: empty input");
  detail::require(p >= 0.0 && p <= 100.0,
                  "stats::percentile: p must be in [0,100]");
  std::vector<float> tmp(xs.begin(), xs.end());
  std::sort(tmp.begin(), tmp.end());
  if (tmp.size() == 1) return tmp[0];
  const double rank = p / 100.0 * static_cast<double>(tmp.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, tmp.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (1.0 - frac) * static_cast<double>(tmp[lo]) +
         frac * static_cast<double>(tmp[hi]);
}

float min_value(std::span<const float> xs) {
  detail::require(!xs.empty(), "stats::min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

float max_value(std::span<const float> xs) {
  detail::require(!xs.empty(), "stats::max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

std::size_t argmax(std::span<const float> xs) {
  detail::require(!xs.empty(), "stats::argmax: empty input");
  return static_cast<std::size_t>(
      std::distance(xs.begin(), std::max_element(xs.begin(), xs.end())));
}

std::size_t argmin(std::span<const float> xs) {
  detail::require(!xs.empty(), "stats::argmin: empty input");
  return static_cast<std::size_t>(
      std::distance(xs.begin(), std::min_element(xs.begin(), xs.end())));
}

void RunningMoments::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

void RunningCorrelation::add(double x, double y) {
  ++n_;
  const double inv_n = 1.0 / static_cast<double>(n_);
  const double dx = x - mean_x_;
  const double dy = y - mean_y_;
  mean_x_ += dx * inv_n;
  mean_y_ += dy * inv_n;
  m2_x_ += dx * (x - mean_x_);
  m2_y_ += dy * (y - mean_y_);
  cov_ += dx * (y - mean_y_);
}

double RunningCorrelation::correlation() const {
  if (n_ < 2) return 0.0;
  const double denom = std::sqrt(m2_x_ * m2_y_);
  if (denom <= 0.0) return 0.0;
  return cov_ / denom;
}

}  // namespace scalocate::stats
