#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace scalocate {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  detail::require(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  detail::require(row.size() == header_.size(),
                  "TextTable::add_row: arity mismatch with header");
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  const auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  }();

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  os << hline << render_row(header_) << hline;
  for (const auto& row : rows_) {
    if (row.empty())
      os << hline;
    else
      os << render_row(row);
  }
  os << hline;
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

std::string format_kilo(std::size_t n) {
  if (n >= 1000 && n % 100 == 0) {
    const double k = static_cast<double>(n) / 1000.0;
    std::ostringstream os;
    os << k << "k";
    return os.str();
  }
  return std::to_string(n);
}

}  // namespace scalocate
