// 1-D signal processing primitives.
//
// These implement the classic DSP blocks the paper's pipeline is built
// from: the Segmentation stage (threshold -> square wave -> median filter
// -> rising-edge extraction, Section III-D) and the correlation machinery
// used by the baseline locators (matched filter [10] and waveform
// matching [11]).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace scalocate::signal {

/// Thresholds a signal into a +/-1 square wave: out[i] = +1 when
/// xs[i] >= threshold, else -1 (Section III-D, "Th" block).
std::vector<float> threshold_square_wave(std::span<const float> xs,
                                         float threshold);

/// Median of a (possibly even-sized) neighborhood, exactly as the sliding
/// median filter computes it at borders: odd sizes take the middle order
/// statistic, even sizes average the two middle ones. `scratch` is
/// overwritten (kept as a parameter so hot loops can reuse the allocation).
/// Exposed so the streaming runtime reproduces the offline filter
/// bit-for-bit on truncated border windows.
float median_of(std::span<const float> xs, std::vector<float>& scratch);

/// Sliding median filter of odd window size k (Section III-D, "MF" block).
/// Borders are handled by shrinking the window (median of the available
/// neighbors), which keeps the output length equal to the input length.
/// k must be odd and >= 1.
std::vector<float> median_filter(std::span<const float> xs, std::size_t k);

/// Indices i such that xs[i-1] < 0 <= xs[i] (a -1 -> +1 transition in a
/// square wave). Returns the index of the first +1 sample of each edge.
std::vector<std::size_t> rising_edges(std::span<const float> xs);

/// Indices i such that xs[i-1] >= 0 > xs[i].
std::vector<std::size_t> falling_edges(std::span<const float> xs);

/// Moving average of window k (k >= 1); same-length output, borders shrink.
std::vector<float> moving_average(std::span<const float> xs, std::size_t k);

/// Subtracts the mean and divides by the standard deviation. A zero-variance
/// signal is returned as all zeros.
std::vector<float> standardize(std::span<const float> xs);

/// Rescales into [0,1]; a constant signal maps to all zeros.
std::vector<float> min_max_normalize(std::span<const float> xs);

/// Raw (unnormalized) cross-correlation of `signal` with `kernel`:
/// out[t] = sum_j signal[t+j] * kernel[j], for t in [0, len(signal)-len(kernel)].
/// This is the matched-filter inner product used by baseline [10].
std::vector<float> cross_correlate(std::span<const float> signal,
                                   std::span<const float> kernel);

/// Normalized cross-correlation (Pearson at each lag, in [-1,1]):
/// the sliding-window correlation used by the waveform-matching
/// baseline [11]. Output length: len(signal)-len(kernel)+1.
std::vector<float> normalized_cross_correlate(std::span<const float> signal,
                                              std::span<const float> kernel);

/// Finds local maxima above `min_height`, keeping only peaks at least
/// `min_distance` samples apart (greedy, highest first). Returns sorted
/// ascending indices.
std::vector<std::size_t> find_peaks(std::span<const float> xs,
                                    float min_height,
                                    std::size_t min_distance);

/// Absolute of each element.
std::vector<float> absolute(std::span<const float> xs);

/// Downsamples by an integer factor >= 1, averaging each block (a simple
/// model of oscilloscope decimation).
std::vector<float> decimate(std::span<const float> xs, std::size_t factor);

}  // namespace scalocate::signal
