// Scalar statistics used across the library: descriptive statistics for
// power traces, Pearson correlation for CPA, and an online (Welford)
// accumulator for incremental correlation over growing trace sets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace scalocate::stats {

/// Arithmetic mean. Returns 0 for an empty range.
double mean(std::span<const float> xs);
double mean(std::span<const double> xs);

/// Population variance (divides by N). Returns 0 for fewer than 1 element.
double variance(std::span<const float> xs);

/// Population standard deviation.
double stddev(std::span<const float> xs);

/// Pearson correlation coefficient between two equal-length ranges.
/// Returns 0 when either range has zero variance.
double pearson(std::span<const float> xs, std::span<const float> ys);

/// Median of a range (copies internally; does not reorder the input).
/// For even sizes returns the mean of the two central elements.
double median(std::span<const float> xs);

/// p-th percentile (0 <= p <= 100) by nearest-rank with linear interpolation.
double percentile(std::span<const float> xs, double p);

/// Minimum / maximum. Input must be non-empty.
float min_value(std::span<const float> xs);
float max_value(std::span<const float> xs);

/// Index of the maximum element (first occurrence). Input must be non-empty.
std::size_t argmax(std::span<const float> xs);

/// Index of the minimum element (first occurrence). Input must be non-empty.
std::size_t argmin(std::span<const float> xs);

/// Online mean/variance accumulator (Welford). Numerically stable for the
/// long accumulations done by the incremental CPA engine.
class RunningMoments {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (N denominator). 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Online accumulator of Pearson correlation between paired samples.
/// Used by the CPA engine to update correlations one trace at a time.
class RunningCorrelation {
 public:
  void add(double x, double y);
  std::size_t count() const { return n_; }
  /// Current correlation estimate; 0 when undefined (fewer than 2 samples or
  /// zero variance on either side).
  double correlation() const;

 private:
  std::size_t n_ = 0;
  double mean_x_ = 0.0, mean_y_ = 0.0;
  double m2_x_ = 0.0, m2_y_ = 0.0;
  double cov_ = 0.0;
};

}  // namespace scalocate::stats
