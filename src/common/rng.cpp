#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace scalocate {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  detail::require(bound > 0, "Rng::next_below: bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  detail::require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint8_t Rng::next_byte() {
  return static_cast<std::uint8_t>(next_u64() & 0xff);
}

void Rng::fill_bytes(std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = next_byte();
}

Rng Rng::split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace scalocate
