// Common exception types for the scalocate library.
//
// All library errors derive from scalocate::Error so callers can catch a
// single type at API boundaries while tests can assert on the specific kind.
#pragma once

#include <stdexcept>
#include <string>

namespace scalocate {

/// Base class for every error thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A function argument violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A file could not be read/written or had an unexpected format.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Tensor/layer shapes are incompatible.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// A submitted job was cancelled before it ran; surfaces through the job's
/// future (runtime/locator_service, api::Job).
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

namespace detail {
/// Throws InvalidArgument with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}
}  // namespace detail

}  // namespace scalocate
