// Common exception types for the scalocate library.
//
// All library errors derive from scalocate::Error so callers can catch a
// single type at API boundaries while tests can assert on the specific kind.
#pragma once

#include <stdexcept>
#include <string>

namespace scalocate {

/// Base class for every error thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A function argument violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A file could not be read/written or had an unexpected format.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Tensor/layer shapes are incompatible.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Marker mixin for errors a caller may meaningfully retry: the failure was
/// a property of the moment (overload, a missed deadline, an injected
/// worker blip), not of the request. api::with_retry retries exactly the
/// errors that carry this mixin; everything else propagates immediately.
/// Deliberately not derived from Error so it composes with any subtype.
class Transient {
 public:
  virtual ~Transient() = default;
};

/// True when `e` carries the Transient mixin (the one retryability test
/// used across the library; see README "Failure model & degradation").
inline bool is_transient(const std::exception& e) {
  return dynamic_cast<const Transient*>(&e) != nullptr;
}

// Every class deriving from Error must be classified: either it carries the
// Transient mixin (retryable) or it is named in the terminal list below.
// tools/scalocate_lint.py parses the list between the two markers and fails
// CI on any unclassified error type, so api::with_retry semantics can never
// silently miss a new exception. Adding a terminal error class means adding
// its name here and a row to the README failure-model table.
//
// scalocate-lint: terminal-errors
//   InvalidArgument, IoError, ShapeError, Cancelled, CorruptSignal,
//   ArtifactError, ArtifactBadMagic, ArtifactVersionMismatch,
//   ArtifactArchMismatch, ArtifactChecksumMismatch
// scalocate-lint: end-terminal-errors

/// A submitted job was cancelled before it ran; surfaces through the job's
/// future (runtime/locator_service, api::Job). Never transient: the caller
/// asked for the abandonment, retrying would resurrect it.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

/// The service refused or shed a job because it was at capacity
/// (AdmissionPolicy::kRejectWhenFull / kShedByDeadline). Transient by
/// definition — back off and retry.
class Overloaded : public Error, public Transient {
 public:
  explicit Overloaded(const std::string& what) : Error(what) {}
};

/// The job's deadline (SubmitOptions::deadline / timeout) passed before a
/// result could be produced; expired-in-queue jobs are rejected cheaply,
/// before they waste a worker. Transient: a retry re-arms the deadline.
class DeadlineExceeded : public Error, public Transient {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// Input samples were not finite (NaN/Inf) — a poisoned capture would
/// otherwise propagate through standardization into every score.
/// Not transient: resubmitting the same bytes cannot help.
class CorruptSignal : public Error {
 public:
  explicit CorruptSignal(const std::string& what) : Error(what) {}
};

namespace detail {
/// Throws InvalidArgument with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}
}  // namespace detail

}  // namespace scalocate
