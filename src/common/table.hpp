// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables/figures in a shape directly comparable with the PDF.
#pragma once

#include <string>
#include <vector>

namespace scalocate {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line between the rows added so far and
  /// the next ones.
  void add_separator();

  /// Renders the table with column alignment and box-drawing separators.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimals.
std::string format_fixed(double value, int decimals);

/// Formats a fraction as a percentage string, e.g. 0.9956 -> "99.56%".
std::string format_percent(double fraction, int decimals = 2);

/// Formats a sample count with thousands shorthand, e.g. 22000 -> "22k".
std::string format_kilo(std::size_t n);

}  // namespace scalocate
