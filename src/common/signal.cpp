#include "common/signal.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace scalocate::signal {

std::vector<float> threshold_square_wave(std::span<const float> xs,
                                         float threshold) {
  std::vector<float> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    out[i] = xs[i] >= threshold ? 1.0f : -1.0f;
  return out;
}

float median_of(std::span<const float> xs, std::vector<float>& scratch) {
  detail::require(!xs.empty(), "signal::median_of: empty neighborhood");
  scratch.assign(xs.begin(), xs.end());
  const std::size_t mid = scratch.size() / 2;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(mid),
                   scratch.end());
  if (scratch.size() % 2 == 1) return scratch[mid];
  const float hi_v = scratch[mid];
  const float lo_v = *std::max_element(
      scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5f * (lo_v + hi_v);
}

std::vector<float> median_filter(std::span<const float> xs, std::size_t k) {
  detail::require(k >= 1 && k % 2 == 1,
                  "signal::median_filter: k must be odd and >= 1");
  const std::size_t n = xs.size();
  std::vector<float> out(n);
  if (n == 0) return out;
  const std::size_t half = k / 2;
  std::vector<float> scratch;
  scratch.reserve(k);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    out[i] = median_of(xs.subspan(lo, hi - lo + 1), scratch);
  }
  return out;
}

std::vector<std::size_t> rising_edges(std::span<const float> xs) {
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i < xs.size(); ++i)
    if (xs[i - 1] < 0.0f && xs[i] >= 0.0f) out.push_back(i);
  return out;
}

std::vector<std::size_t> falling_edges(std::span<const float> xs) {
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i < xs.size(); ++i)
    if (xs[i - 1] >= 0.0f && xs[i] < 0.0f) out.push_back(i);
  return out;
}

std::vector<float> moving_average(std::span<const float> xs, std::size_t k) {
  detail::require(k >= 1, "signal::moving_average: k must be >= 1");
  const std::size_t n = xs.size();
  std::vector<float> out(n);
  if (n == 0) return out;
  const std::size_t half = k / 2;
  // Prefix sums for O(n) evaluation.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    prefix[i + 1] = prefix[i] + static_cast<double>(xs[i]);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    const double sum = prefix[hi + 1] - prefix[lo];
    out[i] = static_cast<float>(sum / static_cast<double>(hi - lo + 1));
  }
  return out;
}

std::vector<float> standardize(std::span<const float> xs) {
  const double m = stats::mean(xs);
  const double sd = stats::stddev(xs);
  std::vector<float> out(xs.size());
  if (sd <= 0.0) return out;
  for (std::size_t i = 0; i < xs.size(); ++i)
    out[i] = static_cast<float>((static_cast<double>(xs[i]) - m) / sd);
  return out;
}

std::vector<float> min_max_normalize(std::span<const float> xs) {
  std::vector<float> out(xs.size());
  if (xs.empty()) return out;
  const float lo = stats::min_value(xs);
  const float hi = stats::max_value(xs);
  if (hi <= lo) return out;
  const float span = hi - lo;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - lo) / span;
  return out;
}

std::vector<float> cross_correlate(std::span<const float> signal,
                                   std::span<const float> kernel) {
  detail::require(!kernel.empty(), "signal::cross_correlate: empty kernel");
  detail::require(signal.size() >= kernel.size(),
                  "signal::cross_correlate: kernel longer than signal");
  const std::size_t out_len = signal.size() - kernel.size() + 1;
  std::vector<float> out(out_len);
  for (std::size_t t = 0; t < out_len; ++t) {
    double acc = 0.0;
    for (std::size_t j = 0; j < kernel.size(); ++j)
      acc += static_cast<double>(signal[t + j]) * static_cast<double>(kernel[j]);
    out[t] = static_cast<float>(acc);
  }
  return out;
}

std::vector<float> normalized_cross_correlate(std::span<const float> signal,
                                              std::span<const float> kernel) {
  detail::require(kernel.size() >= 2,
                  "signal::normalized_cross_correlate: kernel too short");
  detail::require(signal.size() >= kernel.size(),
                  "signal::normalized_cross_correlate: kernel longer than signal");
  const std::size_t m = kernel.size();
  const std::size_t out_len = signal.size() - m + 1;
  std::vector<float> out(out_len);

  const double km = stats::mean(kernel);
  double kss = 0.0;
  for (float v : kernel) {
    const double d = static_cast<double>(v) - km;
    kss += d * d;
  }
  if (kss <= 0.0) return out;  // constant template correlates with nothing

  // Sliding sums for the signal windows.
  std::vector<double> prefix(signal.size() + 1, 0.0);
  std::vector<double> prefix_sq(signal.size() + 1, 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    prefix[i + 1] = prefix[i] + static_cast<double>(signal[i]);
    prefix_sq[i + 1] = prefix_sq[i] + static_cast<double>(signal[i]) *
                                          static_cast<double>(signal[i]);
  }
  for (std::size_t t = 0; t < out_len; ++t) {
    const double sum = prefix[t + m] - prefix[t];
    const double sum_sq = prefix_sq[t + m] - prefix_sq[t];
    const double smean = sum / static_cast<double>(m);
    const double sss = sum_sq - sum * smean;
    if (sss <= 1e-12) {
      out[t] = 0.0f;
      continue;
    }
    double cross = 0.0;
    for (std::size_t j = 0; j < m; ++j)
      cross += (static_cast<double>(signal[t + j]) - smean) *
               (static_cast<double>(kernel[j]) - km);
    out[t] = static_cast<float>(cross / std::sqrt(sss * kss));
  }
  return out;
}

std::vector<std::size_t> find_peaks(std::span<const float> xs, float min_height,
                                    std::size_t min_distance) {
  // Collect local maxima above the height threshold.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] < min_height) continue;
    const bool left_ok = i == 0 || xs[i] >= xs[i - 1];
    const bool right_ok = i + 1 == xs.size() || xs[i] > xs[i + 1];
    if (left_ok && right_ok) candidates.push_back(i);
  }
  // Greedy non-maximum suppression: highest peaks first.
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] > xs[b]; });
  std::vector<std::size_t> kept;
  for (std::size_t c : candidates) {
    bool ok = true;
    for (std::size_t k : kept) {
      const std::size_t dist = c > k ? c - k : k - c;
      if (dist < min_distance) {
        ok = false;
        break;
      }
    }
    if (ok) kept.push_back(c);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

std::vector<float> absolute(std::span<const float> xs) {
  std::vector<float> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = std::fabs(xs[i]);
  return out;
}

std::vector<float> decimate(std::span<const float> xs, std::size_t factor) {
  detail::require(factor >= 1, "signal::decimate: factor must be >= 1");
  if (factor == 1) return {xs.begin(), xs.end()};
  std::vector<float> out;
  out.reserve(xs.size() / factor + 1);
  for (std::size_t i = 0; i + factor <= xs.size(); i += factor) {
    double acc = 0.0;
    for (std::size_t j = 0; j < factor; ++j)
      acc += static_cast<double>(xs[i + j]);
    out.push_back(static_cast<float>(acc / static_cast<double>(factor)));
  }
  return out;
}

}  // namespace scalocate::signal
