// Minimal binary serialization helpers.
//
// All scalocate on-disk formats (trace files, model checkpoints) are built
// from these primitives. Values are written little-endian; files start with
// a 8-byte magic so load errors are caught early.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace scalocate::io {

/// Writes a POD scalar little-endian. Only use with integral/float types.
template <typename T>
void write_scalar(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Reads a POD scalar written by write_scalar.
template <typename T>
T read_scalar(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  return value;
}

/// Writes a length-prefixed vector of scalars.
template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  write_scalar<std::uint64_t>(os, v.size());
  if (!v.empty())
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Reads a vector written by write_vector.
template <typename T>
std::vector<T> read_vector(std::istream& is) {
  const auto n = read_scalar<std::uint64_t>(is);
  std::vector<T> v(static_cast<std::size_t>(n));
  if (n > 0)
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
  return v;
}

/// Writes a length-prefixed UTF-8 string.
void write_string(std::ostream& os, const std::string& s);

/// Reads a string written by write_string.
std::string read_string(std::istream& is);

/// Opens a file for binary writing, writing `magic` (8 bytes) first.
/// Throws IoError on failure.
std::ofstream open_for_write(const std::string& path, std::uint64_t magic);

/// Opens a file for binary reading and validates the magic.
/// Throws IoError on failure or magic mismatch.
std::ifstream open_for_read(const std::string& path, std::uint64_t magic);

}  // namespace scalocate::io
