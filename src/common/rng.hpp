// Deterministic pseudo-random number generation.
//
// Every stochastic component in scalocate (simulated TRNG, acquisition
// noise, weight init, dataset shuffling) draws from an explicitly seeded
// Rng so that experiments are bit-reproducible across runs and platforms.
//
// The generator is xoshiro256** seeded through splitmix64, which is both
// fast and of high statistical quality; <random> engines are avoided
// because their distributions are not portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace scalocate {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic, portable random number generator (xoshiro256**).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x5ca10ca7e5eedULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using rejection sampling (unbiased).
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal sample (Box-Muller with caching).
  double normal();

  /// Normal sample with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Random byte.
  std::uint8_t next_byte();

  /// Fills `out` with random bytes.
  void fill_bytes(std::uint8_t* out, std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful to give each module a
  /// decorrelated stream from a single experiment seed.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace scalocate
