#include "sca/leakage.hpp"

#include <bit>

#include "common/error.hpp"
#include "crypto/aes128.hpp"

namespace scalocate::sca {

double apply_model(LeakageModel model, std::uint8_t value) {
  switch (model) {
    case LeakageModel::kHammingWeight:
      return static_cast<double>(std::popcount(value));
    case LeakageModel::kIdentity:
      return static_cast<double>(value);
    case LeakageModel::kBit0:
      return static_cast<double>(value & 1u);
  }
  throw InvalidArgument("apply_model: unknown leakage model");
}

std::uint8_t aes_subbyte_intermediate(const crypto::Block16& plaintext,
                                      std::size_t byte_index,
                                      std::uint8_t key_guess) {
  detail::require(byte_index < 16,
                  "aes_subbyte_intermediate: byte_index out of range");
  return crypto::Aes128::sbox(
      static_cast<std::uint8_t>(plaintext[byte_index] ^ key_guess));
}

double aes_subbyte_hypothesis(LeakageModel model,
                              const crypto::Block16& plaintext,
                              std::size_t byte_index, std::uint8_t key_guess) {
  return apply_model(model,
                     aes_subbyte_intermediate(plaintext, byte_index, key_guess));
}

}  // namespace scalocate::sca
