// Leakage models for correlation power analysis.
//
// The paper's attack (Section IV-C) targets the AES sub-byte intermediate:
// the hypothesis for key byte b under guess k on plaintext pt is
// HW(SBOX[pt[b] ^ k]), which the simulator's power model leaks at the
// first-round kSbox events.
#pragma once

#include <cstdint>

#include "crypto/cipher.hpp"

namespace scalocate::sca {

/// Supported power models.
enum class LeakageModel {
  kHammingWeight,   ///< HW(v)
  kIdentity,        ///< v itself
  kBit0,            ///< LSB of v (single-bit DPA-style model)
};

/// Applies a leakage model to an 8-bit intermediate.
double apply_model(LeakageModel model, std::uint8_t value);

/// AES sub-byte hypothesis: intermediate SBOX[pt[byte] ^ guess].
std::uint8_t aes_subbyte_intermediate(const crypto::Block16& plaintext,
                                      std::size_t byte_index,
                                      std::uint8_t key_guess);

/// Convenience: model applied to the AES sub-byte intermediate.
double aes_subbyte_hypothesis(LeakageModel model,
                              const crypto::Block16& plaintext,
                              std::size_t byte_index, std::uint8_t key_guess);

}  // namespace scalocate::sca
