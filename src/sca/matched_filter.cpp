#include "sca/matched_filter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/signal.hpp"
#include "common/stats.hpp"

namespace scalocate::sca {

MatchedFilterLocator::MatchedFilterLocator(MatchedFilterConfig config)
    : config_(config) {
  detail::require(config_.template_length >= 16,
                  "MatchedFilterLocator: template too short");
}

namespace {
// Matched filtering operates on the band-limited envelope: a short moving
// average suppresses the single-sample data-dependent term so the template
// matches the instruction envelope, not one execution's operand values.
std::vector<float> smooth(std::span<const float> xs) {
  return signal::moving_average(xs, 5);
}
}  // namespace

void MatchedFilterLocator::fit(const trace::CipherAcquisition& profiling) {
  detail::require(!profiling.captures.empty(),
                  "MatchedFilterLocator::fit: no profiling captures");
  const std::size_t len = config_.template_length;

  // Average the first `len` samples of up to max_templates captures; the
  // second half of the captures is held out for threshold calibration.
  const std::size_t usable = profiling.captures.size();
  const std::size_t for_template =
      std::min(config_.max_templates, std::max<std::size_t>(1, usable / 2));

  std::vector<double> acc(len, 0.0);
  std::size_t used = 0;
  double co_len_acc = 0.0;
  for (std::size_t i = 0; i < for_template; ++i) {
    const auto& raw = profiling.captures[i].samples;
    if (raw.size() < len) continue;
    const auto s = smooth(raw);
    for (std::size_t j = 0; j < len; ++j) acc[j] += static_cast<double>(s[j]);
    co_len_acc += static_cast<double>(raw.size());
    ++used;
  }
  detail::require(used > 0, "MatchedFilterLocator::fit: captures too short");
  template_.resize(len);
  for (std::size_t j = 0; j < len; ++j)
    template_[j] = static_cast<float>(acc[j] / static_cast<double>(used));
  mean_co_length_ = co_len_acc / static_cast<double>(used);

  // Calibrate: NCC response at the true start of held-out captures vs the
  // background response inside the CO body.
  std::vector<float> start_responses;
  std::vector<float> background_responses;
  for (std::size_t i = for_template; i < usable; ++i) {
    if (profiling.captures[i].samples.size() < 2 * len) continue;
    const auto s = smooth(profiling.captures[i].samples);
    const auto ncc = signal::normalized_cross_correlate(s, template_);
    if (ncc.empty()) continue;
    // True start is sample 0 of a capture; allow a small search slack.
    const std::size_t slack = std::min<std::size_t>(ncc.size() - 1, len / 8);
    float best = ncc[0];
    for (std::size_t j = 1; j <= slack; ++j) best = std::max(best, ncc[j]);
    start_responses.push_back(best);
    // Background: responses deeper inside the CO.
    for (std::size_t j = len; j < ncc.size(); j += len / 2)
      background_responses.push_back(ncc[j]);
  }

  if (std::isnan(config_.threshold)) {
    if (!start_responses.empty() && !background_responses.empty()) {
      const double start_level = stats::median(start_responses);
      const double bg_level = stats::percentile(background_responses, 95.0);
      calibration_response_ = start_level;
      // Weight toward the start response: the background 95th percentile
      // sits close to secondary structure (round starts), so the midpoint
      // admits too many false peaks.
      threshold_ = static_cast<float>(0.65 * start_level + 0.35 * bg_level);
      // Never accept peaks weaker than a minimal correlation; prevents the
      // locator from flooding detections when the template has decayed to
      // noise (random delay active).
      threshold_ = std::max(threshold_, 0.25f);
    } else {
      threshold_ = 0.5f;
    }
  } else {
    threshold_ = config_.threshold;
  }
  fitted_ = true;
}

std::vector<std::size_t> MatchedFilterLocator::locate(
    std::span<const float> trace_samples) const {
  detail::require(fitted_, "MatchedFilterLocator::locate: fit() first");
  if (trace_samples.size() < template_.size()) return {};
  const auto smoothed = smooth(trace_samples);
  const auto ncc = signal::normalized_cross_correlate(smoothed, template_);
  const auto min_distance = static_cast<std::size_t>(
      std::max(1.0, config_.min_distance_fraction * mean_co_length_));
  return signal::find_peaks(ncc, threshold_, min_distance);
}

}  // namespace scalocate::sca
