#include "sca/cpa.hpp"

#include <cmath>

#include "common/error.hpp"

namespace scalocate::sca {

CpaAttack::CpaAttack(CpaConfig config) : config_(config) {
  detail::require(config_.segment_length >= 1,
                  "CpaAttack: segment_length must be set");
  detail::require(config_.aggregate_bin >= 1,
                  "CpaAttack: aggregate_bin must be >= 1");
  n_bins_ = config_.segment_length / config_.aggregate_bin;
  detail::require(n_bins_ >= 1, "CpaAttack: segment shorter than one bin");
  sum_h_.assign(16 * 256, 0.0);
  sum_h2_.assign(16 * 256, 0.0);
  sum_x_.assign(n_bins_, 0.0);
  sum_x2_.assign(n_bins_, 0.0);
  sum_hx_.assign(16 * 256 * n_bins_, 0.0);
  binned_.assign(n_bins_, 0.0f);
}

void CpaAttack::add_trace(std::span<const float> segment,
                          const crypto::Block16& plaintext) {
  detail::require(segment.size() >= config_.segment_length,
                  "CpaAttack::add_trace: segment too short");
  // Aggregate over time: bin sums.
  for (std::size_t j = 0; j < n_bins_; ++j) {
    double acc = 0.0;
    const std::size_t off = j * config_.aggregate_bin;
    for (std::size_t i = 0; i < config_.aggregate_bin; ++i)
      acc += static_cast<double>(segment[off + i]);
    binned_[j] = static_cast<float>(acc);
  }
  for (std::size_t j = 0; j < n_bins_; ++j) {
    sum_x_[j] += static_cast<double>(binned_[j]);
    sum_x2_[j] +=
        static_cast<double>(binned_[j]) * static_cast<double>(binned_[j]);
  }

  for (std::size_t b = 0; b < 16; ++b) {
    for (std::size_t guess = 0; guess < 256; ++guess) {
      const double h = aes_subbyte_hypothesis(
          config_.model, plaintext, b, static_cast<std::uint8_t>(guess));
      const std::size_t hidx = b * 256 + guess;
      sum_h_[hidx] += h;
      sum_h2_[hidx] += h * h;
      double* hx = &sum_hx_[hidx * n_bins_];
      for (std::size_t j = 0; j < n_bins_; ++j)
        hx[j] += h * static_cast<double>(binned_[j]);
    }
  }
  ++n_traces_;
}

double CpaAttack::correlation(std::size_t byte_index, std::uint8_t guess,
                              std::size_t bin) const {
  if (n_traces_ < 2) return 0.0;
  const auto n = static_cast<double>(n_traces_);
  const std::size_t hidx = byte_index * 256 + guess;
  const double cov = sum_hx_[hidx * n_bins_ + bin] -
                     sum_h_[hidx] * sum_x_[bin] / n;
  const double var_h = sum_h2_[hidx] - sum_h_[hidx] * sum_h_[hidx] / n;
  const double var_x = sum_x2_[bin] - sum_x_[bin] * sum_x_[bin] / n;
  const double denom = var_h * var_x;
  if (denom <= 0.0) return 0.0;
  return cov / std::sqrt(denom);
}

double CpaAttack::best_correlation(std::size_t byte_index,
                                   std::uint8_t guess) const {
  detail::require(byte_index < 16, "CpaAttack: byte_index out of range");
  double best = 0.0;
  for (std::size_t j = 0; j < n_bins_; ++j) {
    const double r = std::fabs(correlation(byte_index, guess, j));
    if (r > best) best = r;
  }
  return best;
}

ByteRank CpaAttack::rank_byte(std::size_t byte_index,
                              std::uint8_t true_key_byte) const {
  ByteRank out;
  double best = -1.0;
  double true_corr = 0.0;
  std::array<double, 256> scores{};
  for (std::size_t guess = 0; guess < 256; ++guess) {
    scores[guess] =
        best_correlation(byte_index, static_cast<std::uint8_t>(guess));
    if (scores[guess] > best) {
      best = scores[guess];
      out.best_guess = static_cast<std::uint8_t>(guess);
    }
  }
  true_corr = scores[true_key_byte];
  std::size_t rank = 0;
  for (std::size_t guess = 0; guess < 256; ++guess)
    if (guess != true_key_byte && scores[guess] > true_corr) ++rank;
  out.best_correlation = best;
  out.true_key_rank = rank;
  out.true_key_correlation = true_corr;
  return out;
}

CpaAttack::KeyRank CpaAttack::rank_key(const crypto::Key16& true_key) const {
  KeyRank out;
  for (std::size_t b = 0; b < 16; ++b) {
    out.bytes[b] = rank_byte(b, true_key[b]);
    if (out.bytes[b].true_key_rank == 0) ++out.rank1_bytes;
  }
  return out;
}

crypto::Key16 CpaAttack::recovered_key() const {
  crypto::Key16 key{};
  for (std::size_t b = 0; b < 16; ++b) {
    double best = -1.0;
    for (std::size_t guess = 0; guess < 256; ++guess) {
      const double r =
          best_correlation(b, static_cast<std::uint8_t>(guess));
      if (r > best) {
        best = r;
        key[b] = static_cast<std::uint8_t>(guess);
      }
    }
  }
  return key;
}

}  // namespace scalocate::sca
