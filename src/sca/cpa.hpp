// Correlation Power Analysis (Brier et al. 2004) with incremental
// accumulators and time aggregation.
//
// Traces are added one at a time; per-sample-bin Pearson correlations
// against the 16 x 256 key-byte hypotheses are maintained incrementally so
// the "#traces to rank 1" metric of Table II can be evaluated at any point
// without re-processing.
//
// Aggregation over time (Section IV-C): each trace is reduced to
// non-overlapping bins of `aggregate_bin` samples (sums), which absorbs the
// residual intra-CO jitter left by the random-delay countermeasure after
// alignment.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/cipher.hpp"
#include "sca/leakage.hpp"

namespace scalocate::sca {

struct CpaConfig {
  std::size_t segment_length = 0;   ///< samples per aligned trace (required)
  std::size_t aggregate_bin = 16;   ///< samples summed per bin (>= 1)
  LeakageModel model = LeakageModel::kHammingWeight;
};

/// Result of ranking the 256 guesses of one key byte.
struct ByteRank {
  std::uint8_t best_guess = 0;
  double best_correlation = 0.0;
  std::size_t true_key_rank = 0;   ///< 0 = true key is rank 1 (best)
  double true_key_correlation = 0.0;
};

class CpaAttack {
 public:
  explicit CpaAttack(CpaConfig config);

  /// Adds one aligned trace with its plaintext.
  void add_trace(std::span<const float> segment,
                 const crypto::Block16& plaintext);

  std::size_t traces_added() const { return n_traces_; }
  std::size_t bins() const { return n_bins_; }

  /// max_j |rho[b][guess][j]| for one byte/guess.
  double best_correlation(std::size_t byte_index, std::uint8_t guess) const;

  /// Ranks all guesses of byte b against the true key byte.
  ByteRank rank_byte(std::size_t byte_index, std::uint8_t true_key_byte) const;

  /// Ranks all 16 bytes; `rank1_bytes` counts bytes recovered at rank 1.
  struct KeyRank {
    std::array<ByteRank, 16> bytes;
    std::size_t rank1_bytes = 0;
    bool full_key_rank1() const { return rank1_bytes == 16; }
  };
  KeyRank rank_key(const crypto::Key16& true_key) const;

  /// Highest-correlation guess per byte (the recovered key).
  crypto::Key16 recovered_key() const;

 private:
  double correlation(std::size_t byte_index, std::uint8_t guess,
                     std::size_t bin) const;

  CpaConfig config_;
  std::size_t n_bins_;
  std::size_t n_traces_ = 0;

  // Accumulators. Hypotheses depend only on (byte, guess); bins only on the
  // trace. Layout: h-index = byte*256 + guess; hx index = h-index*n_bins + bin.
  std::vector<double> sum_h_, sum_h2_;   // [16*256]
  std::vector<double> sum_x_, sum_x2_;   // [n_bins]
  std::vector<double> sum_hx_;           // [16*256*n_bins]
  std::vector<float> binned_;            // scratch
};

}  // namespace scalocate::sca
