// Matched-filter CO locator -- reimplementation of baseline [10]
// (Barenghi, Falcetti, Pelosi, "Locating side channel leakage in time
// through matched filters", Cryptography 2022).
//
// A template of the CO start is built by averaging profiling captures; the
// target trace is scanned with normalized cross-correlation and peaks above
// a threshold calibrated on the profiling data are reported as CO starts.
// The method is effective against interrupt-style noise but has no defense
// against random-delay morphing: the per-instruction jitter decorrelates
// the template within a few tens of instructions, which is exactly the
// failure Table II demonstrates.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "trace/scenario.hpp"

namespace scalocate::sca {

struct MatchedFilterConfig {
  std::size_t template_length = 256;  ///< samples of the CO start to match
  std::size_t max_templates = 64;     ///< captures averaged into the template
  /// Peak acceptance threshold; NaN = calibrate from profiling data
  /// (midpoint between the held-out true-start response and the background
  /// response).
  float threshold = std::numeric_limits<float>::quiet_NaN();
  /// Minimum distance between reported peaks, as a fraction of the mean CO
  /// length observed during fit().
  double min_distance_fraction = 0.8;
};

class MatchedFilterLocator {
 public:
  explicit MatchedFilterLocator(MatchedFilterConfig config = {});

  /// Builds the template and calibrates the detection threshold.
  void fit(const trace::CipherAcquisition& profiling);

  /// Reports CO start candidates in a new trace.
  std::vector<std::size_t> locate(std::span<const float> trace_samples) const;

  bool is_fitted() const { return fitted_; }
  std::span<const float> template_waveform() const { return template_; }
  float threshold_used() const { return threshold_; }
  /// Calibration diagnostic: mean NCC response at held-out true starts.
  double calibration_response() const { return calibration_response_; }

 private:
  MatchedFilterConfig config_;
  std::vector<float> template_;
  float threshold_ = 0.0f;
  double calibration_response_ = 0.0;
  double mean_co_length_ = 0.0;
  bool fitted_ = false;
};

}  // namespace scalocate::sca
