#include "sca/waveform_matching.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/signal.hpp"
#include "common/stats.hpp"

namespace scalocate::sca {

namespace {
// Matching runs on the band-limited envelope (cf. matched_filter.cpp).
std::vector<float> smooth(std::span<const float> xs) {
  return signal::moving_average(xs, 5);
}
}  // namespace

WaveformMatchingLocator::WaveformMatchingLocator(WaveformMatchingConfig config)
    : config_(config) {
  detail::require(config_.reference_length >= 16,
                  "WaveformMatchingLocator: reference too short");
}

void WaveformMatchingLocator::fit(const trace::CipherAcquisition& profiling) {
  detail::require(!profiling.captures.empty(),
                  "WaveformMatchingLocator::fit: no profiling captures");
  const std::size_t len = config_.reference_length;

  // Collect candidate start waveforms.
  std::vector<std::vector<float>> candidates;
  double co_len_acc = 0.0;
  for (const auto& cap : profiling.captures) {
    if (candidates.size() >= config_.candidate_pool) break;
    if (cap.samples.size() < len) continue;
    auto smoothed = smooth(cap.samples);
    candidates.emplace_back(smoothed.begin(),
                            smoothed.begin() + static_cast<std::ptrdiff_t>(len));
    co_len_acc += static_cast<double>(cap.samples.size());
  }
  detail::require(!candidates.empty(),
                  "WaveformMatchingLocator::fit: captures too short");
  mean_co_length_ = co_len_acc / static_cast<double>(candidates.size());

  // Medoid selection: the candidate with the highest total correlation to
  // the others (the "most representative" single execution).
  double best_total = -1e300;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (i == j) continue;
      total += stats::pearson(candidates[i], candidates[j]);
    }
    if (total > best_total) {
      best_total = total;
      medoid_index_ = i;
    }
  }
  reference_ = candidates[medoid_index_];
  fitted_ = true;
}

std::vector<std::size_t> WaveformMatchingLocator::locate(
    std::span<const float> trace_samples) const {
  detail::require(fitted_, "WaveformMatchingLocator::locate: fit() first");
  if (trace_samples.size() < reference_.size()) return {};

  // z-normalized distance d = sqrt(2*(1 - NCC)) in [0, 2]; valleys of d are
  // peaks of NCC, so compute NCC once and convert.
  const auto smoothed = smooth(trace_samples);
  const auto ncc = signal::normalized_cross_correlate(smoothed, reference_);
  std::vector<float> dist(ncc.size());
  for (std::size_t i = 0; i < ncc.size(); ++i) {
    const double c = std::clamp<double>(ncc[i], -1.0, 1.0);
    dist[i] = static_cast<float>(std::sqrt(2.0 * (1.0 - c)));
  }

  // Adaptive acceptance: valley must be below the accept-percentile of the
  // distance distribution AND below the absolute cap.
  const double adaptive =
      stats::percentile(dist, config_.accept_percentile);
  const float cutoff = static_cast<float>(
      std::min(adaptive, config_.max_accept_distance));

  // Valley picking = peak picking on the negated distance.
  std::vector<float> neg(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) neg[i] = -dist[i];
  const auto min_distance = static_cast<std::size_t>(
      std::max(1.0, config_.min_distance_fraction * mean_co_length_));
  return signal::find_peaks(neg, -cutoff, min_distance);
}

}  // namespace scalocate::sca
