// Waveform-matching CO locator -- reimplementation of baseline [11]
// (Trautmann et al., "Semi-automatic locating of cryptographic operations
// in side-channel traces", TCHES 2022).
//
// Instead of an averaged matched filter, a single reference waveform of the
// CO start is selected semi-automatically (here: the profiling capture
// whose start correlates best with all the others -- a medoid) and matched
// against the target trace with a z-normalized Euclidean distance. Matches
// are distance *valleys* below an adaptive threshold derived from the
// distance distribution. Robust to interrupts that displace the CO, but,
// like any template method, defeated by random-delay morphing (Table II).
#pragma once

#include <span>
#include <vector>

#include "trace/scenario.hpp"

namespace scalocate::sca {

struct WaveformMatchingConfig {
  std::size_t reference_length = 128;  ///< samples of the reference waveform
  std::size_t candidate_pool = 24;     ///< captures considered for the medoid
  /// Acceptance quantile for the distance valleys: a valley must be below
  /// this percentile of the overall distance distribution.
  double accept_percentile = 2.0;
  /// Absolute cap on the accepted normalized distance (0..2 scale; 2 means
  /// anti-correlated). Valleys above the cap are never CO starts.
  double max_accept_distance = 1.0;
  double min_distance_fraction = 0.8;  ///< of the mean CO length
};

class WaveformMatchingLocator {
 public:
  explicit WaveformMatchingLocator(WaveformMatchingConfig config = {});

  void fit(const trace::CipherAcquisition& profiling);

  std::vector<std::size_t> locate(std::span<const float> trace_samples) const;

  bool is_fitted() const { return fitted_; }
  std::span<const float> reference_waveform() const { return reference_; }
  std::size_t medoid_index() const { return medoid_index_; }

 private:
  WaveformMatchingConfig config_;
  std::vector<float> reference_;
  std::size_t medoid_index_ = 0;
  double mean_co_length_ = 0.0;
  bool fitted_ = false;
};

}  // namespace scalocate::sca
