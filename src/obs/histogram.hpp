// Fixed-bucket log-scale histogram for latency/size distributions, plus the
// system-wide exact-percentile helpers (the one sorted-sample quantile
// implementation; bench::percentile delegates here).
//
// Design constraints (serving hot path):
//   - record() is lock-free and allocation-free: one bucket index
//     computation (bit twiddling) and a handful of relaxed atomic RMWs;
//   - writers from many threads land on per-thread shards (cacheline
//     padded) so concurrent recording does not ping-pong one bucket array;
//   - snapshots merge the shards and answer exact-rank quantile queries
//     with bounded relative error.
//
// Bucketing is HDR-style base-2-with-sub-buckets: values below 2^kSubBits
// get exact unit buckets; above, each power-of-two octave is split into
// 2^kSubBits linear sub-buckets, so the relative width of any bucket is at
// most 2^-kSubBits and a quantile answered at the bucket midpoint is within
// 2^-(kSubBits+1) (~3.1% for kSubBits = 4) of the true sample — the
// "bucket-resolution error" the tests assert against a sorted-vector
// oracle. Values are unsigned 64-bit in a caller-chosen unit; by repo
// convention time histograms record nanoseconds and carry a `_ns` name
// suffix (see README "Observability").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace scalocate::obs {

/// Linear-interpolated percentile over unsorted samples, q clamped into
/// [0, 1]. Empty input returns 0. This is THE exact-percentile
/// implementation of the codebase (bench_common's percentile() forwards
/// here); Histogram::Snapshot::quantile uses the same rank convention
/// (pos = q * (n - 1)) over its merged buckets.
double percentile(std::vector<double> values, double q);

/// Same, over samples the caller has already sorted ascending.
double percentile_sorted(std::span<const double> sorted, double q);

class Histogram {
 public:
  static constexpr std::size_t kSubBits = 4;  ///< sub-buckets per octave: 16
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  /// Unit buckets [0, kSubBuckets) + (64 - kSubBits) split octaves.
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSubBuckets;
  static constexpr std::size_t kShards = 4;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample. Lock-free, no allocation; safe from any thread.
  void record(std::uint64_t value) noexcept;

  /// Total samples recorded (merged over shards).
  std::uint64_t count() const noexcept;

  /// Inclusive lower bound of the bucket `value` falls into, and the
  /// midpoint used as the bucket's representative in quantile queries.
  static std::size_t bucket_index(std::uint64_t value) noexcept;
  static std::uint64_t bucket_lower(std::size_t index) noexcept;
  static std::uint64_t bucket_midpoint(std::size_t index) noexcept;

  /// Point-in-time merged view answering quantile/mean queries. Taking a
  /// snapshot while writers are active is safe (each shard cell is read
  /// atomically); the result is then a slightly stale but valid histogram.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< exact smallest recorded value (0 if empty)
    std::uint64_t max = 0;  ///< exact largest recorded value
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Exact-rank quantile answered at bucket midpoints; q clamped to
    /// [0, 1]. q=0 returns the exact min, q=1 the exact max.
    double quantile(double q) const;
    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
    }
    /// Merges another snapshot into this one (cross-instrument roll-ups).
    void merge(const Snapshot& other);
  };
  Snapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{UINT64_MAX};
    std::atomic<std::uint64_t> max{0};
  };

  Shard& my_shard() noexcept;

  std::array<Shard, kShards> shards_;
};

}  // namespace scalocate::obs
