#include "obs/registry.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace scalocate::obs {

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

template <typename T, typename... Args>
T& Registry::find_or_create(
    std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
    std::string_view name, Args&&... args) {
  detail::require(!name.empty(), "Registry: instrument name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  auto [inserted, ok] = map.emplace(
      std::string(name), std::make_unique<T>(std::forward<Args>(args)...));
  (void)ok;
  return *inserted->second;
}

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

TraceRing& Registry::trace_ring(std::string_view name, std::size_t capacity) {
  return find_or_create(rings_, name, capacity);
}

std::string Registry::render_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[256];
  if (!counters_.empty()) {
    out += "counters:\n";
    for (const auto& [name, c] : counters_) {
      std::snprintf(line, sizeof(line), "  %-44s %14llu\n", name.c_str(),
                    static_cast<unsigned long long>(c->value()));
      out += line;
    }
  }
  if (!gauges_.empty()) {
    out += "gauges:\n";
    for (const auto& [name, g] : gauges_) {
      std::snprintf(line, sizeof(line), "  %-44s %14lld  (max %lld)\n",
                    name.c_str(), static_cast<long long>(g->value()),
                    static_cast<long long>(g->max()));
      out += line;
    }
  }
  if (!histograms_.empty()) {
    std::snprintf(line, sizeof(line), "histograms:%35s %10s %10s %10s %10s\n",
                  "count", "mean", "p50", "p99", "max");
    out += line;
    for (const auto& [name, h] : histograms_) {
      const auto s = h->snapshot();
      std::snprintf(line, sizeof(line),
                    "  %-44s %10llu %10.3g %10.3g %10.3g %10.3g\n",
                    name.c_str(), static_cast<unsigned long long>(s.count),
                    s.mean(), s.quantile(0.50), s.quantile(0.99),
                    static_cast<double>(s.max));
      out += line;
    }
  }
  if (!rings_.empty()) {
    out += "trace rings:\n";
    for (const auto& [name, r] : rings_) {
      std::snprintf(line, sizeof(line),
                    "  %-44s %14llu events (capacity %zu)\n", name.c_str(),
                    static_cast<unsigned long long>(r->total_pushed()),
                    r->capacity());
      out += line;
    }
  }
  if (out.empty()) out = "(no instruments registered)\n";
  return out;
}

void Registry::render_json_into(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mutex_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).begin_object();
    w.kv("value", static_cast<std::int64_t>(g->value()));
    w.kv("max", static_cast<std::int64_t>(g->max()));
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    w.key(name).begin_object();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("mean", s.mean());
    w.kv("p50", s.quantile(0.50));
    w.kv("p90", s.quantile(0.90));
    w.kv("p99", s.quantile(0.99));
    w.kv("p999", s.quantile(0.999));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::render_json() const {
  JsonWriter w;
  render_json_into(w);
  return w.str();
}

}  // namespace scalocate::obs
