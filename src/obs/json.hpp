// Minimal JSON support for telemetry snapshots and the bench harnesses.
//
// JsonWriter is a streaming emitter (automatic comma/nesting management, no
// intermediate DOM) used by obs::Registry::render_json and the BENCH_*.json
// writers. JsonValue is a small recursive-descent parser for the same
// dialect — enough to round-trip every snapshot the writer produces — used
// by bench_check to diff snapshots against thresholds and by the tests to
// prove the round trip. Neither aims to be a general-purpose JSON library:
// no \uXXXX escapes beyond ASCII pass-through, numbers are IEEE doubles.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scalocate::obs {

/// Streaming JSON emitter. begin/end calls must nest correctly; inside an
/// object every value must be preceded by key(). Produces deterministic
/// output for deterministic call sequences (snapshot determinism relies on
/// this).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand for key(name) + value(v).
  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// The document built so far. Valid once every begin_* is closed.
  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  ///< per-nesting-level "no element emitted yet"
  bool pending_key_ = false;
};

/// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Parsed JSON document node. Numbers are stored as double (plus the exact
/// unsigned value when the token was a plain integer, for lossless counter
/// round trips).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;  ///< valid when is_integer
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  /// Parses a complete document; throws scalocate::InvalidArgument on
  /// malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Dotted-path lookup ("workers.0.p99_ms": object keys and array
  /// indices); nullptr when any step is absent. Object steps use greedy
  /// longest-key matching, so dotted registry metric names resolve as
  /// single keys ("metrics.counters.engine.aes.requests" finds the
  /// "engine.aes.requests" member of "counters").
  const JsonValue* at_path(std::string_view path) const;
};

}  // namespace scalocate::obs
