// Registry: process-wide ownership of named telemetry instruments.
//
// A Registry hands out stable references to named counters, gauges,
// histograms and trace rings. Registration (first lookup of a name) takes a
// mutex; after that the caller holds a plain reference and every update is
// lock-free — the intended pattern is "resolve once at construction, update
// on the hot path":
//
//   obs::Registry reg;
//   obs::Counter& reqs = reg.counter("engine.aes128.requests");
//   ...
//   reqs.add();                              // hot path, no locks
//
// Instrument naming scheme (dot-separated, lowercase, unit suffix on time
// series): `<layer>.<model-or-shape>.<metric>[_<unit>]`, e.g.
// `engine.aes128.latency_ns`, `stream.camellia128.samples_fed`,
// `kernels.gemm.flops`. See README "Observability".
//
// Snapshots render every instrument, sorted by name within kind, in two
// formats: render_text() for humans, render_json() for machines (the
// BENCH_*.json spine). Both are deterministic for a fixed set of
// instruments and values, regardless of registration order.
//
// Registry::global() is the process-wide instance; the compile-time
// SCALOCATE_PROFILE kernel instrumentation and ad-hoc tooling record there.
// Subsystems that need isolation (tests, per-row bench runs) construct
// their own Registry and pass it down via config structs.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace scalocate::obs {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry.
  static Registry& global();

  /// Finds or creates the named instrument. The returned reference stays
  /// valid for the registry's lifetime. Thread-safe.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  /// `capacity` applies only on first creation of the named ring.
  TraceRing& trace_ring(std::string_view name, std::size_t capacity = 4096);

  /// Human-readable snapshot (aligned columns; values in the instrument's
  /// own unit — the `_ns`/`_samples` name suffix says which).
  std::string render_text() const;

  /// Machine-readable snapshot:
  ///   {"counters": {name: value},
  ///    "gauges": {name: {"value": v, "max": m}},
  ///    "histograms": {name: {"count","min","max","mean",
  ///                          "p50","p90","p99","p999"}}}
  std::string render_json() const;

  /// Emits the same snapshot object through a caller-owned writer, so the
  /// benches can embed registry metrics inside a larger BENCH_*.json
  /// document.
  void render_json_into(JsonWriter& w) const;

 private:
  template <typename T, typename... Args>
  T& find_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                    std::string_view name, Args&&... args);

  mutable std::mutex mutex_;
  // std::map: node-stable (references survive later registrations) and
  // name-ordered (snapshot determinism falls out of iteration order).
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<TraceRing>, std::less<>> rings_;
};

}  // namespace scalocate::obs
