#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace scalocate::obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  detail::require(!first_.empty() && !pending_key_,
                  "JsonWriter: unbalanced end_object");
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  detail::require(!first_.empty() && !pending_key_,
                  "JsonWriter: unbalanced end_array");
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  detail::require(!pending_key_, "JsonWriter: key() after key()");
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf; null keeps the document valid
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JsonValue parser
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  /// Containers may nest at most this deep. Registry snapshots and bench
  /// thresholds nest < 10 levels; the cap exists because parse_value()
  /// recurses per level, so without it a hostile "[[[[..." document drives
  /// the parse into a stack overflow (a crash, not a typed error) — and
  /// bench_check feeds this parser files it did not write.
  static constexpr std::size_t kMaxDepth = 192;

  std::string_view text;
  std::size_t pos = 0;
  std::size_t depth = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json parse error at offset " + std::to_string(pos) +
                          ": " + what);
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c)
      fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // The writer only emits \u00XX for control bytes; anything in
            // the BMP is decoded to UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    const std::string_view token = text.substr(start, pos - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const auto [dptr, derr] =
        std::from_chars(token.data(), token.data() + token.size(), v.number);
    if (derr != std::errc() || dptr != token.data() + token.size())
      fail("bad number token");
    // Plain nonnegative integers also keep their exact u64 value so 64-bit
    // counters survive the round trip without double rounding.
    if (token.find_first_of(".eE-") == std::string_view::npos) {
      const auto [iptr, ierr] =
          std::from_chars(token.data(), token.data() + token.size(), v.integer);
      v.is_integer = ierr == std::errc() && iptr == token.data() + token.size();
    }
    return v;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      if (++depth > kMaxDepth) fail("nesting too deep");
      ++pos;
      v.type = JsonValue::Type::kObject;
      skip_ws();
      if (peek() == '}') { ++pos; --depth; return v; }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect('}');
        --depth;
        return v;
      }
    }
    if (c == '[') {
      if (++depth > kMaxDepth) fail("nesting too deep");
      ++pos;
      v.type = JsonValue::Type::kArray;
      skip_ws();
      if (peek() == ']') { ++pos; --depth; return v; }
      while (true) {
        v.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect(']');
        --depth;
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (consume("true")) { v.type = JsonValue::Type::kBool; v.boolean = true; return v; }
    if (consume("false")) { v.type = JsonValue::Type::kBool; v.boolean = false; return v; }
    if (consume("null")) { v.type = JsonValue::Type::kNull; return v; }
    return parse_number();
  }
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage after document");
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue* JsonValue::at_path(std::string_view path) const {
  const JsonValue* node = this;
  while (!path.empty()) {
    if (node->type == Type::kArray) {
      const std::size_t dot = path.find('.');
      const std::string_view step =
          dot == std::string_view::npos ? path : path.substr(0, dot);
      path = dot == std::string_view::npos ? std::string_view{}
                                           : path.substr(dot + 1);
      std::size_t index = 0;
      const auto [p, err] =
          std::from_chars(step.data(), step.data() + step.size(), index);
      if (err != std::errc() || p != step.data() + step.size() ||
          index >= node->array.size())
        return nullptr;
      node = &node->array[index];
    } else if (node->type == Type::kObject) {
      // Registry metric names are themselves dotted ("engine.aes.latency_ns"
      // as one key), so a plain first-segment split could never reach them.
      // Greedy longest-key match: try the longest joined prefix of the
      // remaining segments that names a member, then continue past it.
      const JsonValue* next = nullptr;
      std::string_view rest;
      for (std::size_t end = path.size();;) {
        if ((next = node->find(path.substr(0, end)))) {
          rest = end == path.size() ? std::string_view{}
                                    : path.substr(end + 1);
          break;
        }
        end = path.rfind('.', end - 1);
        if (end == std::string_view::npos || end == 0) return nullptr;
      }
      node = next;
      path = rest;
    } else {
      return nullptr;
    }
  }
  return node;
}

}  // namespace scalocate::obs
