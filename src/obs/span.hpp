// Spans: RAII scope timers feeding histograms, with an optional
// ring-buffered event trace for debugging streaming pipelines.
//
// A SpanTimer measures the lifetime of a scope on the steady clock and
// records the elapsed nanoseconds into a Histogram when it is destroyed —
// the zero-ceremony way to get p50/p99/p999 for any code region:
//
//   void handle(...) {
//     obs::SpanTimer span(registry.histogram("engine.aes128.latency_ns"));
//     ...                                  // timed work
//   }                                      // destructor records
//
// Spans nest: a per-thread depth counter tags every traced event with its
// nesting level, so a TraceRing dump reconstructs the call structure
// (outer spans close after — and fully contain — their inner spans).
//
// The TraceRing is a bounded, overwrite-oldest event buffer. It exists for
// debugging (e.g. "what did the last 4096 pipeline stages do before the
// stall"), is disabled unless a ring is passed to the span, and costs one
// mutexed append per traced span — keep it off hot paths you care about.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace scalocate::obs {

/// One completed span, as kept by a TraceRing.
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;  ///< steady-clock nanoseconds at span open
  std::uint64_t duration_ns = 0;
  std::uint32_t depth = 0;  ///< span nesting level on its thread (0 = root)
};

/// Bounded event trace: keeps the most recent `capacity` completed spans,
/// overwriting the oldest. Thread-safe.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  void push(TraceEvent event);

  /// Events currently resident, oldest first.
  std::vector<TraceEvent> dump() const;

  std::size_t capacity() const { return capacity_; }
  /// Total events ever pushed (>= dump().size() once the ring wrapped).
  std::uint64_t total_pushed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  ///< ring storage, wraps at capacity_
  std::size_t head_ = 0;          ///< next write slot
  std::uint64_t pushed_ = 0;
};

/// Nanoseconds on the steady clock since an arbitrary process-local epoch.
inline std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII scope timer. Non-copyable, non-movable; stack-scoped by design.
class SpanTimer {
 public:
  /// Times the scope into `histogram`; when `ring` is non-null the span is
  /// also appended to the event trace under `name`.
  explicit SpanTimer(Histogram& histogram, TraceRing* ring = nullptr,
                     std::string_view name = {});
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Nanoseconds elapsed so far (the destructor records the final value).
  std::uint64_t elapsed_ns() const { return steady_now_ns() - start_ns_; }
  std::uint32_t depth() const { return depth_; }

 private:
  Histogram& histogram_;
  TraceRing* ring_;
  std::string name_;
  std::uint64_t start_ns_;
  std::uint32_t depth_;
};

}  // namespace scalocate::obs
