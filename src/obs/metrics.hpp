// Lock-free scalar instruments: monotonic counters and up/down gauges.
//
// Both are single atomics updated with relaxed ordering — telemetry needs
// cheap, contention-tolerant increments, not cross-metric consistency. A
// snapshot taken while writers are active sees each instrument at *some*
// recent value; once writers quiesce (e.g. after Engine::drain-on-destroy
// or future.get()), reads are exact.
#pragma once

#include <atomic>
#include <cstdint>

namespace scalocate::obs {

/// Monotonically increasing event count (requests served, FLOPs executed).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level that can move both ways (queue depth, resident
/// bytes). Tracks the high-watermark alongside the current value, so a
/// snapshot taken after the load subsided still shows how deep the queue
/// got.
class Gauge {
 public:
  void add(std::int64_t delta = 1) noexcept {
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) raise_max(now);
  }
  void sub(std::int64_t delta = 1) noexcept { add(-delta); }
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t candidate) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

}  // namespace scalocate::obs
