#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

namespace scalocate::obs {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - static_cast<int>(kSubBits);
  const auto sub =
      static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
  return (static_cast<std::size_t>(msb) - kSubBits + 1) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lower(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::size_t block = index / kSubBuckets;  // >= 1
  const std::size_t sub = index % kSubBuckets;
  const std::size_t msb = block + kSubBits - 1;
  return (std::uint64_t{1} << msb) |
         (static_cast<std::uint64_t>(sub) << (msb - kSubBits));
}

std::uint64_t Histogram::bucket_midpoint(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;  // unit buckets are exact
  const std::size_t msb = index / kSubBuckets + kSubBits - 1;
  const std::uint64_t width = std::uint64_t{1} << (msb - kSubBits);
  return bucket_lower(index) + width / 2;
}

Histogram::Shard& Histogram::my_shard() noexcept {
  // Threads get stable, roughly round-robin shard slots: a process-wide
  // relaxed counter hands out ids on first use per thread.
  static std::atomic<std::size_t> next_thread{0};
  thread_local const std::size_t slot =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[slot];
}

void Histogram::record(std::uint64_t value) noexcept {
  Shard& s = my_shard();
  s.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = s.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !s.min.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = s.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !s.max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  std::uint64_t min = UINT64_MAX;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i)
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  out.min = out.count ? min : 0;
  return out;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  // Same rank convention as percentile_sorted: the sample at fractional
  // position q*(n-1) of the sorted sequence — answered at its bucket's
  // midpoint, clamped into the exact [min, max] envelope.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets[i];
    if (cum > rank) {
      const double v = static_cast<double>(bucket_midpoint(i));
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

void Histogram::Snapshot::merge(const Snapshot& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

}  // namespace scalocate::obs
