#include "obs/span.hpp"

namespace scalocate::obs {

namespace {
/// Per-thread live-span count; SpanTimer construction order defines depth.
thread_local std::uint32_t t_span_depth = 0;
}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(capacity_);
}

void TraceRing::push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[head_] = std::move(event);
  }
  head_ = (head_ + 1) % capacity_;
  ++pushed_;
}

std::vector<TraceEvent> TraceRing::dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out.assign(ring_.begin(), ring_.end());
  } else {
    // head_ is the oldest slot once the ring has wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::uint64_t TraceRing::total_pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

SpanTimer::SpanTimer(Histogram& histogram, TraceRing* ring,
                     std::string_view name)
    : histogram_(histogram),
      ring_(ring),
      name_(name),
      start_ns_(steady_now_ns()),
      depth_(t_span_depth++) {}

SpanTimer::~SpanTimer() {
  const std::uint64_t duration = steady_now_ns() - start_ns_;
  --t_span_depth;
  histogram_.record(duration);
  if (ring_)
    ring_->push(TraceEvent{std::move(name_), start_ns_, duration, depth_});
}

}  // namespace scalocate::obs
