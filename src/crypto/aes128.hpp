// AES-128 (FIPS-197), constant-time-structure software implementation
// mirroring the unprotected OpenSSL-style cipher used by the paper.
//
// The implementation is byte-oriented (one S-box lookup per state byte) so
// the emitted event stream matches what a 32-bit RISC-V software AES
// executes, and the first-round S-box output -- the sub-byte intermediate
// CPA targets in Section IV-C -- leaks through kSbox events.
#pragma once

#include "crypto/cipher.hpp"

namespace scalocate::crypto {

class Aes128 final : public BlockCipher {
 public:
  Aes128();

  std::string name() const override { return "AES-128"; }
  void set_key(const Key16& key) override;
  Block16 encrypt(const Block16& plaintext,
                  EventSink* sink = nullptr) const override;
  Block16 decrypt(const Block16& ciphertext) const override;

  /// Forward S-box, exposed for CPA leakage-model computation.
  static std::uint8_t sbox(std::uint8_t x);

  /// Inverse S-box.
  static std::uint8_t inv_sbox(std::uint8_t x);

  /// xtime (multiplication by 2 in GF(2^8) mod x^8+x^4+x^3+x+1).
  static std::uint8_t xtime(std::uint8_t x);

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
  bool has_key_ = false;
};

}  // namespace scalocate::crypto
