#include "crypto/cipher.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/error.hpp"
#include "crypto/aes128.hpp"
#include "crypto/camellia128.hpp"
#include "crypto/clefia128.hpp"
#include "crypto/masked_aes.hpp"
#include "crypto/simon128.hpp"

namespace scalocate::crypto {

namespace {
constexpr std::array<CipherId, 5> kAllIds = {
    CipherId::kAes128, CipherId::kAesMasked, CipherId::kClefia128,
    CipherId::kCamellia128, CipherId::kSimon128};
}

std::span<const CipherId> all_cipher_ids() { return kAllIds; }

std::string cipher_display_name(CipherId id) {
  switch (id) {
    case CipherId::kAes128:
      return "AES";
    case CipherId::kAesMasked:
      return "AES mask";
    case CipherId::kClefia128:
      return "Clefia";
    case CipherId::kCamellia128:
      return "Camellia";
    case CipherId::kSimon128:
      return "Simon";
  }
  throw InvalidArgument("cipher_display_name: unknown id");
}

std::unique_ptr<BlockCipher> make_cipher(CipherId id, std::uint64_t mask_seed) {
  switch (id) {
    case CipherId::kAes128:
      return std::make_unique<Aes128>();
    case CipherId::kAesMasked:
      return std::make_unique<MaskedAes128>(mask_seed);
    case CipherId::kClefia128:
      return std::make_unique<Clefia128>();
    case CipherId::kCamellia128:
      return std::make_unique<Camellia128>();
    case CipherId::kSimon128:
      return std::make_unique<Simon128>();
  }
  throw InvalidArgument("make_cipher: unknown id");
}

CipherId parse_cipher_id(const std::string& text) {
  std::string lower(text.size(), '\0');
  std::transform(text.begin(), text.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "aes" || lower == "aes-128" || lower == "aes128")
    return CipherId::kAes128;
  if (lower == "aes-mask" || lower == "aes_mask" || lower == "aes mask" ||
      lower == "masked-aes")
    return CipherId::kAesMasked;
  if (lower == "clefia" || lower == "clefia-128") return CipherId::kClefia128;
  if (lower == "camellia" || lower == "camellia-128")
    return CipherId::kCamellia128;
  if (lower == "simon" || lower == "simon-128" || lower == "simon128")
    return CipherId::kSimon128;
  throw InvalidArgument("parse_cipher_id: unknown cipher '" + text + "'");
}

}  // namespace scalocate::crypto
