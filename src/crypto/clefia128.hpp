// Clefia-128 (Sony, 2007) -- structure-faithful implementation.
//
// CLEFIA-128 is an 18-round, 4-branch type-2 generalized Feistel network
// (GFN) with two round functions F0/F1, two 8-bit S-boxes S0/S1, diffusion
// matrices M0/M1 over GF(2^8) (poly z^8+z^4+z^3+z^2+1) and a DoubleSwap
// based key schedule.
//
// SUBSTITUTION NOTE (documented in DESIGN.md): this build environment has
// no network access and the official S1 affine constants and the 60 CON
// key-schedule constants are not reproducible from memory with confidence.
// This implementation keeps the exact CLEFIA *structure* (branch count,
// round counts, F0/F1 composition, M0/M1 matrices, S0 construction from
// four 4-bit S-boxes with a GF(2^4) mixing step, inversion-based S1,
// DoubleSwap key schedule) but regenerates S1's affine layer and the CON
// constants deterministically. The variant is therefore NOT interoperable
// with official CLEFIA test vectors; it is bijective, has the same
// diffusion/nonlinearity structure, and emits the same event stream shape,
// which is all the side-channel experiments depend on. Round-trip and
// statistical tests validate the implementation.
#pragma once

#include "crypto/cipher.hpp"

namespace scalocate::crypto {

class Clefia128 final : public BlockCipher {
 public:
  Clefia128();

  std::string name() const override { return "Clefia-128"; }
  void set_key(const Key16& key) override;
  Block16 encrypt(const Block16& plaintext,
                  EventSink* sink = nullptr) const override;
  Block16 decrypt(const Block16& ciphertext) const override;

  static constexpr std::size_t kRounds = 18;

  /// S-boxes exposed for the statistical tests (bijectivity, nonlinearity).
  static std::uint8_t s0(std::uint8_t x);
  static std::uint8_t s1(std::uint8_t x);

 private:
  std::array<std::uint32_t, 4> wk_{};                // whitening keys
  std::array<std::uint32_t, 2 * kRounds> rk_{};      // round keys
  bool has_key_ = false;

  std::uint32_t f0(std::uint32_t x, std::uint32_t rk, Tracer& tr) const;
  std::uint32_t f1(std::uint32_t x, std::uint32_t rk, Tracer& tr) const;
};

}  // namespace scalocate::crypto
