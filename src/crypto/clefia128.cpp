#include "crypto/clefia128.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace scalocate::crypto {

namespace {

// ---------------------------------------------------------------------------
// GF(2^8) arithmetic with CLEFIA's polynomial z^8 + z^4 + z^3 + z^2 + 1
// (0x11d).
// ---------------------------------------------------------------------------
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t acc = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) acc = static_cast<std::uint8_t>(acc ^ a);
    const bool hi = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a = static_cast<std::uint8_t>(a ^ 0x1d);
    b = static_cast<std::uint8_t>(b >> 1);
  }
  return acc;
}

std::uint8_t gf_inv(std::uint8_t a) {
  if (a == 0) return 0;
  // a^(2^8-2) via square-and-multiply.
  std::uint8_t result = 1;
  std::uint8_t base = a;
  int e = 254;
  while (e > 0) {
    if (e & 1) result = gf_mul(result, base);
    base = gf_mul(base, base);
    e >>= 1;
  }
  return result;
}

// 4-bit S-boxes used to build S0 (CLEFIA construction: two nibble S-box
// layers around a GF(2^4) [1 2; 2 1] mix).
constexpr std::uint8_t kSS0[16] = {0xe, 0x6, 0xc, 0xa, 0x8, 0x7, 0x2, 0xf,
                                   0xb, 0x1, 0x4, 0x0, 0x5, 0x9, 0xd, 0x3};
constexpr std::uint8_t kSS1[16] = {0x6, 0x4, 0x0, 0xd, 0x2, 0xb, 0xa, 0x3,
                                   0x9, 0xc, 0xe, 0xf, 0x8, 0x7, 0x5, 0x1};
constexpr std::uint8_t kSS2[16] = {0xb, 0x8, 0x5, 0xe, 0xa, 0x6, 0x4, 0xc,
                                   0xf, 0x7, 0x2, 0x3, 0x1, 0x0, 0xd, 0x9};
constexpr std::uint8_t kSS3[16] = {0xa, 0x2, 0x6, 0xd, 0x3, 0x4, 0x5, 0xe,
                                   0x0, 0x7, 0x8, 0x9, 0xb, 0xf, 0xc, 0x1};

// GF(2^4) multiply by 2, polynomial z^4 + z + 1.
std::uint8_t mul2_gf16(std::uint8_t x) {
  const std::uint8_t shifted = static_cast<std::uint8_t>(x << 1);
  return static_cast<std::uint8_t>((shifted & 0x0f) ^ ((x & 0x8) ? 0x3 : 0x0));
}

struct SboxTables {
  std::uint8_t s0[256];
  std::uint8_t s1[256];
  SboxTables() {
    for (int x = 0; x < 256; ++x) {
      // S0: SS layer, GF(2^4) mix [1 2; 2 1], SS layer.
      const std::uint8_t xh = static_cast<std::uint8_t>(x >> 4);
      const std::uint8_t xl = static_cast<std::uint8_t>(x & 0x0f);
      const std::uint8_t th = kSS0[xh];
      const std::uint8_t tl = kSS1[xl];
      const std::uint8_t uh = static_cast<std::uint8_t>(th ^ mul2_gf16(tl));
      const std::uint8_t ul = static_cast<std::uint8_t>(mul2_gf16(th) ^ tl);
      s0[x] = static_cast<std::uint8_t>((kSS2[uh] << 4) | kSS3[ul]);

      // S1: inversion in GF(2^8)/0x11d followed by an invertible affine map
      // (multiplication by the nonzero constant 0x1d, then XOR 0x63).
      // The official CLEFIA affine layer uses fixed bit-matrices; this
      // substitution keeps the inversion-based nonlinearity and bijectivity.
      const std::uint8_t inv = gf_inv(static_cast<std::uint8_t>(x));
      s1[x] = static_cast<std::uint8_t>(gf_mul(inv, 0x1d) ^ 0x63);
    }
  }
};
const SboxTables kTables;

// M0/M1 diffusion matrices (cyclic, official CLEFIA values).
constexpr std::uint8_t kM0[4][4] = {{0x1, 0x2, 0x4, 0x6},
                                    {0x2, 0x1, 0x6, 0x4},
                                    {0x4, 0x6, 0x1, 0x2},
                                    {0x6, 0x4, 0x2, 0x1}};
constexpr std::uint8_t kM1[4][4] = {{0x1, 0x8, 0x2, 0xa},
                                    {0x8, 0x1, 0xa, 0x2},
                                    {0x2, 0xa, 0x1, 0x8},
                                    {0xa, 0x2, 0x8, 0x1}};

std::uint32_t apply_matrix(const std::uint8_t m[4][4], const std::uint8_t t[4]) {
  std::uint8_t y[4];
  for (int r = 0; r < 4; ++r) {
    y[r] = 0;
    for (int c = 0; c < 4; ++c)
      y[r] = static_cast<std::uint8_t>(y[r] ^ gf_mul(m[r][c], t[c]));
  }
  return (static_cast<std::uint32_t>(y[0]) << 24) |
         (static_cast<std::uint32_t>(y[1]) << 16) |
         (static_cast<std::uint32_t>(y[2]) << 8) | y[3];
}

// CON constants: deterministically regenerated (see header substitution
// note). 60 32-bit words: 24 for the GFN_{4,12} producing L, 36 for the
// round/whitening key derivation.
struct ConTable {
  std::uint32_t con[60];
  ConTable() {
    std::uint64_t seed = 0xc1ef1a128ULL;
    for (auto& c : con) c = static_cast<std::uint32_t>(splitmix64(seed));
  }
};
const ConTable kCon;

std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

// Untraced F functions for the key schedule.
std::uint32_t f0_plain(std::uint32_t x, std::uint32_t rk) {
  const std::uint32_t v = x ^ rk;
  std::uint8_t t[4] = {static_cast<std::uint8_t>(v >> 24),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v)};
  t[0] = kTables.s0[t[0]];
  t[1] = kTables.s1[t[1]];
  t[2] = kTables.s0[t[2]];
  t[3] = kTables.s1[t[3]];
  return apply_matrix(kM0, t);
}

std::uint32_t f1_plain(std::uint32_t x, std::uint32_t rk) {
  const std::uint32_t v = x ^ rk;
  std::uint8_t t[4] = {static_cast<std::uint8_t>(v >> 24),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v)};
  t[0] = kTables.s1[t[0]];
  t[1] = kTables.s0[t[1]];
  t[2] = kTables.s1[t[2]];
  t[3] = kTables.s0[t[3]];
  return apply_matrix(kM1, t);
}

// DoubleSwap Sigma on a 128-bit value held as four big-endian 32-bit words:
// Sigma(X) = X[7..63] | X[121..127] | X[0..6] | X[64..120]
// (bit 0 = most significant bit of word 0).
void double_swap(std::uint32_t x[4]) {
  // Work on the two 64-bit halves.
  const std::uint64_t hi =
      (static_cast<std::uint64_t>(x[0]) << 32) | x[1];
  const std::uint64_t lo =
      (static_cast<std::uint64_t>(x[2]) << 32) | x[3];
  // New high half: bits 7..63 of hi (57 bits) followed by bits 121..127 of
  // lo (low 7 bits).
  const std::uint64_t new_hi = (hi << 7) | (lo & 0x7f);
  // New low half: bits 0..6 of hi (top 7 bits) followed by bits 64..120
  // (top 57 bits of lo).
  const std::uint64_t new_lo = ((hi >> 57) << 57) | (lo >> 7);
  x[0] = static_cast<std::uint32_t>(new_hi >> 32);
  x[1] = static_cast<std::uint32_t>(new_hi);
  x[2] = static_cast<std::uint32_t>(new_lo >> 32);
  x[3] = static_cast<std::uint32_t>(new_lo);
}

}  // namespace

Clefia128::Clefia128() = default;

std::uint8_t Clefia128::s0(std::uint8_t x) { return kTables.s0[x]; }
std::uint8_t Clefia128::s1(std::uint8_t x) { return kTables.s1[x]; }

std::uint32_t Clefia128::f0(std::uint32_t x, std::uint32_t rk,
                            Tracer& tr) const {
  const std::uint32_t v = x ^ rk;
  tr.emit(OpClass::kXor, v, 32);
  std::uint8_t t[4] = {static_cast<std::uint8_t>(v >> 24),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v)};
  t[0] = kTables.s0[t[0]];
  t[1] = kTables.s1[t[1]];
  t[2] = kTables.s0[t[2]];
  t[3] = kTables.s1[t[3]];
  for (auto b : t) tr.emit(OpClass::kSbox, b);
  const std::uint32_t y = apply_matrix(kM0, t);
  tr.emit(OpClass::kMul, y, 32);
  return y;
}

std::uint32_t Clefia128::f1(std::uint32_t x, std::uint32_t rk,
                            Tracer& tr) const {
  const std::uint32_t v = x ^ rk;
  tr.emit(OpClass::kXor, v, 32);
  std::uint8_t t[4] = {static_cast<std::uint8_t>(v >> 24),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v)};
  t[0] = kTables.s1[t[0]];
  t[1] = kTables.s0[t[1]];
  t[2] = kTables.s1[t[2]];
  t[3] = kTables.s0[t[3]];
  for (auto b : t) tr.emit(OpClass::kSbox, b);
  const std::uint32_t y = apply_matrix(kM1, t);
  tr.emit(OpClass::kMul, y, 32);
  return y;
}

void Clefia128::set_key(const Key16& key) {
  std::uint32_t k[4];
  for (int i = 0; i < 4; ++i) k[i] = load_be32(key.data() + 4 * i);

  // L = GFN_{4,12}(CON[0..23], K): 12 rounds of the 4-branch GFN.
  std::uint32_t l[4] = {k[0], k[1], k[2], k[3]};
  for (std::size_t r = 0; r < 12; ++r) {
    const std::uint32_t t0 = l[1] ^ f0_plain(l[0], kCon.con[2 * r]);
    const std::uint32_t t1 = l[3] ^ f1_plain(l[2], kCon.con[2 * r + 1]);
    // Branch rotation of the type-2 GFN.
    const std::uint32_t n0 = t0, n1 = l[2], n2 = t1, n3 = l[0];
    l[0] = n0;
    l[1] = n1;
    l[2] = n2;
    l[3] = n3;
  }

  // Whitening keys: WK0..3 = K.
  for (std::size_t i = 0; i < 4; ++i) wk_[i] = k[i];

  // Round keys: 36 words from DoubleSwap iterations of L (official
  // schedule shape: every odd step additionally XORs the user key).
  std::size_t con_idx = 24;
  for (std::size_t i = 0; i < 9; ++i) {
    std::uint32_t t[4] = {l[0] ^ kCon.con[con_idx], l[1] ^ kCon.con[con_idx + 1],
                          l[2] ^ kCon.con[con_idx + 2],
                          l[3] ^ kCon.con[con_idx + 3]};
    con_idx += 4;
    if (i % 2 == 1)
      for (int j = 0; j < 4; ++j) t[j] ^= k[j];
    for (int j = 0; j < 4; ++j) rk_[4 * i + static_cast<std::size_t>(j)] = t[j];
    double_swap(l);
  }
  has_key_ = true;
}

Block16 Clefia128::encrypt(const Block16& plaintext, EventSink* sink) const {
  detail::require(has_key_, "Clefia128::encrypt: set_key not called");
  Tracer tr(sink);
  std::uint32_t p[4];
  for (int i = 0; i < 4; ++i) {
    p[i] = load_be32(plaintext.data() + 4 * i);
    tr.emit(OpClass::kLoad, p[i], 32);
  }

  // Initial whitening on branches 1 and 3.
  p[1] ^= wk_[0];
  p[3] ^= wk_[1];
  tr.emit(OpClass::kXor, p[1], 32);
  tr.emit(OpClass::kXor, p[3], 32);

  for (std::size_t r = 0; r < kRounds; ++r) {
    const std::uint32_t t0 = p[1] ^ f0(p[0], rk_[2 * r], tr);
    const std::uint32_t t1 = p[3] ^ f1(p[2], rk_[2 * r + 1], tr);
    tr.emit(OpClass::kXor, t0, 32);
    tr.emit(OpClass::kXor, t1, 32);
    if (r + 1 < kRounds) {
      // Branch rotation (skipped after the final round).
      const std::uint32_t n0 = t0, n1 = p[2], n2 = t1, n3 = p[0];
      p[0] = n0;
      p[1] = n1;
      p[2] = n2;
      p[3] = n3;
    } else {
      p[1] = t0;
      p[3] = t1;
    }
  }

  // Final whitening on branches 1 and 3.
  p[1] ^= wk_[2];
  p[3] ^= wk_[3];

  Block16 out{};
  for (int i = 0; i < 4; ++i) {
    store_be32(out.data() + 4 * i, p[i]);
    tr.emit(OpClass::kStore, p[i], 32);
  }
  return out;
}

Block16 Clefia128::decrypt(const Block16& ciphertext) const {
  detail::require(has_key_, "Clefia128::decrypt: set_key not called");
  std::uint32_t p[4];
  for (int i = 0; i < 4; ++i) p[i] = load_be32(ciphertext.data() + 4 * i);

  p[1] ^= wk_[2];
  p[3] ^= wk_[3];

  for (std::size_t r = kRounds; r-- > 0;) {
    if (r + 1 < kRounds) {
      // Undo branch rotation.
      const std::uint32_t n0 = p[3], n1 = p[0], n2 = p[1], n3 = p[2];
      p[0] = n0;
      p[1] = n1;
      p[2] = n2;
      p[3] = n3;
    }
    p[1] ^= f0_plain(p[0], rk_[2 * r]);
    p[3] ^= f1_plain(p[2], rk_[2 * r + 1]);
  }

  p[1] ^= wk_[0];
  p[3] ^= wk_[1];

  Block16 out{};
  for (int i = 0; i < 4; ++i) store_be32(out.data() + 4 * i, p[i]);
  return out;
}

}  // namespace scalocate::crypto
