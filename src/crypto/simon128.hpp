// Simon-128/128 (NSA lightweight block cipher, Beaulieu et al. 2013).
//
// 68 Feistel-like rounds over two 64-bit words using AND/rotate/XOR only.
// Being table-free, its traced power signature has no S-box bursts -- a
// deliberately different trace texture from the SPN ciphers that exercises
// the locator's generality (the paper reports the weakest confusion matrix
// on Simon, Figure 3e).
#pragma once

#include "crypto/cipher.hpp"

namespace scalocate::crypto {

class Simon128 final : public BlockCipher {
 public:
  Simon128();

  std::string name() const override { return "Simon-128/128"; }
  void set_key(const Key16& key) override;
  Block16 encrypt(const Block16& plaintext,
                  EventSink* sink = nullptr) const override;
  Block16 decrypt(const Block16& ciphertext) const override;

  static constexpr std::size_t kRounds = 68;

 private:
  std::array<std::uint64_t, kRounds> round_keys_{};
  bool has_key_ = false;
};

}  // namespace scalocate::crypto
