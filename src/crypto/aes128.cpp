#include "crypto/aes128.hpp"

#include "common/error.hpp"

namespace scalocate::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

// Inverse S-box computed once from kSbox at static-init time.
struct InvSbox {
  std::uint8_t table[256];
  InvSbox() {
    for (int i = 0; i < 256; ++i) table[kSbox[i]] = static_cast<std::uint8_t>(i);
  }
};
const InvSbox kInvSbox;

// GF(2^8) multiply (mod x^8+x^4+x^3+x+1), used by InvMixColumns.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t acc = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) acc = static_cast<std::uint8_t>(acc ^ a);
    const bool hi = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a = static_cast<std::uint8_t>(a ^ 0x1b);
    b = static_cast<std::uint8_t>(b >> 1);
  }
  return acc;
}

}  // namespace

Aes128::Aes128() = default;

std::uint8_t Aes128::sbox(std::uint8_t x) { return kSbox[x]; }

std::uint8_t Aes128::inv_sbox(std::uint8_t x) { return kInvSbox.table[x]; }

std::uint8_t Aes128::xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

void Aes128::set_key(const Key16& key) {
  for (std::size_t i = 0; i < 16; ++i) round_keys_[i] = key[i];
  for (std::size_t i = 4; i < 44; ++i) {
    std::uint8_t t[4] = {round_keys_[4 * (i - 1)], round_keys_[4 * (i - 1) + 1],
                         round_keys_[4 * (i - 1) + 2],
                         round_keys_[4 * (i - 1) + 3]};
    if (i % 4 == 0) {
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ kRcon[i / 4 - 1]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
    }
    for (std::size_t j = 0; j < 4; ++j)
      round_keys_[4 * i + j] =
          static_cast<std::uint8_t>(round_keys_[4 * (i - 4) + j] ^ t[j]);
  }
  has_key_ = true;
}

Block16 Aes128::encrypt(const Block16& plaintext, EventSink* sink) const {
  detail::require(has_key_, "Aes128::encrypt: set_key not called");
  Tracer tr(sink);
  Block16 state{};

  // Load plaintext (16 loads on a byte-oriented software implementation).
  for (std::size_t i = 0; i < 16; ++i) {
    state[i] = plaintext[i];
    tr.emit(OpClass::kLoad, state[i]);
  }

  const auto add_round_key = [&](std::size_t round) {
    for (std::size_t i = 0; i < 16; ++i) {
      state[i] = static_cast<std::uint8_t>(state[i] ^ round_keys_[16 * round + i]);
      tr.emit(OpClass::kXor, state[i]);
    }
  };

  const auto sub_bytes = [&] {
    // Byte-wise software S-box: table load then store back to the state
    // array; both bus transfers carry the sub-byte intermediate (the value
    // CPA targets), as in the OpenSSL-style byte-oriented implementation.
    for (std::size_t i = 0; i < 16; ++i) {
      state[i] = kSbox[state[i]];
      tr.emit(OpClass::kSbox, state[i]);  // table read: data bus -> register
      tr.emit(OpClass::kXor, state[i]);   // register move in the datapath
      tr.emit(OpClass::kStore, state[i]); // store back to the state array
    }
  };

  const auto shift_rows = [&] {
    // Row r rotates left by r positions (state is column-major). The
    // software implementation copies bytes through a temporary, so each
    // state byte crosses the bus again (load + store).
    Block16 t = state;
    for (std::size_t r = 1; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        state[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
        tr.emit(OpClass::kLoad, state[r + 4 * c]);
        tr.emit(OpClass::kStore, state[r + 4 * c]);
      }
    }
  };

  const auto mix_columns = [&] {
    for (std::size_t c = 0; c < 4; ++c) {
      std::uint8_t* col = &state[4 * c];
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      const std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
      tr.emit(OpClass::kXor, all);
      const std::uint8_t x0 = xtime(static_cast<std::uint8_t>(a0 ^ a1));
      const std::uint8_t x1 = xtime(static_cast<std::uint8_t>(a1 ^ a2));
      const std::uint8_t x2 = xtime(static_cast<std::uint8_t>(a2 ^ a3));
      const std::uint8_t x3 = xtime(static_cast<std::uint8_t>(a3 ^ a0));
      tr.emit(OpClass::kMul, x0);
      tr.emit(OpClass::kMul, x1);
      tr.emit(OpClass::kMul, x2);
      tr.emit(OpClass::kMul, x3);
      col[0] = static_cast<std::uint8_t>(a0 ^ x0 ^ all);
      col[1] = static_cast<std::uint8_t>(a1 ^ x1 ^ all);
      col[2] = static_cast<std::uint8_t>(a2 ^ x2 ^ all);
      col[3] = static_cast<std::uint8_t>(a3 ^ x3 ^ all);
      for (std::size_t r = 0; r < 4; ++r) tr.emit(OpClass::kXor, col[r]);
    }
  };

  add_round_key(0);
  for (std::size_t round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);

  // Store ciphertext.
  for (std::size_t i = 0; i < 16; ++i) tr.emit(OpClass::kStore, state[i]);
  return state;
}

Block16 Aes128::decrypt(const Block16& ciphertext) const {
  detail::require(has_key_, "Aes128::decrypt: set_key not called");
  Block16 state = ciphertext;

  const auto add_round_key = [&](std::size_t round) {
    for (std::size_t i = 0; i < 16; ++i)
      state[i] = static_cast<std::uint8_t>(state[i] ^ round_keys_[16 * round + i]);
  };

  const auto inv_sub_bytes = [&] {
    for (auto& b : state) b = kInvSbox.table[b];
  };

  const auto inv_shift_rows = [&] {
    Block16 t = state;
    for (std::size_t r = 1; r < 4; ++r)
      for (std::size_t c = 0; c < 4; ++c)
        state[r + 4 * ((c + r) % 4)] = t[r + 4 * c];
  };

  const auto inv_mix_columns = [&] {
    for (std::size_t c = 0; c < 4; ++c) {
      std::uint8_t* col = &state[4 * c];
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(gf_mul(a0, 0x0e) ^ gf_mul(a1, 0x0b) ^
                                         gf_mul(a2, 0x0d) ^ gf_mul(a3, 0x09));
      col[1] = static_cast<std::uint8_t>(gf_mul(a0, 0x09) ^ gf_mul(a1, 0x0e) ^
                                         gf_mul(a2, 0x0b) ^ gf_mul(a3, 0x0d));
      col[2] = static_cast<std::uint8_t>(gf_mul(a0, 0x0d) ^ gf_mul(a1, 0x09) ^
                                         gf_mul(a2, 0x0e) ^ gf_mul(a3, 0x0b));
      col[3] = static_cast<std::uint8_t>(gf_mul(a0, 0x0b) ^ gf_mul(a1, 0x0d) ^
                                         gf_mul(a2, 0x09) ^ gf_mul(a3, 0x0e));
    }
  };

  add_round_key(10);
  inv_shift_rows();
  inv_sub_bytes();
  for (std::size_t round = 9; round >= 1; --round) {
    add_round_key(round);
    inv_mix_columns();
    inv_shift_rows();
    inv_sub_bytes();
  }
  add_round_key(0);
  return state;
}

}  // namespace scalocate::crypto
