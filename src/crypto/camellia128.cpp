#include "crypto/camellia128.hpp"

#include "common/error.hpp"

namespace scalocate::crypto {

namespace {

// SBOX1 from RFC 3713; SBOX2/3/4 are rotations of it (see below).
constexpr std::uint8_t kSbox1[256] = {
    112, 130, 44,  236, 179, 39,  192, 229, 228, 133, 87,  53,  234, 12,
    174, 65,  35,  239, 107, 147, 69,  25,  165, 33,  237, 14,  79,  78,
    29,  101, 146, 189, 134, 184, 175, 143, 124, 235, 31,  206, 62,  48,
    220, 95,  94,  197, 11,  26,  166, 225, 57,  202, 213, 71,  93,  61,
    217, 1,   90,  214, 81,  86,  108, 77,  139, 13,  154, 102, 251, 204,
    176, 45,  116, 18,  43,  32,  240, 177, 132, 153, 223, 76,  203, 194,
    52,  126, 118, 5,   109, 183, 169, 49,  209, 23,  4,   215, 20,  88,
    58,  97,  222, 27,  17,  28,  50,  15,  156, 22,  83,  24,  242, 34,
    254, 68,  207, 178, 195, 181, 122, 145, 36,  8,   232, 168, 96,  252,
    105, 80,  170, 208, 160, 125, 161, 137, 98,  151, 84,  91,  30,  149,
    224, 255, 100, 210, 16,  196, 0,   72,  163, 247, 117, 219, 138, 3,
    230, 218, 9,   63,  221, 148, 135, 92,  131, 2,   205, 74,  144, 51,
    115, 103, 246, 243, 157, 127, 191, 226, 82,  155, 216, 38,  200, 55,
    198, 59,  129, 150, 111, 75,  19,  190, 99,  46,  233, 121, 167, 140,
    159, 110, 188, 142, 41,  245, 249, 182, 47,  253, 180, 89,  120, 152,
    6,   106, 231, 70,  113, 186, 212, 37,  171, 66,  136, 162, 141, 250,
    114, 7,   185, 85,  248, 238, 172, 10,  54,  73,  42,  104, 60,  56,
    241, 164, 64,  40,  211, 123, 187, 201, 67,  193, 21,  227, 173, 244,
    119, 199, 128, 158};

inline std::uint8_t rotl8(std::uint8_t x, int n) {
  return static_cast<std::uint8_t>((x << n) | (x >> (8 - n)));
}

inline std::uint8_t sbox1(std::uint8_t x) { return kSbox1[x]; }
inline std::uint8_t sbox2(std::uint8_t x) { return rotl8(kSbox1[x], 1); }
inline std::uint8_t sbox3(std::uint8_t x) { return rotl8(kSbox1[x], 7); }
inline std::uint8_t sbox4(std::uint8_t x) { return kSbox1[rotl8(x, 1)]; }

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

constexpr std::uint64_t kSigma1 = 0xA09E667F3BCC908BULL;
constexpr std::uint64_t kSigma2 = 0xB67AE8584CAA73B2ULL;
constexpr std::uint64_t kSigma3 = 0xC6EF372FE94F82BEULL;
constexpr std::uint64_t kSigma4 = 0x54FF53A5F1D36F1CULL;

// 128-bit value as two big-endian 64-bit halves with rotate-left support.
struct U128 {
  std::uint64_t hi = 0, lo = 0;

  U128 rotl(unsigned n) const {
    n %= 128;
    if (n == 0) return *this;
    if (n == 64) return {lo, hi};
    if (n < 64)
      return {(hi << n) | (lo >> (64 - n)), (lo << n) | (hi >> (64 - n))};
    const unsigned m = n - 64;
    return {(lo << m) | (hi >> (64 - m)), (hi << m) | (lo >> (64 - m))};
  }
};

// The untraced F function (used by the key schedule).
std::uint64_t f_plain(std::uint64_t in, std::uint64_t ke) {
  const std::uint64_t x = in ^ ke;
  std::uint8_t t[8];
  for (int i = 0; i < 8; ++i)
    t[i] = static_cast<std::uint8_t>(x >> (56 - 8 * i));
  t[0] = sbox1(t[0]);
  t[1] = sbox2(t[1]);
  t[2] = sbox3(t[2]);
  t[3] = sbox4(t[3]);
  t[4] = sbox2(t[4]);
  t[5] = sbox3(t[5]);
  t[6] = sbox4(t[6]);
  t[7] = sbox1(t[7]);
  std::uint8_t y[8];
  y[0] = static_cast<std::uint8_t>(t[0] ^ t[2] ^ t[3] ^ t[5] ^ t[6] ^ t[7]);
  y[1] = static_cast<std::uint8_t>(t[0] ^ t[1] ^ t[3] ^ t[4] ^ t[6] ^ t[7]);
  y[2] = static_cast<std::uint8_t>(t[0] ^ t[1] ^ t[2] ^ t[4] ^ t[5] ^ t[7]);
  y[3] = static_cast<std::uint8_t>(t[1] ^ t[2] ^ t[3] ^ t[4] ^ t[5] ^ t[6]);
  y[4] = static_cast<std::uint8_t>(t[0] ^ t[1] ^ t[5] ^ t[6] ^ t[7]);
  y[5] = static_cast<std::uint8_t>(t[1] ^ t[2] ^ t[4] ^ t[6] ^ t[7]);
  y[6] = static_cast<std::uint8_t>(t[2] ^ t[3] ^ t[4] ^ t[5] ^ t[7]);
  y[7] = static_cast<std::uint8_t>(t[0] ^ t[3] ^ t[4] ^ t[5] ^ t[6]);
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | y[i];
  return out;
}

std::uint64_t fl(std::uint64_t in, std::uint64_t ke) {
  auto x1 = static_cast<std::uint32_t>(in >> 32);
  auto x2 = static_cast<std::uint32_t>(in);
  const auto k1 = static_cast<std::uint32_t>(ke >> 32);
  const auto k2 = static_cast<std::uint32_t>(ke);
  x2 ^= rotl32(x1 & k1, 1);
  x1 ^= (x2 | k2);
  return (static_cast<std::uint64_t>(x1) << 32) | x2;
}

std::uint64_t fl_inv(std::uint64_t in, std::uint64_t ke) {
  auto y1 = static_cast<std::uint32_t>(in >> 32);
  auto y2 = static_cast<std::uint32_t>(in);
  const auto k1 = static_cast<std::uint32_t>(ke >> 32);
  const auto k2 = static_cast<std::uint32_t>(ke);
  y1 ^= (y2 | k2);
  y2 ^= rotl32(y1 & k1, 1);
  return (static_cast<std::uint64_t>(y1) << 32) | y2;
}

U128 load_block(const Block16& b) {
  U128 v;
  for (int i = 0; i < 8; ++i) v.hi = (v.hi << 8) | b[static_cast<std::size_t>(i)];
  for (int i = 8; i < 16; ++i) v.lo = (v.lo << 8) | b[static_cast<std::size_t>(i)];
  return v;
}

Block16 store_block(const U128& v) {
  Block16 b{};
  for (int i = 0; i < 8; ++i)
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v.hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i)
    b[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(v.lo >> (56 - 8 * i));
  return b;
}

}  // namespace

Camellia128::Camellia128() = default;

std::uint64_t Camellia128::f(std::uint64_t in, std::uint64_t ke,
                             Tracer& tr) const {
  const std::uint64_t x = in ^ ke;
  tr.emit(OpClass::kXor, x, 64);
  std::uint8_t t[8];
  for (int i = 0; i < 8; ++i)
    t[i] = static_cast<std::uint8_t>(x >> (56 - 8 * i));
  t[0] = sbox1(t[0]);
  t[1] = sbox2(t[1]);
  t[2] = sbox3(t[2]);
  t[3] = sbox4(t[3]);
  t[4] = sbox2(t[4]);
  t[5] = sbox3(t[5]);
  t[6] = sbox4(t[6]);
  t[7] = sbox1(t[7]);
  for (int i = 0; i < 8; ++i) tr.emit(OpClass::kSbox, t[i]);
  std::uint8_t y[8];
  y[0] = static_cast<std::uint8_t>(t[0] ^ t[2] ^ t[3] ^ t[5] ^ t[6] ^ t[7]);
  y[1] = static_cast<std::uint8_t>(t[0] ^ t[1] ^ t[3] ^ t[4] ^ t[6] ^ t[7]);
  y[2] = static_cast<std::uint8_t>(t[0] ^ t[1] ^ t[2] ^ t[4] ^ t[5] ^ t[7]);
  y[3] = static_cast<std::uint8_t>(t[1] ^ t[2] ^ t[3] ^ t[4] ^ t[5] ^ t[6]);
  y[4] = static_cast<std::uint8_t>(t[0] ^ t[1] ^ t[5] ^ t[6] ^ t[7]);
  y[5] = static_cast<std::uint8_t>(t[1] ^ t[2] ^ t[4] ^ t[6] ^ t[7]);
  y[6] = static_cast<std::uint8_t>(t[2] ^ t[3] ^ t[4] ^ t[5] ^ t[7]);
  y[7] = static_cast<std::uint8_t>(t[0] ^ t[3] ^ t[4] ^ t[5] ^ t[6]);
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | y[i];
  tr.emit(OpClass::kXor, out, 64);
  return out;
}

void Camellia128::set_key(const Key16& key) {
  const U128 kl = load_block(key);

  // Derive KA from KL (KR = 0 for 128-bit keys).
  std::uint64_t d1 = kl.hi;
  std::uint64_t d2 = kl.lo;
  d2 ^= f_plain(d1, kSigma1);
  d1 ^= f_plain(d2, kSigma2);
  d1 ^= kl.hi;
  d2 ^= kl.lo;
  d2 ^= f_plain(d1, kSigma3);
  d1 ^= f_plain(d2, kSigma4);
  const U128 ka{d1, d2};

  kw_[0] = kl.rotl(0).hi;
  kw_[1] = kl.rotl(0).lo;
  k_[0] = ka.rotl(0).hi;
  k_[1] = ka.rotl(0).lo;
  k_[2] = kl.rotl(15).hi;
  k_[3] = kl.rotl(15).lo;
  k_[4] = ka.rotl(15).hi;
  k_[5] = ka.rotl(15).lo;
  ke_[0] = ka.rotl(30).hi;
  ke_[1] = ka.rotl(30).lo;
  k_[6] = kl.rotl(45).hi;
  k_[7] = kl.rotl(45).lo;
  k_[8] = ka.rotl(45).hi;
  k_[9] = kl.rotl(60).lo;
  k_[10] = ka.rotl(60).hi;
  k_[11] = ka.rotl(60).lo;
  ke_[2] = kl.rotl(77).hi;
  ke_[3] = kl.rotl(77).lo;
  k_[12] = kl.rotl(94).hi;
  k_[13] = kl.rotl(94).lo;
  k_[14] = ka.rotl(94).hi;
  k_[15] = ka.rotl(94).lo;
  k_[16] = kl.rotl(111).hi;
  k_[17] = kl.rotl(111).lo;
  kw_[2] = ka.rotl(111).hi;
  kw_[3] = ka.rotl(111).lo;
  has_key_ = true;
}

Block16 Camellia128::encrypt(const Block16& plaintext, EventSink* sink) const {
  detail::require(has_key_, "Camellia128::encrypt: set_key not called");
  Tracer tr(sink);
  const U128 m = load_block(plaintext);
  std::uint64_t d1 = m.hi;
  std::uint64_t d2 = m.lo;
  tr.emit(OpClass::kLoad, d1, 64);
  tr.emit(OpClass::kLoad, d2, 64);

  d1 ^= kw_[0];
  d2 ^= kw_[1];
  tr.emit(OpClass::kXor, d1, 64);
  tr.emit(OpClass::kXor, d2, 64);

  for (std::size_t round = 0; round < 18; round += 2) {
    d2 ^= f(d1, k_[round], tr);
    tr.emit(OpClass::kXor, d2, 64);
    d1 ^= f(d2, k_[round + 1], tr);
    tr.emit(OpClass::kXor, d1, 64);
    if (round == 4) {
      d1 = fl(d1, ke_[0]);
      d2 = fl_inv(d2, ke_[1]);
      tr.emit(OpClass::kShift, d1, 64);
      tr.emit(OpClass::kShift, d2, 64);
    } else if (round == 10) {
      d1 = fl(d1, ke_[2]);
      d2 = fl_inv(d2, ke_[3]);
      tr.emit(OpClass::kShift, d1, 64);
      tr.emit(OpClass::kShift, d2, 64);
    }
  }

  d2 ^= kw_[2];
  d1 ^= kw_[3];
  tr.emit(OpClass::kStore, d2, 64);
  tr.emit(OpClass::kStore, d1, 64);
  return store_block(U128{d2, d1});
}

Block16 Camellia128::decrypt(const Block16& ciphertext) const {
  detail::require(has_key_, "Camellia128::decrypt: set_key not called");
  const U128 c = load_block(ciphertext);
  std::uint64_t d2 = c.hi;
  std::uint64_t d1 = c.lo;

  d2 ^= kw_[2];
  d1 ^= kw_[3];

  // Inverse of the encryption network: run rounds backwards.
  for (int round = 16; round >= 0; round -= 2) {
    d1 ^= f_plain(d2, k_[static_cast<std::size_t>(round + 1)]);
    d2 ^= f_plain(d1, k_[static_cast<std::size_t>(round)]);
    if (round == 6) {
      // Undo the first FL layer (applied after encryption rounds 4/5).
      d1 = fl_inv(d1, ke_[0]);
      d2 = fl(d2, ke_[1]);
    } else if (round == 12) {
      // Undo the second FL layer (applied after encryption rounds 10/11).
      d1 = fl_inv(d1, ke_[2]);
      d2 = fl(d2, ke_[3]);
    }
  }

  d1 ^= kw_[0];
  d2 ^= kw_[1];
  return store_block(U128{d1, d2});
}

}  // namespace scalocate::crypto
