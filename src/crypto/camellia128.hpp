// Camellia-128 (RFC 3713 / NTT-Mitsubishi), software implementation with
// instrumented encryption.
//
// Camellia is an 18-round Feistel network with FL/FL^-1 diffusion layers
// every 6 rounds. The traced event stream emits one kSbox event per S-box
// lookup inside the F function (8 per round) plus the surrounding XOR
// events, giving the cipher the short, dense power signature the paper's
// Table I reports (Camellia has the smallest mean CO length).
#pragma once

#include "crypto/cipher.hpp"

namespace scalocate::crypto {

class Camellia128 final : public BlockCipher {
 public:
  Camellia128();

  std::string name() const override { return "Camellia-128"; }
  void set_key(const Key16& key) override;
  Block16 encrypt(const Block16& plaintext,
                  EventSink* sink = nullptr) const override;
  Block16 decrypt(const Block16& ciphertext) const override;

 private:
  // Subkeys: kw[4] whitening, k[18] round, ke[4] FL-layer.
  std::array<std::uint64_t, 4> kw_{};
  std::array<std::uint64_t, 18> k_{};
  std::array<std::uint64_t, 4> ke_{};
  bool has_key_ = false;

  std::uint64_t f(std::uint64_t in, std::uint64_t ke, Tracer& tr) const;
};

}  // namespace scalocate::crypto
