// First-order boolean-masked AES-128, modeled on the CENSUS masked-aes-c
// implementation the paper uses as its protected cipher.
//
// Every intermediate value carried through the computation is XOR-masked
// with fresh per-encryption randomness, and the S-box table is re-masked
// before each encryption. Consequently the emitted event stream (and hence
// the simulated power trace) only exposes masked values: first-order CPA on
// the unmasked sub-byte intermediate finds no correlation, while the trace
// retains the large structural pattern (table re-masking + rounds) the CNN
// locator learns. This mirrors the paper's observation that the method
// "suits protected ciphers ... whose side-channel traces have great
// variability" (Section IV-B).
#pragma once

#include "common/rng.hpp"
#include "crypto/cipher.hpp"

namespace scalocate::crypto {

class MaskedAes128 final : public BlockCipher {
 public:
  /// `mask_seed` seeds the mask generator; encryptions consume randomness
  /// sequentially, so two instances with equal seeds and equal call order
  /// are reproducible.
  explicit MaskedAes128(std::uint64_t mask_seed = 1);

  std::string name() const override { return "AES-128 masked"; }
  void set_key(const Key16& key) override;
  Block16 encrypt(const Block16& plaintext,
                  EventSink* sink = nullptr) const override;
  /// Decryption is provided unmasked (it is outside the traced threat model).
  Block16 decrypt(const Block16& ciphertext) const override;
  bool is_masked() const override { return true; }

 private:
  std::array<std::uint8_t, 176> round_keys_{};
  bool has_key_ = false;
  mutable Rng mask_rng_;
};

}  // namespace scalocate::crypto
