#include "crypto/masked_aes.hpp"

#include "common/error.hpp"
#include "crypto/aes128.hpp"

namespace scalocate::crypto {

MaskedAes128::MaskedAes128(std::uint64_t mask_seed) : mask_rng_(mask_seed) {}

void MaskedAes128::set_key(const Key16& key) {
  // The key schedule is identical to unprotected AES (round keys are public
  // targets only in combination with data; masking protects the data path).
  Aes128 plain;
  plain.set_key(key);
  // Re-derive the expanded key locally to avoid exposing Aes128 internals.
  std::array<std::uint8_t, 176> rk{};
  for (std::size_t i = 0; i < 16; ++i) rk[i] = key[i];
  static constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                             0x20, 0x40, 0x80, 0x1b, 0x36};
  for (std::size_t i = 4; i < 44; ++i) {
    std::uint8_t t[4] = {rk[4 * (i - 1)], rk[4 * (i - 1) + 1],
                         rk[4 * (i - 1) + 2], rk[4 * (i - 1) + 3]};
    if (i % 4 == 0) {
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(Aes128::sbox(t[1]) ^ kRcon[i / 4 - 1]);
      t[1] = Aes128::sbox(t[2]);
      t[2] = Aes128::sbox(t[3]);
      t[3] = Aes128::sbox(tmp);
    }
    for (std::size_t j = 0; j < 4; ++j)
      rk[4 * i + j] = static_cast<std::uint8_t>(rk[4 * (i - 4) + j] ^ t[j]);
  }
  round_keys_ = rk;
  has_key_ = true;
}

Block16 MaskedAes128::encrypt(const Block16& plaintext, EventSink* sink) const {
  detail::require(has_key_, "MaskedAes128::encrypt: set_key not called");
  Tracer tr(sink);

  // --- Fresh masks for this encryption -----------------------------------
  // m  : S-box input mask, m2: S-box output mask,
  // m1[0..3]: per-row MixColumns input masks; mc[0..3] = MixColumns(m1).
  const std::uint8_t m = mask_rng_.next_byte();
  const std::uint8_t m2 = mask_rng_.next_byte();
  std::array<std::uint8_t, 4> m1{};
  for (auto& b : m1) b = mask_rng_.next_byte();
  tr.emit(OpClass::kLoad, m);
  tr.emit(OpClass::kLoad, m2);
  for (std::uint8_t b : m1) tr.emit(OpClass::kLoad, b);

  const auto xtime = Aes128::xtime;
  // MixColumns applied to the column (m1[0], m1[1], m1[2], m1[3]).
  std::array<std::uint8_t, 4> mc{};
  {
    const std::uint8_t a0 = m1[0], a1 = m1[1], a2 = m1[2], a3 = m1[3];
    const std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
    mc[0] = static_cast<std::uint8_t>(a0 ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)) ^ all);
    mc[1] = static_cast<std::uint8_t>(a1 ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)) ^ all);
    mc[2] = static_cast<std::uint8_t>(a2 ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)) ^ all);
    mc[3] = static_cast<std::uint8_t>(a3 ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)) ^ all);
  }

  // --- Masked S-box table: Sm[x ^ m] = S[x] ^ m2 --------------------------
  // Recomputed every encryption; a long, regular load/store burst that
  // dominates the masked cipher's power signature.
  std::array<std::uint8_t, 256> masked_sbox{};
  for (std::size_t x = 0; x < 256; ++x) {
    const auto in = static_cast<std::uint8_t>(x ^ m);
    masked_sbox[in] =
        static_cast<std::uint8_t>(Aes128::sbox(static_cast<std::uint8_t>(x)) ^ m2);
    tr.emit(OpClass::kLoad, in);
    tr.emit(OpClass::kStore, masked_sbox[in]);
  }

  // --- Masked data path ----------------------------------------------------
  Block16 state{};
  // Load plaintext directly masked with m (never expose the raw plaintext
  // bytes in the traced data path).
  for (std::size_t i = 0; i < 16; ++i) {
    state[i] = static_cast<std::uint8_t>(plaintext[i] ^ m);
    tr.emit(OpClass::kLoad, state[i]);
  }

  // current_mask[i] tracks the mask on state byte i.
  std::array<std::uint8_t, 16> mask{};
  mask.fill(m);

  const auto remask = [&](std::size_t i, std::uint8_t new_mask) {
    // state ^= (old_mask ^ new_mask); never unmasked in between.
    const auto delta = static_cast<std::uint8_t>(mask[i] ^ new_mask);
    state[i] = static_cast<std::uint8_t>(state[i] ^ delta);
    mask[i] = new_mask;
    tr.emit(OpClass::kXor, state[i]);
  };

  const auto add_round_key = [&](std::size_t round) {
    for (std::size_t i = 0; i < 16; ++i) {
      state[i] = static_cast<std::uint8_t>(state[i] ^ round_keys_[16 * round + i]);
      tr.emit(OpClass::kXor, state[i]);
    }
  };

  const auto sub_bytes_masked = [&] {
    // Same bus traffic as the unprotected byte-wise cipher, but every value
    // crossing the bus is masked, so first-order CPA sees no correlation.
    for (std::size_t i = 0; i < 16; ++i) {
      remask(i, m);  // S-box expects mask m
      state[i] = masked_sbox[state[i]];
      mask[i] = m2;
      tr.emit(OpClass::kSbox, state[i]);
      tr.emit(OpClass::kStore, state[i]);
    }
  };

  const auto shift_rows = [&] {
    Block16 t = state;
    std::array<std::uint8_t, 16> tm = mask;
    for (std::size_t r = 1; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        state[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
        mask[r + 4 * c] = tm[r + 4 * ((c + r) % 4)];
        tr.emit(OpClass::kLoad, state[r + 4 * c]);
        tr.emit(OpClass::kStore, state[r + 4 * c]);
      }
    }
  };

  const auto mix_columns_masked = [&] {
    // Remask rows to m1[r] so the columns enter MixColumns with the
    // precomputed mask vector; afterwards the mask is mc[r].
    for (std::size_t c = 0; c < 4; ++c)
      for (std::size_t r = 0; r < 4; ++r) remask(4 * c + r, m1[r]);
    for (std::size_t c = 0; c < 4; ++c) {
      std::uint8_t* col = &state[4 * c];
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      const std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
      tr.emit(OpClass::kXor, all);
      const std::uint8_t x0 = xtime(static_cast<std::uint8_t>(a0 ^ a1));
      const std::uint8_t x1 = xtime(static_cast<std::uint8_t>(a1 ^ a2));
      const std::uint8_t x2 = xtime(static_cast<std::uint8_t>(a2 ^ a3));
      const std::uint8_t x3 = xtime(static_cast<std::uint8_t>(a3 ^ a0));
      tr.emit(OpClass::kMul, x0);
      tr.emit(OpClass::kMul, x1);
      tr.emit(OpClass::kMul, x2);
      tr.emit(OpClass::kMul, x3);
      col[0] = static_cast<std::uint8_t>(a0 ^ x0 ^ all);
      col[1] = static_cast<std::uint8_t>(a1 ^ x1 ^ all);
      col[2] = static_cast<std::uint8_t>(a2 ^ x2 ^ all);
      col[3] = static_cast<std::uint8_t>(a3 ^ x3 ^ all);
      for (std::size_t r = 0; r < 4; ++r) {
        mask[4 * c + r] = mc[r];
        tr.emit(OpClass::kXor, col[r]);
      }
    }
  };

  add_round_key(0);
  for (std::size_t round = 1; round <= 9; ++round) {
    sub_bytes_masked();
    shift_rows();
    mix_columns_masked();
    add_round_key(round);
  }
  sub_bytes_masked();
  shift_rows();
  add_round_key(10);

  // Unmask and store the ciphertext.
  Block16 out{};
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>(state[i] ^ mask[i]);
    tr.emit(OpClass::kStore, out[i]);
  }
  return out;
}

Block16 MaskedAes128::decrypt(const Block16& ciphertext) const {
  detail::require(has_key_, "MaskedAes128::decrypt: set_key not called");
  // Functionally AES-128; decryption is not in the traced threat model, so
  // delegate to the unprotected inverse cipher.
  Aes128 plain;
  Key16 key{};
  for (std::size_t i = 0; i < 16; ++i) key[i] = round_keys_[i];
  plain.set_key(key);
  return plain.decrypt(ciphertext);
}

}  // namespace scalocate::crypto
