// Instruction-level data events emitted by instrumented cipher software.
//
// The trace simulator (src/trace) replaces the paper's FPGA + oscilloscope:
// instead of measuring real power, each cipher implementation streams one
// DataEvent per executed operation (S-box lookup, XOR, load, ...) carrying
// the operand value. The power model converts events into power samples via
// a Hamming-weight leakage model, which is exactly the dependency CPA and
// the CNN locator exploit on real hardware.
#pragma once

#include <cstdint>
#include <functional>

namespace scalocate::crypto {

/// Coarse operation classes; each class has a distinct baseline power draw
/// in the simulator's opcode power table (mirrors per-opcode current
/// signatures of a real in-order RISC-V pipeline).
enum class OpClass : std::uint8_t {
  kNop = 0,      ///< NOP sled marker used during dataset acquisition
  kLoad,         ///< memory load (e.g. table lookup address computation)
  kStore,        ///< memory store
  kXor,          ///< bitwise xor/and/or
  kShift,        ///< shift/rotate
  kArith,        ///< add/sub
  kMul,          ///< multiply (used by GF multiplications)
  kSbox,         ///< S-box table lookup (the classic leaky operation)
  kBranch,       ///< control flow
  kCount,        ///< number of classes (not an event)
};

/// One executed operation together with the data value it produced.
struct DataEvent {
  OpClass op = OpClass::kNop;
  std::uint64_t value = 0;  ///< result operand; the model leaks HW(value)
  std::uint8_t width = 8;   ///< operand width in bits (8/16/32/64)
};

/// Receiver of instruction events. The SoC simulator implements this to
/// turn events into power samples; a null sink disables instrumentation.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const DataEvent& event) = 0;
};

/// Convenience wrapper so cipher code can emit unconditionally; forwards to
/// the sink when present and is a no-op otherwise (plain encryption).
class Tracer {
 public:
  explicit Tracer(EventSink* sink) : sink_(sink) {}

  void emit(OpClass op, std::uint64_t value, std::uint8_t width = 8) {
    if (sink_ != nullptr) sink_->on_event(DataEvent{op, value, width});
  }

  /// Emits `count` NOP events (used to mark the acquisition NOP sled).
  void nops(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) emit(OpClass::kNop, 0, 8);
  }

  bool active() const { return sink_ != nullptr; }

 private:
  EventSink* sink_;
};

}  // namespace scalocate::crypto
