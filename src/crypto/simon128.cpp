#include "crypto/simon128.hpp"

#include "common/error.hpp"

namespace scalocate::crypto {

namespace {

inline std::uint64_t rotl64(std::uint64_t x, int n) {
  return (x << n) | (x >> (64 - n));
}
inline std::uint64_t rotr64(std::uint64_t x, int n) {
  return (x >> n) | (x << (64 - n));
}

// z2 constant sequence (Simon128/128 uses z_2; 62-bit period).
constexpr char kZ2[] =
    "10101111011100000011010010011000101000010001111110010110110011";

// Words are stored little-endian in the byte arrays, matching the reference
// implementation in the Simon & Speck paper appendix: pt[0..7] is the low
// word y, pt[8..15] the high word x.
std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void store_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

}  // namespace

Simon128::Simon128() = default;

void Simon128::set_key(const Key16& key) {
  // m = 2 key words; k[0] = low 8 bytes, k[1] = high 8 bytes.
  round_keys_[0] = load_le64(key.data());
  round_keys_[1] = load_le64(key.data() + 8);
  constexpr std::uint64_t c = 0xfffffffffffffffcULL;
  for (std::size_t i = 2; i < kRounds; ++i) {
    std::uint64_t tmp = rotr64(round_keys_[i - 1], 3);
    tmp ^= rotr64(tmp, 1);
    const std::uint64_t z_bit =
        static_cast<std::uint64_t>(kZ2[(i - 2) % 62] - '0');
    round_keys_[i] = c ^ z_bit ^ round_keys_[i - 2] ^ tmp;
  }
  has_key_ = true;
}

Block16 Simon128::encrypt(const Block16& plaintext, EventSink* sink) const {
  detail::require(has_key_, "Simon128::encrypt: set_key not called");
  Tracer tr(sink);
  std::uint64_t y = load_le64(plaintext.data());
  std::uint64_t x = load_le64(plaintext.data() + 8);
  tr.emit(OpClass::kLoad, y, 64);
  tr.emit(OpClass::kLoad, x, 64);

  for (std::size_t i = 0; i < kRounds; ++i) {
    const std::uint64_t f = (rotl64(x, 1) & rotl64(x, 8)) ^ rotl64(x, 2);
    tr.emit(OpClass::kShift, rotl64(x, 1), 64);
    tr.emit(OpClass::kArith, f, 64);
    const std::uint64_t tmp = x;
    x = y ^ f ^ round_keys_[i];
    y = tmp;
    tr.emit(OpClass::kXor, x, 64);
  }

  Block16 out{};
  store_le64(out.data(), y);
  store_le64(out.data() + 8, x);
  tr.emit(OpClass::kStore, y, 64);
  tr.emit(OpClass::kStore, x, 64);
  return out;
}

Block16 Simon128::decrypt(const Block16& ciphertext) const {
  detail::require(has_key_, "Simon128::decrypt: set_key not called");
  std::uint64_t y = load_le64(ciphertext.data());
  std::uint64_t x = load_le64(ciphertext.data() + 8);

  for (std::size_t i = kRounds; i-- > 0;) {
    const std::uint64_t tmp = y;
    y = x ^ (rotl64(tmp, 1) & rotl64(tmp, 8)) ^ rotl64(tmp, 2) ^ round_keys_[i];
    x = tmp;
  }

  Block16 out{};
  store_le64(out.data(), y);
  store_le64(out.data() + 8, x);
  return out;
}

}  // namespace scalocate::crypto
