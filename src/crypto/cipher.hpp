// Common block-cipher interface and registry.
//
// Every cryptographic operation (CO) the paper evaluates -- AES-128,
// masked AES-128, Camellia-128, Clefia-128 and Simon-128/128 -- implements
// this interface. `encrypt` optionally streams DataEvents so the trace
// simulator can synthesize the side-channel signal of the execution.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crypto/event.hpp"

namespace scalocate {
class Rng;  // forward declaration (common/rng.hpp)
}

namespace scalocate::crypto {

using Block16 = std::array<std::uint8_t, 16>;
using Key16 = std::array<std::uint8_t, 16>;

/// Abstract 128-bit block cipher with 128-bit key.
class BlockCipher {
 public:
  virtual ~BlockCipher() = default;

  /// Human-readable cipher name, e.g. "AES-128".
  virtual std::string name() const = 0;

  /// Installs the key and runs the key schedule. Key-schedule operations
  /// are not traced (the attacker profiles encryptions, not re-keying).
  virtual void set_key(const Key16& key) = 0;

  /// Encrypts one block. When `sink` is non-null, emits one DataEvent per
  /// executed operation for the power simulator.
  virtual Block16 encrypt(const Block16& plaintext,
                          EventSink* sink = nullptr) const = 0;

  /// Decrypts one block (not traced; decryption is not part of the paper's
  /// threat model but completes the cipher library and enables round-trip
  /// property tests).
  virtual Block16 decrypt(const Block16& ciphertext) const = 0;

  /// True when the implementation applies a masking countermeasure (the
  /// masked cipher needs fresh randomness per encryption; see set_mask_rng).
  virtual bool is_masked() const { return false; }
};

/// Identifiers for the evaluated ciphers, in the paper's Table I order.
enum class CipherId {
  kAes128,
  kAesMasked,
  kClefia128,
  kCamellia128,
  kSimon128,
};

/// All cipher ids in Table I order.
std::span<const CipherId> all_cipher_ids();

/// Table name used in the paper, e.g. "AES mask".
std::string cipher_display_name(CipherId id);

/// Factory. For kAesMasked, `mask_seed` seeds the per-encryption mask
/// generator (masking requires fresh randomness).
std::unique_ptr<BlockCipher> make_cipher(CipherId id,
                                         std::uint64_t mask_seed = 1);

/// Parses "aes", "aes-mask", "clefia", "camellia", "simon" (case
/// insensitive); throws InvalidArgument otherwise.
CipherId parse_cipher_id(const std::string& text);

}  // namespace scalocate::crypto
