#include "trace/trace.hpp"

#include "common/io.hpp"

namespace scalocate::trace {

namespace {
constexpr std::uint64_t kTraceMagic = 0x5343414c54524331ULL;  // "SCALTRC1"
}

std::vector<std::size_t> Trace::co_starts() const {
  std::vector<std::size_t> out;
  out.reserve(cos.size());
  for (const auto& co : cos) out.push_back(co.start_sample);
  return out;
}

double Trace::mean_co_length() const {
  if (cos.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& co : cos)
    acc += static_cast<double>(co.end_sample - co.start_sample);
  return acc / static_cast<double>(cos.size());
}

void save_trace(const Trace& trace, const std::string& path) {
  auto os = io::open_for_write(path, kTraceMagic);
  io::write_string(os, trace.cipher_name);
  io::write_scalar(os, trace.sample_rate_hz);
  io::write_scalar(os, trace.random_delay_max);
  io::write_vector(os, trace.samples);
  io::write_scalar<std::uint64_t>(os, trace.cos.size());
  for (const auto& co : trace.cos) {
    io::write_scalar<std::uint64_t>(os, co.start_sample);
    io::write_scalar<std::uint64_t>(os, co.end_sample);
    os.write(reinterpret_cast<const char*>(co.plaintext.data()), 16);
    os.write(reinterpret_cast<const char*>(co.ciphertext.data()), 16);
  }
}

Trace load_trace(const std::string& path) {
  auto is = io::open_for_read(path, kTraceMagic);
  Trace t;
  t.cipher_name = io::read_string(is);
  t.sample_rate_hz = io::read_scalar<double>(is);
  t.random_delay_max = io::read_scalar<std::uint32_t>(is);
  t.samples = io::read_vector<float>(is);
  const auto n_cos = io::read_scalar<std::uint64_t>(is);
  t.cos.resize(static_cast<std::size_t>(n_cos));
  for (auto& co : t.cos) {
    co.start_sample = static_cast<std::size_t>(io::read_scalar<std::uint64_t>(is));
    co.end_sample = static_cast<std::size_t>(io::read_scalar<std::uint64_t>(is));
    is.read(reinterpret_cast<char*>(co.plaintext.data()), 16);
    is.read(reinterpret_cast<char*>(co.ciphertext.data()), 16);
  }
  return t;
}

}  // namespace scalocate::trace
