// Oscilloscope acquisition model.
//
// Stands in for the Picoscope 5244d used by the paper: the clean power
// waveform from the PowerModel is corrupted by additive white Gaussian
// measurement noise and a slow baseline drift (supply/temperature wander),
// then quantized by a 12-bit ADC over a fixed full-scale range -- the
// artifacts a trained locator must be robust to.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace scalocate::trace {

struct AcquisitionConfig {
  double noise_sigma = 0.08;     ///< white measurement noise (signal units)
  double drift_amplitude = 0.03; ///< peak of the slow baseline wander
  double drift_period = 50000;   ///< samples per drift oscillation
  int adc_bits = 12;             ///< Picoscope 5244d resolution
  double full_scale_min = -0.5;  ///< ADC range lower bound (signal units)
  double full_scale_max = 2.0;   ///< ADC range upper bound
  bool enable_quantization = true;
  /// AGC-style gain steps: with probability `gain_step_prob` per sample the
  /// front-end gain jumps to a fresh uniform value in [gain_min, gain_max]
  /// and stays there until the next step. The gain multiplies the clean
  /// signal before drift/noise/quantization, modeling an auto-ranging
  /// amplifier re-ranging mid-capture. 0 disables (gain pinned at 1).
  double gain_step_prob = 0.0;
  double gain_min = 1.0;
  double gain_max = 1.0;
};

/// Applies the measurement chain to a clean trace, in place.
class AcquisitionModel {
 public:
  AcquisitionModel(AcquisitionConfig config, std::uint64_t seed);

  /// Processes `samples` as one continuous capture; the drift phase
  /// persists across calls so split renders stay coherent.
  void apply(std::vector<float>& samples);

  const AcquisitionConfig& config() const { return config_; }

  /// Current AGC gain (1.0 until the first gain step fires).
  double gain() const { return gain_; }

 private:
  AcquisitionConfig config_;
  Rng rng_;
  std::uint64_t sample_index_ = 0;  // global phase for the drift term
  double gain_ = 1.0;               // persists across apply() calls
};

}  // namespace scalocate::trace
