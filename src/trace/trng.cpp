#include "trace/trng.hpp"

namespace scalocate::trace {

Trng::Trng(std::uint64_t seed) : rng_(seed) {}

std::uint32_t Trng::next_word() {
  const auto word = static_cast<std::uint32_t>(rng_.next_u64());
  ++words_produced_;
  if (words_produced_ > 1 && word == last_word_) {
    ++current_run_;
  } else {
    current_run_ = 1;
  }
  if (current_run_ > longest_repetition_) longest_repetition_ = current_run_;
  last_word_ = word;
  return word;
}

std::uint32_t Trng::next_delay(std::uint32_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling on the low bits keeps the distribution uniform.
  const std::uint32_t span = bound + 1;
  const std::uint32_t limit = (0xffffffffu / span) * span;
  for (;;) {
    const std::uint32_t w = next_word();
    if (w < limit) return w % span;
  }
}

}  // namespace scalocate::trace
