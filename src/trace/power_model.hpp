// Instruction-level power model.
//
// Replaces the paper's physical measurement chain: every executed
// instruction (DataEvent) is rendered into `samples_per_op` power samples
// composed of (i) an opcode-class baseline -- different instruction types
// draw different current in an in-order RISC-V pipeline -- shaped by a
// per-cycle pulse profile, and (ii) a data-dependent Hamming-weight term on
// the write-back sample, which is the leakage CPA and profiled attacks
// exploit on real hardware.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "crypto/event.hpp"

namespace scalocate::trace {

/// Static parameters of the power model.
struct PowerModelConfig {
  /// Baseline power per opcode class (arbitrary units, order of OpClass).
  /// NOPs sit far below everything (pipeline bubble); the active classes
  /// are deliberately close together, modeling the band-limited shunt
  /// measurement of the paper's setup where per-opcode current differences
  /// are small compared to data-dependent switching. Large contrast would
  /// (a) hand template locators an envelope fingerprint that survives
  /// random delay and (b) bury the CPA leak in instruction-mix noise under
  /// the countermeasure's jitter.
  std::array<double, static_cast<std::size_t>(crypto::OpClass::kCount)> base = {
      0.10,  // kNop    : pipeline bubble, lowest draw
      0.76,  // kLoad   : memory access
      0.72,  // kStore
      0.46,  // kXor
      0.42,  // kShift
      0.50,  // kArith
      0.84,  // kMul    : multi-cycle multiplier
      0.88,  // kSbox   : table lookup, highest draw
      0.36,  // kBranch
  };

  /// Amplitude of the Hamming-weight leakage term. The HW of the operand,
  /// normalized by width and centered, is scaled by this factor and added
  /// to the write-back sample of data-carrying instructions (NOPs and
  /// branches have no destination write-back and leak nothing). Comparable
  /// in magnitude to the opcode contrast, as on data-bus-dominated
  /// platforms.
  double data_alpha = 0.80;

  /// Oscilloscope samples rendered per instruction (sample_rate / f_clk x
  /// cycles-per-instruction).
  std::size_t samples_per_op = 4;

  /// Per-sample pulse shape of one instruction, cycled/interpolated to
  /// samples_per_op. Models the current profile across the pipeline stages.
  std::array<double, 4> pulse = {0.7, 1.0, 0.9, 0.6};
};

/// Renders DataEvents into power samples (noise-free; the acquisition model
/// adds measurement noise and quantization afterwards).
class PowerModel {
 public:
  explicit PowerModel(PowerModelConfig config = {});

  /// Appends the samples of one instruction to `out`.
  void render(const crypto::DataEvent& event, std::vector<float>& out) const;

  const PowerModelConfig& config() const { return config_; }

 private:
  PowerModelConfig config_;
};

/// Hamming weight of an integer.
int hamming_weight(std::uint64_t v);

}  // namespace scalocate::trace
