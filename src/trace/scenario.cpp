#include "trace/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "common/stats.hpp"

namespace scalocate::trace {

std::size_t detect_nop_boundary(std::span<const float> samples,
                                std::size_t samples_per_op) {
  detail::require(samples_per_op >= 1,
                  "detect_nop_boundary: samples_per_op must be >= 1");
  detail::require(samples.size() >= 16 * samples_per_op,
                  "detect_nop_boundary: trace too short");

  // Smooth over ~8 instructions to average out random-delay dummy blips.
  const std::size_t ma_window = 8 * samples_per_op + 1;
  const auto smooth = signal::moving_average(samples, ma_window);

  // Sled level: the capture is known to start inside the NOP sled.
  const std::size_t head = 8 * samples_per_op;
  const double sled_level =
      stats::mean(std::span<const float>(smooth.data(), head));
  const double high_level = stats::percentile(smooth, 90.0);
  const float threshold = static_cast<float>(0.5 * (sled_level + high_level));

  // First position where the smoothed power stays above threshold for four
  // full instructions (rejects dummy bursts inside the sled).
  const std::size_t hold = 4 * samples_per_op;
  std::size_t run = 0;
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    if (smooth[i] > threshold) {
      ++run;
      if (run >= hold) return i + 1 - run;
    } else {
      run = 0;
    }
  }
  return 0;  // no boundary found: caller treats the whole capture as CO
}

CipherAcquisition acquire_cipher_traces(const ScenarioConfig& config,
                                        std::size_t n_traces,
                                        const crypto::Key16& key) {
  SocConfig soc;
  soc.random_delay = config.random_delay;
  soc.seed = config.seed;
  SocSimulator sim(soc);

  auto cipher = crypto::make_cipher(config.cipher, config.seed ^ 0x6d61736bULL);
  cipher->set_key(key);

  Rng pt_rng(config.seed ^ 0x7074ULL);

  CipherAcquisition acq;
  acq.key = key;
  acq.captures.reserve(n_traces);

  for (std::size_t i = 0; i < n_traces; ++i) {
    Trace t;
    sim.run_nop_sled(config.nop_sled_len, t);
    crypto::Block16 pt{};
    pt_rng.fill_bytes(pt.data(), pt.size());
    sim.run_cipher(*cipher, pt, t);

    const std::size_t true_start = t.cos.front().start_sample;
    std::size_t cut = true_start;
    if (config.cut_at_detected_boundary) {
      cut = detect_nop_boundary(t.samples, soc.power.samples_per_op);
      if (cut == 0 || cut >= t.samples.size()) cut = true_start;
    }

    CipherCapture cap;
    cap.samples.assign(t.samples.begin() + static_cast<std::ptrdiff_t>(cut),
                       t.samples.end());
    cap.plaintext = pt;
    cap.ciphertext = t.cos.front().ciphertext;
    cap.true_start_error =
        cut > true_start ? cut - true_start : true_start - cut;
    acq.captures.push_back(std::move(cap));
  }
  return acq;
}

Trace acquire_noise_trace(const ScenarioConfig& config,
                          std::size_t approx_instructions) {
  SocConfig soc;
  soc.random_delay = config.random_delay;
  soc.seed = config.seed ^ 0x6e74ULL;
  SocSimulator sim(soc);

  Rng len_rng(config.seed ^ 0x6c656eULL);
  Trace t;
  std::size_t emitted = 0;
  while (emitted < approx_instructions) {
    const auto app_len = static_cast<std::size_t>(len_rng.uniform_int(
        static_cast<std::int64_t>(config.noise_app_min_instr),
        static_cast<std::int64_t>(config.noise_app_max_instr)));
    sim.run_noise_app(app_len, t);
    emitted += app_len;
  }
  return t;
}

Trace acquire_eval_trace(const ScenarioConfig& config, std::size_t n_cos,
                         const crypto::Key16& key, bool interleave_noise) {
  SocConfig soc;
  soc.random_delay = config.random_delay;
  soc.seed = config.seed ^ 0x6576616cULL;
  SocSimulator sim(soc);

  auto cipher =
      crypto::make_cipher(config.cipher, config.seed ^ 0x6d32ULL);
  cipher->set_key(key);

  Rng rng(config.seed ^ 0x65767074ULL);

  Trace t;
  // The capture never starts exactly at a CO: lead in with noise.
  sim.run_noise_app(config.noise_app_min_instr, t);

  for (std::size_t i = 0; i < n_cos; ++i) {
    crypto::Block16 pt{};
    rng.fill_bytes(pt.data(), pt.size());
    sim.run_cipher(*cipher, pt, t);
    if (interleave_noise) {
      const auto app_len = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(config.noise_app_min_instr),
          static_cast<std::int64_t>(config.noise_app_max_instr)));
      sim.run_noise_app(app_len, t);
    } else {
      // Back-to-back COs: only a handful of dispatcher instructions apart.
      sim.run_noise_app(static_cast<std::size_t>(rng.uniform_int(4, 12)), t);
    }
  }
  return t;
}

}  // namespace scalocate::trace
