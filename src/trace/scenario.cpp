#include "trace/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "common/stats.hpp"

namespace scalocate::trace {

std::size_t detect_nop_boundary(std::span<const float> samples,
                                std::size_t samples_per_op) {
  detail::require(samples_per_op >= 1,
                  "detect_nop_boundary: samples_per_op must be >= 1");
  // Captures shorter than the smoothing + hold horizon (under 16
  // instructions — shorter than one op included) cannot contain a
  // measurable sled/CO boundary: report 0, which callers already treat as
  // "whole capture is CO".
  if (samples.size() < 16 * samples_per_op) return 0;

  // Smooth over ~8 instructions to average out random-delay dummy blips.
  const std::size_t ma_window = 8 * samples_per_op + 1;
  const auto smooth = signal::moving_average(samples, ma_window);

  // Sled level: the capture is known to start inside the NOP sled.
  const std::size_t head = 8 * samples_per_op;
  const std::span<const float> head_span(smooth.data(), head);
  const double sled_level = stats::mean(head_span);
  const double high_level = stats::percentile(smooth, 90.0);

  // Degenerate contrast: an all-sled capture (no CO to find) or one already
  // active from sample 0 (head level == activity level) leaves nothing to
  // threshold against — the midpoint would sit inside the noise band and
  // the first noise run would win. The margin self-calibrates to the head
  // region's own fluctuation (measurement noise + dummy-density wobble).
  const double head_noise = stats::stddev(head_span);
  if (high_level - sled_level < std::max(0.02, 4.0 * head_noise)) return 0;

  const float threshold = static_cast<float>(0.5 * (sled_level + high_level));

  // First position where the smoothed power stays above threshold for four
  // full instructions (rejects dummy bursts inside the sled).
  const std::size_t hold = 4 * samples_per_op;
  std::size_t run = 0;
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    if (smooth[i] > threshold) {
      ++run;
      if (run >= hold) return i + 1 - run;
    } else {
      run = 0;
    }
  }
  return 0;  // no boundary found: caller treats the whole capture as CO
}

CipherAcquisition acquire_cipher_traces(const ScenarioConfig& config,
                                        std::size_t n_traces,
                                        const crypto::Key16& key) {
  SocConfig soc;
  soc.random_delay = config.random_delay;
  soc.acquisition = config.acquisition;
  soc.seed = config.seed;
  SocSimulator sim(soc);

  auto cipher = crypto::make_cipher(config.cipher, config.seed ^ 0x6d61736bULL);
  cipher->set_key(key);

  Rng pt_rng(config.seed ^ 0x7074ULL);

  CipherAcquisition acq;
  acq.key = key;
  acq.captures.reserve(n_traces);

  for (std::size_t i = 0; i < n_traces; ++i) {
    Trace t;
    sim.run_nop_sled(config.nop_sled_len, t);
    crypto::Block16 pt{};
    pt_rng.fill_bytes(pt.data(), pt.size());
    sim.run_cipher(*cipher, pt, t);

    const std::size_t true_start = t.cos.front().start_sample;
    std::size_t cut = true_start;
    if (config.cut_at_detected_boundary) {
      cut = detect_nop_boundary(t.samples, soc.power.samples_per_op);
      if (cut == 0 || cut >= t.samples.size()) cut = true_start;
    }

    CipherCapture cap;
    cap.samples.assign(t.samples.begin() + static_cast<std::ptrdiff_t>(cut),
                       t.samples.end());
    cap.plaintext = pt;
    cap.ciphertext = t.cos.front().ciphertext;
    cap.true_start_error =
        cut > true_start ? cut - true_start : true_start - cut;
    acq.captures.push_back(std::move(cap));
  }
  return acq;
}

Trace acquire_noise_trace(const ScenarioConfig& config,
                          std::size_t approx_instructions) {
  SocConfig soc;
  soc.random_delay = config.random_delay;
  soc.acquisition = config.acquisition;
  soc.seed = config.seed ^ 0x6e74ULL;
  SocSimulator sim(soc);

  Rng len_rng(config.seed ^ 0x6c656eULL);
  Trace t;
  std::size_t emitted = 0;
  while (emitted < approx_instructions) {
    const auto app_len = static_cast<std::size_t>(len_rng.uniform_int(
        static_cast<std::int64_t>(config.noise_app_min_instr),
        static_cast<std::int64_t>(config.noise_app_max_instr)));
    sim.run_noise_app(app_len, t);
    emitted += app_len;
  }
  return t;
}

Trace acquire_eval_trace(const ScenarioConfig& config, std::size_t n_cos,
                         const crypto::Key16& key, bool interleave_noise) {
  SocConfig soc;
  soc.random_delay = config.random_delay;
  soc.acquisition = config.acquisition;
  soc.seed = config.seed ^ 0x6576616cULL;
  SocSimulator sim(soc);

  auto cipher =
      crypto::make_cipher(config.cipher, config.seed ^ 0x6d32ULL);
  cipher->set_key(key);

  Rng rng(config.seed ^ 0x65767074ULL);

  Trace t;
  // The capture never starts exactly at a CO: lead in with noise.
  sim.run_noise_app(config.noise_app_min_instr, t);

  for (std::size_t i = 0; i < n_cos; ++i) {
    crypto::Block16 pt{};
    rng.fill_bytes(pt.data(), pt.size());
    sim.run_cipher(*cipher, pt, t);
    if (interleave_noise) {
      const auto app_len = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(config.noise_app_min_instr),
          static_cast<std::int64_t>(config.noise_app_max_instr)));
      sim.run_noise_app(app_len, t);
    } else {
      // Back-to-back COs: only a handful of dispatcher instructions apart.
      sim.run_noise_app(static_cast<std::size_t>(rng.uniform_int(4, 12)), t);
    }
  }
  return t;
}

void apply_clock_jitter(Trace& t, const ClockJitterConfig& config,
                        std::uint64_t seed) {
  detail::require(config.wobble >= 0.0 && config.wobble < 1.0,
                  "apply_clock_jitter: wobble must be in [0, 1)");
  detail::require(config.region_min >= 1 &&
                      config.region_max >= config.region_min,
                  "apply_clock_jitter: invalid region length range");
  if (t.samples.empty() || config.wobble == 0.0) return;

  // One DVFS region = one sample-rate factor. Record (orig_start,
  // new_start, factor) per region so ground-truth indices can be remapped
  // through the same warp afterwards.
  struct Region {
    std::size_t orig_start;
    std::size_t new_start;
    double factor;
  };
  std::vector<Region> regions;
  std::vector<float> warped;
  warped.reserve(t.samples.size());

  Rng rng(seed);
  const std::size_t n = t.samples.size();
  std::size_t pos = 0;
  while (pos < n) {
    const auto span_len = std::min<std::size_t>(
        n - pos, static_cast<std::size_t>(rng.uniform_int(
                     static_cast<std::int64_t>(config.region_min),
                     static_cast<std::int64_t>(config.region_max))));
    const double factor = 1.0 + rng.uniform(-config.wobble, config.wobble);
    regions.push_back({pos, warped.size(), factor});

    const auto new_len = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(static_cast<double>(span_len) * factor)));
    for (std::size_t j = 0; j < new_len; ++j) {
      // Position j of the resampled region reads back from original offset
      // j / factor, linearly interpolated between its neighbors.
      const double src = static_cast<double>(j) / factor;
      const auto lo = std::min<std::size_t>(span_len - 1,
                                            static_cast<std::size_t>(src));
      const std::size_t hi = std::min<std::size_t>(span_len - 1, lo + 1);
      const double frac = src - static_cast<double>(lo);
      const double a = t.samples[pos + lo];
      const double b = t.samples[pos + hi];
      warped.push_back(static_cast<float>(a + (b - a) * frac));
    }
    pos += span_len;
  }

  const auto remap = [&](std::size_t orig) {
    // Regions are sorted by orig_start; find the one containing `orig`.
    std::size_t r = regions.size() - 1;
    while (r > 0 && regions[r].orig_start > orig) --r;
    const double offset =
        static_cast<double>(orig - regions[r].orig_start) * regions[r].factor;
    const auto mapped =
        regions[r].new_start + static_cast<std::size_t>(std::llround(offset));
    return std::min(mapped, warped.size());
  };
  for (auto& co : t.cos) {
    co.start_sample = std::min(remap(co.start_sample), warped.size() - 1);
    co.end_sample = remap(co.end_sample);
  }
  t.samples = std::move(warped);
}

Trace acquire_preempted_eval_trace(const ScenarioConfig& config,
                                   std::size_t n_cos,
                                   const crypto::Key16& key) {
  SocConfig soc;
  soc.random_delay = config.random_delay;
  soc.acquisition = config.acquisition;
  soc.seed = config.seed ^ 0x70726576ULL;
  SocSimulator sim(soc);

  auto cipher = crypto::make_cipher(config.cipher, config.seed ^ 0x6d33ULL);
  cipher->set_key(key);

  Rng rng(config.seed ^ 0x70726d70ULL);

  Trace t;
  sim.run_noise_app(config.noise_app_min_instr, t);
  for (std::size_t i = 0; i < n_cos; ++i) {
    crypto::Block16 pt{};
    rng.fill_bytes(pt.data(), pt.size());
    sim.run_cipher_preempted(*cipher, pt, config.preemption,
                             rng.next_u64(), t);
    const auto app_len = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.noise_app_min_instr),
        static_cast<std::int64_t>(config.noise_app_max_instr)));
    sim.run_noise_app(app_len, t);
  }
  return t;
}

std::vector<std::size_t> ScenarioCapture::starts_of(
    crypto::CipherId id) const {
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < trace.cos.size(); ++i)
    if (i < co_ciphers.size() && co_ciphers[i] == id)
      starts.push_back(trace.cos[i].start_sample);
  return starts;
}

ScenarioCapture acquire_mixed_eval_trace(const ScenarioConfig& config,
                                         std::size_t n_cos,
                                         const crypto::Key16& key) {
  detail::require(config.mixed_cipher != config.cipher,
                  "acquire_mixed_eval_trace: the two ciphers must differ");
  SocConfig soc;
  soc.random_delay = config.random_delay;
  soc.acquisition = config.acquisition;
  soc.seed = config.seed ^ 0x6d697865ULL;
  SocSimulator sim(soc);

  auto first = crypto::make_cipher(config.cipher, config.seed ^ 0x6d34ULL);
  auto second =
      crypto::make_cipher(config.mixed_cipher, config.seed ^ 0x6d35ULL);
  first->set_key(key);
  second->set_key(key);

  Rng rng(config.seed ^ 0x6d697074ULL);

  ScenarioCapture capture;
  Trace& t = capture.trace;
  sim.run_noise_app(config.noise_app_min_instr, t);
  for (std::size_t i = 0; i < n_cos; ++i) {
    crypto::Block16 pt{};
    rng.fill_bytes(pt.data(), pt.size());
    const bool use_second = i % 2 == 1;
    sim.run_cipher(use_second ? *second : *first, pt, t);
    capture.co_ciphers.push_back(use_second ? config.mixed_cipher
                                            : config.cipher);
    const auto app_len = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.noise_app_min_instr),
        static_cast<std::int64_t>(config.noise_app_max_instr)));
    sim.run_noise_app(app_len, t);
  }
  // run_cipher overwrites cipher_name per CO; a mixed capture has no single
  // cipher, which is the point of the scenario.
  t.cipher_name = "mixed";
  return capture;
}

namespace {

constexpr ScenarioCase kScenarios[] = {
    {ScenarioKind::kConsecutive, "consecutive",
     "COs back-to-back, scheduler gaps only (paper IV-B)"},
    {ScenarioKind::kNoiseApps, "noise-apps",
     "random noise application between COs (paper IV-B)"},
    {ScenarioKind::kClockJitter, "clock-jitter",
     "DVFS sample-rate wobble stretches/compresses plateaus"},
    {ScenarioKind::kPreemption, "preemption",
     "interrupt ISRs suspend each CO mid-execution"},
    {ScenarioKind::kGainDrift, "gain-drift",
     "strong baseline wander plus AGC gain steps"},
    {ScenarioKind::kMixedCipher, "mixed-cipher",
     "two ciphers interleaved in one capture"},
    {ScenarioKind::kTruncatedTail, "truncated-tail",
     "capture ends mid-CO (trailing CO, no falling edge)"},
};

}  // namespace

std::span<const ScenarioCase> ScenarioSuite::all() { return kScenarios; }

const ScenarioCase& ScenarioSuite::find(std::string_view name) {
  for (const auto& c : kScenarios)
    if (name == c.name) return c;
  throw InvalidArgument("unknown scenario: " + std::string(name));
}

ScenarioCapture ScenarioSuite::acquire(const ScenarioCase& scenario,
                                       const ScenarioConfig& config,
                                       std::size_t n_cos,
                                       const crypto::Key16& key) {
  ScenarioCapture capture;
  switch (scenario.kind) {
    case ScenarioKind::kConsecutive:
      capture.trace = acquire_eval_trace(config, n_cos, key, false);
      break;
    case ScenarioKind::kNoiseApps:
      capture.trace = acquire_eval_trace(config, n_cos, key, true);
      break;
    case ScenarioKind::kClockJitter:
      capture.trace = acquire_eval_trace(config, n_cos, key, true);
      apply_clock_jitter(capture.trace, config.clock_jitter,
                         config.seed ^ 0x6a697474ULL);
      break;
    case ScenarioKind::kPreemption:
      capture.trace = acquire_preempted_eval_trace(config, n_cos, key);
      break;
    case ScenarioKind::kGainDrift: {
      ScenarioConfig harsh = config;
      harsh.acquisition.drift_amplitude = config.gain_drift.drift_amplitude;
      harsh.acquisition.drift_period = config.gain_drift.drift_period;
      harsh.acquisition.gain_step_prob = config.gain_drift.step_prob;
      harsh.acquisition.gain_min = config.gain_drift.gain_min;
      harsh.acquisition.gain_max = config.gain_drift.gain_max;
      capture.trace = acquire_eval_trace(harsh, n_cos, key, true);
      break;
    }
    case ScenarioKind::kMixedCipher: {
      // A registry walk must work for ANY primary cipher, including the one
      // that happens to be the default partner: substitute a differing
      // partner instead of bubbling up acquire_mixed_eval_trace's require
      // (which still guards explicit misuse of that API).
      ScenarioConfig mixed = config;
      if (mixed.mixed_cipher == mixed.cipher)
        mixed.mixed_cipher = mixed.cipher == crypto::CipherId::kAes128
                                 ? crypto::CipherId::kCamellia128
                                 : crypto::CipherId::kAes128;
      return acquire_mixed_eval_trace(mixed, n_cos, key);
    }
    case ScenarioKind::kTruncatedTail: {
      capture.trace = acquire_eval_trace(config, n_cos, key, false);
      if (!capture.trace.cos.empty()) {
        // Cut one third into the trailing CO: well past its start motif,
        // well before its falling edge.
        CoAnnotation& last = capture.trace.cos.back();
        const std::size_t cut =
            last.start_sample + (last.end_sample - last.start_sample) / 3;
        capture.trace.samples.resize(cut);
        last.end_sample = cut;
      }
      break;
    }
  }
  capture.co_ciphers.assign(capture.trace.cos.size(), config.cipher);
  return capture;
}

}  // namespace scalocate::trace
