#include "trace/soc_simulator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace scalocate::trace {

class SocSimulator::RenderSink final : public crypto::EventSink {
 public:
  RenderSink(PowerModel& pm, RandomDelayInjector& rd, std::vector<float>& out)
      : pm_(pm), rd_(rd), out_(out) {}

  void on_event(const crypto::DataEvent& event) override {
    // The countermeasure fires between every pair of program instructions.
    rd_.inject([&](const crypto::DataEvent& dummy) { pm_.render(dummy, out_); });
    if (!saw_program_event_) {
      saw_program_event_ = true;
      first_program_sample_ = out_.size();
    }
    pm_.render(event, out_);
  }

  /// Sample index of the first *program* (non-dummy) instruction rendered.
  std::size_t first_program_sample() const { return first_program_sample_; }

 private:
  PowerModel& pm_;
  RandomDelayInjector& rd_;
  std::vector<float>& out_;
  bool saw_program_event_ = false;
  std::size_t first_program_sample_ = 0;
};

SocSimulator::SocSimulator(SocConfig config)
    : config_(config),
      power_model_(config.power),
      injector_(config.random_delay, config.seed ^ 0x7261646f6dULL),
      noise_gen_(config.seed ^ 0x6e6f697365ULL),
      acquisition_(config.acquisition, config.seed ^ 0x616371ULL) {}

void SocSimulator::apply_acquisition_tail(Trace& out, std::size_t from_sample) {
  // The acquisition chain is stateful (drift phase), so process only the
  // newly rendered region.
  std::vector<float> region(out.samples.begin() +
                                static_cast<std::ptrdiff_t>(from_sample),
                            out.samples.end());
  acquisition_.apply(region);
  std::copy(region.begin(), region.end(),
            out.samples.begin() + static_cast<std::ptrdiff_t>(from_sample));
}

void SocSimulator::run_nop_sled(std::size_t n_nops, Trace& out) {
  const std::size_t from = out.samples.size();
  RenderSink sink(power_model_, injector_, out.samples);
  for (std::size_t i = 0; i < n_nops; ++i)
    sink.on_event(crypto::DataEvent{crypto::OpClass::kNop, 0, 8});
  apply_acquisition_tail(out, from);
  out.random_delay_max = random_delay_bound(config_.random_delay);
}

namespace {

/// Function-call prologue: callee-saved register stores + stack adjust.
/// Every invoked routine (cipher or noise application) begins with one, so
/// a store burst alone does not give CO starts away.
template <typename Sink>
void emit_prologue(Sink& sink) {
  sink.on_event(crypto::DataEvent{crypto::OpClass::kArith, 0xffffffa0u, 32});
  for (int i = 0; i < 6; ++i)
    sink.on_event(crypto::DataEvent{crypto::OpClass::kStore,
                                    0x8000'0000u + static_cast<std::uint32_t>(i),
                                    32});
}

/// Function-call epilogue: register restores + return.
template <typename Sink>
void emit_epilogue(Sink& sink) {
  for (int i = 0; i < 6; ++i)
    sink.on_event(crypto::DataEvent{crypto::OpClass::kLoad,
                                    0x8000'0000u + static_cast<std::uint32_t>(i),
                                    32});
  sink.on_event(crypto::DataEvent{crypto::OpClass::kBranch, 0, 32});
}

}  // namespace

void SocSimulator::run_cipher(const crypto::BlockCipher& cipher,
                              const crypto::Block16& plaintext, Trace& out) {
  const std::size_t from = out.samples.size();
  RenderSink sink(power_model_, injector_, out.samples);
  emit_prologue(sink);
  const crypto::Block16 ciphertext = cipher.encrypt(plaintext, &sink);
  emit_epilogue(sink);
  apply_acquisition_tail(out, from);

  CoAnnotation co;
  co.start_sample = sink.first_program_sample();
  co.end_sample = out.samples.size();
  co.plaintext = plaintext;
  co.ciphertext = ciphertext;
  out.cos.push_back(co);
  out.cipher_name = cipher.name();
  out.random_delay_max = random_delay_bound(config_.random_delay);
}

void SocSimulator::run_cipher_preempted(const crypto::BlockCipher& cipher,
                                        const crypto::Block16& plaintext,
                                        const PreemptionConfig& preemption,
                                        std::uint64_t seed, Trace& out) {
  // Pass 1: count the encryption's instruction stream without rendering
  // (and without touching the countermeasure TRNG), so interrupt arrival
  // points can be drawn over the actual CO body.
  struct CountSink final : crypto::EventSink {
    std::size_t n = 0;
    void on_event(const crypto::DataEvent&) override { ++n; }
  } counter;
  cipher.encrypt(plaintext, &counter);
  detail::require(counter.n > 0, "run_cipher_preempted: cipher emits no events");

  Rng rng(seed);
  std::vector<std::size_t> points;
  points.reserve(preemption.irqs_per_co);
  for (std::size_t i = 0; i < preemption.irqs_per_co; ++i) {
    // Strictly inside the body: never before the first instruction (that
    // would just delay the CO, not suspend it) nor in the final stretch.
    points.push_back(static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(std::max<std::size_t>(counter.n - 1,
                                                           1)))));
  }
  std::sort(points.begin(), points.end());

  const std::size_t from = out.samples.size();
  RenderSink sink(power_model_, injector_, out.samples);
  emit_prologue(sink);

  // Pass 2: render, suspending the CO at each arrival point to run a noise
  // ISR (with its own call prologue/epilogue) through the same random-delay
  // + power-model chain before the cipher resumes.
  struct PreemptingSink final : crypto::EventSink {
    RenderSink& inner;
    NoiseAppGenerator& noise;
    Rng& rng;
    const PreemptionConfig& cfg;
    const std::vector<std::size_t>& points;
    std::size_t idx = 0;
    std::size_t next = 0;

    PreemptingSink(RenderSink& sink_in, NoiseAppGenerator& noise_in,
                   Rng& rng_in, const PreemptionConfig& cfg_in,
                   const std::vector<std::size_t>& points_in)
        : inner(sink_in),
          noise(noise_in),
          rng(rng_in),
          cfg(cfg_in),
          points(points_in) {}

    void on_event(const crypto::DataEvent& event) override {
      while (next < points.size() && idx == points[next]) {
        const auto isr_len = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(cfg.isr_min_instr),
            static_cast<std::int64_t>(cfg.isr_max_instr)));
        emit_prologue(inner);
        noise.run_app(isr_len,
                      [&](const crypto::DataEvent& e) { inner.on_event(e); });
        emit_epilogue(inner);
        ++next;
      }
      inner.on_event(event);
      ++idx;
    }
  } preempting(sink, noise_gen_, rng, preemption, points);

  const crypto::Block16 ciphertext = cipher.encrypt(plaintext, &preempting);
  emit_epilogue(sink);
  apply_acquisition_tail(out, from);

  CoAnnotation co;
  co.start_sample = sink.first_program_sample();
  co.end_sample = out.samples.size();
  co.plaintext = plaintext;
  co.ciphertext = ciphertext;
  out.cos.push_back(co);
  out.cipher_name = cipher.name();
  out.random_delay_max = random_delay_bound(config_.random_delay);
}

void SocSimulator::run_noise_app(std::size_t approx_instructions, Trace& out) {
  const std::size_t from = out.samples.size();
  RenderSink sink(power_model_, injector_, out.samples);
  emit_prologue(sink);
  noise_gen_.run_app(approx_instructions, [&](const crypto::DataEvent& e) {
    sink.on_event(e);
  });
  emit_epilogue(sink);
  apply_acquisition_tail(out, from);
  out.random_delay_max = random_delay_bound(config_.random_delay);
}

}  // namespace scalocate::trace
