// System-on-chip trace simulator.
//
// Drop-in replacement for the paper's measurement setup (CW305 FPGA with a
// 32-bit RISC-V SoC @ 50 MHz + Picoscope @ 125 MS/s): programs are executed
// as instruction-event streams, the random-delay countermeasure injects
// dummy instructions between every pair of program instructions, the power
// model renders events into samples, and the acquisition model applies the
// oscilloscope's noise/quantization. Ground-truth CO boundaries are
// recorded in the produced Trace for scoring.
#pragma once

#include <cstdint>
#include <memory>

#include "crypto/cipher.hpp"
#include "trace/acquisition.hpp"
#include "trace/noise_apps.hpp"
#include "trace/power_model.hpp"
#include "trace/random_delay.hpp"
#include "trace/trace.hpp"

namespace scalocate::trace {

struct SocConfig {
  RandomDelayConfig random_delay = RandomDelayConfig::kRd4;
  PowerModelConfig power{};
  AcquisitionConfig acquisition{};
  std::uint64_t seed = 1;  ///< master seed (TRNG, noise apps, acquisition)
};

/// Interrupt-preemption capture condition: while a CO executes, interrupts
/// fire at random points inside the encryption and run a noise ISR before
/// the CO resumes, splitting its activity plateau in the recorded trace.
struct PreemptionConfig {
  std::size_t irqs_per_co = 2;      ///< interrupts fired inside each CO
  std::size_t isr_min_instr = 96;   ///< ISR length range (instructions)
  std::size_t isr_max_instr = 384;
};

class SocSimulator {
 public:
  explicit SocSimulator(SocConfig config);

  /// Executes a NOP sled of `n_nops` program NOPs (the paper's trigger
  /// substitute during dataset acquisition). Appends samples to `out`.
  void run_nop_sled(std::size_t n_nops, Trace& out);

  /// Executes one encryption and annotates its ground-truth boundaries and
  /// plaintext/ciphertext in `out.cos`.
  void run_cipher(const crypto::BlockCipher& cipher,
                  const crypto::Block16& plaintext, Trace& out);

  /// Executes one noise application of roughly `approx_instructions`.
  void run_noise_app(std::size_t approx_instructions, Trace& out);

  /// Executes one encryption preempted by noise ISRs (see PreemptionConfig).
  /// The ground-truth annotation spans the whole suspended execution —
  /// start at the first CO instruction, end after the resumed tail — since
  /// that is the region a located start must point into. `seed` drives the
  /// interrupt arrival points and ISR lengths only.
  void run_cipher_preempted(const crypto::BlockCipher& cipher,
                            const crypto::Block16& plaintext,
                            const PreemptionConfig& preemption,
                            std::uint64_t seed, Trace& out);

  const SocConfig& config() const { return config_; }

  /// Dummy instructions inserted so far by the countermeasure.
  std::uint64_t dummies_inserted() const { return injector_.dummies_inserted(); }

 private:
  // EventSink adapter: injects random delay before every program event and
  // renders both dummies and the program event into the sample buffer.
  class RenderSink;

  void apply_acquisition_tail(Trace& out, std::size_t from_sample);

  SocConfig config_;
  PowerModel power_model_;
  RandomDelayInjector injector_;
  NoiseAppGenerator noise_gen_;
  AcquisitionModel acquisition_;
};

}  // namespace scalocate::trace
