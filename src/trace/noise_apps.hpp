// Noise-application workload generator.
//
// The paper's noise trace comes from "the execution of multiple subsequent
// applications different from the CO". We synthesize such applications as
// instruction streams with realistic phase behaviour: each program is a
// sequence of phases (memory bursts, ALU loops, table-driven code, branchy
// control flow, idle spins), each phase emitting a characteristic opcode
// mix. Table-lookup phases intentionally contain kSbox/kLoad bursts so the
// "not-a-CO" class is not trivially separable by opcode alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/event.hpp"

namespace scalocate::trace {

/// Kinds of synthetic application phases.
enum class NoisePhase : std::uint8_t {
  kMemoryBurst,   ///< load/store heavy (memcpy-like)
  kAluLoop,       ///< arithmetic/xor/shift loop
  kTableLookup,   ///< table-driven code (checksum/compression-like)
  kBranchy,       ///< control-flow heavy
  kIdle,          ///< low-activity spin (nop/branch)
  kMixed,         ///< uniform mixture of everything
  kCount,
};

std::string noise_phase_name(NoisePhase phase);

/// Generates noise-application instruction streams.
class NoiseAppGenerator {
 public:
  explicit NoiseAppGenerator(std::uint64_t seed);

  /// Emits one whole application of roughly `approx_instructions`
  /// instructions (several random phases) through `emit(event)`.
  template <typename EmitFn>
  void run_app(std::size_t approx_instructions, EmitFn&& emit) {
    std::size_t remaining = approx_instructions;
    while (remaining > 0) {
      const auto phase = static_cast<NoisePhase>(
          rng_.next_below(static_cast<std::uint64_t>(NoisePhase::kCount)));
      const std::size_t phase_len = std::min<std::size_t>(
          remaining,
          static_cast<std::size_t>(rng_.uniform_int(32, 256)));
      run_phase(phase, phase_len, emit);
      remaining -= phase_len;
    }
  }

  /// Emits `instructions` of one specific phase.
  template <typename EmitFn>
  void run_phase(NoisePhase phase, std::size_t instructions, EmitFn&& emit) {
    for (std::size_t i = 0; i < instructions; ++i) emit(next_event(phase, i));
  }

 private:
  crypto::DataEvent next_event(NoisePhase phase, std::size_t position);

  Rng rng_;
};

}  // namespace scalocate::trace
