// Acquisition scenario builders (Section III-A and IV-B of the paper).
//
// Three capture campaigns are modeled:
//   1. Cipher acquisition  -- the attacker runs single COs on the clone
//      device behind NOP sleds and stores one trace per CO (training c1/c0
//      windows). The CO start inside each stored trace is found with the
//      NOP-boundary detector, exactly like the paper's NOP trick.
//   2. Noise acquisition   -- a long capture of noise applications only
//      (training c0/noise windows).
//   3. Evaluation capture  -- a long trace containing n_cos CO executions,
//      either back-to-back ("consecutive") or interleaved with random noise
//      applications, used by the inference pipeline and the CPA attack.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/cipher.hpp"
#include "trace/soc_simulator.hpp"
#include "trace/trace.hpp"

namespace scalocate::trace {

/// One stored cipher trace: samples beginning at the (detected) CO start.
struct CipherCapture {
  std::vector<float> samples;       ///< trace cut at the CO start
  crypto::Block16 plaintext{};      ///< chosen input of this CO
  crypto::Block16 ciphertext{};
  std::size_t true_start_error = 0; ///< |detected - true| start (validation)
};

/// Output of the cipher acquisition campaign.
struct CipherAcquisition {
  std::vector<CipherCapture> captures;
  crypto::Key16 key{};  ///< attacker-chosen profiling key
};

struct ScenarioConfig {
  crypto::CipherId cipher = crypto::CipherId::kAes128;
  RandomDelayConfig random_delay = RandomDelayConfig::kRd4;
  std::uint64_t seed = 1;
  std::size_t nop_sled_len = 192;        ///< program NOPs before each CO
  std::size_t noise_app_min_instr = 400; ///< noise application length range
  std::size_t noise_app_max_instr = 1600;
  /// When true the stored cipher traces are cut at the NOP-boundary
  /// detector's estimate (paper-faithful); when false, at the exact ground
  /// truth (for controlled experiments).
  bool cut_at_detected_boundary = true;
};

/// Campaign 1: `n_traces` single-CO captures under a chosen key.
/// Plaintexts are uniform random (chosen-input profiling).
CipherAcquisition acquire_cipher_traces(const ScenarioConfig& config,
                                        std::size_t n_traces,
                                        const crypto::Key16& key);

/// Campaign 2: noise-only capture of roughly `approx_instructions`.
Trace acquire_noise_trace(const ScenarioConfig& config,
                          std::size_t approx_instructions);

/// Campaign 3: evaluation trace with `n_cos` CO executions under `key`.
/// When `interleave_noise` is set, a random noise application runs between
/// consecutive COs (the paper's "noise applications" scenario); otherwise
/// COs execute back-to-back separated only by a few scheduler instructions.
Trace acquire_eval_trace(const ScenarioConfig& config, std::size_t n_cos,
                         const crypto::Key16& key, bool interleave_noise);

/// NOP-boundary detector: estimates the first non-sled sample of `samples`
/// given that a NOP sled (with random-delay dummies mixed in) occupies the
/// beginning. Returns the sample index where sustained activity starts.
/// `samples_per_op` must match the simulator configuration.
std::size_t detect_nop_boundary(std::span<const float> samples,
                                std::size_t samples_per_op);

}  // namespace scalocate::trace
