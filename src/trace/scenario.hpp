// Acquisition scenario builders (Section III-A and IV-B of the paper) and
// the countermeasure scenario suite that extends them.
//
// Three capture campaigns are modeled:
//   1. Cipher acquisition  -- the attacker runs single COs on the clone
//      device behind NOP sleds and stores one trace per CO (training c1/c0
//      windows). The CO start inside each stored trace is found with the
//      NOP-boundary detector, exactly like the paper's NOP trick.
//   2. Noise acquisition   -- a long capture of noise applications only
//      (training c0/noise windows).
//   3. Evaluation capture  -- a long trace containing n_cos CO executions,
//      either back-to-back ("consecutive") or interleaved with random noise
//      applications, used by the inference pipeline and the CPA attack.
//
// The paper evaluates only the two campaign-3 shapes above. Real targets
// deploy nastier capture conditions, so ScenarioSuite adds hostile
// variants of campaign 3 — clock-jitter/DVFS resampling, interrupt
// preemption, amplitude drift + AGC gain steps, mixed-cipher captures, and
// truncated tails — behind one registry so benches/tests/examples
// enumerate every scenario uniformly (see bench/bench_robustness.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/cipher.hpp"
#include "trace/soc_simulator.hpp"
#include "trace/trace.hpp"

namespace scalocate::trace {

/// One stored cipher trace: samples beginning at the (detected) CO start.
struct CipherCapture {
  std::vector<float> samples;       ///< trace cut at the CO start
  crypto::Block16 plaintext{};      ///< chosen input of this CO
  crypto::Block16 ciphertext{};
  std::size_t true_start_error = 0; ///< |detected - true| start (validation)
};

/// Output of the cipher acquisition campaign.
struct CipherAcquisition {
  std::vector<CipherCapture> captures;
  crypto::Key16 key{};  ///< attacker-chosen profiling key
};

/// Clock-jitter/DVFS capture condition: the effective sample rate wobbles
/// per frequency-scaling region, stretching or compressing every plateau
/// the locator keys on. Applied as a post-capture piecewise resampling
/// (apply_clock_jitter) with the ground truth remapped through the warp.
struct ClockJitterConfig {
  double wobble = 0.08;          ///< max fractional sample-rate deviation
  std::size_t region_min = 2048; ///< DVFS region length range (samples)
  std::size_t region_max = 8192;
};

/// Amplitude drift / gain-step capture condition: strong slow baseline
/// wander plus AGC re-ranging jumps (values copied into AcquisitionConfig
/// by the scenario suite; the defaults here are deliberately harsher than
/// the benign acquisition defaults).
struct GainDriftConfig {
  double drift_amplitude = 0.12;  ///< vs 0.03 in the benign chain
  double drift_period = 12000;    ///< vs 50000: several cycles per trace
  double step_prob = 1.0 / 24000; ///< a few AGC jumps per eval capture
  double gain_min = 0.85;
  double gain_max = 1.20;
};

struct ScenarioConfig {
  crypto::CipherId cipher = crypto::CipherId::kAes128;
  RandomDelayConfig random_delay = RandomDelayConfig::kRd4;
  std::uint64_t seed = 1;
  std::size_t nop_sled_len = 192;        ///< program NOPs before each CO
  std::size_t noise_app_min_instr = 400; ///< noise application length range
  std::size_t noise_app_max_instr = 1600;
  /// When true the stored cipher traces are cut at the NOP-boundary
  /// detector's estimate (paper-faithful); when false, at the exact ground
  /// truth (for controlled experiments).
  bool cut_at_detected_boundary = true;

  // --- countermeasure scenario knobs (ScenarioSuite) ---------------------
  /// Measurement chain shared by every campaign. The gain-drift scenario
  /// overrides parts of a copy; everything else uses it as configured.
  AcquisitionConfig acquisition{};
  ClockJitterConfig clock_jitter{};
  PreemptionConfig preemption{};
  GainDriftConfig gain_drift{};
  /// Second cipher of the mixed-cipher scenario (interleaved with
  /// `cipher` in one capture; located via the Engine's model registry).
  crypto::CipherId mixed_cipher = crypto::CipherId::kCamellia128;
};

/// Campaign 1: `n_traces` single-CO captures under a chosen key.
/// Plaintexts are uniform random (chosen-input profiling).
CipherAcquisition acquire_cipher_traces(const ScenarioConfig& config,
                                        std::size_t n_traces,
                                        const crypto::Key16& key);

/// Campaign 2: noise-only capture of roughly `approx_instructions`.
Trace acquire_noise_trace(const ScenarioConfig& config,
                          std::size_t approx_instructions);

/// Campaign 3: evaluation trace with `n_cos` CO executions under `key`.
/// When `interleave_noise` is set, a random noise application runs between
/// consecutive COs (the paper's "noise applications" scenario); otherwise
/// COs execute back-to-back separated only by a few scheduler instructions.
Trace acquire_eval_trace(const ScenarioConfig& config, std::size_t n_cos,
                         const crypto::Key16& key, bool interleave_noise);

/// NOP-boundary detector: estimates the first non-sled sample of `samples`
/// given that a NOP sled (with random-delay dummies mixed in) occupies the
/// beginning. Returns the sample index where sustained activity starts.
/// `samples_per_op` must match the simulator configuration.
///
/// Degenerate captures yield a defined result of 0 ("no sled boundary;
/// treat the whole capture as CO") instead of a throw or an out-of-range
/// scan: traces shorter than the detector's smoothing/hold horizon, all-
/// sled traces with no activity to find, and traces already active from
/// sample 0 (whose head level equals the activity level, leaving no
/// contrast to threshold against).
std::size_t detect_nop_boundary(std::span<const float> samples,
                                std::size_t samples_per_op);

/// Post-capture clock-jitter/DVFS model: splits the trace into regions of
/// random length [region_min, region_max], resamples each by an
/// independent rate factor in [1 - wobble, 1 + wobble] (linear
/// interpolation), and remaps every ground-truth CO annotation through the
/// same time warp. Quantization artifacts of re-sampling an already
/// digitized capture are deliberately ignored: the scenario stresses the
/// locator's tolerance to stretched/compressed plateaus, not the ADC.
void apply_clock_jitter(Trace& t, const ClockJitterConfig& config,
                        std::uint64_t seed);

/// Campaign 3 variant: every CO is suspended mid-execution by noise ISRs
/// (config.preemption), splitting its plateau; noise applications between
/// COs as in acquire_eval_trace(interleave_noise=true).
Trace acquire_preempted_eval_trace(const ScenarioConfig& config,
                                   std::size_t n_cos,
                                   const crypto::Key16& key);

/// One scenario-suite eval capture: the trace plus the cipher that executed
/// each annotated CO (mixed-cipher captures interleave two; every other
/// scenario repeats the primary).
struct ScenarioCapture {
  Trace trace;
  std::vector<crypto::CipherId> co_ciphers;  ///< size == trace.cos.size()

  /// True start samples of the COs executed by `id`, ascending.
  std::vector<std::size_t> starts_of(crypto::CipherId id) const;
};

/// Campaign 3 variant: COs from `config.cipher` and `config.mixed_cipher`
/// alternate in one capture (both under `key`), interleaved with noise.
ScenarioCapture acquire_mixed_eval_trace(const ScenarioConfig& config,
                                         std::size_t n_cos,
                                         const crypto::Key16& key);

/// The countermeasure scenario registry. Benches, tests and examples
/// enumerate capture conditions through this one table so a new scenario
/// automatically lands in every robustness matrix.
enum class ScenarioKind : std::uint8_t {
  kConsecutive,   ///< paper IV-B: COs back-to-back
  kNoiseApps,     ///< paper IV-B: noise applications between COs
  kClockJitter,   ///< DVFS sample-rate wobble (apply_clock_jitter)
  kPreemption,    ///< interrupt ISRs split each CO (run_cipher_preempted)
  kGainDrift,     ///< strong baseline wander + AGC gain steps
  kMixedCipher,   ///< two ciphers interleaved in one capture
  kTruncatedTail, ///< capture cut mid-CO (trailing CO has no falling edge)
};

struct ScenarioCase {
  ScenarioKind kind;
  const char* name;         ///< stable id, e.g. "clock-jitter"
  const char* description;  ///< one-liner for tables and docs
};

class ScenarioSuite {
 public:
  /// Every scenario, paper ones first.
  static std::span<const ScenarioCase> all();

  /// Lookup by stable name; throws InvalidArgument for unknown names.
  static const ScenarioCase& find(std::string_view name);

  /// Acquires the evaluation capture of one scenario: `n_cos` COs of
  /// `config.cipher` under `key` (the mixed scenario alternates with
  /// `config.mixed_cipher`; when that equals the primary — e.g. a Camellia
  /// walk with the Camellia default partner — a differing partner is
  /// substituted so a registry walk works for any primary cipher),
  /// captured under the scenario's condition.
  static ScenarioCapture acquire(const ScenarioCase& scenario,
                                 const ScenarioConfig& config,
                                 std::size_t n_cos, const crypto::Key16& key);
};

}  // namespace scalocate::trace
