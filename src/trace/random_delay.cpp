#include "trace/random_delay.hpp"

namespace scalocate::trace {

const char* random_delay_name(RandomDelayConfig cfg) {
  switch (cfg) {
    case RandomDelayConfig::kOff:
      return "RD-0";
    case RandomDelayConfig::kRd2:
      return "RD-2";
    case RandomDelayConfig::kRd4:
      return "RD-4";
  }
  return "RD-?";
}

RandomDelayInjector::RandomDelayInjector(RandomDelayConfig config,
                                         std::uint64_t trng_seed)
    : config_(config), bound_(random_delay_bound(config)), trng_(trng_seed) {}

crypto::DataEvent RandomDelayInjector::make_dummy() {
  // Dummy instructions are drawn from the cheap ALU classes a hardware
  // random-delay unit can issue without touching architectural state.
  static constexpr crypto::OpClass kDummyOps[3] = {
      crypto::OpClass::kArith, crypto::OpClass::kXor, crypto::OpClass::kShift};
  const std::uint32_t selector = trng_.next_word();
  const crypto::OpClass op = kDummyOps[selector % 3];
  const std::uint32_t value = trng_.next_word();
  return crypto::DataEvent{op, value, 32};
}

}  // namespace scalocate::trace
