#include "trace/noise_apps.hpp"

#include "common/error.hpp"

namespace scalocate::trace {

std::string noise_phase_name(NoisePhase phase) {
  switch (phase) {
    case NoisePhase::kMemoryBurst:
      return "memory-burst";
    case NoisePhase::kAluLoop:
      return "alu-loop";
    case NoisePhase::kTableLookup:
      return "table-lookup";
    case NoisePhase::kBranchy:
      return "branchy";
    case NoisePhase::kIdle:
      return "idle";
    case NoisePhase::kMixed:
      return "mixed";
    case NoisePhase::kCount:
      break;
  }
  throw InvalidArgument("noise_phase_name: invalid phase");
}

NoiseAppGenerator::NoiseAppGenerator(std::uint64_t seed) : rng_(seed) {}

crypto::DataEvent NoiseAppGenerator::next_event(NoisePhase phase,
                                                std::size_t position) {
  using crypto::OpClass;
  const std::uint32_t value = static_cast<std::uint32_t>(rng_.next_u64());
  const double roll = rng_.uniform();

  OpClass op = OpClass::kArith;
  switch (phase) {
    case NoisePhase::kMemoryBurst:
      // Alternating load/store with occasional address arithmetic.
      if (roll < 0.45)
        op = OpClass::kLoad;
      else if (roll < 0.85)
        op = OpClass::kStore;
      else
        op = OpClass::kArith;
      break;
    case NoisePhase::kAluLoop:
      if (roll < 0.4)
        op = OpClass::kArith;
      else if (roll < 0.7)
        op = OpClass::kXor;
      else if (roll < 0.9)
        op = OpClass::kShift;
      else
        op = OpClass::kBranch;  // loop back-edge
      break;
    case NoisePhase::kTableLookup:
      // Table-driven code: lookup, combine, occasionally store.
      if (position % 4 == 0)
        op = OpClass::kSbox;
      else if (roll < 0.4)
        op = OpClass::kLoad;
      else if (roll < 0.8)
        op = OpClass::kXor;
      else
        op = OpClass::kStore;
      break;
    case NoisePhase::kBranchy:
      if (roll < 0.45)
        op = OpClass::kBranch;
      else if (roll < 0.8)
        op = OpClass::kArith;
      else
        op = OpClass::kLoad;
      break;
    case NoisePhase::kIdle:
      if (roll < 0.7)
        op = OpClass::kNop;
      else
        op = OpClass::kBranch;  // wait-loop back-edge
      break;
    case NoisePhase::kMixed: {
      static constexpr OpClass kAny[] = {
          OpClass::kLoad, OpClass::kStore, OpClass::kXor,
          OpClass::kShift, OpClass::kArith, OpClass::kMul,
          OpClass::kSbox, OpClass::kBranch};
      op = kAny[rng_.next_below(8)];
      break;
    }
    case NoisePhase::kCount:
      throw InvalidArgument("NoiseAppGenerator: invalid phase");
  }
  return crypto::DataEvent{op, value, 32};
}

}  // namespace scalocate::trace
