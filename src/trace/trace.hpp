// Side-channel trace container with in-band ground truth.
//
// A Trace is the simulator's stand-in for one oscilloscope capture. Apart
// from the raw samples it records, for validation only, the true start/end
// sample of every cryptographic operation (CO) executed while the trace was
// recorded -- information an attacker does not have, used exclusively to
// score locator hit rates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/cipher.hpp"

namespace scalocate::trace {

/// Ground-truth annotation of one CO execution inside a trace.
struct CoAnnotation {
  std::size_t start_sample = 0;  ///< first sample of the CO
  std::size_t end_sample = 0;    ///< one past the last sample of the CO
  crypto::Block16 plaintext{};   ///< input processed by this CO
  crypto::Block16 ciphertext{};  ///< output of this CO
};

/// One captured power trace.
struct Trace {
  std::vector<float> samples;
  std::vector<CoAnnotation> cos;  ///< ground truth, empty for noise traces
  std::string cipher_name;        ///< cipher executed ("" for noise traces)
  double sample_rate_hz = 125e6;  ///< acquisition metadata
  std::uint32_t random_delay_max = 0;  ///< RD configuration in effect

  std::size_t size() const { return samples.size(); }

  /// True CO start samples, in order.
  std::vector<std::size_t> co_starts() const;

  /// Mean CO length in samples (0 when no COs).
  double mean_co_length() const;
};

/// Binary serialization (magic-prefixed, little-endian).
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

}  // namespace scalocate::trace
