// Hardware random-delay countermeasure (RD-k).
//
// Mirrors the paper's modified RISC-V CPU: between every pair of
// consecutive program instructions the TRNG decides how many random dummy
// instructions (0..k) to insert. Dummies are cheap ALU operations with
// random operands, so they both desynchronize the trace (variable length)
// and morph its shape (random opcode baselines + random HW leakage),
// which is what defeats template/matched-filter locators.
#pragma once

#include <cstdint>

#include "crypto/event.hpp"
#include "trace/trng.hpp"

namespace scalocate::trace {

/// Paper configurations: RD-2 and RD-4 bound the number of inserted random
/// instructions between two consecutive program instructions to 2 and 4.
enum class RandomDelayConfig : std::uint32_t {
  kOff = 0,
  kRd2 = 2,
  kRd4 = 4,
};

/// Max inserted instructions for a configuration.
constexpr std::uint32_t random_delay_bound(RandomDelayConfig cfg) {
  return static_cast<std::uint32_t>(cfg);
}

/// Short display name, e.g. "RD-4".
const char* random_delay_name(RandomDelayConfig cfg);

/// Generates the dummy-instruction stream of the countermeasure.
class RandomDelayInjector {
 public:
  RandomDelayInjector(RandomDelayConfig config, std::uint64_t trng_seed);

  /// Invoked before every program instruction; calls `emit(event)` for each
  /// of the 0..k inserted dummy instructions.
  template <typename EmitFn>
  void inject(EmitFn&& emit) {
    const std::uint32_t count = trng_.next_delay(bound_);
    for (std::uint32_t i = 0; i < count; ++i) {
      emit(make_dummy());
      ++dummies_inserted_;
    }
  }

  std::uint64_t dummies_inserted() const { return dummies_inserted_; }
  RandomDelayConfig config() const { return config_; }

 private:
  crypto::DataEvent make_dummy();

  RandomDelayConfig config_;
  std::uint32_t bound_;
  Trng trng_;
  std::uint64_t dummies_inserted_ = 0;
};

}  // namespace scalocate::trace
