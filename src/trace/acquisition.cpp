#include "trace/acquisition.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace scalocate::trace {

AcquisitionModel::AcquisitionModel(AcquisitionConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  detail::require(config_.adc_bits >= 1 && config_.adc_bits <= 24,
                  "AcquisitionModel: adc_bits out of range");
  detail::require(config_.full_scale_max > config_.full_scale_min,
                  "AcquisitionModel: invalid full-scale range");
  detail::require(config_.gain_step_prob == 0.0 ||
                      (config_.gain_min > 0.0 &&
                       config_.gain_max >= config_.gain_min),
                  "AcquisitionModel: invalid AGC gain range");
}

void AcquisitionModel::apply(std::vector<float>& samples) {
  const double two_pi = 2.0 * std::numbers::pi;
  const double levels = static_cast<double>((1u << config_.adc_bits) - 1);
  const double fs_min = config_.full_scale_min;
  const double fs_span = config_.full_scale_max - fs_min;

  for (auto& s : samples) {
    double v = s;
    // AGC gain steps. The guard keeps the RNG stream untouched when the
    // feature is off, so default-configured captures stay bit-identical.
    if (config_.gain_step_prob > 0.0) {
      if (rng_.bernoulli(config_.gain_step_prob))
        gain_ = rng_.uniform(config_.gain_min, config_.gain_max);
      v *= gain_;
    }
    // Slow baseline wander.
    if (config_.drift_amplitude != 0.0 && config_.drift_period > 0.0) {
      const double phase =
          two_pi * static_cast<double>(sample_index_) / config_.drift_period;
      v += config_.drift_amplitude * std::sin(phase);
    }
    // White measurement noise.
    if (config_.noise_sigma > 0.0) v += rng_.normal(0.0, config_.noise_sigma);
    // 12-bit ADC: clamp to full scale and round to the nearest code.
    if (config_.enable_quantization) {
      double normalized = (v - fs_min) / fs_span;
      normalized = normalized < 0.0 ? 0.0 : (normalized > 1.0 ? 1.0 : normalized);
      const double code = std::round(normalized * levels);
      v = fs_min + (code / levels) * fs_span;
    }
    s = static_cast<float>(v);
    ++sample_index_;
  }
}

}  // namespace scalocate::trace
