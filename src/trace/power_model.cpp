#include "trace/power_model.hpp"

#include <bit>

#include "common/error.hpp"

namespace scalocate::trace {

int hamming_weight(std::uint64_t v) { return std::popcount(v); }

PowerModel::PowerModel(PowerModelConfig config) : config_(config) {
  detail::require(config_.samples_per_op >= 1,
                  "PowerModel: samples_per_op must be >= 1");
}

void PowerModel::render(const crypto::DataEvent& event,
                        std::vector<float>& out) const {
  const auto op_index = static_cast<std::size_t>(event.op);
  detail::require(op_index < config_.base.size(),
                  "PowerModel::render: invalid opcode class");
  const double base = config_.base[op_index];

  // Centered, width-normalized Hamming weight in [-0.5, 0.5]. NOPs and
  // branches perform no register write-back, so they have no data term.
  const bool carries_data = event.op != crypto::OpClass::kNop &&
                            event.op != crypto::OpClass::kBranch;
  const double hw_centered =
      static_cast<double>(hamming_weight(event.value)) /
          static_cast<double>(event.width) -
      0.5;
  const double data_term =
      carries_data ? config_.data_alpha * hw_centered : 0.0;

  const std::size_t n = config_.samples_per_op;
  // The data-dependent current appears at write-back: the second-to-last
  // sample of the instruction (or the only sample when n == 1).
  const std::size_t wb_sample = n >= 2 ? n - 2 : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double shape =
        config_.pulse[(i * config_.pulse.size()) / n];  // stretch pulse to n
    double value = base * shape;
    if (i == wb_sample) value += data_term;
    out.push_back(static_cast<float>(value));
  }
}

}  // namespace scalocate::trace
