// Simulated hardware true random number generator (TRNG).
//
// The paper's platform drives its random-delay countermeasure from an
// FPGA ring-oscillator TRNG [22]. We model it as a whitened entropy source:
// a deterministic Rng (so experiments reproduce) behind the narrow
// interface the countermeasure consumes. The health-test counters mimic a
// NIST SP 800-90B style continuous test and are exercised by unit tests.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace scalocate::trace {

class Trng {
 public:
  explicit Trng(std::uint64_t seed);

  /// Uniform value in [0, bound] inclusive; the per-instruction random
  /// delay amount. bound == 0 always returns 0.
  std::uint32_t next_delay(std::uint32_t bound);

  /// Raw 32 random bits (dummy-instruction operand values).
  std::uint32_t next_word();

  /// Total values produced (health/consumption accounting).
  std::uint64_t words_produced() const { return words_produced_; }

  /// Continuous repetition-count health test: longest run of identical
  /// words observed so far. A real TRNG would raise an alarm past a cutoff.
  std::uint32_t longest_repetition() const { return longest_repetition_; }

 private:
  Rng rng_;
  std::uint64_t words_produced_ = 0;
  std::uint32_t last_word_ = 0;
  std::uint32_t current_run_ = 0;
  std::uint32_t longest_repetition_ = 0;
};

}  // namespace scalocate::trace
