// StreamingLocator: push-based, bounded-memory CO localization.
//
// The offline CoLocator needs the whole trace in memory before it can
// score a single window. This runtime ingests the trace as arbitrary-size
// chunks (feed), keeps only a bounded tail of samples in a ring buffer,
// and carries every pipeline stage across chunk boundaries:
//
//   samples -> [ring] -> sliding CNN scores -> threshold square wave
//           -> incremental median filter -> rising edges
//           -> offset correction + fine template alignment -> detections
//
// Detections are emitted online, as soon as no future sample can change
// them, and are *identical* to CoLocator::locate on the concatenated
// stream (the parity is tested for chunk sizes from < one window up to the
// full trace). Two consequences of going online:
//
//   - the decision threshold must be fixed up front: Otsu over the whole
//     trace's score distribution is unavailable mid-stream, so automatic
//     (NaN) thresholds fall back to the one measured on the calibration
//     trace during training (CoLocator::calibrated_threshold);
//   - detections lag the stream head by the median-filter half-width plus
//     the fine-alignment search radius (a few hundred samples), the price
//     of emitting exactly what the offline pipeline would.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/locator.hpp"
#include "obs/registry.hpp"
#include "runtime/ring_buffer.hpp"

namespace scalocate::runtime {

/// One located CO, emitted online.
struct Detection {
  std::size_t start = 0;     ///< offset-corrected, fine-aligned CO start
  std::size_t raw_edge = 0;  ///< uncorrected rising-edge sample (diagnostic)
};

struct StreamingConfig {
  /// What feed() does with a chunk containing non-finite samples (NaN/Inf
  /// — a dying probe, a truncated capture, an injected poison). Either
  /// way the corruption is counted (StreamMetrics::corrupt_samples,
  /// StreamingLocator::corrupt_samples()) and never reaches the model:
  /// unchecked, one NaN propagates through window standardization into
  /// every score of every window containing it.
  enum class NanPolicy {
    /// Throw CorruptSignal and leave the stream untouched: the bad chunk
    /// is not appended, and the caller may keep feeding clean chunks —
    /// detections then match the offline locate over the samples actually
    /// accepted. The default: corruption is loud.
    kReject,
    /// Replace each non-finite sample with 0.0f and continue. Detections
    /// match the offline locate over the sanitized stream.
    kSanitize,
  };
  NanPolicy nan_policy = NanPolicy::kReject;
  /// Windows scored per CNN forward pass.
  std::size_t batch_size = 64;
  /// Decision threshold override. NaN = inherit: the locator's configured
  /// threshold when fixed, otherwise its calibration-trace Otsu threshold.
  float threshold = std::numeric_limits<float>::quiet_NaN();
  /// Telemetry sink. When set, the stream counts samples fed, windows
  /// scored and detections emitted, and records per-detection emission lag
  /// (stream head minus detection start, in samples) under `metric_prefix`.
  /// Pure observation: detections stay bit-identical to the offline path.
  /// Null = telemetry off. The registry must outlive the stream.
  obs::Registry* registry = nullptr;
  /// Instrument name prefix, e.g. "stream.aes128" (default "stream").
  std::string metric_prefix;
};

/// Resolved per-stream instrument set. Streams sharing a prefix (e.g. every
/// stream of one model) aggregate into the same instruments.
struct StreamMetrics {
  obs::Counter* samples_fed = nullptr;
  obs::Counter* windows_scored = nullptr;
  obs::Counter* detections = nullptr;
  /// Non-finite samples seen at feed() boundaries (rejected or sanitized
  /// per StreamingConfig::nan_policy; either way they never reach the
  /// model).
  obs::Counter* corrupt_samples = nullptr;
  /// Samples between the stream head and the detection start at the moment
  /// the detection became final — the online-emission price (median
  /// half-width + refinement radius, see the class comment).
  obs::Histogram* emission_lag_samples = nullptr;

  bool enabled() const { return samples_fed != nullptr; }
  static StreamMetrics resolve(obs::Registry& registry,
                               const std::string& prefix);
};

class StreamingLocator {
 public:
  /// `locator` must be trained and outlive this object; its model is
  /// shared, never copied. Each StreamingLocator owns its scratch
  /// workspace, so independent instances may run on separate threads
  /// against the same locator.
  explicit StreamingLocator(const core::CoLocator& locator,
                            StreamingConfig config = {});

  /// Pushes a chunk of samples; returns every detection that became final.
  /// A chunk with non-finite samples is handled per
  /// StreamingConfig::nan_policy: rejected with CorruptSignal (stream
  /// state untouched — keep feeding clean chunks) or sanitized to 0.0f.
  std::vector<Detection> feed(std::span<const float> chunk);

  /// Marks end-of-stream and flushes the remaining detections. feed() is
  /// invalid afterwards until reset().
  std::vector<Detection> finish();

  /// Forgets all stream state (keeps the model/config) for a new trace.
  void reset();

  // --- external scheduling (cross-session batching) ----------------------
  // The scoring-core half of the ingest/scoring split: a scheduler (see
  // runtime::WindowBatcher) appends pre-validated samples, asks how many
  // windows are ready, scores them TOGETHER with other sessions' windows
  // through one shared score_window_batch GEMM, and hands the scores back.
  // Because every CNN row is computed independently of its batch neighbors
  // (the batch-composition invariance proven by the offline/streaming
  // parity suite), routing scores through accept_scores() yields
  // detections bit-identical to the self-scoring feed() path.
  //
  // All five methods below — like feed()/finish() — must be called from
  // one thread at a time (the scheduler thread); cross-thread hand-off of
  // raw samples is the ingest half's job (runtime::SpscRing).

  /// Result of scrub_non_finite: the data to append (possibly `scratch`
  /// with zeros substituted) and how many non-finite samples were found.
  struct ScrubResult {
    std::span<const float> data;
    std::size_t bad = 0;
  };
  /// Shared NaN-policy scrub used by the self-scoring feed() and by the
  /// batched ingest half (runtime::BatchedStream::feed): counts non-finite
  /// samples and, under kSanitize, rewrites them to 0.0f in `scratch`
  /// (handles `chunk` already aliasing `scratch`, as after fault
  /// poisoning). Never throws — the caller owns the accounting and the
  /// kReject CorruptSignal, so corruption is counted even when the chunk
  /// is rejected.
  static ScrubResult scrub_non_finite(std::span<const float> chunk,
                                      StreamingConfig::NanPolicy policy,
                                      std::vector<float>& scratch);

  /// Appends pre-validated samples (NaN policy already applied by the
  /// ingest half) without scoring anything.
  void append_ingested(std::span<const float> chunk);
  /// Windows fully contained in the stream so far and not yet scored.
  std::size_t ready_windows() const;
  /// Raw (unstandardized) view of ready window i, i < ready_windows().
  /// Standardization happens inside the scheduler's score_window_batch,
  /// exactly as it does on the self-scoring path.
  std::span<const float> ready_window(std::size_t i) const;
  /// Accepts externally computed scores for the first scores.size() ready
  /// windows and advances the downstream pipeline (median filter, edge
  /// refinement, release, ring trim); appends finalized detections to out.
  void accept_scores(std::span<const float> scores,
                     std::vector<Detection>& out);
  /// End-of-stream for externally scheduled streams. Requires every ready
  /// window to have been scored (ready_windows() == 0) — the scheduler's
  /// final flush guarantees that — then drains the pipeline tail.
  void finish_into(std::vector<Detection>& out);

  /// Total samples fed so far.
  std::size_t samples_consumed() const { return ring_.size(); }
  /// Windows scored so far.
  std::size_t windows_scored() const { return next_window_; }
  /// Samples currently resident in the ring (bounded-memory check).
  std::size_t resident_samples() const {
    return ring_.size() - ring_.oldest();
  }
  float threshold() const { return threshold_; }
  std::size_t median_k() const { return median_k_; }
  bool finished() const { return finished_; }
  /// Non-finite samples seen at feed() boundaries on this stream
  /// (maintained with or without telemetry). reset() clears it.
  std::size_t corrupt_samples() const { return corrupt_samples_; }

 private:
  struct Pending {
    std::size_t final_start;
    std::size_t raw_edge;
  };

  void pump(bool eof, std::vector<Detection>& out);
  void score_ready_windows();
  void ingest_scores(std::span<const float> scores);
  void emit_filtered(bool eof);
  void on_filtered_value(std::size_t index, float value);
  void refine_ready_edges(bool eof);
  void release_pending(bool eof, std::vector<Detection>& out);
  void trim_ring();
  std::int64_t future_lower_bound(std::int64_t raw_sample) const;

  const core::CoLocator& locator_;
  core::SlidingWindowClassifier classifier_;
  nn::Workspace ws_;

  // Pipeline constants resolved at construction.
  std::size_t window_ = 0;
  std::size_t stride_ = 1;
  std::size_t batch_size_ = 64;
  StreamingConfig::NanPolicy nan_policy_ = StreamingConfig::NanPolicy::kReject;
  float threshold_ = 0.0f;
  std::size_t median_k_ = 3;
  std::size_t half_ = 1;  ///< median_k_ / 2
  std::size_t merge_gap_ = 0;  ///< Segmenter plateau-split merge width
  std::int64_t coarse_ = 0;
  std::int64_t fine_ = 0;
  bool fine_align_ = false;     ///< config flag (drives the fine_ stage)
  std::size_t tmpl_len_ = 0;    ///< 0 = no template snap
  std::size_t radius_ = 0;
  bool dedup_ = false;
  std::size_t min_gap_ = 0;

  // Stream state.
  SampleRing ring_;
  std::size_t next_window_ = 0;   ///< next window index to score
  std::deque<float> square_;      ///< square wave tail, starts at sq_base_
  std::size_t sq_base_ = 0;       ///< window index of square_[0]
  std::size_t filt_next_ = 0;     ///< next median-filter index to emit
  float prev_filt_ = 0.0f;        ///< filtered[filt_next_ - 1]
  std::optional<std::size_t> last_fall_;  ///< latest falling-edge window
  std::deque<std::size_t> raw_edges_;  ///< unrefined edges (sample indices)
  std::vector<Pending> pending_;       ///< refined, sorted by final_start
  std::optional<std::size_t> last_kept_;  ///< dedup state
  bool finished_ = false;
  std::size_t corrupt_samples_ = 0;  ///< non-finite samples seen at feed()

  // Reused scratch. (Window staging lives in ws_.staging(): windows are
  // standardized from the ring directly into the batch tensor.)
  std::vector<float> scores_buf_;
  std::vector<float> median_scratch_;
  std::vector<float> neighborhood_;
  std::vector<float> sanitize_buf_;  ///< feed() NaN-scrub / poison scratch

  StreamMetrics metrics_;  ///< all-null when telemetry is off
};

}  // namespace scalocate::runtime
