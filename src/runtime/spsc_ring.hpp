// Wait-free single-producer/single-consumer sample ring: the ingest half
// of a batched stream.
//
// StreamingLocator::feed used to do ingest AND scoring on the caller's
// thread. Under cross-session batching those halves run on different
// threads: the session thread pushes raw samples here (wait-free — the
// producer never takes a lock, never allocates, never waits on the
// scheduler), and the WindowBatcher thread drains them into the scoring
// core's SampleRing when it assembles the next shared GEMM batch.
//
// Why this class exists NEXT TO SampleRing instead of replacing it (the
// two look similar but answer different questions):
//
//   SampleRing  single-threaded, unbounded, absolute-indexed, and above
//               all CONTIGUOUS: the scorer and the fine-alignment snap take
//               std::span views addressed by absolute stream position, so
//               the storage must present the live tail as one block and
//               may grow/compact as the pipeline's reach dictates.
//   SpscRing    cross-thread, bounded, wrap-around: a fixed power-of-two
//               buffer with monotonically increasing head/tail counters.
//               Samples wrap, so there is no contiguous random access —
//               only FIFO transfer. Bounding is the point: a fixed
//               capacity is what makes the producer wait-free (no
//               reallocation) and gives the serving plane a per-stream
//               memory budget with natural backpressure when the scheduler
//               falls behind.
//
// Making SampleRing wrap this storage would force a fixed capacity and
// wrap-aware (two-piece) views onto every consumer of the scoring
// pipeline; keeping the transfer queue and the random-access tail separate
// keeps both simple. The overflow/wrap behavior here is stress-tested in
// tests/test_fleet.cpp, mirroring the SampleRing::view overflow regression
// suite from the scenario-hardening PR.
//
// Memory model: `tail_` is written only by the producer (release) and read
// by the consumer (acquire); `head_` the other way around. Both are
// monotonic uint64 stream positions, so occupancy is tail - head and
// indices never wrap (2^64 samples is centuries of ingest).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace scalocate::runtime {

class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 64 samples).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 64;
    while (cap < min_capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return buf_.size(); }

  // -- producer side (exactly one thread) ----------------------------------

  /// Appends as much of `chunk` as fits; returns the number of samples
  /// accepted (a prefix — the caller retries the rest once the consumer
  /// drains). Wait-free: one acquire load, a copy, one release store.
  std::size_t try_push(std::span<const float> chunk) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t free_slots =
        buf_.size() - static_cast<std::size_t>(tail - head);
    const std::size_t n = chunk.size() < free_slots ? chunk.size() : free_slots;
    if (n == 0) return 0;
    const std::size_t at = static_cast<std::size_t>(tail) & mask_;
    const std::size_t first = std::min(n, buf_.size() - at);
    std::memcpy(buf_.data() + at, chunk.data(), first * sizeof(float));
    if (n > first)
      std::memcpy(buf_.data(), chunk.data() + first,
                  (n - first) * sizeof(float));
    tail_.store(tail + n, std::memory_order_release);
    // Producer-only write: the deepest occupancy this ring ever reached
    // (sampled right after the push, when it is largest).
    const std::size_t occupied = static_cast<std::size_t>(tail + n - head);
    if (occupied > high_water_.load(std::memory_order_relaxed))
      high_water_.store(occupied, std::memory_order_relaxed);
    return n;
  }

  /// Total samples ever accepted (producer-side absolute stream position).
  std::uint64_t pushed() const {
    return tail_.load(std::memory_order_relaxed);
  }

  // -- consumer side (exactly one thread) ----------------------------------

  /// Moves every available sample out of the ring via `sink`, which is
  /// invoked with one or two contiguous spans (two when the data wraps).
  /// Returns the number of samples drained.
  template <typename Sink>
  std::size_t drain(Sink&& sink) {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(tail - head);
    if (n == 0) return 0;
    const std::size_t at = static_cast<std::size_t>(head) & mask_;
    const std::size_t first = std::min(n, buf_.size() - at);
    sink(std::span<const float>(buf_.data() + at, first));
    if (n > first) sink(std::span<const float>(buf_.data(), n - first));
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  // -- observers (any thread; instantaneous snapshots) ----------------------

  /// Samples currently in the ring. Exact once producer and consumer
  /// quiesce; a live read may lag either side by an in-flight batch.
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(tail - head);
  }

  /// Deepest occupancy ever observed (the ingest-ring high-watermark the
  /// batch telemetry reports).
  std::size_t high_watermark() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<float> buf_;
  std::size_t mask_ = 0;
  // Separate cache lines so producer stores never invalidate the consumer's
  // head line and vice versa.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer position
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer position
  alignas(64) std::atomic<std::size_t> high_water_{0};
};

}  // namespace scalocate::runtime
