// FaultInjector: deterministic fault injection for the serving plane.
//
// Compiled in ALWAYS — there is no build flag to forget in production — but
// inert unless a test or bench arms a site: the hot-path cost of an unarmed
// injector is one relaxed atomic load. Faults are keyed by site name, a
// stable string each hook passes at its call point:
//
//   site              hook location                       actions
//   ----------------  ----------------------------------  --------------
//   "service.job"     LocatorService worker, before the   throw, stall
//   (or "<metric      locate runs (prefix follows the
//    prefix>.job")    service's metric_prefix)
//   "stream.feed"     StreamingLocator::feed, on the      poison (NaN)
//                     chunk before validation
//   "artifact.read"   api::load_artifact, on the raw      truncate
//                     bytes before any field is parsed
//
// A FaultSpec fires on hits `skip < n <= skip + times` of its site, so a
// test can let a warm-up pass through, inject an exact number of faults,
// and then reconcile `injected(site)` against the typed errors it observed
// and the obs counters the service recorded — the chaos suite's accounting
// invariant. Injected throws carry the Transient mixin (a worker blip is
// the canonical retryable failure), which is what lets the api::with_retry
// tests drive real retries.
//
// Thread safety: arm/disarm/reset and the hook entry points are all safe
// from any thread; a stall sleeps outside the injector lock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace scalocate::runtime {

/// Thrown by an armed kThrow site. Transient: the canonical retryable
/// worker failure (see api::with_retry).
class InjectedFault : public Error, public Transient {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

struct FaultSpec {
  enum class Action {
    kThrow,     ///< check(): throw InjectedFault
    kStall,     ///< check(): sleep for `stall` (a wedged worker)
    kPoison,    ///< poison(): NaN every `poison_stride`-th sample
    kTruncate,  ///< truncate(): keep only `truncate_fraction` of the bytes
  };
  Action action = Action::kThrow;
  /// The first `skip` hits of the site pass through unharmed.
  std::size_t skip = 0;
  /// After `skip`, fire this many times, then go inert (count as hits).
  std::size_t times = SIZE_MAX;
  std::chrono::milliseconds stall{0};
  std::size_t poison_stride = 64;  ///< >= 1; sample 0 is always poisoned
  double truncate_fraction = 0.5;  ///< fraction of bytes KEPT
};

class FaultInjector {
 public:
  /// The process-wide injector every hook consults.
  static FaultInjector& instance();

  /// Installs (or replaces) the spec for `site`, resetting its counters.
  void arm(const std::string& site, FaultSpec spec);
  void disarm(const std::string& site);
  /// Disarms every site and zeroes all counters.
  void reset();

  /// Times the site's hook ran / times a fault actually fired there.
  std::uint64_t hits(const std::string& site) const;
  std::uint64_t injected(const std::string& site) const;

  /// True when any site is armed (the hooks' fast-path gate).
  bool armed() const { return armed_.load(std::memory_order_relaxed) > 0; }

  // -- hook entry points (called from library code) -------------------------

  /// Control-flow site: may throw InjectedFault or stall. No-op when the
  /// site is unarmed or its action is a data action.
  void check(const char* site);

  /// Data site: when armed with kPoison, copies `in` into `scratch` with
  /// every poison_stride-th sample (and sample 0) replaced by quiet NaN and
  /// returns true; otherwise returns false and leaves `scratch` alone.
  bool poison(const char* site, std::span<const float> in,
              std::vector<float>& scratch);

  /// Data site: when armed with kTruncate, drops the tail of `bytes`
  /// (keeping truncate_fraction of them) and returns true.
  bool truncate(const char* site, std::string& bytes);

 private:
  struct SiteState {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t injected = 0;
  };

  /// Registers a hit and returns the spec if this hit should fire.
  bool should_fire(const char* site, FaultSpec::Action action,
                   FaultSpec* out);

  mutable std::mutex mutex_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::atomic<int> armed_{0};  ///< number of armed sites
};

}  // namespace scalocate::runtime
