#include "runtime/locator_service.hpp"

#include "common/error.hpp"

namespace scalocate::runtime {

/// Runs finish_job() however the job ends — result, locate exception, or
/// cancellation — so jobs_completed() always converges to jobs_submitted()
/// and the backpressure slot is always released.
struct CompletionGuard {
  LocatorService& service;
  ~CompletionGuard() { service.finish_job(); }
};

LocatorService::LocatorService(const core::CoLocator& locator,
                               ServiceConfig config)
    : locator_(locator),
      owned_pool_(std::make_unique<ThreadPool>(resolve_workers(config.workers))),
      pool_(owned_pool_.get()),
      scratch_(pool_->worker_count()),
      max_depth_(config.max_queue_depth) {
  detail::require(locator_.is_trained(),
                  "LocatorService: locator must be trained");
}

LocatorService::LocatorService(const core::CoLocator& locator, ThreadPool& pool,
                               ServiceConfig config)
    : locator_(locator),
      pool_(&pool),
      scratch_(pool.worker_count()),
      max_depth_(config.max_queue_depth) {
  detail::require(locator_.is_trained(),
                  "LocatorService: locator must be trained");
}

LocatorService::~LocatorService() { drain(); }

void LocatorService::drain() {
  // Waits on THIS service's jobs only: on a shared (Engine) pool, other
  // models' traffic must not block tearing this one down.
  std::unique_lock<std::mutex> lock(depth_mutex_);
  drained_cv_.wait(lock,
                   [this] { return completed_.load() >= submitted_.load(); });
}

void LocatorService::acquire_slot() {
  if (max_depth_ == 0) {
    ++submitted_;
    return;
  }
  std::unique_lock<std::mutex> lock(depth_mutex_);
  depth_cv_.wait(lock, [this] { return in_flight_ < max_depth_; });
  ++in_flight_;
  ++submitted_;
}

void LocatorService::finish_job() {
  // Notify while holding the lock: a drain()er woken by this completion may
  // destroy the service the moment it returns, so the notify must not touch
  // the condition variables after the counters became visible.
  std::lock_guard<std::mutex> lock(depth_mutex_);
  ++completed_;
  if (max_depth_ > 0) --in_flight_;
  depth_cv_.notify_one();
  drained_cv_.notify_all();
}

void LocatorService::check_cancel(const CancelFlag& cancel) {
  if (cancel && cancel->load())
    throw Cancelled("locate job cancelled before it started");
}

std::future<std::vector<std::size_t>> LocatorService::submit(
    std::vector<float> trace, CancelFlag cancel) {
  acquire_slot();
  auto owned = std::make_shared<std::vector<float>>(std::move(trace));
  return pool_->submit(
      [this, owned, cancel](std::size_t worker) -> std::vector<std::size_t> {
        CompletionGuard done{*this};
        check_cancel(cancel);
        return locator_.locate(*owned, scratch_[worker]);
      });
}

std::future<std::vector<std::size_t>> LocatorService::submit_view(
    std::span<const float> trace, CancelFlag cancel) {
  acquire_slot();
  return pool_->submit(
      [this, trace, cancel](std::size_t worker) -> std::vector<std::size_t> {
        CompletionGuard done{*this};
        check_cancel(cancel);
        return locator_.locate(trace, scratch_[worker]);
      });
}

std::future<LocatorService::TimedResult> LocatorService::submit_timed(
    std::span<const float> trace) {
  acquire_slot();
  const auto enqueued = std::chrono::steady_clock::now();
  return pool_->submit([this, trace, enqueued](std::size_t worker) {
    CompletionGuard done{*this};
    TimedResult result;
    result.starts = locator_.locate(trace, scratch_[worker]);
    result.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count();
    return result;
  });
}

}  // namespace scalocate::runtime
