#include "runtime/locator_service.hpp"

#include <thread>

#include "common/error.hpp"

namespace scalocate::runtime {

namespace {

std::size_t resolve_workers(std::size_t configured) {
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Counts the job as completed even when locate() throws (the exception
/// still propagates through the future), so jobs_completed() always
/// converges to jobs_submitted() once the service is idle.
struct CompletionGuard {
  std::atomic<std::size_t>& counter;
  ~CompletionGuard() { ++counter; }
};

}  // namespace

LocatorService::LocatorService(const core::CoLocator& locator,
                               ServiceConfig config)
    : locator_(locator),
      scratch_(resolve_workers(config.workers)),
      pool_(resolve_workers(config.workers)) {
  detail::require(locator_.is_trained(),
                  "LocatorService: locator must be trained");
}

LocatorService::~LocatorService() { drain(); }

void LocatorService::drain() { pool_.wait_idle(); }

std::future<std::vector<std::size_t>> LocatorService::submit(
    std::vector<float> trace) {
  ++submitted_;
  auto owned = std::make_shared<std::vector<float>>(std::move(trace));
  return pool_.submit(
      [this, owned](std::size_t worker) -> std::vector<std::size_t> {
        CompletionGuard done{completed_};
        return locator_.locate(*owned, scratch_[worker]);
      });
}

std::future<std::vector<std::size_t>> LocatorService::submit_view(
    std::span<const float> trace) {
  ++submitted_;
  return pool_.submit(
      [this, trace](std::size_t worker) -> std::vector<std::size_t> {
        CompletionGuard done{completed_};
        return locator_.locate(trace, scratch_[worker]);
      });
}

std::future<LocatorService::TimedResult> LocatorService::submit_timed(
    std::span<const float> trace) {
  ++submitted_;
  const auto enqueued = std::chrono::steady_clock::now();
  return pool_.submit([this, trace, enqueued](std::size_t worker) {
    CompletionGuard done{completed_};
    TimedResult result;
    result.starts = locator_.locate(trace, scratch_[worker]);
    result.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count();
    return result;
  });
}

}  // namespace scalocate::runtime
