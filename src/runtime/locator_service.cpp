#include "runtime/locator_service.hpp"

#include <utility>

#include "common/error.hpp"
#include "nn/kernels/parallel.hpp"
#include "runtime/fault_injector.hpp"

namespace scalocate::runtime {

ServiceMetrics ServiceMetrics::resolve(obs::Registry& registry,
                                       const std::string& prefix) {
  const std::string p = prefix.empty() ? "service" : prefix;
  ServiceMetrics m;
  m.requests = &registry.counter(p + ".requests");
  m.completed = &registry.counter(p + ".completed");
  m.cancelled = &registry.counter(p + ".cancelled");
  m.backpressure_blocks = &registry.counter(p + ".backpressure_blocks");
  m.rejected = &registry.counter(p + ".rejected");
  m.shed = &registry.counter(p + ".shed");
  m.deadline_exceeded = &registry.counter(p + ".deadline_exceeded");
  m.watchdog_trips = &registry.counter(p + ".watchdog_trips");
  m.queue_depth = &registry.gauge(p + ".queue_depth");
  m.queue_wait_ns = &registry.histogram(p + ".queue_wait_ns");
  m.latency_ns = &registry.histogram(p + ".latency_ns");
  return m;
}

namespace {
std::size_t resolve_concurrency(std::size_t configured, std::size_t workers) {
  const std::size_t cap = configured == 0 ? workers : configured;
  return cap == 0 ? 1 : cap;
}
}  // namespace

LocatorService::LocatorService(const core::CoLocator& locator,
                               ServiceConfig config)
    : locator_(locator),
      owned_pool_(std::make_unique<ThreadPool>(resolve_workers(config.workers))),
      pool_(owned_pool_.get()),
      scratch_(pool_->worker_count()),
      max_depth_(config.max_queue_depth),
      admission_(config.admission),
      concurrency_cap_(
          resolve_concurrency(config.max_concurrency, pool_->worker_count())),
      intra_op_threads_(config.intra_op_threads),
      fault_site_((config.metric_prefix.empty() ? std::string("service")
                                                : config.metric_prefix) +
                  ".job"),
      worker_start_ns_(pool_->worker_count()),
      worker_job_serial_(pool_->worker_count()),
      worker_flagged_serial_(pool_->worker_count(), 0),
      watchdog_multiple_(config.watchdog_p99_multiple),
      watchdog_min_samples_(config.watchdog_min_samples),
      watchdog_poll_(config.watchdog_poll) {
  detail::require(locator_.is_trained(),
                  "LocatorService: locator must be trained");
  if (config.registry) {
    metrics_ = ServiceMetrics::resolve(*config.registry, config.metric_prefix);
    // The service owns this pool, so it also owns publishing the pool's
    // instruments (an external pool's owner — api::Engine — wires its own).
    owned_pool_->attach_metrics(*config.registry);
  }
  start_watchdog();
}

LocatorService::LocatorService(const core::CoLocator& locator, ThreadPool& pool,
                               ServiceConfig config)
    : locator_(locator),
      pool_(&pool),
      scratch_(pool.worker_count()),
      max_depth_(config.max_queue_depth),
      admission_(config.admission),
      concurrency_cap_(
          resolve_concurrency(config.max_concurrency, pool.worker_count())),
      intra_op_threads_(config.intra_op_threads),
      fault_site_((config.metric_prefix.empty() ? std::string("service")
                                                : config.metric_prefix) +
                  ".job"),
      worker_start_ns_(pool.worker_count()),
      worker_job_serial_(pool.worker_count()),
      worker_flagged_serial_(pool.worker_count(), 0),
      watchdog_multiple_(config.watchdog_p99_multiple),
      watchdog_min_samples_(config.watchdog_min_samples),
      watchdog_poll_(config.watchdog_poll) {
  detail::require(locator_.is_trained(),
                  "LocatorService: locator must be trained");
  if (config.registry)
    metrics_ = ServiceMetrics::resolve(*config.registry, config.metric_prefix);
  start_watchdog();
}

LocatorService::~LocatorService() {
  drain();
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

void LocatorService::drain() {
  // Waits on THIS service's jobs only: on a shared (Engine) pool, other
  // models' traffic must not block tearing this one down. Every accepted
  // job reaches finish_locked() exactly once — run, shed, cancelled, or
  // expired — so the predicate always converges.
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock,
                   [this] { return completed_.load() >= submitted_.load(); });
}

std::optional<std::chrono::steady_clock::time_point>
LocatorService::resolve_deadline(const SubmitOptions& options) {
  std::optional<std::chrono::steady_clock::time_point> deadline =
      options.deadline;
  if (options.timeout) {
    const auto from_timeout = std::chrono::steady_clock::now() + *options.timeout;
    if (!deadline || from_timeout < *deadline) deadline = from_timeout;
  }
  return deadline;
}

template <typename R, typename Body>
std::future<R> LocatorService::submit_impl(CancelFlag cancel,
                                           const SubmitOptions& options,
                                           Body body) {
  auto promise = std::make_shared<std::promise<R>>();
  std::future<R> future = promise->get_future();

  auto job = std::make_shared<JobRec>();
  job->cancel = std::move(cancel);
  if (const auto deadline = resolve_deadline(options)) {
    job->deadline = *deadline;
    job->has_deadline = true;
  } else {
    job->deadline = std::chrono::steady_clock::time_point::max();
  }
  if (metrics_.enabled()) job->enqueued_ns = obs::steady_now_ns();
  job->fail = [promise](std::exception_ptr error) {
    promise->set_exception(std::move(error));
  };
  job->run = [this, promise, body = std::move(body)](std::size_t worker) {
    try {
      // Chaos hook: an armed "<prefix>.job" site throws/stalls here, i.e.
      // on the worker after dispatch — exactly where a real worker blip
      // lands. The throw surfaces through the future as a typed
      // (transient) InjectedFault.
      FaultInjector::instance().check(fault_site_.c_str());
      // Pin this job's kernel fan-out to the configured budget (1 keeps
      // the legacy one-core-per-job behavior; 0 = process default).
      nn::kernels::IntraOpGuard intra(intra_op_threads_);
      promise->set_value(body(worker));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };

  enqueue(job);
  return future;
}

void LocatorService::enqueue(const JobPtr& job) {
  if (metrics_.enabled()) metrics_.requests->add();

  // Already-expired deadlines are refused before any queueing: the cheap
  // path the tentpole asks for. Counted as a rejection, not a submission.
  if (job->has_deadline &&
      std::chrono::steady_clock::now() >= job->deadline) {
    rejected_.fetch_add(1);
    deadline_exceeded_.fetch_add(1);
    if (metrics_.enabled()) {
      metrics_.rejected->add();
      metrics_.deadline_exceeded->add();
    }
    job->fail(std::make_exception_ptr(DeadlineExceeded(
        "locate job deadline already passed at submit")));
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (max_depth_ > 0 && in_flight_ >= max_depth_) {
    switch (admission_) {
      case AdmissionPolicy::kBlock: {
        if (metrics_.enabled()) metrics_.backpressure_blocks->add();
        if (job->has_deadline) {
          const bool admitted =
              depth_cv_.wait_until(lock, job->deadline, [this] {
                return in_flight_ < max_depth_;
              });
          if (!admitted) {
            rejected_.fetch_add(1);
            deadline_exceeded_.fetch_add(1);
            if (metrics_.enabled()) {
              metrics_.rejected->add();
              metrics_.deadline_exceeded->add();
            }
            lock.unlock();
            job->fail(std::make_exception_ptr(DeadlineExceeded(
                "locate job deadline passed while blocked on backpressure")));
            return;
          }
        } else {
          depth_cv_.wait(lock, [this] { return in_flight_ < max_depth_; });
        }
        break;
      }
      case AdmissionPolicy::kRejectWhenFull: {
        rejected_.fetch_add(1);
        if (metrics_.enabled()) metrics_.rejected->add();
        throw Overloaded("locate service at max_queue_depth (" +
                         std::to_string(max_depth_) +
                         " jobs in flight); admission policy rejects");
      }
      case AdmissionPolicy::kShedByDeadline: {
        if (!shed_one_locked(job->deadline, job->has_deadline)) {
          // Nothing queued to evict, or the incoming job itself is the one
          // least likely to meet its deadline — it is the victim.
          rejected_.fetch_add(1);
          if (metrics_.enabled()) metrics_.rejected->add();
          throw Overloaded(
              "locate service at max_queue_depth; incoming job shed "
              "(least likely to meet its deadline)");
        }
        break;
      }
    }
  }

  ++in_flight_;
  submitted_.fetch_add(1);
  // Inside the lock so the gauge moves in lockstep with in_flight_: the
  // queue-depth gauge counts ACCEPTED jobs (queued + running), not
  // submitters still blocked on backpressure.
  if (metrics_.enabled()) metrics_.queue_depth->add();
  queue_.push_back(job);
  dispatch_locked();
}

bool LocatorService::shed_one_locked(
    std::chrono::steady_clock::time_point incoming_deadline,
    bool incoming_has_deadline) {
  if (queue_.empty()) return false;
  // Victim = queued job with the earliest deadline: given the backlog it is
  // the one least likely to complete in time, so failing it fast preserves
  // capacity for jobs that can still make their deadlines. Jobs without
  // deadlines carry time_point::max() and are therefore picked last.
  auto victim_it = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it)
    if ((*it)->deadline < (*victim_it)->deadline) victim_it = it;
  if (incoming_has_deadline && incoming_deadline < (*victim_it)->deadline)
    return false;  // the incoming job is even less likely to make it
  JobPtr victim = *victim_it;
  queue_.erase(victim_it);
  shed_.fetch_add(1);
  if (metrics_.enabled()) metrics_.shed->add();
  victim->fail(std::make_exception_ptr(Overloaded(
      "queued locate job shed to admit work more likely to meet its "
      "deadline")));
  finish_locked();  // the victim's slot is what admits the incoming job
  return true;
}

void LocatorService::dispatch_locked() {
  while (running_ < concurrency_cap_ && !queue_.empty()) {
    JobPtr job = queue_.front();
    queue_.pop_front();
    if (job->cancel && job->cancel->load()) {
      if (metrics_.enabled()) metrics_.cancelled->add();
      job->fail(std::make_exception_ptr(
          Cancelled("locate job cancelled before it started")));
      finish_locked();
      continue;
    }
    if (job->has_deadline &&
        std::chrono::steady_clock::now() >= job->deadline) {
      // Expired in queue: fail cheaply, never dispatch to a worker.
      deadline_exceeded_.fetch_add(1);
      if (metrics_.enabled()) metrics_.deadline_exceeded->add();
      job->fail(std::make_exception_ptr(DeadlineExceeded(
          "locate job deadline passed while queued")));
      finish_locked();
      continue;
    }
    ++running_;
    // Lock order is service mutex -> pool mutex, never the reverse: pool
    // workers re-enter the service mutex only from run_job, after the pool
    // lock is long released.
    pool_->post([this, job](std::size_t worker) { run_job(job, worker); });
  }
}

void LocatorService::run_job(const JobPtr& job, std::size_t worker) {
  const std::uint64_t start_ns = obs::steady_now_ns();
  const std::uint64_t serial =
      job_serial_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Start stamp before serial (release): a watchdog scan that observes the
  // serial is guaranteed to read this job's start time, not a stale one.
  worker_start_ns_[worker].store(start_ns, std::memory_order_relaxed);
  worker_job_serial_[worker].store(serial, std::memory_order_release);

  record_queue_wait(job->enqueued_ns);
  if (job->cancel && job->cancel->load()) {
    // Cancelled between dispatch and start (rare; dispatch also checks).
    if (metrics_.enabled()) metrics_.cancelled->add();
    job->fail(std::make_exception_ptr(
        Cancelled("locate job cancelled before it started")));
  } else if (job->has_deadline &&
             std::chrono::steady_clock::now() >= job->deadline) {
    deadline_exceeded_.fetch_add(1);
    if (metrics_.enabled()) metrics_.deadline_exceeded->add();
    job->fail(std::make_exception_ptr(DeadlineExceeded(
        "locate job deadline passed before the job started")));
  } else {
    job->run(worker);  // routes result or exception into the promise
    record_latency(job->enqueued_ns);
  }

  worker_job_serial_[worker].store(0, std::memory_order_release);
  // Always-on rolling runtime distribution: the watchdog's p99 baseline.
  runtime_ns_.record(obs::steady_now_ns() - start_ns);

  std::lock_guard<std::mutex> lock(mutex_);
  --running_;
  finish_locked();
  dispatch_locked();
}

void LocatorService::finish_locked() {
  if (metrics_.enabled()) {
    metrics_.completed->add();
    metrics_.queue_depth->sub();
  }
  // Notify while holding the lock: a drain()er woken by this completion may
  // destroy the service the moment it returns, so the notify must not touch
  // the condition variables after the counters became visible.
  completed_.fetch_add(1);
  --in_flight_;
  depth_cv_.notify_one();
  drained_cv_.notify_all();
}

void LocatorService::start_watchdog() {
  if (watchdog_multiple_ <= 0.0) return;
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void LocatorService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, watchdog_poll_,
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    lock.unlock();

    const auto snap = runtime_ns_.snapshot();
    if (snap.count >= watchdog_min_samples_) {
      const double limit_ns = watchdog_multiple_ * snap.quantile(0.99);
      const std::uint64_t now = obs::steady_now_ns();
      for (std::size_t i = 0; i < worker_job_serial_.size(); ++i) {
        const std::uint64_t s1 =
            worker_job_serial_[i].load(std::memory_order_acquire);
        if (s1 == 0 || s1 == worker_flagged_serial_[i]) continue;
        const std::uint64_t start =
            worker_start_ns_[i].load(std::memory_order_relaxed);
        const std::uint64_t s2 =
            worker_job_serial_[i].load(std::memory_order_acquire);
        if (s1 != s2) continue;  // job changed under us; next poll sees it
        if (start < now && static_cast<double>(now - start) > limit_ns) {
          // Flag each stuck job once: the trip count is "jobs that went
          // over the limit", not "polls that saw one over the limit".
          worker_flagged_serial_[i] = s1;
          watchdog_trips_.fetch_add(1);
          if (metrics_.enabled()) metrics_.watchdog_trips->add();
        }
      }
    }

    lock.lock();
  }
}

std::future<std::vector<std::size_t>> LocatorService::submit(
    std::vector<float> trace, CancelFlag cancel, SubmitOptions options) {
  auto owned = std::make_shared<std::vector<float>>(std::move(trace));
  return submit_impl<std::vector<std::size_t>>(
      std::move(cancel), options, [this, owned](std::size_t worker) {
        return locator_.locate(*owned, scratch_[worker]);
      });
}

std::future<std::vector<std::size_t>> LocatorService::submit_view(
    std::span<const float> trace, CancelFlag cancel, SubmitOptions options) {
  return submit_impl<std::vector<std::size_t>>(
      std::move(cancel), options, [this, trace](std::size_t worker) {
        return locator_.locate(trace, scratch_[worker]);
      });
}

std::future<LocatorService::TimedResult> LocatorService::submit_timed(
    std::span<const float> trace, SubmitOptions options) {
  const auto enqueued = std::chrono::steady_clock::now();
  return submit_impl<TimedResult>(
      nullptr, options, [this, trace, enqueued](std::size_t worker) {
        TimedResult result;
        result.starts = locator_.locate(trace, scratch_[worker]);
        result.latency_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          enqueued)
                .count();
        return result;
      });
}

}  // namespace scalocate::runtime
