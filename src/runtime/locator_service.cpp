#include "runtime/locator_service.hpp"

#include "common/error.hpp"
#include "nn/kernels/parallel.hpp"

namespace scalocate::runtime {

ServiceMetrics ServiceMetrics::resolve(obs::Registry& registry,
                                       const std::string& prefix) {
  const std::string p = prefix.empty() ? "service" : prefix;
  ServiceMetrics m;
  m.requests = &registry.counter(p + ".requests");
  m.completed = &registry.counter(p + ".completed");
  m.cancelled = &registry.counter(p + ".cancelled");
  m.backpressure_blocks = &registry.counter(p + ".backpressure_blocks");
  m.queue_depth = &registry.gauge(p + ".queue_depth");
  m.queue_wait_ns = &registry.histogram(p + ".queue_wait_ns");
  m.latency_ns = &registry.histogram(p + ".latency_ns");
  return m;
}

/// Runs finish_job() however the job ends — result, locate exception, or
/// cancellation — so jobs_completed() always converges to jobs_submitted()
/// and the backpressure slot is always released.
struct CompletionGuard {
  LocatorService& service;
  ~CompletionGuard() { service.finish_job(); }
};

LocatorService::LocatorService(const core::CoLocator& locator,
                               ServiceConfig config)
    : locator_(locator),
      owned_pool_(std::make_unique<ThreadPool>(resolve_workers(config.workers))),
      pool_(owned_pool_.get()),
      scratch_(pool_->worker_count()),
      max_depth_(config.max_queue_depth),
      intra_op_threads_(config.intra_op_threads) {
  detail::require(locator_.is_trained(),
                  "LocatorService: locator must be trained");
  if (config.registry)
    metrics_ = ServiceMetrics::resolve(*config.registry, config.metric_prefix);
}

LocatorService::LocatorService(const core::CoLocator& locator, ThreadPool& pool,
                               ServiceConfig config)
    : locator_(locator),
      pool_(&pool),
      scratch_(pool.worker_count()),
      max_depth_(config.max_queue_depth),
      intra_op_threads_(config.intra_op_threads) {
  detail::require(locator_.is_trained(),
                  "LocatorService: locator must be trained");
  if (config.registry)
    metrics_ = ServiceMetrics::resolve(*config.registry, config.metric_prefix);
}

LocatorService::~LocatorService() { drain(); }

void LocatorService::drain() {
  // Waits on THIS service's jobs only: on a shared (Engine) pool, other
  // models' traffic must not block tearing this one down.
  std::unique_lock<std::mutex> lock(depth_mutex_);
  drained_cv_.wait(lock,
                   [this] { return completed_.load() >= submitted_.load(); });
}

void LocatorService::acquire_slot() {
  if (metrics_.enabled()) metrics_.requests->add();
  if (max_depth_ == 0) {
    ++submitted_;
    if (metrics_.enabled()) metrics_.queue_depth->add();
    return;
  }
  std::unique_lock<std::mutex> lock(depth_mutex_);
  if (in_flight_ >= max_depth_ && metrics_.enabled())
    metrics_.backpressure_blocks->add();
  depth_cv_.wait(lock, [this] { return in_flight_ < max_depth_; });
  ++in_flight_;
  ++submitted_;
  // Inside the lock so the gauge moves in lockstep with in_flight_: the
  // queue-depth gauge counts ACCEPTED jobs (queued + running), not
  // submitters still blocked on backpressure.
  if (metrics_.enabled()) metrics_.queue_depth->add();
}

void LocatorService::finish_job() {
  if (metrics_.enabled()) {
    metrics_.completed->add();
    metrics_.queue_depth->sub();
  }
  // Notify while holding the lock: a drain()er woken by this completion may
  // destroy the service the moment it returns, so the notify must not touch
  // the condition variables after the counters became visible.
  std::lock_guard<std::mutex> lock(depth_mutex_);
  ++completed_;
  if (max_depth_ > 0) --in_flight_;
  depth_cv_.notify_one();
  drained_cv_.notify_all();
}

void LocatorService::check_cancel(const CancelFlag& cancel) {
  if (cancel && cancel->load()) {
    if (metrics_.enabled()) metrics_.cancelled->add();
    throw Cancelled("locate job cancelled before it started");
  }
}

std::future<std::vector<std::size_t>> LocatorService::submit(
    std::vector<float> trace, CancelFlag cancel) {
  acquire_slot();
  const std::uint64_t enqueued = enqueue_stamp();
  auto owned = std::make_shared<std::vector<float>>(std::move(trace));
  return pool_->submit(
      [this, owned, cancel, enqueued](std::size_t worker)
          -> std::vector<std::size_t> {
        CompletionGuard done{*this};
        record_queue_wait(enqueued);
        check_cancel(cancel);
        // Pin this job's kernel fan-out to the configured budget (1 keeps
        // the legacy one-core-per-job behavior; 0 = process default).
        nn::kernels::IntraOpGuard intra(intra_op_threads_);
        auto starts = locator_.locate(*owned, scratch_[worker]);
        record_latency(enqueued);
        return starts;
      });
}

std::future<std::vector<std::size_t>> LocatorService::submit_view(
    std::span<const float> trace, CancelFlag cancel) {
  acquire_slot();
  const std::uint64_t enqueued = enqueue_stamp();
  return pool_->submit(
      [this, trace, cancel, enqueued](std::size_t worker)
          -> std::vector<std::size_t> {
        CompletionGuard done{*this};
        record_queue_wait(enqueued);
        check_cancel(cancel);
        nn::kernels::IntraOpGuard intra(intra_op_threads_);
        auto starts = locator_.locate(trace, scratch_[worker]);
        record_latency(enqueued);
        return starts;
      });
}

std::future<LocatorService::TimedResult> LocatorService::submit_timed(
    std::span<const float> trace) {
  acquire_slot();
  const std::uint64_t metrics_enqueued = enqueue_stamp();
  const auto enqueued = std::chrono::steady_clock::now();
  return pool_->submit([this, trace, enqueued,
                        metrics_enqueued](std::size_t worker) {
    CompletionGuard done{*this};
    record_queue_wait(metrics_enqueued);
    nn::kernels::IntraOpGuard intra(intra_op_threads_);
    TimedResult result;
    result.starts = locator_.locate(trace, scratch_[worker]);
    result.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count();
    record_latency(metrics_enqueued);
    return result;
  });
}

}  // namespace scalocate::runtime
