// Absolute-indexed sample ring for streaming inference.
//
// A trace arrives as arbitrary-size chunks; the consumers (window scorer,
// fine-alignment snap) address samples by their absolute position in the
// stream. The ring keeps a bounded tail of the stream in one contiguous
// block so consumers can take std::span views, and compacts lazily: the
// erase-front cost is amortized by only compacting once the dead prefix
// exceeds the live tail.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace scalocate::runtime {

class SampleRing {
 public:
  SampleRing() = default;

  /// Appends a chunk; the new samples get absolute indices
  /// [size() - chunk.size(), size()).
  void append(std::span<const float> chunk) {
    buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  }

  /// Total samples ever appended (the stream length so far).
  std::size_t size() const { return base_ + buf_.size(); }

  /// Oldest absolute index still resident.
  std::size_t oldest() const { return base_; }

  /// Contiguous view of absolute samples [begin, begin + count). The span
  /// is invalidated by the next append/discard_below call.
  std::span<const float> view(std::size_t begin, std::size_t count) const {
    detail::require(begin >= base_,
                    "SampleRing::view: samples already discarded");
    // Subtract instead of testing begin + count <= size(): the addition
    // wraps for counts near SIZE_MAX and would accept a span far past the
    // stream head.
    detail::require(begin <= size() && count <= size() - begin,
                    "SampleRing::view: samples not yet received");
    return {buf_.data() + (begin - base_), count};
  }

  /// Releases every sample below the absolute index `keep_from` (which may
  /// not exceed size()). Memory is reclaimed lazily: compaction happens
  /// only once the dead prefix dominates the live tail, so the amortized
  /// per-sample cost is O(1).
  void discard_below(std::size_t keep_from) {
    if (keep_from <= base_) return;
    detail::require(keep_from <= size(),
                    "SampleRing::discard_below: beyond stream head");
    const std::size_t dead = keep_from - base_;
    if (dead >= buf_.size() / 2 && dead > 4096) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(dead));
      base_ += dead;
    }
  }

  void reset() {
    buf_.clear();
    base_ = 0;
  }

 private:
  std::vector<float> buf_;
  std::size_t base_ = 0;  ///< absolute index of buf_[0]
};

}  // namespace scalocate::runtime
