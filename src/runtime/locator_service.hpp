// LocatorService: concurrent CO localization over one shared model.
//
// Accepts whole-trace locate jobs and multiplexes them across a ThreadPool.
// All workers share the service's trained CoLocator — the nn refactor made
// eval-mode forward passes const, so the model is never copied — while each
// worker owns a private nn::Workspace holding its activation scratch.
// Results come back as futures; exceptions inside a job propagate through
// the future.
//
// The service either owns its pool (standalone use) or runs over an
// external one, which is how api::Engine serves several models (one per
// cipher) from a single shared worker pool. Direct construction is the
// low-level path; new code should go through api::Engine / api::Session,
// which add model registry, artifact loading, and streaming on top.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/locator.hpp"
#include "obs/registry.hpp"
#include "runtime/thread_pool.hpp"

namespace scalocate::runtime {

struct ServiceConfig {
  /// Worker threads. 0 = hardware concurrency (at least 1). Ignored when
  /// the service is constructed over an external pool.
  std::size_t workers = 0;
  /// Upper bound on in-flight jobs (queued + running) for this service.
  /// submit() blocks until a slot frees (backpressure) instead of letting
  /// the queue grow unboundedly when workers are saturated. 0 = unbounded.
  std::size_t max_queue_depth = 0;
  /// Intra-op thread budget for the kernels inside each job (see
  /// nn/kernels/parallel.hpp): how many compute-pool threads ONE job's
  /// GEMM/conv calls may fan out across. Default 1 — a service saturated
  /// with many small jobs already uses every core via `workers`, and
  /// nested fan-out would oversubscribe the box. Raise it (or set 0 =
  /// process default / SCALOCATE_THREADS) when the workload is a few big
  /// traces and per-job latency matters more than aggregate throughput.
  /// Results are bit-identical at every setting.
  std::size_t intra_op_threads = 1;
  /// Telemetry sink. When set, the service registers per-service
  /// instruments under `metric_prefix` and records request counts, queue
  /// depth, queue-wait and end-to-end latency, cancellations and
  /// backpressure blocks. Null = telemetry off, zero overhead. The
  /// registry must outlive the service.
  obs::Registry* registry = nullptr;
  /// Instrument name prefix, e.g. "engine.aes128" (default "service").
  std::string metric_prefix;
};

/// Resolved per-service instrument set (see README "Observability" for the
/// naming scheme). All pointers are either all set or all null.
struct ServiceMetrics {
  obs::Counter* requests = nullptr;       ///< jobs accepted by submit*
  obs::Counter* completed = nullptr;      ///< jobs finished (any outcome)
  obs::Counter* cancelled = nullptr;      ///< jobs cancelled before running
  obs::Counter* backpressure_blocks = nullptr;  ///< submits that had to wait
  obs::Gauge* queue_depth = nullptr;      ///< in-flight jobs (queued+running)
  obs::Histogram* queue_wait_ns = nullptr;  ///< enqueue -> job start
  obs::Histogram* latency_ns = nullptr;     ///< enqueue -> job end (e2e)

  bool enabled() const { return requests != nullptr; }
  /// Registers the instrument set under `prefix` in `registry`.
  static ServiceMetrics resolve(obs::Registry& registry,
                                const std::string& prefix);
};

class LocatorService {
 public:
  /// Shared flag a caller sets to abandon a job it no longer needs. The
  /// flag is checked when the job is dequeued: a job cancelled before it
  /// starts never runs and its future throws scalocate::Cancelled. A job
  /// already running completes normally (cancel is then a no-op).
  using CancelFlag = std::shared_ptr<std::atomic<bool>>;

  /// `locator` must be trained and outlive the service. Owns its pool.
  explicit LocatorService(const core::CoLocator& locator,
                          ServiceConfig config = {});

  /// Runs over `pool`, which must outlive the service (api::Engine shares
  /// one pool across every registered model this way).
  LocatorService(const core::CoLocator& locator, ThreadPool& pool,
                 ServiceConfig config = {});

  ~LocatorService();  ///< Blocks until in-flight jobs finish.

  LocatorService(const LocatorService&) = delete;
  LocatorService& operator=(const LocatorService&) = delete;

  /// Enqueues a locate job; the trace is moved into the job. Blocks while
  /// the service is at max_queue_depth.
  std::future<std::vector<std::size_t>> submit(std::vector<float> trace,
                                               CancelFlag cancel = nullptr);

  /// Enqueues a locate job over caller-owned samples. The caller must keep
  /// the memory alive until the future resolves; no copy is made.
  std::future<std::vector<std::size_t>> submit_view(std::span<const float> trace,
                                                    CancelFlag cancel = nullptr);

  /// Like submit_view, but also reports the job's end-to-end latency
  /// (enqueue to completion, queueing included) — the number a serving
  /// deployment actually observes. The measurement is the same one the
  /// `latency_ns` histogram records when telemetry is on; this wrapper just
  /// additionally hands the per-job value back through the future.
  struct TimedResult {
    std::vector<std::size_t> starts;
    double latency_seconds = 0.0;
  };
  std::future<TimedResult> submit_timed(std::span<const float> trace);

  /// The service's instrument set (all-null when constructed without a
  /// registry).
  const ServiceMetrics& metrics() const { return metrics_; }

  /// Blocks until every job submitted to THIS service has completed (on a
  /// shared pool, other services' jobs are not waited for).
  void drain();

  std::size_t worker_count() const { return pool_->worker_count(); }
  std::size_t max_queue_depth() const { return max_depth_; }
  std::size_t intra_op_threads() const { return intra_op_threads_; }
  std::size_t jobs_completed() const { return completed_.load(); }
  std::size_t jobs_submitted() const { return submitted_.load(); }

 private:
  friend struct CompletionGuard;

  /// Blocks until an in-flight slot is free (no-op when unbounded), then
  /// counts the job as submitted. Every acquire is paired with one
  /// finish_job() from the job's completion guard.
  void acquire_slot();
  void finish_job();
  void check_cancel(const CancelFlag& cancel);
  /// Timestamp taken at submit when telemetry is on (0 otherwise); the job
  /// body turns it into queue-wait and end-to-end latency samples.
  std::uint64_t enqueue_stamp() const {
    return metrics_.enabled() ? obs::steady_now_ns() : 0;
  }
  void record_queue_wait(std::uint64_t enqueued_ns) const {
    if (enqueued_ns != 0)
      metrics_.queue_wait_ns->record(obs::steady_now_ns() - enqueued_ns);
  }
  void record_latency(std::uint64_t enqueued_ns) const {
    if (enqueued_ns != 0)
      metrics_.latency_ns->record(obs::steady_now_ns() - enqueued_ns);
  }

  const core::CoLocator& locator_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null when pool is external
  ThreadPool* pool_;
  std::vector<nn::Workspace> scratch_;  ///< one per worker, index-addressed
  std::size_t max_depth_ = 0;
  std::size_t intra_op_threads_ = 1;  ///< kernel fan-out budget per job
  std::mutex depth_mutex_;
  std::condition_variable depth_cv_;    ///< a backpressure slot freed
  std::condition_variable drained_cv_;  ///< a job completed (drain watches)
  std::size_t in_flight_ = 0;  ///< guarded by depth_mutex_ when bounded
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
  ServiceMetrics metrics_;  ///< all-null when telemetry is off
};

}  // namespace scalocate::runtime
