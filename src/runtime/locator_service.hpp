// LocatorService: concurrent CO localization over one shared model.
//
// Accepts whole-trace locate jobs and multiplexes them across a ThreadPool.
// All workers share the service's trained CoLocator — the nn refactor made
// eval-mode forward passes const, so the model is never copied — while each
// worker owns a private nn::Workspace holding its activation scratch.
// Results come back as futures; exceptions inside a job propagate through
// the future.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "core/locator.hpp"
#include "runtime/thread_pool.hpp"

namespace scalocate::runtime {

struct ServiceConfig {
  /// Worker threads. 0 = hardware concurrency (at least 1).
  std::size_t workers = 0;
};

class LocatorService {
 public:
  /// `locator` must be trained and outlive the service.
  explicit LocatorService(const core::CoLocator& locator,
                          ServiceConfig config = {});
  ~LocatorService();  ///< Blocks until in-flight jobs finish.

  LocatorService(const LocatorService&) = delete;
  LocatorService& operator=(const LocatorService&) = delete;

  /// Enqueues a locate job; the trace is moved into the job.
  std::future<std::vector<std::size_t>> submit(std::vector<float> trace);

  /// Enqueues a locate job over caller-owned samples. The caller must keep
  /// the memory alive until the future resolves; no copy is made.
  std::future<std::vector<std::size_t>> submit_view(
      std::span<const float> trace);

  /// Like submit_view, but also reports the job's end-to-end latency
  /// (enqueue to completion, queueing included) — the number a serving
  /// deployment actually observes. Used by bench_service.
  struct TimedResult {
    std::vector<std::size_t> starts;
    double latency_seconds = 0.0;
  };
  std::future<TimedResult> submit_timed(std::span<const float> trace);

  /// Blocks until every submitted job has completed.
  void drain();

  std::size_t worker_count() const { return pool_.worker_count(); }
  std::size_t jobs_completed() const { return completed_.load(); }
  std::size_t jobs_submitted() const { return submitted_.load(); }

 private:
  const core::CoLocator& locator_;
  std::vector<nn::Workspace> scratch_;  ///< one per worker, index-addressed
  ThreadPool pool_;
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
};

}  // namespace scalocate::runtime
