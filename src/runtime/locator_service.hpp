// LocatorService: concurrent CO localization over one shared model, with a
// failure model attached.
//
// Accepts whole-trace locate jobs and multiplexes them across a ThreadPool.
// All workers share the service's trained CoLocator — the nn refactor made
// eval-mode forward passes const, so the model is never copied — while each
// worker owns a private nn::Workspace holding its activation scratch.
// Results come back as futures; exceptions inside a job propagate through
// the future.
//
// Jobs pass through a service-local queue before they reach the pool: the
// service dispatches at most `max_concurrency` jobs into the shared pool at
// a time (its per-model running cap — on an api::Engine pool this is what
// keeps one hot cipher from starving every other registered model), and
// everything else waits in the local queue where the failure policies can
// see it:
//
//   - deadlines (SubmitOptions::deadline / timeout): a job whose deadline
//     passes while it queues is rejected cheaply — its future throws
//     DeadlineExceeded before the job ever wastes a worker;
//   - admission control (ServiceConfig::admission): at max_queue_depth the
//     service either blocks the submitter (kBlock, the legacy default),
//     fails fast with a synchronous Overloaded throw (kRejectWhenFull), or
//     sheds the queued job least likely to meet its deadline to make room
//     (kShedByDeadline — the victim's future throws Overloaded);
//   - a watchdog (ServiceConfig::watchdog_p99_multiple): running jobs that
//     exceed a wall-clock multiple of the service's rolling p99 runtime
//     are flagged (watchdog_trips) — the signal that distinguishes a stuck
//     worker from a merely slow one.
//
// The service either owns its pool (standalone use) or runs over an
// external one, which is how api::Engine serves several models (one per
// cipher) from a single shared worker pool. Direct construction is the
// low-level path; new code should go through api::Engine / api::Session,
// which add model registry, artifact loading, and streaming on top.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/locator.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "runtime/thread_pool.hpp"

namespace scalocate::runtime {

/// What submit* does when the service is at max_queue_depth.
enum class AdmissionPolicy {
  /// Block the submitter until a slot frees (backpressure; the default and
  /// the pre-failure-model behavior). A blocked submit with a deadline
  /// gives up when the deadline passes (future throws DeadlineExceeded).
  kBlock,
  /// Fail fast: submit throws Overloaded synchronously. Nothing queues.
  kRejectWhenFull,
  /// Make room: evict the queued job least likely to meet its deadline
  /// (earliest deadline first; jobs without deadlines are evicted last).
  /// The victim's future throws Overloaded. When the incoming job itself
  /// has the tightest deadline — or nothing is queued to evict — the
  /// incoming job is the one shed (synchronous Overloaded throw).
  kShedByDeadline,
};

/// Per-job failure-model knobs, shared by every submit* flavor.
struct SubmitOptions {
  /// Absolute deadline. A job that has not COMPLETED by this point fails
  /// with DeadlineExceeded: immediately at submit when already past,
  /// cheaply at dispatch when it expires in the queue, or via the blocked
  /// submitter waking up (kBlock). A job already running is never aborted
  /// mid-flight (results stay bit-identical); its caller simply sees the
  /// result late.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Relative form of the same thing: resolved to now() + timeout at
  /// submit. When both are set the earlier one wins.
  std::optional<std::chrono::nanoseconds> timeout;
};

struct ServiceConfig {
  /// Worker threads. 0 = hardware concurrency (at least 1). Ignored when
  /// the service is constructed over an external pool.
  std::size_t workers = 0;
  /// Upper bound on in-flight jobs (queued + running) for this service.
  /// What happens at the bound is `admission`'s call. 0 = unbounded.
  std::size_t max_queue_depth = 0;
  /// Behavior at max_queue_depth. kBlock preserves the pre-failure-model
  /// blocking backpressure exactly.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Per-service cap on jobs RUNNING in the pool at once. 0 = the pool's
  /// worker count. On a shared (Engine) pool, set this below the worker
  /// count to guarantee headroom for other models (per-model concurrency
  /// limit).
  std::size_t max_concurrency = 0;
  /// Intra-op thread budget for the kernels inside each job (see
  /// nn/kernels/parallel.hpp): how many compute-pool threads ONE job's
  /// GEMM/conv calls may fan out across. Default 1 — a service saturated
  /// with many small jobs already uses every core via `workers`, and
  /// nested fan-out would oversubscribe the box. Raise it (or set 0 =
  /// process default / SCALOCATE_THREADS) when the workload is a few big
  /// traces and per-job latency matters more than aggregate throughput.
  /// Results are bit-identical at every setting.
  std::size_t intra_op_threads = 1;
  /// Watchdog: flag a running job once its wall clock exceeds this
  /// multiple of the service's rolling p99 job runtime (watchdog_trips
  /// counter). 0 = off (default). The watchdog only observes — it never
  /// kills a job — and stays quiet until `watchdog_min_samples` jobs have
  /// completed, so the p99 means something.
  double watchdog_p99_multiple = 0.0;
  std::size_t watchdog_min_samples = 32;
  /// How often the watchdog thread scans running jobs.
  std::chrono::milliseconds watchdog_poll{20};
  /// Cross-session stream batching knobs (see runtime::WindowBatcher and
  /// README "Fleet serving"). Carried here so the whole serving stack
  /// shares one config surface; the whole-trace job executor itself does
  /// not batch — the api::Engine consumes these when it builds each
  /// model's batcher. 0 = batching off (streams self-score, the legacy
  /// bit-identical path).
  std::size_t max_batch_windows = 0;
  /// Flush-latency bound for a partially filled batch, in microseconds.
  std::uint64_t batch_linger_us = 200;
  /// Intra-op fan-out of the shared batch GEMM (0 = process default).
  std::size_t batch_intra_op_threads = 0;
  /// Telemetry sink. When set, the service registers per-service
  /// instruments under `metric_prefix` and records request counts, queue
  /// depth, queue-wait and end-to-end latency, cancellations, backpressure
  /// blocks, rejects, sheds, deadline misses and watchdog trips. Null =
  /// telemetry off, zero overhead. The registry must outlive the service.
  obs::Registry* registry = nullptr;
  /// Instrument name prefix, e.g. "engine.aes128" (default "service").
  /// Also names this service's fault-injection site "<prefix>.job".
  std::string metric_prefix{};
};

/// Resolved per-service instrument set (see README "Observability" for the
/// naming scheme). All pointers are either all set or all null.
struct ServiceMetrics {
  obs::Counter* requests = nullptr;       ///< every submit* call
  obs::Counter* completed = nullptr;      ///< accepted jobs finished (any outcome)
  obs::Counter* cancelled = nullptr;      ///< jobs cancelled before running
  obs::Counter* backpressure_blocks = nullptr;  ///< submits that had to wait
  obs::Counter* rejected = nullptr;       ///< submits refused at admission
  obs::Counter* shed = nullptr;           ///< queued jobs evicted to make room
  obs::Counter* deadline_exceeded = nullptr;  ///< jobs failed by deadline
  obs::Counter* watchdog_trips = nullptr;     ///< running jobs flagged stuck
  obs::Gauge* queue_depth = nullptr;      ///< in-flight jobs (queued+running)
  obs::Histogram* queue_wait_ns = nullptr;  ///< enqueue -> job start
  obs::Histogram* latency_ns = nullptr;     ///< enqueue -> job end (e2e)

  bool enabled() const { return requests != nullptr; }
  /// Registers the instrument set under `prefix` in `registry`.
  static ServiceMetrics resolve(obs::Registry& registry,
                                const std::string& prefix);
};

class LocatorService {
 public:
  /// Shared flag a caller sets to abandon a job it no longer needs. The
  /// flag is checked when the job is dispatched: a job cancelled before it
  /// starts never runs and its future throws scalocate::Cancelled. A job
  /// already running completes normally (cancel is then a no-op).
  using CancelFlag = std::shared_ptr<std::atomic<bool>>;

  /// `locator` must be trained and outlive the service. Owns its pool.
  explicit LocatorService(const core::CoLocator& locator,
                          ServiceConfig config = {});

  /// Runs over `pool`, which must outlive the service (api::Engine shares
  /// one pool across every registered model this way).
  LocatorService(const core::CoLocator& locator, ThreadPool& pool,
                 ServiceConfig config = {});

  ~LocatorService();  ///< Blocks until in-flight jobs finish.

  LocatorService(const LocatorService&) = delete;
  LocatorService& operator=(const LocatorService&) = delete;

  /// Enqueues a locate job; the trace is moved into the job. At
  /// max_queue_depth the admission policy decides: blocks (kBlock), throws
  /// Overloaded (kRejectWhenFull), or sheds (kShedByDeadline — may also
  /// throw Overloaded when the incoming job is the victim). Deadline and
  /// shed failures of an ACCEPTED job surface through the future.
  std::future<std::vector<std::size_t>> submit(std::vector<float> trace,
                                               CancelFlag cancel = nullptr,
                                               SubmitOptions options = {});

  /// Enqueues a locate job over caller-owned samples. The caller must keep
  /// the memory alive until the future resolves; no copy is made.
  std::future<std::vector<std::size_t>> submit_view(std::span<const float> trace,
                                                    CancelFlag cancel = nullptr,
                                                    SubmitOptions options = {});

  /// Like submit_view, but also reports the job's end-to-end latency
  /// (enqueue to completion, queueing included) — the number a serving
  /// deployment actually observes. The measurement is the same one the
  /// `latency_ns` histogram records when telemetry is on; this wrapper just
  /// additionally hands the per-job value back through the future.
  struct TimedResult {
    std::vector<std::size_t> starts;
    double latency_seconds = 0.0;
  };
  std::future<TimedResult> submit_timed(std::span<const float> trace,
                                        SubmitOptions options = {});

  /// The service's instrument set (all-null when constructed without a
  /// registry).
  const ServiceMetrics& metrics() const { return metrics_; }

  /// Blocks until every job accepted by THIS service has completed (on a
  /// shared pool, other services' jobs are not waited for).
  void drain();

  std::size_t worker_count() const { return pool_->worker_count(); }
  std::size_t max_queue_depth() const { return max_depth_; }
  std::size_t max_concurrency() const { return concurrency_cap_; }
  std::size_t intra_op_threads() const { return intra_op_threads_; }
  std::size_t jobs_completed() const { return completed_.load(); }
  std::size_t jobs_submitted() const { return submitted_.load(); }
  // Failure-model accounting, maintained with or without telemetry (the
  // obs counters mirror these when a registry is wired).
  std::size_t jobs_rejected() const { return rejected_.load(); }
  std::size_t jobs_shed() const { return shed_.load(); }
  std::size_t jobs_deadline_exceeded() const { return deadline_exceeded_.load(); }
  std::size_t watchdog_trips() const { return watchdog_trips_.load(); }

 private:
  /// One accepted job, queued locally until dispatch. `fail` routes a typed
  /// error into the job's promise without running it; `run` produces the
  /// result on a pool worker (and owns the promise).
  struct JobRec {
    std::function<void(std::size_t worker)> run;
    std::function<void(std::exception_ptr)> fail;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    CancelFlag cancel;
    std::uint64_t enqueued_ns = 0;  ///< telemetry stamp (0 = telemetry off)
  };
  using JobPtr = std::shared_ptr<JobRec>;

  /// Resolves options.deadline/timeout into one absolute deadline.
  static std::optional<std::chrono::steady_clock::time_point> resolve_deadline(
      const SubmitOptions& options);

  /// Builds the JobRec (promise + type-erased run/fail) for a result type
  /// and body, then runs admission via enqueue(). Defined in the .cpp; all
  /// instantiations live there.
  template <typename R, typename Body>
  std::future<R> submit_impl(CancelFlag cancel, const SubmitOptions& options,
                             Body body);

  /// Admission + enqueue + dispatch for every submit flavor. May fail the
  /// job's promise with a typed error instead of queueing it
  /// (expired-at-submit, blocked-past-deadline), and throws Overloaded for
  /// synchronous admission rejections (kRejectWhenFull; kShedByDeadline
  /// when the incoming job is the victim).
  void enqueue(const JobPtr& job);

  /// Pops and dispatches queued jobs into the pool while below the
  /// concurrency cap; fails expired/cancelled jobs cheaply instead of
  /// dispatching them. Caller holds mutex_.
  void dispatch_locked();

  /// Evicts the queued job least likely to meet its deadline; returns true
  /// when a slot was freed. Caller holds mutex_.
  bool shed_one_locked(std::chrono::steady_clock::time_point incoming_deadline,
                       bool incoming_has_deadline);

  /// Terminal accounting for one accepted job. Caller holds mutex_.
  void finish_locked();

  /// Runs one dispatched job on a pool worker.
  void run_job(const JobPtr& job, std::size_t worker);

  void start_watchdog();
  void watchdog_loop();

  void record_queue_wait(std::uint64_t enqueued_ns) const {
    if (enqueued_ns != 0)
      metrics_.queue_wait_ns->record(obs::steady_now_ns() - enqueued_ns);
  }
  void record_latency(std::uint64_t enqueued_ns) const {
    if (enqueued_ns != 0)
      metrics_.latency_ns->record(obs::steady_now_ns() - enqueued_ns);
  }

  const core::CoLocator& locator_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null when pool is external
  ThreadPool* pool_;
  std::vector<nn::Workspace> scratch_;  ///< one per worker, index-addressed
  std::size_t max_depth_ = 0;
  AdmissionPolicy admission_ = AdmissionPolicy::kBlock;
  std::size_t concurrency_cap_ = 0;   ///< resolved: >= 1
  std::size_t intra_op_threads_ = 1;  ///< kernel fan-out budget per job
  std::string fault_site_;            ///< "<metric_prefix>.job"

  std::mutex mutex_;
  std::condition_variable depth_cv_;    ///< a backpressure slot freed
  std::condition_variable drained_cv_;  ///< a job completed (drain watches)
  std::deque<JobPtr> queue_;   ///< accepted, not yet dispatched
  std::size_t in_flight_ = 0;  ///< queued + running (guarded by mutex_)
  std::size_t running_ = 0;    ///< dispatched into the pool (guarded)

  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> deadline_exceeded_{0};
  std::atomic<std::size_t> watchdog_trips_{0};

  // Watchdog state: per-worker start stamp + job serial of the running job
  // (0 = idle), an always-on runtime histogram feeding the rolling p99,
  // and the scanning thread (spawned only when the watchdog is enabled).
  obs::Histogram runtime_ns_;
  std::atomic<std::uint64_t> job_serial_{0};
  std::vector<std::atomic<std::uint64_t>> worker_start_ns_;
  std::vector<std::atomic<std::uint64_t>> worker_job_serial_;
  std::vector<std::uint64_t> worker_flagged_serial_;  ///< watchdog thread only
  double watchdog_multiple_ = 0.0;
  std::size_t watchdog_min_samples_ = 32;
  std::chrono::milliseconds watchdog_poll_{20};
  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  ServiceMetrics metrics_;  ///< all-null when telemetry is off
};

}  // namespace scalocate::runtime
