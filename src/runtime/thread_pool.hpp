// Fixed-size worker pool over a mutex-guarded MPMC task queue.
//
// Tasks receive the executing worker's index, which is how the
// LocatorService hands each worker a private scratch workspace while every
// worker shares one read-only model. submit() wraps a callable into a
// std::future for callers that want the result; post() is the
// fire-and-forget path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace scalocate::runtime {

/// Resolves a configured worker count: 0 = hardware concurrency (at least
/// 1). Shared by ThreadPool owners (LocatorService, api::Engine) so their
/// defaults cannot diverge.
std::size_t resolve_workers(std::size_t configured);

class ThreadPool {
 public:
  /// A task is invoked with the worker index in [0, worker_count()).
  using Task = std::function<void(std::size_t)>;

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();  ///< Runs every queued task to completion, then joins
                  ///< (futures from submit() never dangle).

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget task. Exceptions escaping the task are
  /// swallowed (use submit() to observe them through a future).
  void post(Task task);

  /// Enqueues `fn(worker_index)` and returns a future for its result.
  template <typename F>
  auto submit(F&& fn)
      -> std::future<std::invoke_result_t<F&, std::size_t>> {
    using R = std::invoke_result_t<F&, std::size_t>;
    auto task = std::make_shared<std::packaged_task<R(std::size_t)>>(
        std::forward<F>(fn));
    std::future<R> future = task->get_future();
    post([task](std::size_t worker) { (*task)(worker); });
    return future;
  }

  std::size_t worker_count() const { return workers_.size(); }

  /// Publishes the pool's instruments into `registry`: a
  /// `<prefix>.queue_depth` gauge (tasks enqueued but not yet started; its
  /// max is the deepest backlog ever) and a `<prefix>.tasks` counter (every
  /// task posted). Pools sharing a registry and prefix aggregate into the
  /// same instruments. Call before the pool is loaded (the wiring itself
  /// is guarded by the pool mutex, but instruments attach mid-stream
  /// see only later tasks). The registry must outlive the pool.
  void attach_metrics(obs::Registry& registry,
                      const std::string& prefix = "pool");

  /// Tasks enqueued but not yet started (diagnostic).
  std::size_t pending() const;

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  obs::Counter* tasks_ = nullptr;       ///< null = telemetry off
  obs::Gauge* queue_depth_ = nullptr;   ///< mirrors queue_.size()
};

}  // namespace scalocate::runtime
