// WindowBatcher: cross-session dynamic batching for the serving plane.
//
// Per-session scoring (StreamingLocator::feed) does one CNN forward pass
// per session per chunk; with thousands of trickle-fed sessions each pass
// carries a handful of windows and the batched-GEMM backend runs at
// batch-1 efficiency. The batcher turns window scoring into a shared,
// batched resource:
//
//   session threads          scheduler thread              shared compute
//   ---------------          ----------------              --------------
//   feed() -> SpscRing  -->  drain rings into each         one
//   (wait-free ingest,       stream's scoring core,        score_window_batch
//    never takes a lock)     stage ready windows      -->  GEMM per tick,
//                            across ALL sessions           IntraOpGuard
//                       <--  demux scores per stream,      fan-out
//   poll()/finish()          advance each pipeline,
//                            deliver detections
//
// Flush policy: a staged batch is scored when it reaches
// `max_batch_windows` (full), when a stream that signalled end-of-stream
// has windows in it (eof — finish() never waits on the linger), or when
// `batch_linger` has elapsed since windows first became ready (linger —
// the latency bound a partially filled batch pays).
//
// Bit-identical by construction: score_window_batch standardizes and
// scores every row independently of its batch neighbors (the
// batch-composition invariance the offline/streaming parity suite proves),
// and each stream's scores are handed back to its own StreamingLocator
// core via accept_scores — the identical downstream pipeline the
// self-scoring path runs. Detections therefore match the unbatched and
// offline paths exactly, for every interleaving of sessions and every
// batch composition; tests/test_fleet.cpp asserts this and bench_fleet
// exits nonzero on divergence.
//
// Failure isolation: a fault injected at the per-stream "batch.stage" site
// (or thrown by one stream's pipeline) fails THAT stream — its producer
// sees the typed error on its next feed()/poll()/finish() — while
// batchmates keep scoring, bit-identically.
//
// Threading contract: feed() is wait-free for the producer (one SPSC push;
// under ring backpressure it spins with yield, still lock-free).
// poll()/finish() take a short per-stream mutex to collect results — the
// cold path; samples never cross it. One thread per stream on the producer
// side (the SPSC contract); different streams may be fed from different
// threads concurrently. The batcher must outlive its streams' use: the
// api::Engine guarantees this by owning the batcher inside the model entry
// every api::Stream keeps alive.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/locator.hpp"
#include "core/sliding_window.hpp"
#include "obs/registry.hpp"
#include "runtime/spsc_ring.hpp"
#include "runtime/streaming_locator.hpp"

namespace scalocate::runtime {

class WindowBatcher;

struct BatchConfig {
  /// Windows coalesced into one shared GEMM at most. The knee of the GEMM
  /// efficiency curve (see BENCH_fleet.json) — bigger batches amortize
  /// better but hold early windows longer.
  std::size_t max_batch_windows = 256;
  /// How long a partially filled batch may wait for more windows before it
  /// is flushed anyway. The latency bound a quiet fleet pays; 0 = flush
  /// every tick.
  std::chrono::microseconds batch_linger{200};
  /// Per-stream ingest ring capacity in samples (rounded up to a power of
  /// two). Bounds fleet memory: a full ring back-pressures its producer.
  std::size_t ingest_capacity = 4096;
  /// Intra-op kernel fan-out of the shared batch GEMM (see
  /// nn/kernels/parallel.hpp). 0 = process default (SCALOCATE_THREADS):
  /// unlike per-job scoring, the batcher IS the model's shared compute
  /// path, so it defaults wide. Detections are bit-identical at every
  /// setting.
  std::size_t intra_op_threads = 0;
  /// Telemetry sink (must outlive the batcher). Null = telemetry off.
  obs::Registry* registry = nullptr;
  /// Instrument name prefix, e.g. "batch.aes128" (default "batch").
  std::string metric_prefix;
};

/// Resolved batcher instrument set (README "Observability" lists them).
struct BatchMetrics {
  obs::Counter* coalesced_windows = nullptr;  ///< windows scored via shared GEMMs
  obs::Counter* batches = nullptr;            ///< shared GEMM flushes
  obs::Counter* flush_full = nullptr;         ///< flushes at max_batch_windows
  obs::Counter* flush_linger = nullptr;       ///< flushes forced by the linger
  obs::Counter* flush_eof = nullptr;          ///< flushes forced by finish()
  obs::Gauge* sessions = nullptr;             ///< attached streams (max = peak)
  /// Deepest per-stream ingest-ring occupancy seen last tick; the gauge max
  /// is the all-time ingest-ring high-watermark (backpressure proximity).
  obs::Gauge* ingest_resident_samples = nullptr;
  obs::Histogram* occupancy_windows = nullptr;  ///< windows per flushed batch

  bool enabled() const { return coalesced_windows != nullptr; }
  static BatchMetrics resolve(obs::Registry& registry,
                              const std::string& prefix);
};

/// One session's stream routed through a WindowBatcher. Created by
/// WindowBatcher::open_stream; the producer side (feed/poll/finish) is
/// single-threaded, the scoring side runs on the batcher's scheduler
/// thread.
class BatchedStream {
 public:
  /// Pushes a chunk of samples into the ingest ring. Applies the stream's
  /// NanPolicy on the producer thread (kReject throws CorruptSignal with
  /// the ring untouched; kSanitize scrubs), then hands the samples to the
  /// scheduler wait-free. A full ring spins with yield until the scheduler
  /// drains (bounded-memory backpressure). Rethrows this stream's typed
  /// error if the scheduler failed it (fault injection, pipeline error).
  void feed(std::span<const float> chunk);

  /// Appends every detection finalized so far to `out` (detections arrive
  /// asynchronously, a flush after the chunk that completed them). Rethrows
  /// this stream's error after draining, so already-final detections are
  /// never lost to a later failure.
  void poll(std::vector<Detection>& out);

  /// Signals end-of-stream, blocks until the scheduler has scored every
  /// remaining window and drained the pipeline tail, and returns the
  /// remaining detections. The scheduler flushes eof windows immediately
  /// (never waits on the linger).
  std::vector<Detection> finish();

  // Asynchronous snapshots (safe from the producer thread; the scoring
  // side may be mid-tick).
  std::size_t samples_consumed() const {
    return static_cast<std::size_t>(ingest_.pushed());
  }
  std::size_t resident_samples() const {
    return resident_.load(std::memory_order_relaxed);
  }
  std::size_t corrupt_samples() const {
    return corrupt_.load(std::memory_order_relaxed);
  }
  std::size_t ingest_high_watermark() const {
    return ingest_.high_watermark();
  }
  float threshold() const { return core_.threshold(); }
  std::size_t median_k() const { return core_.median_k(); }

 private:
  friend class WindowBatcher;
  BatchedStream(WindowBatcher& owner, const core::CoLocator& locator,
                const StreamingConfig& config);

  [[noreturn]] void rethrow_error();

  WindowBatcher& owner_;
  StreamingConfig::NanPolicy nan_policy_;
  SpscRing ingest_;

  // Scheduler-thread state: the scoring core and its bookkeeping. Touched
  // only by the batcher thread after open_stream returns.
  StreamingLocator core_;
  bool sched_eof_done_ = false;

  // Producer-thread state.
  std::vector<float> scrub_;  ///< NaN-scrub / poison scratch
  bool finish_called_ = false;

  // Cross-thread.
  std::atomic<bool> eof_requested_{false};
  std::atomic<bool> failed_{false};  ///< error_ published under mutex_
  std::atomic<std::size_t> corrupt_{0};
  std::atomic<std::size_t> resident_{0};
  obs::Counter* corrupt_counter_ = nullptr;  ///< stream.<model>.corrupt_samples

  // Result hand-off (cold path): the scheduler pushes finalized detections
  // and the terminal eof/error states under this mutex; cv wakes finish().
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Detection> ready_;
  std::exception_ptr error_;
  bool eof_done_ = false;
};

class WindowBatcher {
 public:
  /// `locator` must be trained and outlive the batcher. Spawns the
  /// scheduler thread immediately.
  explicit WindowBatcher(const core::CoLocator& locator,
                         BatchConfig config = {});
  /// Fails any stream still attached (a blocked finish() wakes with the
  /// error), then joins the scheduler thread.
  ~WindowBatcher();

  WindowBatcher(const WindowBatcher&) = delete;
  WindowBatcher& operator=(const WindowBatcher&) = delete;

  /// Opens a stream whose windows are scored through the shared batch.
  /// `config` carries the same per-stream knobs as the self-scoring path
  /// (NanPolicy, threshold override, telemetry wiring); batch_size is
  /// unused — the batcher's max_batch_windows governs.
  std::shared_ptr<BatchedStream> open_stream(StreamingConfig config = {});

  const BatchMetrics& metrics() const { return metrics_; }
  std::size_t max_batch_windows() const { return config_.max_batch_windows; }
  std::chrono::microseconds batch_linger() const {
    return config_.batch_linger;
  }

 private:
  friend class BatchedStream;

  /// Producer-side wakeup: a relaxed flag plus a notify, never a lock (the
  /// scheduler's timed wait bounds a lost wakeup by one linger period).
  void notify();

  void run();
  /// One scheduler pass: drain ingest rings, stage ready windows across
  /// sessions, flush per policy, process eofs. Returns true when it made
  /// progress that may have left more work ready (run again immediately).
  bool tick();
  void fail_stream(BatchedStream& stream, std::exception_ptr error);
  /// Fails every attached stream that is not already terminal (scheduler
  /// death, batcher teardown with open streams).
  void fail_all(std::exception_ptr error);
  void deliver(BatchedStream& stream, std::vector<Detection>& detections);

  const core::CoLocator& locator_;
  core::SlidingWindowClassifier classifier_;
  nn::Workspace ws_;
  BatchConfig config_;
  BatchMetrics metrics_;

  std::mutex streams_mutex_;
  std::vector<std::weak_ptr<BatchedStream>> streams_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> work_{false};
  std::atomic<bool> stop_{false};

  // Scheduler-thread scratch.
  struct Staged {
    BatchedStream* stream;
    std::size_t count;
  };
  std::vector<std::shared_ptr<BatchedStream>> live_;
  std::vector<Staged> staged_;
  std::vector<std::span<const float>> rows_;
  std::vector<float> scores_;
  std::vector<Detection> dets_;
  std::chrono::steady_clock::time_point pending_since_{};
  bool linger_armed_ = false;

  std::thread scheduler_;  ///< last member: started once state is ready
};

}  // namespace scalocate::runtime
