#include "runtime/streaming_locator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/signal.hpp"
#include "runtime/fault_injector.hpp"

namespace scalocate::runtime {

namespace {

/// Checked before the classifier member touches the model, so an untrained
/// locator produces this message rather than the classifier's eval-mode
/// complaint.
const core::CoLocator& require_trained(const core::CoLocator& locator) {
  detail::require(locator.is_trained(),
                  "StreamingLocator: locator must be trained");
  return locator;
}

}  // namespace

StreamMetrics StreamMetrics::resolve(obs::Registry& registry,
                                     const std::string& prefix) {
  const std::string p = prefix.empty() ? "stream" : prefix;
  StreamMetrics m;
  m.samples_fed = &registry.counter(p + ".samples_fed");
  m.windows_scored = &registry.counter(p + ".windows_scored");
  m.detections = &registry.counter(p + ".detections");
  m.corrupt_samples = &registry.counter(p + ".corrupt_samples");
  m.emission_lag_samples = &registry.histogram(p + ".emission_lag_samples");
  return m;
}

StreamingLocator::StreamingLocator(const core::CoLocator& locator,
                                   StreamingConfig config)
    : locator_(require_trained(locator)),
      classifier_(locator.model(), locator.config().params.n_inf,
                  locator.config().params.stride, config.batch_size) {
  const core::PipelineParams& params = locator.config().params;
  window_ = params.n_inf;
  stride_ = params.stride;
  batch_size_ = config.batch_size;
  nan_policy_ = config.nan_policy;

  float th = config.threshold;
  if (std::isnan(th)) th = params.threshold;
  if (std::isnan(th)) th = locator.calibrated_threshold();
  detail::require(!std::isnan(th),
                  "StreamingLocator: no usable decision threshold; set "
                  "StreamingConfig::threshold or params.threshold, or "
                  "train() so a calibrated threshold exists");
  threshold_ = th;

  median_k_ = core::Segmenter::resolve_median_k(locator.segmenter_config(),
                                                stride_, window_);
  detail::require(median_k_ % 2 == 1,
                  "StreamingLocator: median filter size must be odd");
  half_ = median_k_ / 2;
  merge_gap_ = locator.segmenter_config().merge_gap_windows;

  coarse_ = locator.coarse_offset();
  fine_ = locator.fine_offset();
  fine_align_ = locator.config().fine_align;
  tmpl_len_ = locator.fine_template().size();
  radius_ = locator.fine_search_radius();
  dedup_ = locator.config().min_separation_fraction > 0.0 &&
           locator.mean_co_length() > 0.0;
  min_gap_ = dedup_ ? static_cast<std::size_t>(
                          locator.config().min_separation_fraction *
                          locator.mean_co_length())
                    : 0;

  if (config.registry)
    metrics_ = StreamMetrics::resolve(*config.registry, config.metric_prefix);
}

void StreamingLocator::reset() {
  ring_.reset();
  next_window_ = 0;
  square_.clear();
  sq_base_ = 0;
  filt_next_ = 0;
  prev_filt_ = 0.0f;
  last_fall_.reset();
  raw_edges_.clear();
  pending_.clear();
  last_kept_.reset();
  finished_ = false;
  corrupt_samples_ = 0;
}

std::vector<Detection> StreamingLocator::feed(std::span<const float> chunk) {
  detail::require(!finished_,
                  "StreamingLocator::feed after finish (reset() first)");
  // Chaos hook: an armed "stream.feed" site NaN-poisons the chunk HERE,
  // upstream of validation — the injected corruption must be caught by the
  // same scan that catches a real dying probe.
  std::span<const float> data = chunk;
  if (FaultInjector::instance().poison("stream.feed", chunk, sanitize_buf_))
    data = sanitize_buf_;

  const ScrubResult scrub = scrub_non_finite(data, nan_policy_, sanitize_buf_);
  if (scrub.bad > 0) {
    corrupt_samples_ += scrub.bad;
    if (metrics_.enabled()) metrics_.corrupt_samples->add(scrub.bad);
    if (nan_policy_ == StreamingConfig::NanPolicy::kReject)
      // Stream state untouched: the bad chunk is simply not part of the
      // stream, so the caller can keep feeding clean chunks and parity
      // with offline locate over the accepted samples holds.
      throw CorruptSignal("StreamingLocator::feed: chunk contains " +
                          std::to_string(scrub.bad) +
                          " non-finite sample(s); nan_policy is kReject");
  }
  data = scrub.data;

  if (metrics_.enabled()) metrics_.samples_fed->add(data.size());
  ring_.append(data);
  std::vector<Detection> out;
  pump(/*eof=*/false, out);
  return out;
}

StreamingLocator::ScrubResult StreamingLocator::scrub_non_finite(
    std::span<const float> chunk, StreamingConfig::NanPolicy policy,
    std::vector<float>& scratch) {
  ScrubResult r{chunk, 0};
  for (const float sample : chunk)
    if (!std::isfinite(sample)) ++r.bad;
  if (r.bad == 0 || policy == StreamingConfig::NanPolicy::kReject) return r;
  if (chunk.data() != scratch.data())
    scratch.assign(chunk.begin(), chunk.end());
  for (float& sample : scratch)
    if (!std::isfinite(sample)) sample = 0.0f;
  r.data = scratch;
  return r;
}

std::vector<Detection> StreamingLocator::finish() {
  detail::require(!finished_, "StreamingLocator::finish called twice");
  std::vector<Detection> out;
  pump(/*eof=*/true, out);
  finished_ = true;
  return out;
}

void StreamingLocator::pump(bool eof, std::vector<Detection>& out) {
  score_ready_windows();
  emit_filtered(eof);
  refine_ready_edges(eof);
  release_pending(eof, out);
  if (!eof) trim_ring();
}

void StreamingLocator::score_ready_windows() {
  // Score every window fully contained in the stream so far, in batches.
  // Each CNN row is computed independently of its batch neighbors, so the
  // scores match the offline classifier regardless of how the chunk
  // boundaries happen to group the windows. The ready_windows() /
  // ready_window() / ingest_scores() trio is the same surface an external
  // scheduler (runtime::WindowBatcher) drives, so the self-scoring and
  // batched paths share one code path end to end.
  std::size_t ready = 0;
  while ((ready = ready_windows()) > 0) {
    const std::size_t count = std::min(ready, batch_size_);
    // Standardize each window straight from the ring into the workspace's
    // staging tensor — the identical zero-copy batch path the offline
    // SlidingWindowClassifier::score_into uses.
    scores_buf_.resize(count);
    classifier_.score_window_batch(
        count, [&](std::size_t i) { return ready_window(i); },
        scores_buf_.data(), ws_);
    ingest_scores({scores_buf_.data(), count});
  }
}

void StreamingLocator::ingest_scores(std::span<const float> scores) {
  for (const float score : scores)
    square_.push_back(score >= threshold_ ? 1.0f : -1.0f);
  next_window_ += scores.size();
  if (metrics_.enabled()) metrics_.windows_scored->add(scores.size());
}

void StreamingLocator::append_ingested(std::span<const float> chunk) {
  detail::require(!finished_,
                  "StreamingLocator::append_ingested after finish");
  if (metrics_.enabled()) metrics_.samples_fed->add(chunk.size());
  ring_.append(chunk);
}

std::size_t StreamingLocator::ready_windows() const {
  const std::size_t n = ring_.size();
  if (n < window_) return 0;
  const std::size_t total = (n - window_) / stride_ + 1;
  return total > next_window_ ? total - next_window_ : 0;
}

std::span<const float> StreamingLocator::ready_window(std::size_t i) const {
  return ring_.view((next_window_ + i) * stride_, window_);
}

void StreamingLocator::accept_scores(std::span<const float> scores,
                                     std::vector<Detection>& out) {
  detail::require(!finished_,
                  "StreamingLocator::accept_scores after finish");
  detail::require(scores.size() <= ready_windows(),
                  "StreamingLocator::accept_scores: more scores than ready "
                  "windows");
  ingest_scores(scores);
  emit_filtered(/*eof=*/false);
  refine_ready_edges(/*eof=*/false);
  release_pending(/*eof=*/false, out);
  trim_ring();
}

void StreamingLocator::finish_into(std::vector<Detection>& out) {
  detail::require(!finished_, "StreamingLocator::finish_into called twice");
  detail::require(ready_windows() == 0,
                  "StreamingLocator::finish_into with unscored ready windows "
                  "(the scheduler must flush first)");
  emit_filtered(/*eof=*/true);
  refine_ready_edges(/*eof=*/true);
  release_pending(/*eof=*/true, out);
  finished_ = true;
}

void StreamingLocator::emit_filtered(bool eof) {
  const std::size_t total = next_window_;  // squares produced so far
  while (true) {
    const std::size_t i = filt_next_;
    std::size_t hi;
    if (eof) {
      if (i >= total) break;
      hi = std::min(total - 1, i + half_);  // right border: shrink window
    } else {
      if (i + half_ >= total) break;  // right neighbors not yet scored
      hi = i + half_;
    }
    const std::size_t lo = i >= half_ ? i - half_ : 0;
    neighborhood_.assign(
        square_.begin() + static_cast<std::ptrdiff_t>(lo - sq_base_),
        square_.begin() + static_cast<std::ptrdiff_t>(hi - sq_base_) + 1);
    const float value = signal::median_of(neighborhood_, median_scratch_);
    on_filtered_value(i, value);
    ++filt_next_;
    // Drop square values no future neighborhood can reach.
    const std::size_t keep_from = filt_next_ >= half_ ? filt_next_ - half_ : 0;
    while (sq_base_ < keep_from) {
      square_.pop_front();
      ++sq_base_;
    }
  }
}

void StreamingLocator::on_filtered_value(std::size_t index, float value) {
  // Incremental mirror of Segmenter::segment's edge scan (keep in
  // lockstep): rising edges become CO starts unless plateau-split merging
  // bridges the preceding low run.
  if (index == 0) {
    // A plateau that starts at window 0 has no -1 -> +1 transition; the
    // offline segmenter treats a high beginning as a CO start at sample 0.
    if (value > 0.0f) raw_edges_.push_back(0);
  } else if (prev_filt_ >= 0.0f && value < 0.0f) {
    last_fall_ = index;
  } else if (prev_filt_ < 0.0f && value >= 0.0f) {
    if (!(last_fall_.has_value() && index - *last_fall_ <= merge_gap_))
      raw_edges_.push_back(index * stride_);
  }
  prev_filt_ = value;
}

void StreamingLocator::refine_ready_edges(bool eof) {
  while (!raw_edges_.empty()) {
    const std::size_t raw = raw_edges_.front();
    std::int64_t base64 = static_cast<std::int64_t>(raw) - coarse_;
    if (base64 < 0) base64 = 0;
    const auto base = static_cast<std::size_t>(base64);

    std::size_t start;
    if (fine_align_ && tmpl_len_ > 0) {
      // Mid-stream, wait until the whole search region [base - radius,
      // base + radius + len) is resident; then the trace-end clamp the
      // offline path applies (hi = min(L - len, base + radius)) provably
      // does not bind, because the final length L is at least the current
      // stream length. At eof the clamp is applied with the true L.
      if (!eof && ring_.size() < base + radius_ + tmpl_len_) break;
      const auto len = static_cast<std::int64_t>(tmpl_len_);
      const std::int64_t lo = std::max<std::int64_t>(
          0, static_cast<std::int64_t>(base) - static_cast<std::int64_t>(radius_));
      const std::int64_t hi = std::min<std::int64_t>(
          static_cast<std::int64_t>(ring_.size()) - len,
          static_cast<std::int64_t>(base + radius_));
      if (hi < lo) {
        start = base;
      } else {
        const auto region = ring_.view(
            static_cast<std::size_t>(lo),
            static_cast<std::size_t>(hi - lo) + tmpl_len_);
        start = locator_.refine_in_region(region,
                                          static_cast<std::size_t>(lo));
      }
    } else {
      // No template: the offline refine step is the identity.
      start = base;
    }

    std::int64_t final64 = static_cast<std::int64_t>(start);
    if (fine_align_) final64 -= fine_;
    if (final64 < 0) final64 = 0;

    const Pending p{static_cast<std::size_t>(final64), raw};
    const auto pos = std::upper_bound(
        pending_.begin(), pending_.end(), p,
        [](const Pending& a, const Pending& b) {
          return a.final_start < b.final_start;
        });
    pending_.insert(pos, p);
    raw_edges_.pop_front();
  }
}

std::int64_t StreamingLocator::future_lower_bound(
    std::int64_t raw_sample) const {
  // Smallest final start a rising edge at (or after) raw_sample can map
  // to: coarse correction, then at most `radius` leftwards template snap,
  // then the fine residual. Clamps at 0 only raise the true value, so this
  // is a valid lower bound.
  std::int64_t lb = raw_sample - coarse_;
  if (fine_align_ && tmpl_len_ > 0) lb -= static_cast<std::int64_t>(radius_);
  if (fine_align_) lb -= fine_;
  return lb;
}

void StreamingLocator::release_pending(bool eof, std::vector<Detection>& out) {
  std::int64_t horizon = std::numeric_limits<std::int64_t>::max();
  if (!eof) {
    // Edges not yet confirmed by the median filter start at or after
    // window filt_next_; unrefined queued edges are even earlier, and
    // their lower bounds are monotone, so the queue front dominates.
    horizon = future_lower_bound(
        static_cast<std::int64_t>(filt_next_) *
        static_cast<std::int64_t>(stride_));
    if (!raw_edges_.empty()) {
      horizon = std::min(
          horizon,
          future_lower_bound(static_cast<std::int64_t>(raw_edges_.front())));
    }
  }

  std::size_t released = 0;
  while (released < pending_.size() &&
         (eof || static_cast<std::int64_t>(
                     pending_[released].final_start) < horizon)) {
    const Pending& p = pending_[released];
    // Same duplicate suppression as the offline path, applied in sorted
    // emission order.
    if (!dedup_ || !last_kept_.has_value() ||
        p.final_start >= *last_kept_ + min_gap_) {
      out.push_back(Detection{p.final_start, p.raw_edge});
      last_kept_ = p.final_start;
      if (metrics_.enabled()) {
        metrics_.detections->add();
        // Emission lag: how far the stream head ran ahead before this
        // detection could be finalized.
        metrics_.emission_lag_samples->record(
            ring_.size() > p.final_start ? ring_.size() - p.final_start : 0);
      }
    }
    ++released;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(released));
}

void StreamingLocator::trim_ring() {
  // Oldest sample any future stage can still touch: the next unscored
  // window, or the left edge of a fine-alignment search region for an
  // edge that is queued or not yet confirmed.
  std::int64_t oldest =
      static_cast<std::int64_t>(next_window_ * stride_);
  const std::int64_t reach =
      fine_align_ && tmpl_len_ > 0 ? static_cast<std::int64_t>(radius_) : 0;
  const std::int64_t future_raw = static_cast<std::int64_t>(filt_next_) *
                                  static_cast<std::int64_t>(stride_);
  oldest = std::min(oldest, future_raw - coarse_ - reach);
  if (!raw_edges_.empty()) {
    std::int64_t base = static_cast<std::int64_t>(raw_edges_.front()) - coarse_;
    if (base < 0) base = 0;
    oldest = std::min(oldest, base - reach);
  }
  if (oldest < 0) oldest = 0;
  ring_.discard_below(static_cast<std::size_t>(oldest));
}

}  // namespace scalocate::runtime
