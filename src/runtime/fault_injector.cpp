#include "runtime/fault_injector.hpp"

#include <cmath>
#include <limits>
#include <string_view>
#include <thread>

namespace scalocate::runtime {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  detail::require(spec.poison_stride >= 1,
                  "FaultInjector::arm: poison_stride must be >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = sites_.insert_or_assign(site, SiteState{spec, 0, 0});
  (void)it;
  if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sites_.erase(site) > 0) armed_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.fetch_sub(static_cast<int>(sites_.size()),
                   std::memory_order_relaxed);
  sites_.clear();
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.hits : 0;
}

std::uint64_t FaultInjector::injected(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.injected : 0;
}

bool FaultInjector::should_fire(const char* site, FaultSpec::Action action,
                                FaultSpec* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(std::string_view(site));
  if (it == sites_.end()) return false;
  SiteState& state = it->second;
  if (state.spec.action != action) return false;
  const std::uint64_t hit = ++state.hits;
  if (hit <= state.spec.skip || hit > state.spec.skip + state.spec.times)
    return false;
  ++state.injected;
  *out = state.spec;
  return true;
}

void FaultInjector::check(const char* site) {
  if (!armed()) return;
  FaultSpec spec;
  if (should_fire(site, FaultSpec::Action::kStall, &spec)) {
    // Sleep outside the lock: a stalled worker must not wedge the injector.
    std::this_thread::sleep_for(spec.stall);
    return;
  }
  if (should_fire(site, FaultSpec::Action::kThrow, &spec))
    throw InjectedFault(std::string("injected fault at ") + site);
}

bool FaultInjector::poison(const char* site, std::span<const float> in,
                           std::vector<float>& scratch) {
  if (!armed()) return false;
  FaultSpec spec;
  if (!should_fire(site, FaultSpec::Action::kPoison, &spec)) return false;
  scratch.assign(in.begin(), in.end());
  for (std::size_t i = 0; i < scratch.size(); i += spec.poison_stride)
    scratch[i] = std::numeric_limits<float>::quiet_NaN();
  return true;
}

bool FaultInjector::truncate(const char* site, std::string& bytes) {
  if (!armed()) return false;
  FaultSpec spec;
  if (!should_fire(site, FaultSpec::Action::kTruncate, &spec)) return false;
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(bytes.size()) * spec.truncate_fraction);
  bytes.resize(keep < bytes.size() ? keep : bytes.size());
  return true;
}

}  // namespace scalocate::runtime
