#include "runtime/window_batcher.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "nn/kernels/parallel.hpp"
#include "runtime/fault_injector.hpp"

namespace scalocate::runtime {

namespace {

/// Checked before the classifier member touches the model (same guard as
/// StreamingLocator's ctor).
const core::CoLocator& require_trained(const core::CoLocator& locator) {
  detail::require(locator.is_trained(),
                  "WindowBatcher: locator must be trained");
  return locator;
}

std::size_t require_batch_cap(std::size_t cap) {
  detail::require(cap > 0, "WindowBatcher: max_batch_windows must be > 0");
  return cap;
}

}  // namespace

BatchMetrics BatchMetrics::resolve(obs::Registry& registry,
                                   const std::string& prefix) {
  const std::string p = prefix.empty() ? "batch" : prefix;
  BatchMetrics m;
  m.coalesced_windows = &registry.counter(p + ".coalesced_windows");
  m.batches = &registry.counter(p + ".batches");
  m.flush_full = &registry.counter(p + ".flush_full");
  m.flush_linger = &registry.counter(p + ".flush_linger");
  m.flush_eof = &registry.counter(p + ".flush_eof");
  m.sessions = &registry.gauge(p + ".sessions");
  m.ingest_resident_samples = &registry.gauge(p + ".ingest_resident_samples");
  m.occupancy_windows = &registry.histogram(p + ".occupancy_windows");
  return m;
}

// ---------------------------------------------------------------------------
// BatchedStream
// ---------------------------------------------------------------------------

BatchedStream::BatchedStream(WindowBatcher& owner,
                             const core::CoLocator& locator,
                             const StreamingConfig& config)
    : owner_(owner),
      nan_policy_(config.nan_policy),
      ingest_(owner.config_.ingest_capacity),
      core_(locator, config) {
  // The scoring core counts samples/windows/detections on the scheduler
  // thread; corruption is caught on the producer side, so resolve that one
  // counter here (same instrument the self-scoring path uses).
  if (config.registry)
    corrupt_counter_ =
        StreamMetrics::resolve(*config.registry, config.metric_prefix)
            .corrupt_samples;
}

void BatchedStream::feed(std::span<const float> chunk) {
  detail::require(!finish_called_, "BatchedStream::feed after finish");
  if (failed_.load(std::memory_order_acquire)) rethrow_error();

  // Chaos hook: the same "stream.feed" poison site as the self-scoring
  // path, upstream of validation.
  std::span<const float> data = chunk;
  if (FaultInjector::instance().poison("stream.feed", chunk, scrub_))
    data = scrub_;

  const auto scan =
      StreamingLocator::scrub_non_finite(data, nan_policy_, scrub_);
  if (scan.bad > 0) {
    corrupt_.fetch_add(scan.bad, std::memory_order_relaxed);
    if (corrupt_counter_) corrupt_counter_->add(scan.bad);
    if (nan_policy_ == StreamingConfig::NanPolicy::kReject)
      // Ring untouched: the bad chunk never becomes part of the stream,
      // exactly as on the self-scoring path.
      throw CorruptSignal("BatchedStream::feed: chunk contains " +
                          std::to_string(scan.bad) +
                          " non-finite sample(s); nan_policy is kReject");
  }
  data = scan.data;

  std::size_t offset = 0;
  while (true) {
    offset += ingest_.try_push(data.subspan(offset));
    owner_.notify();
    if (offset == data.size()) break;
    // Ring full: bounded-memory backpressure. Spin (never lock) until the
    // scheduler drains — or until the stream failed, which never drains.
    if (failed_.load(std::memory_order_acquire)) rethrow_error();
    std::this_thread::yield();
  }
}

void BatchedStream::poll(std::vector<Detection>& out) {
  bool failed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.insert(out.end(), ready_.begin(), ready_.end());
    ready_.clear();
    failed = error_ != nullptr;
  }
  // Rethrow AFTER draining: detections that became final before the
  // failure stay delivered (out already holds them).
  if (failed) rethrow_error();
}

std::vector<Detection> BatchedStream::finish() {
  detail::require(!finish_called_, "BatchedStream::finish called twice");
  finish_called_ = true;
  eof_requested_.store(true, std::memory_order_release);
  owner_.notify();

  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return eof_done_ || error_ != nullptr; });
  std::vector<Detection> out(ready_.begin(), ready_.end());
  ready_.clear();
  const std::exception_ptr error = error_;
  lock.unlock();
  if (error) std::rethrow_exception(error);
  return out;
}

void BatchedStream::rethrow_error() {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
  throw Error("BatchedStream: stream failed");
}

// ---------------------------------------------------------------------------
// WindowBatcher
// ---------------------------------------------------------------------------

WindowBatcher::WindowBatcher(const core::CoLocator& locator,
                             BatchConfig config)
    : locator_(require_trained(locator)),
      classifier_(locator.model(), locator.config().params.n_inf,
                  locator.config().params.stride,
                  require_batch_cap(config.max_batch_windows)),
      config_(std::move(config)) {
  if (config_.registry)
    metrics_ = BatchMetrics::resolve(*config_.registry, config_.metric_prefix);
  scheduler_ = std::thread([this] { run(); });
}

WindowBatcher::~WindowBatcher() {
  stop_.store(true, std::memory_order_relaxed);
  notify();
  if (scheduler_.joinable()) scheduler_.join();
}

std::shared_ptr<BatchedStream> WindowBatcher::open_stream(
    StreamingConfig config) {
  auto stream = std::shared_ptr<BatchedStream>(
      new BatchedStream(*this, locator_, config));
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    streams_.push_back(stream);
  }
  if (metrics_.enabled()) metrics_.sessions->add();
  notify();
  return stream;
}

void WindowBatcher::notify() {
  work_.store(true, std::memory_order_release);
  wake_cv_.notify_one();
}

void WindowBatcher::deliver(BatchedStream& stream,
                            std::vector<Detection>& detections) {
  std::lock_guard<std::mutex> lock(stream.mutex_);
  stream.ready_.insert(stream.ready_.end(), detections.begin(),
                       detections.end());
}

void WindowBatcher::fail_stream(BatchedStream& stream,
                                std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(stream.mutex_);
    if (!stream.error_) stream.error_ = std::move(error);
  }
  stream.failed_.store(true, std::memory_order_release);
  stream.cv_.notify_all();
  // Discard whatever ingest is in flight so the producer-side spin (ring
  // full) cannot outlast the failed_ flag it checks.
  stream.ingest_.drain([](std::span<const float>) {});
}

void WindowBatcher::run() {
  // Wake cadence: the linger clamped to [200us, 2ms]. Producers notify on
  // every push, but the notify is lockless so a wakeup racing the wait can
  // be lost — the timed wait bounds that loss to one cadence period, and
  // an idle batcher at this cadence is invisible in a profile.
  auto cadence = config_.batch_linger;
  if (cadence < std::chrono::microseconds(200))
    cadence = std::chrono::microseconds(200);
  if (cadence > std::chrono::milliseconds(2))
    cadence = std::chrono::milliseconds(2);

  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait_for(lock, cadence, [&] {
        return work_.load(std::memory_order_relaxed) ||
               stop_.load(std::memory_order_relaxed);
      });
    }
    work_.store(false, std::memory_order_relaxed);
    try {
      while (tick()) {
      }
    } catch (...) {
      // Scheduler-fatal (e.g. allocation failure mid-flush): fail every
      // open stream so no producer blocks forever; the batcher then keeps
      // serving the terminal error state.
      fail_all(std::current_exception());
    }
  }

  // Shutdown: one final pass completes any finish() already signalled;
  // anything still open afterwards is failed so nothing blocks forever.
  try {
    while (tick()) {
    }
  } catch (...) {
  }
  fail_all(std::make_exception_ptr(
      Error("WindowBatcher destroyed while streams were still open")));
}

void WindowBatcher::fail_all(std::exception_ptr error) {
  std::vector<std::shared_ptr<BatchedStream>> live;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    for (auto& weak : streams_)
      if (auto s = weak.lock()) live.push_back(std::move(s));
  }
  for (auto& s : live) {
    bool terminal = false;
    {
      std::lock_guard<std::mutex> lock(s->mutex_);
      terminal = s->eof_done_ || s->error_ != nullptr;
    }
    if (!terminal) fail_stream(*s, error);
  }
}

bool WindowBatcher::tick() {
  // 1. Snapshot live streams; prune handles whose owners went away.
  live_.clear();
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (auto s = streams_[i].lock()) {
        live_.push_back(std::move(s));
        // Compact in place. The no-gap case would self-move-assign, which
        // empties a libstdc++ weak_ptr — skip it.
        if (kept != i) streams_[kept] = std::move(streams_[i]);
        ++kept;
      } else if (metrics_.enabled()) {
        metrics_.sessions->sub();
      }
    }
    streams_.resize(kept);
  }

  // 2. Drain every ingest ring into its stream's scoring core.
  std::size_t deepest = 0;
  for (auto& s : live_) {
    if (s->failed_.load(std::memory_order_relaxed)) continue;
    deepest = std::max(deepest, s->ingest_.size_approx());
    s->ingest_.drain([&](std::span<const float> part) {
      s->core_.append_ingested(part);
    });
    s->resident_.store(s->core_.resident_samples(),
                       std::memory_order_relaxed);
  }
  if (metrics_.enabled())
    metrics_.ingest_resident_samples->set(static_cast<std::int64_t>(deepest));

  // 3. Stage ready windows across all sessions, up to max_batch_windows.
  staged_.clear();
  std::size_t total = 0;
  bool more_ready = false;
  bool eof_staged = false;
  const std::size_t cap = config_.max_batch_windows;
  for (auto& s : live_) {
    if (s->failed_.load(std::memory_order_relaxed) || s->sched_eof_done_)
      continue;
    const std::size_t avail = s->core_.ready_windows();
    if (avail == 0) continue;
    if (total == cap) {
      more_ready = true;
      break;
    }
    // Per-stream chaos hook: an armed "batch.stage" fault fails THIS
    // stream only; its batchmates keep scoring, bit-identically.
    try {
      FaultInjector::instance().check("batch.stage");
    } catch (...) {
      fail_stream(*s, std::current_exception());
      continue;
    }
    const std::size_t take = std::min(avail, cap - total);
    staged_.push_back({s.get(), take});
    total += take;
    if (take < avail) more_ready = true;
    if (s->eof_requested_.load(std::memory_order_acquire)) eof_staged = true;
  }

  // 4. Flush policy: full beats eof beats linger.
  const auto now = std::chrono::steady_clock::now();
  if (total == 0) {
    linger_armed_ = false;
  } else if (!linger_armed_) {
    linger_armed_ = true;
    pending_since_ = now;
  }
  obs::Counter* reason = nullptr;
  bool flush = false;
  if (total > 0) {
    if (total == cap) {
      flush = true;
      reason = metrics_.flush_full;
    } else if (eof_staged || stop_.load(std::memory_order_relaxed)) {
      flush = true;
      reason = metrics_.flush_eof;
    } else if (now - pending_since_ >= config_.batch_linger) {
      flush = true;
      reason = metrics_.flush_linger;
    }
  }

  // 5. Flush: ONE shared score_window_batch GEMM over every staged window,
  // then demux the scores back to their streams in staging order.
  if (flush) {
    rows_.clear();
    for (const Staged& st : staged_)
      for (std::size_t i = 0; i < st.count; ++i)
        rows_.push_back(st.stream->core_.ready_window(i));
    scores_.resize(total);
    {
      nn::kernels::IntraOpGuard intra(config_.intra_op_threads);
      classifier_.score_window_batch(
          total, [&](std::size_t row) { return rows_[row]; }, scores_.data(),
          ws_);
    }
    std::size_t offset = 0;
    for (const Staged& st : staged_) {
      dets_.clear();
      try {
        st.stream->core_.accept_scores({scores_.data() + offset, st.count},
                                       dets_);
      } catch (...) {
        offset += st.count;
        fail_stream(*st.stream, std::current_exception());
        continue;
      }
      offset += st.count;
      st.stream->resident_.store(st.stream->core_.resident_samples(),
                                 std::memory_order_relaxed);
      if (!dets_.empty()) deliver(*st.stream, dets_);
    }
    if (metrics_.enabled()) {
      metrics_.batches->add();
      metrics_.coalesced_windows->add(total);
      metrics_.occupancy_windows->record(total);
      reason->add();
    }
    linger_armed_ = false;
  }

  // 6. End-of-stream: once a finishing stream's ingest is fully drained
  // and every window scored, run the pipeline tail and wake its finish().
  bool eof_pending = false;
  for (auto& s : live_) {
    if (s->sched_eof_done_ || s->failed_.load(std::memory_order_relaxed))
      continue;
    if (!s->eof_requested_.load(std::memory_order_acquire)) continue;
    if (s->ingest_.size_approx() != 0 || s->core_.ready_windows() != 0) {
      eof_pending = true;  // the next tick drains/flushes the rest
      continue;
    }
    dets_.clear();
    try {
      s->core_.finish_into(dets_);
    } catch (...) {
      s->sched_eof_done_ = true;
      fail_stream(*s, std::current_exception());
      continue;
    }
    s->sched_eof_done_ = true;
    {
      std::lock_guard<std::mutex> lock(s->mutex_);
      s->ready_.insert(s->ready_.end(), dets_.begin(), dets_.end());
      s->eof_done_ = true;
    }
    s->cv_.notify_all();
  }

  return (flush && more_ready) || eof_pending;
}

}  // namespace scalocate::runtime
