#include "runtime/thread_pool.hpp"

#include "common/error.hpp"

namespace scalocate::runtime {

std::size_t resolve_workers(std::size_t configured) {
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t workers) {
  detail::require(workers >= 1, "ThreadPool: need at least one worker");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::attach_metrics(obs::Registry& registry,
                                const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_ = &registry.counter(prefix + ".tasks");
  queue_depth_ = &registry.gauge(prefix + ".queue_depth");
}

void ThreadPool::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    detail::require(!stopping_, "ThreadPool::post after shutdown");
    queue_.push_back(std::move(task));
    if (tasks_) {
      tasks_->add();
      queue_depth_->add();
    }
  }
  wake_.notify_one();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_) queue_depth_->sub();
      ++active_;
    }
    try {
      task(index);
    } catch (...) {
      // submit() routes exceptions into the future via packaged_task; a
      // bare post() task that throws must not take down the worker (or the
      // process), and active_ must still be released for wait_idle().
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace scalocate::runtime
