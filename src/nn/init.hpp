// Weight initialization (He/Kaiming for ReLU networks, Xavier/Glorot).
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace scalocate::nn {

/// He-normal initialization of a conv/linear weight tensor: the fan-in is
/// inferred from the shape ([Cout, Cin, K] -> Cin*K, [Fout, Fin] -> Fin).
void he_normal_init(Tensor& weight, Rng& rng);

/// Xavier-uniform initialization.
void xavier_uniform_init(Tensor& weight, Rng& rng);

/// Initializes every parameter of a module: He-normal for weights with
/// rank >= 2, zeros for rank-1 biases (batch-norm gamma/beta keep their
/// constructor values because their names start with "bn.").
void init_module(Layer& module, Rng& rng);

}  // namespace scalocate::nn
