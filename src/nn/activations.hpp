// Element-wise activation layers and the softmax helper.
#pragma once

#include "nn/layer.hpp"

namespace scalocate::nn {

/// Rectified linear unit; shape-preserving for any rank.
class ReLU final : public Layer {
 public:
  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::string name() const override { return "ReLU"; }
};

/// Row-wise softmax over the last axis of a [B, C] tensor. Not a Layer:
/// training uses the fused softmax-cross-entropy loss, and inference reads
/// the pre-softmax linear scores (Section III-C); this helper exists for
/// callers that want calibrated probabilities.
Tensor softmax(const Tensor& logits);

}  // namespace scalocate::nn
