#include "nn/kernels/pointwise.hpp"

#include <cmath>

namespace scalocate::nn::kernels {

void axpy(std::size_t n, float alpha, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void add_inplace(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void relu(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_mask(std::size_t n, const float* x, float* y, float* mask) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = x[i] > 0.0f;
    y[i] = positive ? x[i] : 0.0f;
    mask[i] = positive ? 1.0f : 0.0f;
  }
}

void multiply(std::size_t n, const float* a, const float* b, float* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void bias_relu_rows(float* c, const float* bias, std::size_t rows,
                    std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float bv = bias[r];
    float* crow = c + r * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      const float v = crow[j] + bv;
      crow[j] = v > 0.0f ? v : 0.0f;
    }
  }
}

void add_bias_cols(float* c, const float* bias, std::size_t rows,
                   std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = c + r * cols;
    for (std::size_t j = 0; j < cols; ++j) crow[j] += bias[j];
  }
}

void row_sums_add(const float* c, std::size_t rows, std::size_t cols,
                  float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* crow = c + r * cols;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += static_cast<double>(crow[j]);
    out[r] += static_cast<float>(acc);
  }
}

void scale_shift(std::size_t n, const float* x, float a, float b, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i] + b;
}

void normalize_scale_shift(std::size_t n, const float* x, float mean,
                           float inv_std, float gamma, float beta, float* xhat,
                           float* y) {
  for (std::size_t i = 0; i < n; ++i) {
    const float h = (x[i] - mean) * inv_std;
    xhat[i] = h;
    y[i] = gamma * h + beta;
  }
}

void bn_input_grad(std::size_t n, const float* g, const float* xhat,
                   double coeff, double mean_g, double mean_g_xhat,
                   float* gx) {
  for (std::size_t i = 0; i < n; ++i)
    gx[i] = static_cast<float>(
        coeff * (static_cast<double>(g[i]) - mean_g -
                 static_cast<double>(xhat[i]) * mean_g_xhat));
}

double sum(std::size_t n, const float* x) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]);
  return acc;
}

void sums_dot(std::size_t n, const float* a, const float* b, double* sum_a,
              double* dot_ab) {
  double s = 0.0;
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(a[i]);
    d += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  *sum_a += s;
  *dot_ab += d;
}

void mean_var(std::size_t n, const float* x, double* mean, double* var) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m += static_cast<double>(x[i]);
  m = n > 0 ? m / static_cast<double>(n) : 0.0;
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - m;
    v += d * d;
  }
  v = n > 0 ? v / static_cast<double>(n) : 0.0;
  *mean = m;
  *var = v;
}

void standardize(std::span<const float> src, float* dst) {
  double m = 0.0;
  double v = 0.0;
  mean_var(src.size(), src.data(), &m, &v);
  const double sd = std::sqrt(v);
  if (sd <= 1e-9) {
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = 0.0f;
    return;
  }
  for (std::size_t i = 0; i < src.size(); ++i)
    dst[i] = static_cast<float>((static_cast<double>(src[i]) - m) / sd);
}

}  // namespace scalocate::nn::kernels
