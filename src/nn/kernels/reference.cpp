#include "nn/kernels/reference.hpp"

namespace scalocate::nn::kernels {

void conv1d_forward_naive(const float* x, std::size_t batch, std::size_t cin,
                          std::size_t n, const float* w, const float* bias,
                          std::size_t cout, std::size_t kernel,
                          std::size_t stride, std::size_t pad_left,
                          std::size_t out_len, float* out) {
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t co = 0; co < cout; ++co) {
      float* orow = out + (b * cout + co) * out_len;
      const float bv = bias[co];
      for (std::size_t i = 0; i < out_len; ++i) orow[i] = bv;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float* xrow = x + (b * cin + ci) * n;
        const float* wrow = w + (co * cin + ci) * kernel;
        for (std::size_t k = 0; k < kernel; ++k) {
          const float wv = wrow[k];
          if (wv == 0.0f) continue;
          // Output positions whose tap k lands inside [0, n).
          std::size_t lo = 0;
          if (k < pad_left) lo = (pad_left - k + stride - 1) / stride;
          if (lo >= out_len) continue;
          const std::size_t max_idx = n - 1 + pad_left;
          if (k > max_idx) continue;
          std::size_t hi = (max_idx - k) / stride;  // inclusive
          if (hi >= out_len) hi = out_len - 1;
          const float* xbase = xrow + (lo * stride + k - pad_left);
          float* obase = orow + lo;
          const std::size_t count = hi - lo + 1;
          if (stride == 1) {
            for (std::size_t i = 0; i < count; ++i) obase[i] += wv * xbase[i];
          } else {
            for (std::size_t i = 0; i < count; ++i)
              obase[i] += wv * xbase[i * stride];
          }
        }
      }
    }
  }
}

void conv1d_backward_naive(const float* x, std::size_t batch, std::size_t cin,
                           std::size_t n, const float* w, std::size_t cout,
                           std::size_t kernel, std::size_t stride,
                           std::size_t pad_left, std::size_t out_len,
                           const float* gout, float* gx, float* gw,
                           float* gb) {
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t co = 0; co < cout; ++co) {
      const float* gorow = gout + (b * cout + co) * out_len;
      float acc = 0.0f;
      for (std::size_t i = 0; i < out_len; ++i) acc += gorow[i];
      gb[co] += acc;

      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float* xrow = x + (b * cin + ci) * n;
        float* gxrow = gx + (b * cin + ci) * n;
        const float* wrow = w + (co * cin + ci) * kernel;
        float* gwrow = gw + (co * cin + ci) * kernel;
        for (std::size_t k = 0; k < kernel; ++k) {
          std::size_t lo = 0;
          if (k < pad_left) lo = (pad_left - k + stride - 1) / stride;
          if (lo >= out_len) continue;
          const std::size_t max_idx = n - 1 + pad_left;
          if (k > max_idx) continue;
          std::size_t hi = (max_idx - k) / stride;
          if (hi >= out_len) hi = out_len - 1;
          const std::size_t count = hi - lo + 1;
          const float* xbase = xrow + (lo * stride + k - pad_left);
          float* gxbase = gxrow + (lo * stride + k - pad_left);
          const float* gbase = gorow + lo;
          const float wv = wrow[k];
          float wacc = 0.0f;
          if (stride == 1) {
            for (std::size_t i = 0; i < count; ++i) {
              wacc += gbase[i] * xbase[i];
              gxbase[i] += wv * gbase[i];
            }
          } else {
            for (std::size_t i = 0; i < count; ++i) {
              wacc += gbase[i] * xbase[i * stride];
              gxbase[i * stride] += wv * gbase[i];
            }
          }
          gwrow[k] += wacc;
        }
      }
    }
  }
}

void linear_forward_naive(const float* x, std::size_t batch, std::size_t in,
                          const float* w, const float* bias, std::size_t out_f,
                          float* out) {
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xrow = x + b * in;
    float* orow = out + b * out_f;
    for (std::size_t o = 0; o < out_f; ++o) {
      const float* wrow = w + o * in;
      float acc = bias[o];
      for (std::size_t i = 0; i < in; ++i) acc += wrow[i] * xrow[i];
      orow[o] = acc;
    }
  }
}

void linear_backward_naive(const float* x, std::size_t batch, std::size_t in,
                           const float* w, std::size_t out_f,
                           const float* gout, float* gx, float* gw,
                           float* gb) {
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xrow = x + b * in;
    const float* grow = gout + b * out_f;
    float* gxrow = gx + b * in;
    for (std::size_t o = 0; o < out_f; ++o) {
      const float g = grow[o];
      gb[o] += g;
      const float* wrow = w + o * in;
      float* gwrow = gw + o * in;
      for (std::size_t i = 0; i < in; ++i) {
        gwrow[i] += g * xrow[i];
        gxrow[i] += g * wrow[i];
      }
    }
  }
}

}  // namespace scalocate::nn::kernels
