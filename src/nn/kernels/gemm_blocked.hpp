// Internal: the cache-blocked GEMM implementation, templated on the
// register-tile shape (MR x NR), a B-packing policy, and a C-placement
// policy.
//
// The template is instantiated in two translation units with different
// tiles and different compiler flags:
//   - gemm.cpp        -> <4, 8>   (portable baseline ISA)
//   - gemm_avx2.cpp   -> <6, 16>  (compiled with -mavx2 -mfma)
// sgemm() in gemm.cpp picks the widest instantiation the running CPU
// supports. Keeping the body a template (instead of ifdef'd copies) means
// one algorithm, two codegens.
//
// Policies:
//   - PlainB / PlainCStore: ordinary row-major GEMM.
//   - Im2colB: a *virtual* batched column matrix — element (p, j) is the
//     convolution input sample tap p would read for output column j, read
//     straight from x during packing (im2col is never materialized).
//   - BatchedConvCStore: scatters GEMM columns j = b*out_len + pos into a
//     [B, Cout, out_len] output tensor and fuses the bias into the first
//     k-panel write-back.
// Together they make Conv1d::forward a single GEMM over the whole batch:
// the weight matrix is packed once per layer call, not once per item.
#pragma once

#include <algorithm>
#include <cstddef>

#include "nn/kernels/gemm.hpp"

namespace scalocate::nn::kernels::detail {

// Cache blocking: the packed A block (MC x KC) stays L2-resident and is
// re-streamed per B strip; the packed B panel (KC x NC) is sized to sit in
// L2 as well so the single pass the micro-kernel makes over it stays off
// DRAM (measured optimum on the batched conv GEMMs).
constexpr std::size_t kMC = 132;  // multiple of both MR choices (4 and 6)
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 512;

// Internal linkage on purpose: this header is compiled into both the
// baseline TU and the -mavx2 TU. A COMDAT-merged external-linkage inline
// could let the linker keep the AVX-encoded copy and feed it to baseline
// code paths (SIGILL on pre-AVX2 CPUs); a static copy per TU cannot leak.
static inline float load_any(bool trans, const float* m, std::size_t ld,
                             std::size_t row, std::size_t col) {
  return trans ? m[col * ld + row] : m[row * ld + col];
}

/// Out-of-line vector growth/zeroing, defined ONLY in gemm.cpp (baseline
/// ISA): keeps std::vector<float> method instantiations — which contain
/// vectorizable float loops — out of the AVX2 TU for the same reason.
float* grow(std::vector<float>& buf, std::size_t count);
float* grow_zeroed(std::vector<float>& buf, std::size_t count);

/// Packs A[ic..ic+mc) x [pc..pc+kc) into MR-row panels, zero-padding the
/// ragged last panel so the micro-kernel never branches on bounds.
template <std::size_t MR>
void pack_block_a(bool trans, const float* a, std::size_t lda, std::size_t ic,
                  std::size_t pc, std::size_t mc, std::size_t kc, float* dst) {
  for (std::size_t i0 = 0; i0 < mc; i0 += MR) {
    const std::size_t mr = std::min(MR, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t ir = 0; ir < mr; ++ir)
        dst[ir] = load_any(trans, a, lda, ic + i0 + ir, pc + p);
      for (std::size_t ir = mr; ir < MR; ++ir) dst[ir] = 0.0f;
      dst += MR;
    }
  }
}

/// B policy: plain row-major matrix, NR-column panels (zero-padded).
struct PlainB {
  bool trans;
  const float* b;
  std::size_t ldb;

  template <std::size_t NR>
  void pack(std::size_t pc, std::size_t jc, std::size_t kc, std::size_t nc,
            float* dst) const {
    for (std::size_t j0 = 0; j0 < nc; j0 += NR) {
      const std::size_t nr = std::min(NR, nc - j0);
      if (!trans && nr == NR) {
        // Contiguous fast path: rows of B are unit-stride in j.
        const float* src = b + pc * ldb + jc + j0;
        for (std::size_t p = 0; p < kc; ++p) {
          for (std::size_t jr = 0; jr < NR; ++jr) dst[jr] = src[jr];
          src += ldb;
          dst += NR;
        }
        continue;
      }
      for (std::size_t p = 0; p < kc; ++p) {
        for (std::size_t jr = 0; jr < nr; ++jr)
          dst[jr] = load_any(trans, b, ldb, pc + p, jc + j0 + jr);
        for (std::size_t jr = nr; jr < NR; ++jr) dst[jr] = 0.0f;
        dst += NR;
      }
    }
  }
};

/// B policy: virtual im2col of a whole conv batch. Row p = ci*kernel + tap;
/// column j = item*out_len + pos reads x[item][ci][pos*stride + tap - pad].
struct Im2colB {
  const float* x;  ///< [batch, cin, n] row-major
  std::size_t cin, n, kernel, stride, pad_left;
  std::size_t out_len;  ///< columns per batch item

  template <std::size_t NR>
  void pack(std::size_t pc, std::size_t jc, std::size_t kc, std::size_t nc,
            float* dst) const {
    const std::size_t item_stride = cin * n;
    for (std::size_t j0 = 0; j0 < nc; j0 += NR) {
      const std::size_t nr = std::min(NR, nc - j0);
      const std::size_t col0 = jc + j0;
      const std::size_t item = col0 / out_len;
      const std::size_t pos0 = col0 % out_len;
      if (pos0 + nr <= out_len) {
        pack_item_strip<NR>(x + item * item_stride, pos0, nr, pc, kc, dst);
        dst += kc * NR;
        continue;
      }
      // Strip straddles a batch-item boundary (only when out_len % NR != 0):
      // per-lane addressing.
      for (std::size_t p = pc; p < pc + kc; ++p) {
        const std::size_t ci = p / kernel;
        const std::size_t tap = p % kernel;
        for (std::size_t jr = 0; jr < NR; ++jr) {
          float v = 0.0f;
          if (jr < nr) {
            const std::size_t col = col0 + jr;
            const float* xrow =
                x + (col / out_len) * item_stride + ci * n;
            const std::ptrdiff_t idx =
                static_cast<std::ptrdiff_t>((col % out_len) * stride + tap) -
                static_cast<std::ptrdiff_t>(pad_left);
            if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(n)) v = xrow[idx];
          }
          dst[jr] = v;
        }
        dst += NR;
      }
    }
  }

 private:
  /// One NR-strip fully inside one batch item, columns [pos0, pos0 + nr).
  /// The (channel, tap) decomposition of the row index is carried
  /// incrementally — no divisions in the row loop — and the stride-1
  /// interior case collapses to a constant-length vector copy.
  template <std::size_t NR>
  void pack_item_strip(const float* xi, std::size_t pos0, std::size_t nr,
                       std::size_t pc, std::size_t kc, float* dst) const {
    const float* xrow = xi + (pc / kernel) * n;
    std::size_t tap = pc % kernel;
    const std::ptrdiff_t sn = static_cast<std::ptrdiff_t>(n);
    // Input index of lane jr is base + jr*stride (negative = left pad).
    std::ptrdiff_t base = static_cast<std::ptrdiff_t>(pos0 * stride + tap) -
                          static_cast<std::ptrdiff_t>(pad_left);
    const std::ptrdiff_t base0 = base - static_cast<std::ptrdiff_t>(tap);
    for (std::size_t p = 0; p < kc; ++p) {
      if (stride == 1) {
        if (base >= 0 && base + static_cast<std::ptrdiff_t>(NR) <= sn &&
            nr == NR) {
          // Interior strip: constant-length copy the compiler vectorizes.
          const float* src = xrow + base;
          for (std::size_t jr = 0; jr < NR; ++jr) dst[jr] = src[jr];
        } else {
          const std::ptrdiff_t snr = static_cast<std::ptrdiff_t>(nr);
          std::ptrdiff_t lo = base < 0 ? -base : 0;  // first in-bounds lane
          std::ptrdiff_t hi = sn - base;             // one past last
          lo = std::min(lo, snr);
          hi = std::max(std::min(hi, snr), lo);
          for (std::ptrdiff_t jr = 0; jr < lo; ++jr) dst[jr] = 0.0f;
          for (std::ptrdiff_t jr = lo; jr < hi; ++jr)
            dst[jr] = xrow[base + jr];
          for (std::size_t jr = static_cast<std::size_t>(hi); jr < NR; ++jr)
            dst[jr] = 0.0f;
        }
      } else {
        for (std::size_t jr = 0; jr < NR; ++jr) {
          const std::ptrdiff_t idx =
              base + static_cast<std::ptrdiff_t>(jr * stride);
          dst[jr] = (jr < nr && idx >= 0 && idx < sn) ? xrow[idx] : 0.0f;
        }
      }
      dst += NR;
      if (++tap == kernel) {  // next row: advance (channel, tap)
        tap = 0;
        xrow += n;
        base = base0;
      } else {
        ++base;
      }
    }
  }
};

/// C policy: plain row-major C with leading dimension ldc.
struct PlainCStore {
  float* c;
  std::size_t ldc;
  float beta;

  template <std::size_t NR>
  void store(bool first_panel, float alpha, std::size_t row0, std::size_t mr,
             std::size_t col0, std::size_t nr, const float* acc) const {
    float* cblk = c + row0 * ldc + col0;
    for (std::size_t ir = 0; ir < mr; ++ir) {
      float* crow = cblk + ir * ldc;
      const float* arow = acc + ir * NR;
      if (!first_panel) {
        for (std::size_t jr = 0; jr < nr; ++jr) crow[jr] += alpha * arow[jr];
      } else if (beta == 0.0f) {
        for (std::size_t jr = 0; jr < nr; ++jr) crow[jr] = alpha * arow[jr];
      } else {
        for (std::size_t jr = 0; jr < nr; ++jr)
          crow[jr] = beta * crow[jr] + alpha * arow[jr];
      }
    }
  }
};

/// C policy: batched conv output. GEMM row = out channel, GEMM column
/// j = item*out_len + pos lands at out[item, row, pos]; the bias is fused
/// into the first k-panel's write (no separate bias pass over the output).
struct BatchedConvCStore {
  float* out;  ///< [batch, cout, out_len]
  std::size_t cout, out_len;
  const float* bias;  ///< one per out channel, may be null

  template <std::size_t NR>
  void store(bool first_panel, float alpha, std::size_t row0, std::size_t mr,
             std::size_t col0, std::size_t nr, const float* acc) const {
    for (std::size_t ir = 0; ir < mr; ++ir) {
      const std::size_t row = row0 + ir;
      const float* arow = acc + ir * NR;
      const float bv = bias != nullptr ? bias[row] : 0.0f;
      std::size_t done = 0;
      while (done < nr) {
        const std::size_t item = (col0 + done) / out_len;
        const std::size_t pos = (col0 + done) % out_len;
        const std::size_t run = std::min(nr - done, out_len - pos);
        float* crow = out + (item * cout + row) * out_len + pos;
        if (first_panel) {
          for (std::size_t t = 0; t < run; ++t)
            crow[t] = alpha * arow[done + t] + bv;
        } else {
          for (std::size_t t = 0; t < run; ++t)
            crow[t] += alpha * arow[done + t];
        }
        done += run;
      }
    }
  }
};

/// acc[MR][NR] = pa panel * pb panel over kc steps.
///
/// Written with GNU vector extensions so the accumulators are explicit
/// vector registers (GCC's auto-vectorizer spills a plain MR*NR scalar
/// array): MR x NR/VL vector accumulators live across the whole k loop,
/// each step loads MR + NR floats and issues MR*NR/VL fused mul-adds. The
/// vector width VL follows the tile (8-float vectors for the AVX2 tile,
/// 4-float for the portable one); targets without the matching ISA get
/// the ops lowered by the compiler, so the template stays portable.
template <std::size_t MR, std::size_t NR>
inline void micro_kernel(std::size_t kc, const float* pa, const float* pb,
                         float* acc) {
  constexpr std::size_t VL = NR >= 16 ? 8 : 4;
  static_assert(NR % VL == 0);
  constexpr std::size_t NV = NR / VL;
  typedef float vf __attribute__((vector_size(VL * sizeof(float))));

  vf c[MR][NV] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = pa + p * MR;
    const float* brow = pb + p * NR;
    vf b[NV];
    for (std::size_t v = 0; v < NV; ++v)
      __builtin_memcpy(&b[v], brow + v * VL, sizeof(vf));  // unaligned load
    for (std::size_t ir = 0; ir < MR; ++ir) {
      const float av = arow[ir];  // splatted by the vector-scalar op below
      for (std::size_t v = 0; v < NV; ++v) c[ir][v] += b[v] * av;
    }
  }
  for (std::size_t ir = 0; ir < MR; ++ir)
    for (std::size_t v = 0; v < NV; ++v)
      __builtin_memcpy(acc + ir * NR + v * VL, &c[ir][v], sizeof(vf));
}

/// The blocked driver: pack B strip -> pack A block -> register-tiled
/// micro-kernel -> policy write-back.
template <std::size_t MR, std::size_t NR, class BPack, class CStore>
void sgemm_blocked_core(bool trans_a, std::size_t m, std::size_t n,
                        std::size_t k, float alpha, const float* a,
                        std::size_t lda, const BPack& bpack,
                        const CStore& cstore, GemmScratch& scratch) {
  static_assert(kMC % MR == 0, "MC must hold whole A panels");
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    const std::size_t nc_padded = (nc + NR - 1) / NR * NR;
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      const bool first_panel = pc == 0;
      float* packed_b = grow(scratch.pack_b, kc * nc_padded);
      bpack.template pack<NR>(pc, jc, kc, nc, packed_b);

      for (std::size_t ic = 0; ic < m; ic += kMC) {
        const std::size_t mc = std::min(kMC, m - ic);
        const std::size_t mc_padded = (mc + MR - 1) / MR * MR;
        float* packed_a = grow(scratch.pack_a, mc_padded * kc);
        pack_block_a<MR>(trans_a, a, lda, ic, pc, mc, kc, packed_a);

        // BLIS loop order: the NR strip of packed B is the outer loop (one
        // strip lives in L1 and is reused by every A row panel); the
        // MC x KC packed A block stays L2-resident and is re-streamed per
        // strip. B is then read exactly once per k-panel.
        for (std::size_t j0 = 0; j0 < nc; j0 += NR) {
          const std::size_t nr = std::min(NR, nc - j0);
          const float* pb = packed_b + (j0 / NR) * kc * NR;
          for (std::size_t i0 = 0; i0 < mc; i0 += MR) {
            const std::size_t mr = std::min(MR, mc - i0);
            const float* pa = packed_a + (i0 / MR) * kc * MR;
            float acc[MR * NR];  // fully written by the micro-kernel
            micro_kernel<MR, NR>(kc, pa, pb, acc);
            cstore.template store<NR>(first_panel, alpha, ic + i0, mr,
                                      jc + j0, nr, acc);
          }
        }
      }
    }
  }
}

template <std::size_t MR, std::size_t NR>
void sgemm_blocked(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                   std::size_t k, float alpha, const float* a, std::size_t lda,
                   const float* b, std::size_t ldb, float beta, float* c,
                   std::size_t ldc, GemmScratch& scratch) {
  sgemm_blocked_core<MR, NR>(trans_a, m, n, k, alpha, a, lda,
                             PlainB{trans_b, b, ldb},
                             PlainCStore{c, ldc, beta}, scratch);
}

/// Direct register-tiled stride-1 convolution: no packing at all. The
/// sliding-window structure means every "column matrix" strip is just a
/// shifted slice of an input row, so the micro-kernel reads x in place
/// (the per-item input is L1-sized for the paper model) while MRC output
/// channels x NR output positions accumulate in vector registers. This
/// beats im2col+GEMM whenever Cout is small: packing traffic cannot be
/// amortized over few GEMM rows, and here there is none.
template <std::size_t MRC, std::size_t NR>
void conv_direct(std::size_t cout, std::size_t out_len, std::size_t batch,
                 const float* w, const float* bias, const float* x,
                 std::size_t cin, std::size_t n, std::size_t kernel,
                 std::size_t pad_left, std::size_t pad_right, float* out,
                 GemmScratch& scratch) {
  constexpr std::size_t VL = NR >= 16 ? 8 : 4;
  static_assert(NR % VL == 0);
  constexpr std::size_t NV = NR / VL;
  typedef float vf __attribute__((vector_size(VL * sizeof(float))));
  const std::size_t wrow_stride = cin * kernel;

  // Zero padding is materialized once into an L1-sized staging copy of the
  // item (plus NR floats of load slop), so every tap load in the hot loop
  // is a plain unaligned vector load — no border branches, and the
  // accumulators are only ever touched with whole-vector ops (a per-lane
  // subscript would force them onto the stack).
  const std::size_t np = pad_left + n + pad_right + NR;
  float* xpad = grow_zeroed(scratch.pack_a, cin * np);

  for (std::size_t b = 0; b < batch; ++b) {
    const float* xi = x + b * cin * n;
    float* ob = out + b * cout * out_len;
    for (std::size_t ci = 0; ci < cin; ++ci)
      __builtin_memcpy(xpad + ci * np + pad_left, xi + ci * n,
                       n * sizeof(float));
    for (std::size_t co0 = 0; co0 < cout; co0 += MRC) {
      const std::size_t mc = std::min(MRC, cout - co0);
      for (std::size_t j0 = 0; j0 < out_len; j0 += NR) {
        const std::size_t nr = std::min(NR, out_len - j0);
        vf acc[MRC][NV];
        for (std::size_t ir = 0; ir < MRC; ++ir) {
          const float bv = (bias != nullptr && ir < mc) ? bias[co0 + ir] : 0.0f;
          for (std::size_t v = 0; v < NV; ++v) acc[ir][v] = vf{} + bv;
        }
        for (std::size_t ci = 0; ci < cin; ++ci) {
          // Output position j0+jr, tap t reads xpad[ci, j0 + jr + t].
          const float* xrow = xpad + ci * np + j0;
          const float* wtap = w + (co0 * cin + ci) * kernel;
          for (std::size_t tap = 0; tap < kernel; ++tap) {
            vf bv[NV];
            for (std::size_t v = 0; v < NV; ++v)
              __builtin_memcpy(&bv[v], xrow + tap + v * VL, sizeof(vf));
            for (std::size_t ir = 0; ir < mc; ++ir) {
              const float av = wtap[ir * wrow_stride + tap];
              for (std::size_t v = 0; v < NV; ++v) acc[ir][v] += bv[v] * av;
            }
          }
        }
        for (std::size_t ir = 0; ir < mc; ++ir) {
          float* crow = ob + (co0 + ir) * out_len + j0;
          if (nr == NR) {
            for (std::size_t v = 0; v < NV; ++v)
              __builtin_memcpy(crow + v * VL, &acc[ir][v], sizeof(vf));
          } else {
            float tail[NR];
            for (std::size_t v = 0; v < NV; ++v)
              __builtin_memcpy(tail + v * VL, &acc[ir][v], sizeof(vf));
            for (std::size_t jr = 0; jr < nr; ++jr) crow[jr] = tail[jr];
          }
        }
      }
    }
  }
}

/// Fused batched conv forward: out[b] = W * im2col(x[b]) + bias for every
/// batch item. Stride-1 convolutions use the pack-free direct kernel;
/// strided ones run as ONE blocked GEMM (weights packed once per call)
/// with a virtual column matrix and scattered output placement.
template <std::size_t MR, std::size_t NR>
void sgemm_conv_blocked(std::size_t cout, std::size_t out_len,
                        std::size_t batch, const float* w, const float* bias,
                        const float* x, std::size_t cin, std::size_t n,
                        std::size_t kernel, std::size_t stride,
                        std::size_t pad_left, float* out,
                        GemmScratch& scratch) {
  if (stride == 1) {
    // 4 channel rows regardless of tile: acc pressure is MRC*NV + NV + 1
    // vector registers. Padding totals are recovered from out_len.
    const std::size_t pad_total = (out_len - 1) + kernel - n;
    conv_direct<4, NR>(cout, out_len, batch, w, bias, x, cin, n, kernel,
                       pad_left, pad_total - pad_left, out, scratch);
    return;
  }
  sgemm_blocked_core<MR, NR>(
      /*trans_a=*/false, cout, batch * out_len, cin * kernel, 1.0f, w,
      cin * kernel, Im2colB{x, cin, n, kernel, stride, pad_left, out_len},
      BatchedConvCStore{out, cout, out_len, bias}, scratch);
}

}  // namespace scalocate::nn::kernels::detail
