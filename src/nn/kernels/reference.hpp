// Naive reference kernels for Conv1d and Linear.
//
// These are the original hand-rolled layer loops, kept verbatim after the
// layers moved to the im2col+GEMM backend. They are the correctness oracle
// for the kernel parity tests (tests/test_nn_kernels.cpp) and the baseline
// side of the before/after conv benchmarks in bench_micro. They are NOT on
// any production path.
#pragma once

#include <cstddef>

namespace scalocate::nn::kernels {

/// out[b, co, j] = bias[co] + sum_{ci,k} w[co, ci, k] * x[b, ci, j*s+k-pad].
/// x is [batch, cin, n] row-major, w is [cout, cin, kernel], out is
/// [batch, cout, out_len].
void conv1d_forward_naive(const float* x, std::size_t batch, std::size_t cin,
                          std::size_t n, const float* w, const float* bias,
                          std::size_t cout, std::size_t kernel,
                          std::size_t stride, std::size_t pad_left,
                          std::size_t out_len, float* out);

/// Accumulates gw/gb and writes gx (gx must be zero-initialized).
void conv1d_backward_naive(const float* x, std::size_t batch, std::size_t cin,
                           std::size_t n, const float* w, std::size_t cout,
                           std::size_t kernel, std::size_t stride,
                           std::size_t pad_left, std::size_t out_len,
                           const float* gout, float* gx, float* gw, float* gb);

/// out[b, o] = bias[o] + sum_i w[o, i] * x[b, i].
void linear_forward_naive(const float* x, std::size_t batch, std::size_t in,
                          const float* w, const float* bias, std::size_t out_f,
                          float* out);

/// Accumulates gw/gb and writes gx (gx must be zero-initialized).
void linear_backward_naive(const float* x, std::size_t batch, std::size_t in,
                           const float* w, std::size_t out_f,
                           const float* gout, float* gx, float* gw, float* gb);

}  // namespace scalocate::nn::kernels
