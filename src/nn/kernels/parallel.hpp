// Intra-op threading layer of the kernel backend.
//
// The GEMM/conv drivers in gemm.cpp statically partition their macro-loops
// into chunks and run them through parallel_for(), which fans the chunks
// out over a process-wide compute ThreadPool (the calling thread executes
// chunk 0 in place). The partitioning is deterministic — a pure function
// of the problem shape and the caller's thread budget — and every chunk
// writes a disjoint slice of C with the per-element summation order
// unchanged, so results are bit-identical to the single-threaded kernels
// at every thread count (tested in test_nn_kernels).
//
// Two axes of control, so inter-op concurrency (many jobs on a service
// pool) and intra-op parallelism (one big trace across cores) can be
// traded without oversubscribing the machine:
//
//   - The process default comes from SCALOCATE_THREADS (unset/0 =
//     hardware concurrency). This is what standalone callers — the
//     trainer, offline CoLocator::locate, the benches — run with.
//   - intra_op_threads() / set_intra_op_threads() scope a per-thread
//     budget: runtime::LocatorService and api::Engine set it around each
//     job from their ServiceConfig/EngineConfig::intra_op_threads knob
//     (default 1: a saturated service pool already uses every core).
//
// Nested parallel regions never fan out twice: a chunk that itself calls
// parallel_for runs its chunks inline, so compute-pool workers cannot
// block waiting on tasks queued behind themselves (no deadlock by
// construction).
#pragma once

#include <cstddef>
#include <functional>

namespace scalocate::runtime {
class ThreadPool;
}

namespace scalocate::nn::kernels {

/// Process-wide intra-op thread budget: SCALOCATE_THREADS when set to a
/// positive integer (capped at 256), otherwise hardware concurrency (at
/// least 1). Read once, then cached.
std::size_t default_intra_op_threads();

/// Effective intra-op budget of the calling thread: the thread-local
/// override when one is active, otherwise default_intra_op_threads().
std::size_t intra_op_threads();

/// Sets the calling thread's intra-op budget (0 = back to the process
/// default). Service workers use this to pin their jobs to a budget.
void set_intra_op_threads(std::size_t threads);

/// RAII budget override: sets on construction, restores on destruction.
class IntraOpGuard {
 public:
  explicit IntraOpGuard(std::size_t threads);
  ~IntraOpGuard();
  IntraOpGuard(const IntraOpGuard&) = delete;
  IntraOpGuard& operator=(const IntraOpGuard&) = delete;

 private:
  std::size_t prev_;
};

/// Minimum useful-work threshold (in FLOPs) below which the GEMM/conv
/// drivers stay single-threaded; thread-local so tests can drop it to
/// force tiny problems through the parallel path. 0 resets the default.
std::size_t parallel_min_flops();
void set_parallel_min_flops(std::size_t flops);

/// RAII threshold override for tests (see set_parallel_min_flops).
class ParallelGrainGuard {
 public:
  explicit ParallelGrainGuard(std::size_t flops);
  ~ParallelGrainGuard();
  ParallelGrainGuard(const ParallelGrainGuard&) = delete;
  ParallelGrainGuard& operator=(const ParallelGrainGuard&) = delete;

 private:
  std::size_t prev_;
};

/// True while the calling thread is executing a parallel_for chunk;
/// parallel_for then degrades to an inline sequential loop.
bool in_parallel_region();

/// The process-wide compute pool behind parallel_for. Created lazily on
/// the first parallel region; null until then and when the process
/// default budget is 1 *and* no caller ever requested more. Exposed for
/// diagnostics — kernel code should go through parallel_for.
runtime::ThreadPool* compute_pool();

/// Runs fn(chunk) for every chunk in [0, chunks). Chunk 0 executes on the
/// calling thread; the rest are posted to the compute pool. Returns after
/// every chunk completed; the first exception (if any) is rethrown on the
/// caller. Chunks must touch disjoint outputs. Inside a parallel region
/// (or with chunks <= 1) the chunks run inline, in order.
void parallel_for(std::size_t chunks,
                  const std::function<void(std::size_t)>& fn);

}  // namespace scalocate::nn::kernels
