#include "nn/kernels/pack.hpp"

#include <algorithm>
#include <cstring>

namespace scalocate::nn::kernels {

namespace {

/// Range [lo, hi] (inclusive) of output positions j whose tap k reads an
/// in-bounds input sample; empty when lo > hi.
struct TapRange {
  std::size_t lo = 1;
  std::size_t hi = 0;
};

TapRange tap_range(std::size_t k, std::size_t n, std::size_t stride,
                   std::size_t pad_left, std::size_t out_len) {
  TapRange r;
  const std::size_t max_idx = n - 1 + pad_left;
  if (k > max_idx || out_len == 0) return r;  // empty
  r.lo = k < pad_left ? (pad_left - k + stride - 1) / stride : 0;
  if (r.lo >= out_len) return TapRange{};
  r.hi = std::min((max_idx - k) / stride, out_len - 1);
  return r;
}

}  // namespace

std::size_t conv_output_length(std::size_t n, std::size_t kernel,
                               std::size_t stride, std::size_t pad_left,
                               std::size_t pad_right) {
  return (n + pad_left + pad_right - kernel) / stride + 1;
}

void im2col(const float* x, std::size_t cin, std::size_t n, std::size_t kernel,
            std::size_t stride, std::size_t pad_left, std::size_t out_len,
            float* col) {
  for (std::size_t ci = 0; ci < cin; ++ci) {
    const float* xrow = x + ci * n;
    for (std::size_t k = 0; k < kernel; ++k) {
      float* crow = col + (ci * kernel + k) * out_len;
      const TapRange r = tap_range(k, n, stride, pad_left, out_len);
      if (r.lo > r.hi) {
        std::fill(crow, crow + out_len, 0.0f);
        continue;
      }
      std::fill(crow, crow + r.lo, 0.0f);
      const float* src = xrow + (r.lo * stride + k - pad_left);
      const std::size_t count = r.hi - r.lo + 1;
      if (stride == 1) {
        std::memcpy(crow + r.lo, src, count * sizeof(float));
      } else {
        for (std::size_t i = 0; i < count; ++i)
          crow[r.lo + i] = src[i * stride];
      }
      std::fill(crow + r.hi + 1, crow + out_len, 0.0f);
    }
  }
}

void col2im(const float* col, std::size_t cin, std::size_t n,
            std::size_t kernel, std::size_t stride, std::size_t pad_left,
            std::size_t out_len, float* x_grad) {
  for (std::size_t ci = 0; ci < cin; ++ci) {
    float* grow = x_grad + ci * n;
    for (std::size_t k = 0; k < kernel; ++k) {
      const float* crow = col + (ci * kernel + k) * out_len;
      const TapRange r = tap_range(k, n, stride, pad_left, out_len);
      if (r.lo > r.hi) continue;
      float* dst = grow + (r.lo * stride + k - pad_left);
      const std::size_t count = r.hi - r.lo + 1;
      if (stride == 1) {
        for (std::size_t i = 0; i < count; ++i) dst[i] += crow[r.lo + i];
      } else {
        for (std::size_t i = 0; i < count; ++i)
          dst[i * stride] += crow[r.lo + i];
      }
    }
  }
}

}  // namespace scalocate::nn::kernels
