#include "nn/kernels/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace scalocate::nn::kernels {

namespace {

constexpr std::size_t kMaxThreads = 256;

// Default threshold: ~2 MFLOP. At the backend's measured throughput that
// is tens of microseconds of work — below it, posting tasks and the
// extra per-chunk packing cost more than a second core returns.
constexpr std::size_t kDefaultMinFlops = std::size_t{1} << 21;

thread_local std::size_t tls_intra_op_threads = 0;  // 0 = process default
thread_local std::size_t tls_min_flops = 0;         // 0 = kDefaultMinFlops
thread_local bool tls_in_parallel_region = false;

/// Scoped in-parallel-region marker for chunk bodies.
struct RegionGuard {
  bool prev;
  RegionGuard() : prev(tls_in_parallel_region) { tls_in_parallel_region = true; }
  ~RegionGuard() { tls_in_parallel_region = prev; }
};

/// Completion latch shared between the caller and the posted chunks.
struct ForkJoin {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t remaining = 0;         ///< posted chunks still running
  std::exception_ptr error;          ///< first failure wins

  void run_chunk(std::size_t chunk) noexcept {
    RegionGuard region;
    try {
      (*fn)(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!error) error = std::current_exception();
    }
  }

  void finish_posted() {
    std::lock_guard<std::mutex> lock(mutex);
    if (--remaining == 0) done_cv.notify_one();
  }
};

}  // namespace

std::size_t default_intra_op_threads() {
  static const std::size_t resolved = [] {
    if (const char* s = std::getenv("SCALOCATE_THREADS")) {
      const long v = std::atol(s);
      if (v > 0)
        return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxThreads);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 0 ? hw : 1);
  }();
  return resolved;
}

std::size_t intra_op_threads() {
  return tls_intra_op_threads > 0 ? tls_intra_op_threads
                                  : default_intra_op_threads();
}

void set_intra_op_threads(std::size_t threads) {
  tls_intra_op_threads = threads > kMaxThreads ? kMaxThreads : threads;
}

IntraOpGuard::IntraOpGuard(std::size_t threads) : prev_(tls_intra_op_threads) {
  set_intra_op_threads(threads);
}
IntraOpGuard::~IntraOpGuard() { tls_intra_op_threads = prev_; }

std::size_t parallel_min_flops() {
  return tls_min_flops > 0 ? tls_min_flops : kDefaultMinFlops;
}

void set_parallel_min_flops(std::size_t flops) { tls_min_flops = flops; }

ParallelGrainGuard::ParallelGrainGuard(std::size_t flops)
    : prev_(tls_min_flops) {
  tls_min_flops = flops;
}
ParallelGrainGuard::~ParallelGrainGuard() { tls_min_flops = prev_; }

bool in_parallel_region() { return tls_in_parallel_region; }

namespace {

/// The lazily-created process pool. Sized so that a thread-local budget
/// raised above the process default (tests pin 8 on small CI boxes) still
/// gets real concurrency: at least 7 workers + the caller. Workers beyond
/// the chunk count of a region just stay parked on the queue's condvar.
runtime::ThreadPool& compute_pool_instance() {
  static runtime::ThreadPool pool(
      std::max<std::size_t>(default_intra_op_threads(), 8) - 1);
  return pool;
}

std::atomic<bool> pool_created{false};

}  // namespace

runtime::ThreadPool* compute_pool() {
  return pool_created.load(std::memory_order_acquire)
             ? &compute_pool_instance()
             : nullptr;
}

void parallel_for(std::size_t chunks,
                  const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  if (chunks == 1 || tls_in_parallel_region) {
    RegionGuard region;
    for (std::size_t c = 0; c < chunks; ++c) fn(c);
    return;
  }

  runtime::ThreadPool& pool = compute_pool_instance();
  pool_created.store(true, std::memory_order_release);

  ForkJoin join;
  join.fn = &fn;
  join.remaining = chunks - 1;
  for (std::size_t c = 1; c < chunks; ++c) {
    pool.post([&join, c](std::size_t /*worker*/) {
      join.run_chunk(c);
      join.finish_posted();
    });
  }
  join.run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(join.mutex);
    join.done_cv.wait(lock, [&join] { return join.remaining == 0; });
    if (join.error) std::rethrow_exception(join.error);
  }
}

}  // namespace scalocate::nn::kernels
