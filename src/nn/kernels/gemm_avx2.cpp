// AVX2 + FMA instantiation of the blocked GEMM.
//
// This translation unit is compiled with -mavx2 -mfma (see CMakeLists) on
// x86-64 builds only; sgemm() dispatches here at runtime when the CPU
// reports both features. The 6x16 tile holds twelve 8-float accumulator
// vectors in ymm registers with room for the A broadcast and B loads.
#if defined(SCALOCATE_GEMM_AVX2)

#include "nn/kernels/gemm_blocked.hpp"

namespace scalocate::nn::kernels::detail {

void sgemm_avx2(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float beta, float* c,
                std::size_t ldc, GemmScratch& scratch) {
  // One tile for all shapes: a 4-row tile avoids the zero-padded panel at
  // M = 16 but re-streams the packed B panel once more per 12 rows, which
  // loses more at the large K of the im2col GEMMs than the padding costs.
  sgemm_blocked<6, 16>(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta,
                       c, ldc, scratch);
}

void sgemm_conv_avx2(std::size_t cout, std::size_t out_len, std::size_t batch,
                     const float* w, const float* bias, const float* x,
                     std::size_t cin, std::size_t n, std::size_t kernel,
                     std::size_t stride, std::size_t pad_left, float* out,
                     GemmScratch& scratch) {
  sgemm_conv_blocked<6, 16>(cout, out_len, batch, w, bias, x, cin, n, kernel,
                            stride, pad_left, out, scratch);
}

}  // namespace scalocate::nn::kernels::detail

#endif  // SCALOCATE_GEMM_AVX2
