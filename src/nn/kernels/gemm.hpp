// Cache-blocked single-precision GEMM: the compute core of the nn backend.
//
// Every dense layer (Conv1d via im2col, Linear directly) routes its forward
// and backward matrix products through sgemm(). The implementation is a
// classic three-level blocking (GotoBLAS structure): B is packed into
// NR-wide column panels and A into MR-wide row panels sized for the L1/L2
// caches, and an MR x NR register-tiled micro-kernel accumulates the
// product, so the inner loop does O(MR*NR) arithmetic per O(MR+NR) loads
// instead of the 1:1 ratio of a naive loop.
//
// sgemm_naive() is the reference kernel: a plain triple loop with
// double-precision accumulation, kept (and unit-tested against) so the
// blocked path always has an obviously-correct oracle.
//
// Intra-op threading (see parallel.hpp): when the calling thread's
// intra-op budget allows and the problem is big enough, sgemm/sgemm_conv
// statically partition the N (or, for tall problems, M) macro-loop — and
// batched convolutions their batch/out-channel loops — across the
// process-wide compute pool. Each chunk writes a disjoint C tile and the
// per-element summation order is unchanged, so the threaded results are
// bit-identical to the single-threaded kernels at every thread count.
//
// Thread-safety: sgemm is pure compute over caller-provided buffers; the
// pack buffers live in a caller-owned GemmScratch (one per nn::Workspace,
// hence one per concurrent inference caller). The threaded driver packs
// into per-chunk lanes of the same scratch, so concurrent callers still
// never share buffers.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace scalocate::nn::kernels {

/// Caller-owned packing buffers reused across sgemm calls (grown on
/// demand, never shrunk). Not shareable between concurrent callers.
struct GemmScratch {
  std::vector<float> pack_a;  ///< MC x KC block of A, MR-row panels
  std::vector<float> pack_b;  ///< KC x NC block of B, NR-column panels

  GemmScratch() = default;
  // Copying a workspace must not duplicate the per-chunk lanes: they are
  // transient scratch regrown on demand, so a copy starts with none.
  GemmScratch(const GemmScratch& other)
      : pack_a(other.pack_a), pack_b(other.pack_b) {}
  GemmScratch& operator=(const GemmScratch& other) {
    pack_a = other.pack_a;
    pack_b = other.pack_b;
    extra_lanes_.clear();
    return *this;
  }
  GemmScratch(GemmScratch&&) = default;
  GemmScratch& operator=(GemmScratch&&) = default;

  /// Per-chunk scratch for the threaded driver: lane(0) is this object
  /// itself; higher lanes are grown on demand and reused across calls, so
  /// a warmed-up workspace allocates nothing on the hot path. Callers
  /// must not invoke lane() concurrently (the driver grows the lanes
  /// before fanning out and only reads them inside the parallel region).
  GemmScratch& lane(std::size_t index);

 private:
  std::vector<std::unique_ptr<GemmScratch>> extra_lanes_;
};

/// C = alpha * op(A) * op(B) + beta * C, row-major with leading
/// dimensions lda/ldb/ldc; op(X) = X^T when the trans flag is set.
/// op(A) is m x k, op(B) is k x n, C is m x n. beta == 0 never reads C
/// (so C may be uninitialized).
void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc, GemmScratch& scratch);

/// Fused batched convolution forward:
/// out[b] = W * im2col(x[b]) + bias for x [batch, cin, n] and
/// out [batch, cout, out_len], as a single blocked GEMM. The column
/// matrix is virtual — the packing stage reads x directly — and the bias
/// rides the first-panel write-back, so the conv forward packs the weight
/// matrix once per call and makes exactly one pass over the output.
/// `bias` may be null. out_len must equal conv_output_length(...).
void sgemm_conv(std::size_t cout, std::size_t out_len, std::size_t batch,
                const float* w, const float* bias, const float* x,
                std::size_t cin, std::size_t n, std::size_t kernel,
                std::size_t stride, std::size_t pad_left, float* out,
                GemmScratch& scratch);

/// Reference kernel: naive triple loop, double accumulators. Same
/// contract as sgemm. Used by the parity tests and as the baseline in
/// bench_micro.
void sgemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float beta, float* c,
                 std::size_t ldc);

}  // namespace scalocate::nn::kernels
