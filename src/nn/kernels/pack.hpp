// im2col / col2im packing for 1-D convolution.
//
// im2col lowers one batch item of a Conv1d input [Cin, N] into a column
// matrix [Cin*K, out_len] (row-major) so the convolution becomes a single
// GEMM with the [Cout, Cin*K] weight matrix. Zero padding is materialized
// during packing, which keeps the GEMM micro-kernel free of boundary
// logic. col2im is the adjoint: it scatters a column-matrix gradient back
// onto the (zero-initialized or accumulated) input gradient.
//
// The column buffer is caller-owned scratch (nn::Workspace::kernels()), so
// packing allocates nothing on the hot path.
#pragma once

#include <cstddef>

namespace scalocate::nn::kernels {

/// out_len for a length-n input: (n + pad_left + pad_right - k) / stride + 1.
/// Callers (Conv1d) validate n + pads >= k.
std::size_t conv_output_length(std::size_t n, std::size_t kernel,
                               std::size_t stride, std::size_t pad_left,
                               std::size_t pad_right);

/// col[(ci*K + k), j] = x[ci, j*stride + k - pad_left], 0 outside [0, n).
/// `x` is one batch item [cin, n]; `col` has room for cin*K*out_len.
void im2col(const float* x, std::size_t cin, std::size_t n, std::size_t kernel,
            std::size_t stride, std::size_t pad_left, std::size_t out_len,
            float* col);

/// Adjoint of im2col: x_grad[ci, j*stride + k - pad_left] += col[(ci*K+k), j]
/// for every in-bounds tap. `x_grad` must be pre-initialized (the caller
/// accumulates across batch items into a zeroed gradient tensor).
void col2im(const float* col, std::size_t cin, std::size_t n,
            std::size_t kernel, std::size_t stride, std::size_t pad_left,
            std::size_t out_len, float* x_grad);

}  // namespace scalocate::nn::kernels
