// Fused / vectorizable pointwise and reduction kernels.
//
// Every element-wise loop of the nn layers lives here as a flat,
// branch-free kernel over raw pointers: bias addition (optionally fused
// with ReLU), the ReLU family, axpy-style accumulation (residual
// shortcuts), the scale-shift form of BatchNorm, and the double-precision
// reductions the statistics need. Layers stay thin shape-checking
// adapters; everything the optimizer can vectorize is concentrated in
// this translation unit.
//
// Reductions accumulate in double (matching the original layer code), so
// refactoring through this backend does not move training numerics.
#pragma once

#include <cstddef>
#include <span>

namespace scalocate::nn::kernels {

// --- accumulation ---------------------------------------------------------

/// y += alpha * x. Standalone primitive (unit-tested); the current layers
/// only need the alpha == 1 form below.
void axpy(std::size_t n, float alpha, const float* x, float* y);

/// y += x (residual shortcut add, bias-gradient accumulation)
void add_inplace(std::size_t n, const float* x, float* y);

// --- ReLU family ----------------------------------------------------------

/// y = max(x, 0)
void relu(std::size_t n, const float* x, float* y);

/// y = max(x, 0) and mask = (x > 0 ? 1 : 0) — training forward.
void relu_mask(std::size_t n, const float* x, float* y, float* mask);

/// out = a * b (ReLU backward: grad * mask)
void multiply(std::size_t n, const float* a, const float* b, float* out);

// --- bias -----------------------------------------------------------------

/// Fused c[r, :] = max(c[r, :] + bias[r], 0) for a row-major [rows, cols]
/// block (conv layout: one bias per output-channel row). Standalone
/// primitive for models whose conv is directly followed by ReLU; the paper
/// model interposes BatchNorm, and Conv1d fuses its plain bias into the
/// GEMM write-back instead (kernels::sgemm_conv).
void bias_relu_rows(float* c, const float* bias, std::size_t rows,
                    std::size_t cols);

/// c[:, j] += bias[j] (linear layout: one bias per output feature column).
void add_bias_cols(float* c, const float* bias, std::size_t rows,
                   std::size_t cols);

/// out[r] += sum of row r (conv bias gradient).
void row_sums_add(const float* c, std::size_t rows, std::size_t cols,
                  float* out);

// --- BatchNorm scale-shift ------------------------------------------------

/// y = a * x + b (per-channel affine with scalar a, b).
void scale_shift(std::size_t n, const float* x, float a, float b, float* y);

/// Fused BatchNorm forward row: xhat = (x - mean) * inv_std and
/// y = gamma * xhat + beta in one pass.
void normalize_scale_shift(std::size_t n, const float* x, float mean,
                           float inv_std, float gamma, float beta, float* xhat,
                           float* y);

/// Training-mode BatchNorm input gradient for one row:
/// gx = coeff * (g - mean_g - xhat * mean_g_xhat), coeff = gamma * inv_std.
/// The scalars stay double and the element math runs in double, exactly
/// as the pre-backend layer loop did — training trajectories must not
/// move across backends (see the matching note in BatchNorm1d::forward).
void bn_input_grad(std::size_t n, const float* g, const float* xhat,
                   double coeff, double mean_g, double mean_g_xhat, float* gx);

// --- reductions -----------------------------------------------------------

/// Sum of x in double precision.
double sum(std::size_t n, const float* x);

/// sum_a += sum(a), dot_ab += sum(a*b) — the two BatchNorm backward
/// reductions in one pass.
void sums_dot(std::size_t n, const float* a, const float* b, double* sum_a,
              double* dot_ab);

/// Two-pass population mean/variance (double accumulation).
void mean_var(std::size_t n, const float* x, double* mean, double* var);

/// dst = (src - mean(src)) / stddev(src); all-zero when stddev <= 1e-9.
/// Exactly the DatasetBuilder::standardize_window transform, writing into
/// a separate destination so window extraction needs no staging copy.
void standardize(std::span<const float> src, float* dst);

}  // namespace scalocate::nn::kernels
