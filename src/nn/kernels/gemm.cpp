#include "nn/kernels/gemm.hpp"

#include <algorithm>

#include "nn/kernels/gemm_blocked.hpp"
#include "nn/kernels/parallel.hpp"

#if defined(SCALOCATE_PROFILE)
#include <map>
#include <string>
#include <tuple>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#endif

namespace scalocate::nn::kernels {

#if defined(SCALOCATE_PROFILE)
// Compile-time-gated kernel telemetry: FLOP counters plus per-shape timing
// histograms in the process-wide registry (obs::Registry::global()).
// Everything below compiles away when SCALOCATE_PROFILE is off, so the
// release hot path stays untouched — this block may lock/allocate on first
// sight of a shape, which is exactly why it is not an always-on feature.
namespace {

obs::Counter& profile_counter(const char* name) {
  return obs::Registry::global().counter(name);
}

/// Registry histogram for one (kind, m, n, k) shape, resolved through the
/// registry mutex once per shape per thread and cached thread-locally.
obs::Histogram& shape_histogram(const char* kind, std::size_t m,
                                std::size_t n, std::size_t k) {
  using Key = std::tuple<const char*, std::size_t, std::size_t, std::size_t>;
  thread_local std::map<Key, obs::Histogram*> cache;
  const Key key{kind, m, n, k};
  auto it = cache.find(key);
  if (it == cache.end()) {
    const std::string name = std::string("kernels.") + kind + "." +
                             std::to_string(m) + "x" + std::to_string(n) +
                             "x" + std::to_string(k) + ".ns";
    it = cache.emplace(key, &obs::Registry::global().histogram(name)).first;
  }
  return *it->second;
}

}  // namespace
#endif  // SCALOCATE_PROFILE

namespace detail {

// Defined here — and only here — so std::vector<float> growth code is
// always baseline-ISA (see the declaration comment in gemm_blocked.hpp).
float* grow(std::vector<float>& buf, std::size_t count) {
  if (buf.size() < count) buf.resize(count);
  return buf.data();
}

float* grow_zeroed(std::vector<float>& buf, std::size_t count) {
  buf.assign(count, 0.0f);
  return buf.data();
}


#if defined(SCALOCATE_GEMM_AVX2)
// Defined in gemm_avx2.cpp (compiled with -mavx2 -mfma).
void sgemm_avx2(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float beta, float* c,
                std::size_t ldc, GemmScratch& scratch);
void sgemm_conv_avx2(std::size_t cout, std::size_t out_len, std::size_t batch,
                     const float* w, const float* bias, const float* x,
                     std::size_t cin, std::size_t n, std::size_t kernel,
                     std::size_t stride, std::size_t pad_left, float* out,
                     GemmScratch& scratch);

bool cpu_has_avx2_fma() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
}
#endif

}  // namespace detail

GemmScratch& GemmScratch::lane(std::size_t index) {
  if (index == 0) return *this;
  while (extra_lanes_.size() < index)
    extra_lanes_.push_back(std::make_unique<GemmScratch>());
  return *extra_lanes_[index - 1];
}

namespace {

// ISA dispatch for one single-threaded kernel invocation (the threaded
// drivers call this once per chunk; every chunk runs the same kernel).
void sgemm_st(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
              std::size_t k, float alpha, const float* a, std::size_t lda,
              const float* b, std::size_t ldb, float beta, float* c,
              std::size_t ldc, GemmScratch& scratch) {
#if defined(SCALOCATE_GEMM_AVX2)
  if (detail::cpu_has_avx2_fma()) {
    detail::sgemm_avx2(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta,
                       c, ldc, scratch);
    return;
  }
#endif
  detail::sgemm_blocked<4, 8>(trans_a, trans_b, m, n, k, alpha, a, lda, b,
                              ldb, beta, c, ldc, scratch);
}

void sgemm_conv_st(std::size_t cout, std::size_t out_len, std::size_t batch,
                   const float* w, const float* bias, const float* x,
                   std::size_t cin, std::size_t n, std::size_t kernel,
                   std::size_t stride, std::size_t pad_left, float* out,
                   GemmScratch& scratch) {
#if defined(SCALOCATE_GEMM_AVX2)
  if (detail::cpu_has_avx2_fma()) {
    detail::sgemm_conv_avx2(cout, out_len, batch, w, bias, x, cin, n, kernel,
                            stride, pad_left, out, scratch);
    return;
  }
#endif
  detail::sgemm_conv_blocked<4, 8>(cout, out_len, batch, w, bias, x, cin, n,
                                   kernel, stride, pad_left, out, scratch);
}

// Chunks for statically partitioning `extent` units of one macro-loop:
// bounded by the caller's thread budget and by a minimum chunk width (so
// a split never degenerates into per-strip task traffic). Deterministic —
// a pure function of (extent, budget) — and results do not depend on it.
std::size_t chunks_for(std::size_t extent, std::size_t min_per_chunk,
                       std::size_t budget) {
  const std::size_t by_extent = extent / min_per_chunk;
  return std::max<std::size_t>(
      1, std::min(budget, std::max<std::size_t>(by_extent, 1)));
}

/// Balanced static split: chunk `i` of `chunks` over `extent` units gets
/// [begin, begin + len). The first `extent % chunks` chunks get one extra.
struct ChunkRange {
  std::size_t begin, len;
};
ChunkRange chunk_range(std::size_t extent, std::size_t chunks, std::size_t i) {
  const std::size_t q = extent / chunks;
  const std::size_t r = extent % chunks;
  const std::size_t begin = i * q + std::min(i, r);
  return {begin, q + (i < r ? 1 : 0)};
}

// Threading floor on the partitioned dimension: at least two NR strips of
// the wide tile per chunk, so the per-chunk pack/write-back epilogue stays
// amortized. Any width would be bit-correct; this is purely a perf floor.
constexpr std::size_t kMinColsPerChunk = 32;
constexpr std::size_t kMinRowsPerChunk = 32;
// Output channels per conv chunk: one MRC register block of conv_direct.
constexpr std::size_t kMinCoutPerChunk = 4;

/// Grows the scratch lanes OUTSIDE the parallel region (lane() mutates a
/// vector and must not race), then runs fn(chunk, lane) over the pool.
template <class Fn>
void parallel_chunks(std::size_t chunks, GemmScratch& scratch, const Fn& fn) {
  for (std::size_t c = 1; c < chunks; ++c) scratch.lane(c);
  parallel_for(chunks,
               [&](std::size_t c) { fn(c, scratch.lane(c)); });
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc, GemmScratch& scratch) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // Product term vanishes: apply beta only.
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      if (beta == 0.0f)
        std::fill(crow, crow + n, 0.0f);
      else if (beta != 1.0f)
        for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    return;
  }
#if defined(SCALOCATE_PROFILE)
  static obs::Counter& calls = profile_counter("kernels.gemm.calls");
  static obs::Counter& flops = profile_counter("kernels.gemm.flops");
  calls.add();
  flops.add(2ull * m * n * k);
  obs::SpanTimer span(shape_histogram("gemm", m, n, k));
#endif
  const std::size_t budget = intra_op_threads();
  if (budget > 1 && !in_parallel_region() &&
      2ull * m * n * k >= parallel_min_flops()) {
    // Column partition first (disjoint C column bands; every worker reads
    // all of A). Tall-and-narrow problems — the dX products of the conv
    // backward are [Cin*K, out_len] — split rows instead.
    std::size_t chunks = chunks_for(n, kMinColsPerChunk, budget);
    if (chunks > 1) {
      parallel_chunks(chunks, scratch, [&](std::size_t ci, GemmScratch& ls) {
        const auto [j0, len] = chunk_range(n, chunks, ci);
        const float* b_sub = trans_b ? b + j0 * ldb : b + j0;
        sgemm_st(trans_a, trans_b, m, len, k, alpha, a, lda, b_sub, ldb, beta,
                 c + j0, ldc, ls);
      });
      return;
    }
    chunks = chunks_for(m, kMinRowsPerChunk, budget);
    if (chunks > 1) {
      parallel_chunks(chunks, scratch, [&](std::size_t ci, GemmScratch& ls) {
        const auto [i0, len] = chunk_range(m, chunks, ci);
        const float* a_sub = trans_a ? a + i0 : a + i0 * lda;
        sgemm_st(trans_a, trans_b, len, n, k, alpha, a_sub, lda, b, ldb, beta,
                 c + i0 * ldc, ldc, ls);
      });
      return;
    }
  }
  sgemm_st(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
           scratch);
}

void sgemm_conv(std::size_t cout, std::size_t out_len, std::size_t batch,
                const float* w, const float* bias, const float* x,
                std::size_t cin, std::size_t n, std::size_t kernel,
                std::size_t stride, std::size_t pad_left, float* out,
                GemmScratch& scratch) {
  if (cout == 0 || out_len == 0 || batch == 0) return;
#if defined(SCALOCATE_PROFILE)
  static obs::Counter& calls = profile_counter("kernels.conv.calls");
  static obs::Counter& flops = profile_counter("kernels.conv.flops");
  calls.add();
  flops.add(2ull * batch * cout * out_len * cin * kernel);
  obs::SpanTimer span(shape_histogram("conv", cout, out_len, cin * kernel));
#endif
  const std::size_t budget = intra_op_threads();
  if (budget > 1 && !in_parallel_region() &&
      2ull * batch * cout * out_len * cin * kernel >= parallel_min_flops()) {
    // Batch items are fully independent outputs: the natural partition for
    // minibatch training and batched window scoring.
    if (batch > 1) {
      const std::size_t chunks = std::min(budget, batch);
      parallel_chunks(chunks, scratch, [&](std::size_t ci, GemmScratch& ls) {
        const auto [b0, len] = chunk_range(batch, chunks, ci);
        sgemm_conv_st(cout, out_len, len, w, bias, x + b0 * cin * n, cin, n,
                      kernel, stride, pad_left, out + b0 * cout * out_len,
                      ls);
      });
      return;
    }
    // Single item (streaming single-window scoring): split the output
    // channels — each chunk owns a [c0, c0+len) slab of the output and its
    // matching weight rows; the per-channel tap accumulation order is
    // untouched, so this too is bit-identical.
    const std::size_t chunks = chunks_for(cout, kMinCoutPerChunk, budget);
    if (chunks > 1) {
      parallel_chunks(chunks, scratch, [&](std::size_t ci, GemmScratch& ls) {
        const auto [c0, len] = chunk_range(cout, chunks, ci);
        sgemm_conv_st(len, out_len, batch, w + c0 * cin * kernel,
                      bias != nullptr ? bias + c0 : nullptr, x, cin, n,
                      kernel, stride, pad_left, out + c0 * out_len, ls);
      });
      return;
    }
  }
  sgemm_conv_st(cout, out_len, batch, w, bias, x, cin, n, kernel, stride,
                pad_left, out, scratch);
}

void sgemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float beta, float* c,
                 std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(detail::load_any(trans_a, a, lda, i, p)) *
               static_cast<double>(detail::load_any(trans_b, b, ldb, p, j));
      float& out = c[i * ldc + j];
      const float prior = beta == 0.0f ? 0.0f : beta * out;
      out = prior + alpha * static_cast<float>(acc);
    }
  }
}

}  // namespace scalocate::nn::kernels
