#include "nn/kernels/gemm.hpp"

#include <algorithm>

#include "nn/kernels/gemm_blocked.hpp"

#if defined(SCALOCATE_PROFILE)
#include <map>
#include <string>
#include <tuple>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#endif

namespace scalocate::nn::kernels {

#if defined(SCALOCATE_PROFILE)
// Compile-time-gated kernel telemetry: FLOP counters plus per-shape timing
// histograms in the process-wide registry (obs::Registry::global()).
// Everything below compiles away when SCALOCATE_PROFILE is off, so the
// release hot path stays untouched — this block may lock/allocate on first
// sight of a shape, which is exactly why it is not an always-on feature.
namespace {

obs::Counter& profile_counter(const char* name) {
  return obs::Registry::global().counter(name);
}

/// Registry histogram for one (kind, m, n, k) shape, resolved through the
/// registry mutex once per shape per thread and cached thread-locally.
obs::Histogram& shape_histogram(const char* kind, std::size_t m,
                                std::size_t n, std::size_t k) {
  using Key = std::tuple<const char*, std::size_t, std::size_t, std::size_t>;
  thread_local std::map<Key, obs::Histogram*> cache;
  const Key key{kind, m, n, k};
  auto it = cache.find(key);
  if (it == cache.end()) {
    const std::string name = std::string("kernels.") + kind + "." +
                             std::to_string(m) + "x" + std::to_string(n) +
                             "x" + std::to_string(k) + ".ns";
    it = cache.emplace(key, &obs::Registry::global().histogram(name)).first;
  }
  return *it->second;
}

}  // namespace
#endif  // SCALOCATE_PROFILE

namespace detail {

// Defined here — and only here — so std::vector<float> growth code is
// always baseline-ISA (see the declaration comment in gemm_blocked.hpp).
float* grow(std::vector<float>& buf, std::size_t count) {
  if (buf.size() < count) buf.resize(count);
  return buf.data();
}

float* grow_zeroed(std::vector<float>& buf, std::size_t count) {
  buf.assign(count, 0.0f);
  return buf.data();
}

#if defined(SCALOCATE_GEMM_AVX2)
// Defined in gemm_avx2.cpp (compiled with -mavx2 -mfma).
void sgemm_avx2(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float beta, float* c,
                std::size_t ldc, GemmScratch& scratch);
void sgemm_conv_avx2(std::size_t cout, std::size_t out_len, std::size_t batch,
                     const float* w, const float* bias, const float* x,
                     std::size_t cin, std::size_t n, std::size_t kernel,
                     std::size_t stride, std::size_t pad_left, float* out,
                     GemmScratch& scratch);

bool cpu_has_avx2_fma() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
}
#endif

}  // namespace detail

void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc, GemmScratch& scratch) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // Product term vanishes: apply beta only.
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      if (beta == 0.0f)
        std::fill(crow, crow + n, 0.0f);
      else if (beta != 1.0f)
        for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    return;
  }
#if defined(SCALOCATE_PROFILE)
  static obs::Counter& calls = profile_counter("kernels.gemm.calls");
  static obs::Counter& flops = profile_counter("kernels.gemm.flops");
  calls.add();
  flops.add(2ull * m * n * k);
  obs::SpanTimer span(shape_histogram("gemm", m, n, k));
#endif
#if defined(SCALOCATE_GEMM_AVX2)
  if (detail::cpu_has_avx2_fma()) {
    detail::sgemm_avx2(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta,
                       c, ldc, scratch);
    return;
  }
#endif
  detail::sgemm_blocked<4, 8>(trans_a, trans_b, m, n, k, alpha, a, lda, b,
                              ldb, beta, c, ldc, scratch);
}

void sgemm_conv(std::size_t cout, std::size_t out_len, std::size_t batch,
                const float* w, const float* bias, const float* x,
                std::size_t cin, std::size_t n, std::size_t kernel,
                std::size_t stride, std::size_t pad_left, float* out,
                GemmScratch& scratch) {
  if (cout == 0 || out_len == 0 || batch == 0) return;
#if defined(SCALOCATE_PROFILE)
  static obs::Counter& calls = profile_counter("kernels.conv.calls");
  static obs::Counter& flops = profile_counter("kernels.conv.flops");
  calls.add();
  flops.add(2ull * batch * cout * out_len * cin * kernel);
  obs::SpanTimer span(shape_histogram("conv", cout, out_len, cin * kernel));
#endif
#if defined(SCALOCATE_GEMM_AVX2)
  if (detail::cpu_has_avx2_fma()) {
    detail::sgemm_conv_avx2(cout, out_len, batch, w, bias, x, cin, n, kernel,
                            stride, pad_left, out, scratch);
    return;
  }
#endif
  detail::sgemm_conv_blocked<4, 8>(cout, out_len, batch, w, bias, x, cin, n,
                                   kernel, stride, pad_left, out, scratch);
}

void sgemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float beta, float* c,
                 std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(detail::load_any(trans_a, a, lda, i, p)) *
               static_cast<double>(detail::load_any(trans_b, b, ldb, p, j));
      float& out = c[i * ldc + j];
      const float prior = beta == 0.0f ? 0.0f : beta * out;
      out = prior + alpha * static_cast<float>(acc);
    }
  }
}

}  // namespace scalocate::nn::kernels
