#include "nn/loss.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/activations.hpp"

namespace scalocate::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::uint8_t>& labels) {
  detail::require(logits.rank() == 2, "SoftmaxCrossEntropy: expected [B, C]");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  detail::require(labels.size() == batch,
                  "SoftmaxCrossEntropy: labels size mismatch");
  for (std::uint8_t label : labels)
    detail::require(label < classes, "SoftmaxCrossEntropy: label out of range");

  cached_probs_ = softmax(logits);
  cached_labels_ = labels;

  double loss = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float p = cached_probs_.at(b, labels[b]);
    loss -= std::log(static_cast<double>(p) + 1e-12);
  }
  return static_cast<float>(loss / static_cast<double>(batch));
}

Tensor SoftmaxCrossEntropy::backward() const {
  detail::require(cached_probs_.numel() > 0,
                  "SoftmaxCrossEntropy::backward before forward");
  const std::size_t batch = cached_probs_.dim(0);
  const std::size_t classes = cached_probs_.dim(1);
  Tensor grad(cached_probs_.shape());
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < classes; ++c) {
      const float onehot = cached_labels_[b] == c ? 1.0f : 0.0f;
      grad.at(b, c) = (cached_probs_.at(b, c) - onehot) * inv_b;
    }
  }
  return grad;
}

}  // namespace scalocate::nn
