#include "nn/tensor.hpp"

#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace scalocate::nn {

Tensor::Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
  compute_strides();
  std::size_t n = 1;
  for (std::size_t d : shape_) n *= d;
  data_.assign(n, 0.0f);
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor Tensor::from_data(std::vector<std::size_t> shape,
                         std::vector<float> data) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.compute_strides();
  std::size_t n = 1;
  for (std::size_t d : t.shape_) n *= d;
  detail::require(n == data.size(),
                  "Tensor::from_data: data size does not match shape");
  t.data_ = std::move(data);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  detail::require(axis < shape_.size(), "Tensor::dim: axis out of range");
  return shape_[axis];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  std::size_t n = 1;
  for (std::size_t d : new_shape) n *= d;
  detail::require(n == numel(), "Tensor::reshaped: numel mismatch");
  return from_data(std::move(new_shape), data_);
}

Tensor& Tensor::reshape(std::vector<std::size_t> new_shape) {
  std::size_t n = 1;
  for (std::size_t d : new_shape) n *= d;
  detail::require(n == numel(),
                  "Tensor::reshape: numel mismatch (have " + shape_string() +
                      ")");
  shape_ = std::move(new_shape);
  compute_strides();
  return *this;
}

Tensor& Tensor::resize(std::vector<std::size_t> new_shape) {
  std::size_t n = 1;
  for (std::size_t d : new_shape) n *= d;
  shape_ = std::move(new_shape);
  compute_strides();
  // vector::resize keeps the allocation on shrink and regrow-within-
  // capacity, so a reused staging tensor settles into one allocation.
  data_.resize(n, 0.0f);
  return *this;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << ")";
  return os.str();
}

void Tensor::compute_strides() {
  stride_.assign(shape_.size(), 1);
  for (std::size_t i = shape_.size(); i-- > 1;)
    stride_[i - 1] = stride_[i] * shape_[i];
}

}  // namespace scalocate::nn
