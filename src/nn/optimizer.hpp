// Gradient-descent optimizers. Adam is the paper's choice (lr 1e-3,
// Section IV-B); plain SGD exists as a baseline and for tests.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace scalocate::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Clears accumulated gradients (call after step).
  void zero_grad();

 protected:
  std::vector<Param*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace scalocate::nn
