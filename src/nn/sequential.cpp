#include "nn/sequential.hpp"

#include <sstream>

#include "common/error.hpp"
#include "nn/kernels/pointwise.hpp"

namespace scalocate::nn {

Sequential& Sequential::add(LayerPtr layer) {
  detail::require(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, Workspace& ws) const {
  if (layers_.empty()) return input;
  // First layer reads `input` directly (no staging copy of the batch).
  Tensor x = layers_.front()->forward(input, ws);
  for (std::size_t i = 1; i < layers_.size(); ++i)
    x = layers_[i]->forward(x, ws);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output, Workspace& ws) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g, ws);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) out.push_back(p);
  return out;
}

std::vector<std::vector<float>*> Sequential::buffers() {
  std::vector<std::vector<float>*> out;
  for (auto& layer : layers_)
    for (auto* b : layer->buffers()) out.push_back(b);
  return out;
}

void Sequential::set_training(bool training) {
  training_ = training;
  for (auto& layer : layers_) layer->set_training(training);
}

std::string Sequential::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < layers_.size(); ++i)
    os << "  (" << i << ") " << layers_[i]->name() << "\n";
  return os.str();
}

Residual::Residual(LayerPtr main, LayerPtr projection)
    : main_(std::move(main)), projection_(std::move(projection)) {
  detail::require(main_ != nullptr, "Residual: null main branch");
}

Tensor Residual::forward(const Tensor& input, Workspace& ws) const {
  Tensor main_out = main_->forward(input, ws);
  Tensor shortcut =
      projection_ != nullptr ? projection_->forward(input, ws) : input;
  detail::require(main_out.same_shape(shortcut),
                  "Residual::forward: branch shapes differ: " +
                      main_out.shape_string() + " vs " +
                      shortcut.shape_string());
  kernels::add_inplace(main_out.numel(), shortcut.data(), main_out.data());
  return main_out;
}

Tensor Residual::backward(const Tensor& grad_output, Workspace& ws) {
  Tensor grad_main = main_->backward(grad_output, ws);
  if (projection_ != nullptr) {
    Tensor grad_proj = projection_->backward(grad_output, ws);
    kernels::add_inplace(grad_main.numel(), grad_proj.data(),
                         grad_main.data());
    return grad_main;
  }
  // Identity shortcut: add grad_output directly.
  detail::require(grad_main.same_shape(grad_output),
                  "Residual::backward: shape mismatch");
  kernels::add_inplace(grad_main.numel(), grad_output.data(),
                       grad_main.data());
  return grad_main;
}

std::vector<Param*> Residual::params() {
  std::vector<Param*> out = main_->params();
  if (projection_ != nullptr)
    for (Param* p : projection_->params()) out.push_back(p);
  return out;
}

std::vector<std::vector<float>*> Residual::buffers() {
  std::vector<std::vector<float>*> out = main_->buffers();
  if (projection_ != nullptr)
    for (auto* b : projection_->buffers()) out.push_back(b);
  return out;
}

void Residual::set_training(bool training) {
  training_ = training;
  main_->set_training(training);
  if (projection_ != nullptr) projection_->set_training(training);
}

}  // namespace scalocate::nn
