// Layer interface of the explicit forward/backward NN framework.
//
// Forward passes are const and write every retained activation into a
// caller-owned Workspace instead of layer members. A trained model can
// therefore be shared across threads: each concurrent caller owns a private
// Workspace and runs eval-mode forward passes on the same layers without
// synchronization (the runtime/ LocatorService relies on this). backward
// reads the caches the paired forward left in the same workspace, so
// callers must pass one workspace per in-flight forward/backward pair.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/kernels/gemm.hpp"
#include "nn/tensor.hpp"

namespace scalocate::nn {

/// A trainable parameter: value plus accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;
  std::string name;

  explicit Param(std::vector<std::size_t> shape, std::string param_name = {})
      : value(shape), grad(std::move(shape)), name(std::move(param_name)) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Layer;

/// Pack buffers for the nn::kernels backend, shared by every layer routed
/// through one workspace. The buffers are transient within a single layer
/// call (no state survives between layers), so one set per concurrent
/// caller suffices regardless of model depth.
struct KernelScratch {
  kernels::GemmScratch gemm;  ///< GEMM A/B packing panels
  std::vector<float> col_a;   ///< im2col column matrix [Cin*K, out_len]
  std::vector<float> col_b;   ///< backward column gradient (same shape)
};

/// Caller-owned scratch holding the per-layer activations a backward pass
/// needs. Slots are keyed by layer identity, so a single workspace serves a
/// whole module tree (Sequential/Residual children included). Reusing one
/// workspace across calls avoids reallocation; it is NOT safe to share one
/// workspace between concurrent forward passes.
class Workspace {
 public:
  struct Slot {
    Tensor a;                        ///< primary cache (input / mask / xhat)
    std::vector<float> scalars;      ///< per-channel scalars (batch norm)
    std::vector<std::size_t> shape;  ///< cached input shape (pooling)
    std::vector<std::size_t> indices;  ///< argmax positions (max pooling)
  };

  Slot& slot(const Layer* layer) { return slots_[layer]; }
  void clear() { slots_.clear(); }

  /// Kernel-backend pack buffers (im2col panels, GEMM packing). Owned here
  /// so const, thread-shared layers stay allocation- and state-free.
  KernelScratch& kernels() { return kernel_scratch_; }

  /// Reusable input-staging tensor for batched window scoring: callers
  /// standardize trace windows directly into this tensor and hand it to
  /// the model, avoiding any per-window staging copies.
  Tensor& staging() { return staging_; }

 private:
  std::unordered_map<const Layer*, Slot> slots_;
  KernelScratch kernel_scratch_;
  Tensor staging_;
};

/// Base class of all layers/modules. Forward is const: it may read
/// parameters and mode flags but retains activations only inside the
/// caller's Workspace. The single exception is BatchNorm1d's running
/// statistics, which are updated in training mode only (training-mode
/// forward passes are therefore not thread-safe; eval-mode passes are).
///
/// In eval mode the stateless layers skip their backward-only caches
/// entirely (no input copies on the serving path) and clear the slot, so
/// backward after an eval-mode forward throws. BatchNorm1d still caches in
/// eval mode: its eval-mode backward is part of the tested contract.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes outputs for a batch, caching into `ws` what backward needs.
  virtual Tensor forward(const Tensor& input, Workspace& ws) const = 0;

  /// Given dLoss/dOutput and the workspace of the paired forward,
  /// accumulates parameter gradients and returns dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_output, Workspace& ws) = 0;

  /// Single-threaded convenience (training loops, tests): routes through an
  /// internal workspace. Not thread-safe; concurrent callers must use the
  /// explicit-workspace overloads.
  Tensor forward(const Tensor& input) { return forward(input, scratch_); }
  Tensor backward(const Tensor& grad_output) {
    return backward(grad_output, scratch_);
  }

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Read-only view of the trainable parameters. Saving/snapshotting a
  /// model must not require mutable access, so serialization goes through
  /// this overload. The const_cast is sound: the virtual params() only
  /// collects pointers, and callers of this overload never write through
  /// them.
  std::vector<const Param*> params() const {
    const auto ps = const_cast<Layer*>(this)->params();
    return std::vector<const Param*>(ps.begin(), ps.end());
  }

  /// Non-trainable state that must survive serialization (batch-norm
  /// running statistics). Containers aggregate their children's buffers.
  virtual std::vector<std::vector<float>*> buffers() { return {}; }

  /// Read-only view of the serialized buffers (see the const params()).
  std::vector<const std::vector<float>*> buffers() const {
    const auto bs = const_cast<Layer*>(this)->buffers();
    return std::vector<const std::vector<float>*>(bs.begin(), bs.end());
  }

  /// Switches train/eval behaviour (batch-norm statistics).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Short identifier, e.g. "Conv1d(16->32, k=64)".
  virtual std::string name() const = 0;

 protected:
  bool training_ = true;

 private:
  Workspace scratch_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace scalocate::nn
