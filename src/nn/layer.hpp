// Layer interface of the explicit forward/backward NN framework.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace scalocate::nn {

/// A trainable parameter: value plus accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;
  std::string name;

  explicit Param(std::vector<std::size_t> shape, std::string param_name = {})
      : value(shape), grad(std::move(shape)), name(std::move(param_name)) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class of all layers/modules. A layer caches whatever it needs from
/// forward so that the next backward call can compute input gradients;
/// callers must pair forward/backward on the same batch.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes outputs for a batch.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable state that must survive serialization (batch-norm
  /// running statistics). Containers aggregate their children's buffers.
  virtual std::vector<std::vector<float>*> buffers() { return {}; }

  /// Switches train/eval behaviour (batch-norm statistics).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Short identifier, e.g. "Conv1d(16->32, k=64)".
  virtual std::string name() const = 0;

 protected:
  bool training_ = true;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace scalocate::nn
