// 1-D convolution layer.
//
// Input  [B, Cin, N], weight [Cout, Cin, K], bias [Cout].
// Zero padding keeps the temporal length when stride == 1 and K is the
// paper's kernel size (64): out length = (N + 2*pad - K)/stride + 1 with
// pad chosen as (K-1)/2-style "same" padding by default.
//
// Forward and backward are lowered to im2col + cache-blocked GEMM
// (nn/kernels/), with pack buffers taken from the caller's Workspace so
// the layer itself stays const and thread-shareable. The pre-refactor
// scalar loops survive as kernels::conv1d_*_naive for parity testing.
#pragma once

#include "nn/layer.hpp"

namespace scalocate::nn {

class Conv1d final : public Layer {
 public:
  /// pad < 0 selects "same" padding for stride 1 (out length == N).
  Conv1d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, std::size_t stride = 1, int pad = -1);

  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override;

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel_size() const { return kernel_size_; }
  std::size_t stride_amount() const { return stride_; }
  std::size_t pad_left() const { return pad_left_; }
  std::size_t pad_right() const { return pad_right_; }

  /// Output temporal length for an input of length n.
  std::size_t output_length(std::size_t n) const;

 private:
  /// 1x1 stride-1 unpadded convolutions skip im2col: the input already is
  /// the column matrix.
  bool is_pointwise() const;

  std::size_t in_channels_, out_channels_, kernel_size_, stride_;
  std::size_t pad_left_, pad_right_;
  Param weight_;
  Param bias_;
};

}  // namespace scalocate::nn
