#include "nn/linear.hpp"

#include <sstream>

#include "common/error.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/kernels/pointwise.hpp"

namespace scalocate::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}, "linear.weight"),
      bias_({out_features}, "linear.bias") {
  detail::require(in_features >= 1 && out_features >= 1,
                  "Linear: invalid configuration");
}

Tensor Linear::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 2 && input.dim(1) == in_features_,
                  "Linear::forward: expected [B, " +
                      std::to_string(in_features_) + "], got " +
                      input.shape_string());
  // Backward-only cache: skipped in eval mode (see Conv1d::forward).
  ws.slot(this).a = training_ ? input : Tensor();
  const std::size_t batch = input.dim(0);
  Tensor out({batch, out_features_});
  // out = X [B, Fin] x W^T ([Fout, Fin] transposed), then the bias row.
  kernels::sgemm(false, true, batch, out_features_, in_features_, 1.0f,
                 input.data(), in_features_, weight_.value.data(), in_features_,
                 0.0f, out.data(), out_features_, ws.kernels().gemm);
  kernels::add_bias_cols(out.data(), bias_.value.data(), batch, out_features_);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output, Workspace& ws) {
  const Tensor& input = ws.slot(this).a;
  detail::require(input.numel() > 0, "Linear::backward before forward");
  const std::size_t batch = input.dim(0);
  detail::require(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                      grad_output.dim(1) == out_features_,
                  "Linear::backward: grad shape mismatch");

  Tensor grad_input({batch, in_features_});
  kernels::GemmScratch& gemm = ws.kernels().gemm;
  // dBias[o] += sum_b dY[b, o]; dY columns are features, so accumulate per
  // batch row.
  float* gb = bias_.grad.data();
  for (std::size_t b = 0; b < batch; ++b)
    kernels::add_inplace(out_features_,
                         grad_output.data() + b * out_features_, gb);
  // dW += dY^T [Fout, B] x X [B, Fin]
  kernels::sgemm(true, false, out_features_, in_features_, batch, 1.0f,
                 grad_output.data(), out_features_, input.data(), in_features_,
                 1.0f, weight_.grad.data(), in_features_, gemm);
  // dX = dY [B, Fout] x W [Fout, Fin]
  kernels::sgemm(false, false, batch, in_features_, out_features_, 1.0f,
                 grad_output.data(), out_features_, weight_.value.data(),
                 in_features_, 0.0f, grad_input.data(), in_features_, gemm);
  return grad_input;
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "Linear(" << in_features_ << "->" << out_features_ << ")";
  return os.str();
}

}  // namespace scalocate::nn
