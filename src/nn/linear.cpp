#include "nn/linear.hpp"

#include <sstream>

#include "common/error.hpp"

namespace scalocate::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}, "linear.weight"),
      bias_({out_features}, "linear.bias") {
  detail::require(in_features >= 1 && out_features >= 1,
                  "Linear: invalid configuration");
}

Tensor Linear::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 2 && input.dim(1) == in_features_,
                  "Linear::forward: expected [B, " +
                      std::to_string(in_features_) + "], got " +
                      input.shape_string());
  // Backward-only cache: skipped in eval mode (see Conv1d::forward).
  ws.slot(this).a = training_ ? input : Tensor();
  const std::size_t batch = input.dim(0);
  Tensor out({batch, out_features_});
  const float* w = weight_.value.data();
  const float* bias = bias_.value.data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xrow = input.data() + b * in_features_;
    float* orow = out.data() + b * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) {
      const float* wrow = w + o * in_features_;
      float acc = bias[o];
      for (std::size_t i = 0; i < in_features_; ++i) acc += wrow[i] * xrow[i];
      orow[o] = acc;
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output, Workspace& ws) {
  const Tensor& input = ws.slot(this).a;
  detail::require(input.numel() > 0, "Linear::backward before forward");
  const std::size_t batch = input.dim(0);
  detail::require(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                      grad_output.dim(1) == out_features_,
                  "Linear::backward: grad shape mismatch");

  Tensor grad_input({batch, in_features_});
  const float* w = weight_.value.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xrow = input.data() + b * in_features_;
    const float* grow = grad_output.data() + b * out_features_;
    float* gxrow = grad_input.data() + b * in_features_;
    for (std::size_t o = 0; o < out_features_; ++o) {
      const float g = grow[o];
      gb[o] += g;
      const float* wrow = w + o * in_features_;
      float* gwrow = gw + o * in_features_;
      for (std::size_t i = 0; i < in_features_; ++i) {
        gwrow[i] += g * xrow[i];
        gxrow[i] += g * wrow[i];
      }
    }
  }
  return grad_input;
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "Linear(" << in_features_ << "->" << out_features_ << ")";
  return os.str();
}

}  // namespace scalocate::nn
