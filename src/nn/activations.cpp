#include "nn/activations.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/kernels/pointwise.hpp"

namespace scalocate::nn {

Tensor ReLU::forward(const Tensor& input, Workspace& ws) const {
  Tensor out(input.shape());
  if (training_) {
    Tensor& mask = ws.slot(this).a;
    mask = Tensor(input.shape());
    kernels::relu_mask(input.numel(), input.data(), out.data(), mask.data());
  } else {
    // Backward-only mask skipped in eval mode (see Conv1d::forward).
    ws.slot(this).a = Tensor();
    kernels::relu(input.numel(), input.data(), out.data());
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output, Workspace& ws) {
  const Tensor& mask = ws.slot(this).a;
  detail::require(mask.numel() > 0, "ReLU::backward before forward");
  detail::require(grad_output.same_shape(mask),
                  "ReLU::backward: grad shape mismatch");
  Tensor grad_input(grad_output.shape());
  kernels::multiply(grad_output.numel(), grad_output.data(), mask.data(),
                    grad_input.data());
  return grad_input;
}

Tensor softmax(const Tensor& logits) {
  detail::require(logits.rank() == 2, "softmax: expected [B, C]");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  Tensor out(logits.shape());
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    float* orow = out.data() + b * classes;
    float max_v = row[0];
    for (std::size_t c = 1; c < classes; ++c)
      if (row[c] > max_v) max_v = row[c];
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      orow[c] = std::exp(row[c] - max_v);
      denom += static_cast<double>(orow[c]);
    }
    for (std::size_t c = 0; c < classes; ++c)
      orow[c] = static_cast<float>(static_cast<double>(orow[c]) / denom);
  }
  return out;
}

}  // namespace scalocate::nn
