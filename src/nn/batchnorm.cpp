#include "nn/batchnorm.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace scalocate::nn {

BatchNorm1d::BatchNorm1d(std::size_t channels, double eps, double momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_({channels}, "bn.gamma"),
      beta_({channels}, "bn.beta"),
      running_mean_(channels, 0.0f),
      running_var_(channels, 1.0f) {
  gamma_.value.fill(1.0f);
}

Tensor BatchNorm1d::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 3 && input.dim(1) == channels_,
                  "BatchNorm1d::forward: expected [B, C, N], got " +
                      input.shape_string());
  const std::size_t batch = input.dim(0);
  const std::size_t n = input.dim(2);
  const std::size_t count = batch * n;

  Tensor out(input.shape());
  // Unlike the stateless layers, the xhat cache is kept in eval mode too:
  // eval-mode BatchNorm backward is part of the tested layer contract
  // (statistics become constants but parameter gradients still need xhat).
  Workspace::Slot& slot = ws.slot(this);
  slot.a = Tensor(input.shape());  // normalized activations (xhat)
  slot.scalars.assign(channels_, 0.0f);  // per-channel 1/std
  Tensor& cached_normalized = slot.a;
  std::vector<float>& cached_inv_std = slot.scalars;

  for (std::size_t c = 0; c < channels_; ++c) {
    double mean = 0.0;
    double var = 0.0;
    if (training_) {
      for (std::size_t b = 0; b < batch; ++b) {
        const float* row = input.data() + (b * channels_ + c) * n;
        for (std::size_t i = 0; i < n; ++i) mean += row[i];
      }
      mean /= static_cast<double>(count);
      for (std::size_t b = 0; b < batch; ++b) {
        const float* row = input.data() + (b * channels_ + c) * n;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = row[i] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(count);
      running_mean_[c] = static_cast<float>((1.0 - momentum_) * running_mean_[c] +
                                            momentum_ * mean);
      running_var_[c] = static_cast<float>((1.0 - momentum_) * running_var_[c] +
                                           momentum_ * var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }

    const double inv_std = 1.0 / std::sqrt(var + eps_);
    cached_inv_std[c] = static_cast<float>(inv_std);
    const float g = gamma_.value.at(c);
    const float be = beta_.value.at(c);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* row = input.data() + (b * channels_ + c) * n;
      float* nrow = cached_normalized.data() + (b * channels_ + c) * n;
      float* orow = out.data() + (b * channels_ + c) * n;
      for (std::size_t i = 0; i < n; ++i) {
        const float xhat = static_cast<float>((row[i] - mean) * inv_std);
        nrow[i] = xhat;
        orow[i] = g * xhat + be;
      }
    }
  }
  return out;
}

Tensor BatchNorm1d::backward(const Tensor& grad_output, Workspace& ws) {
  Workspace::Slot& slot = ws.slot(this);
  const Tensor& xhat = slot.a;
  detail::require(xhat.numel() > 0, "BatchNorm1d::backward before forward");
  detail::require(grad_output.same_shape(xhat),
                  "BatchNorm1d::backward: grad shape mismatch");
  const std::size_t batch = xhat.dim(0);
  const std::size_t n = xhat.dim(2);
  const auto count = static_cast<double>(batch * n);

  Tensor grad_input(xhat.shape());

  for (std::size_t c = 0; c < channels_; ++c) {
    // Accumulate dL/dgamma, dL/dbeta and the two reduction terms of the
    // batch-norm input gradient.
    double sum_g = 0.0;        // sum of grad_out
    double sum_g_xhat = 0.0;   // sum of grad_out * xhat
    for (std::size_t b = 0; b < batch; ++b) {
      const float* grow = grad_output.data() + (b * channels_ + c) * n;
      const float* nrow = xhat.data() + (b * channels_ + c) * n;
      for (std::size_t i = 0; i < n; ++i) {
        sum_g += grow[i];
        sum_g_xhat += grow[i] * nrow[i];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_g_xhat);
    beta_.grad.at(c) += static_cast<float>(sum_g);

    const double g = gamma_.value.at(c);
    const double inv_std = slot.scalars[c];
    if (training_) {
      // dL/dx = gamma * inv_std * (g_i - mean(g) - xhat_i * mean(g*xhat))
      const double mean_g = sum_g / count;
      const double mean_g_xhat = sum_g_xhat / count;
      for (std::size_t b = 0; b < batch; ++b) {
        const float* grow = grad_output.data() + (b * channels_ + c) * n;
        const float* nrow = xhat.data() + (b * channels_ + c) * n;
        float* gx = grad_input.data() + (b * channels_ + c) * n;
        for (std::size_t i = 0; i < n; ++i) {
          gx[i] = static_cast<float>(
              g * inv_std * (grow[i] - mean_g - nrow[i] * mean_g_xhat));
        }
      }
    } else {
      // Eval mode: statistics are constants.
      for (std::size_t b = 0; b < batch; ++b) {
        const float* grow = grad_output.data() + (b * channels_ + c) * n;
        float* gx = grad_input.data() + (b * channels_ + c) * n;
        for (std::size_t i = 0; i < n; ++i)
          gx[i] = static_cast<float>(g * inv_std * grow[i]);
      }
    }
  }
  return grad_input;
}

std::string BatchNorm1d::name() const {
  std::ostringstream os;
  os << "BatchNorm1d(" << channels_ << ")";
  return os.str();
}

}  // namespace scalocate::nn
