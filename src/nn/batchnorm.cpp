#include "nn/batchnorm.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "nn/kernels/pointwise.hpp"

namespace scalocate::nn {

BatchNorm1d::BatchNorm1d(std::size_t channels, double eps, double momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_({channels}, "bn.gamma"),
      beta_({channels}, "bn.beta"),
      running_mean_(channels, 0.0f),
      running_var_(channels, 1.0f) {
  gamma_.value.fill(1.0f);
}

Tensor BatchNorm1d::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 3 && input.dim(1) == channels_,
                  "BatchNorm1d::forward: expected [B, C, N], got " +
                      input.shape_string());
  const std::size_t batch = input.dim(0);
  const std::size_t n = input.dim(2);
  const std::size_t count = batch * n;

  Tensor out(input.shape());
  // Unlike the stateless layers, the xhat cache is kept in eval mode too:
  // eval-mode BatchNorm backward is part of the tested layer contract
  // (statistics become constants but parameter gradients still need xhat).
  Workspace::Slot& slot = ws.slot(this);
  slot.a = Tensor(input.shape());  // normalized activations (xhat)
  slot.scalars.assign(channels_, 0.0f);  // per-channel 1/std
  Tensor& cached_normalized = slot.a;
  std::vector<float>& cached_inv_std = slot.scalars;

  for (std::size_t c = 0; c < channels_; ++c) {
    double mean = 0.0;
    double var = 0.0;
    if (training_) {
      for (std::size_t b = 0; b < batch; ++b)
        mean += kernels::sum(n, input.data() + (b * channels_ + c) * n);
      mean /= static_cast<double>(count);
      for (std::size_t b = 0; b < batch; ++b) {
        const float* row = input.data() + (b * channels_ + c) * n;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = static_cast<double>(row[i]) - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(count);
      running_mean_[c] = static_cast<float>(
          (1.0 - momentum_) * static_cast<double>(running_mean_[c]) +
          momentum_ * mean);
      running_var_[c] = static_cast<float>(
          (1.0 - momentum_) * static_cast<double>(running_var_[c]) +
          momentum_ * var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }

    const double inv_std = 1.0 / std::sqrt(var + eps_);
    cached_inv_std[c] = static_cast<float>(inv_std);
    if (training_) {
      // Training keeps the normalize in double (as pre-backend): xhat
      // feeds every gradient, and single-rounded statistics keep the
      // training trajectory identical across kernel backends.
      const float g = gamma_.value.at(c);
      const float be = beta_.value.at(c);
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t off = (b * channels_ + c) * n;
        const float* row = input.data() + off;
        float* nrow = cached_normalized.data() + off;
        float* orow = out.data() + off;
        for (std::size_t i = 0; i < n; ++i) {
          const float xhat =
              static_cast<float>((static_cast<double>(row[i]) - mean) * inv_std);
          nrow[i] = xhat;
          orow[i] = g * xhat + be;
        }
      }
    } else {
      // Eval (serving) path: fused single-precision normalize + affine —
      // one pass writes both the xhat cache and the output row.
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t off = (b * channels_ + c) * n;
        kernels::normalize_scale_shift(
            n, input.data() + off, static_cast<float>(mean),
            static_cast<float>(inv_std), gamma_.value.at(c), beta_.value.at(c),
            cached_normalized.data() + off, out.data() + off);
      }
    }
  }
  return out;
}

Tensor BatchNorm1d::backward(const Tensor& grad_output, Workspace& ws) {
  Workspace::Slot& slot = ws.slot(this);
  const Tensor& xhat = slot.a;
  detail::require(xhat.numel() > 0, "BatchNorm1d::backward before forward");
  detail::require(grad_output.same_shape(xhat),
                  "BatchNorm1d::backward: grad shape mismatch");
  const std::size_t batch = xhat.dim(0);
  const std::size_t n = xhat.dim(2);
  const auto count = static_cast<double>(batch * n);

  Tensor grad_input(xhat.shape());

  for (std::size_t c = 0; c < channels_; ++c) {
    // dL/dgamma, dL/dbeta and the two reduction terms of the input
    // gradient, in one fused pass per row.
    double sum_g = 0.0;        // sum of grad_out
    double sum_g_xhat = 0.0;   // sum of grad_out * xhat
    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t off = (b * channels_ + c) * n;
      kernels::sums_dot(n, grad_output.data() + off, xhat.data() + off, &sum_g,
                        &sum_g_xhat);
    }
    gamma_.grad.at(c) += static_cast<float>(sum_g_xhat);
    beta_.grad.at(c) += static_cast<float>(sum_g);

    const double g = gamma_.value.at(c);
    const double inv_std = slot.scalars[c];
    const auto coeff = static_cast<float>(g * inv_std);
    if (training_) {
      // dL/dx = gamma * inv_std * (g_i - mean(g) - xhat_i * mean(g*xhat)),
      // all-double like the forward normalize (training numerics fixed).
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t off = (b * channels_ + c) * n;
        kernels::bn_input_grad(n, grad_output.data() + off, xhat.data() + off,
                               g * inv_std, sum_g / count, sum_g_xhat / count,
                               grad_input.data() + off);
      }
    } else {
      // Eval mode: statistics are constants, the gradient is a pure scale.
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t off = (b * channels_ + c) * n;
        kernels::scale_shift(n, grad_output.data() + off, coeff, 0.0f,
                             grad_input.data() + off);
      }
    }
  }
  return grad_input;
}

std::string BatchNorm1d::name() const {
  std::ostringstream os;
  os << "BatchNorm1d(" << channels_ << ")";
  return os.str();
}

}  // namespace scalocate::nn
