// Fused softmax + cross-entropy loss (Equation 1 of the paper).
//
// forward computes L = -(1/B) * sum_b log softmax(logits_b)[label_b];
// backward returns dL/dlogits = (softmax - onehot)/B, the numerically
// stable fused gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace scalocate::nn {

class SoftmaxCrossEntropy {
 public:
  /// logits: [B, C]; labels: B class indices in [0, C).
  float forward(const Tensor& logits, const std::vector<std::uint8_t>& labels);

  /// Gradient w.r.t. the logits of the last forward call.
  Tensor backward() const;

 private:
  Tensor cached_probs_;
  std::vector<std::uint8_t> cached_labels_;
};

}  // namespace scalocate::nn
