#include "nn/pooling.hpp"

#include <sstream>

#include "common/error.hpp"
#include "nn/kernels/pointwise.hpp"

namespace scalocate::nn {

Tensor GlobalAvgPool1d::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 3,
                  "GlobalAvgPool1d::forward: expected [B, C, N], got " +
                      input.shape_string());
  // Backward-only cache: skipped in eval mode (see Conv1d::forward).
  ws.slot(this).shape = training_ ? input.shape() : std::vector<std::size_t>{};
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t n = input.dim(2);
  detail::require(n >= 1, "GlobalAvgPool1d::forward: empty temporal axis");

  Tensor out({batch, channels});
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* row = input.data() + (b * channels + c) * n;
      out.at(b, c) = static_cast<float>(kernels::sum(n, row) * inv_n);
    }
  }
  return out;
}

Tensor GlobalAvgPool1d::backward(const Tensor& grad_output, Workspace& ws) {
  const std::vector<std::size_t>& in_shape = ws.slot(this).shape;
  detail::require(!in_shape.empty(),
                  "GlobalAvgPool1d::backward before forward");
  const std::size_t batch = in_shape[0];
  const std::size_t channels = in_shape[1];
  const std::size_t n = in_shape[2];
  detail::require(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                      grad_output.dim(1) == channels,
                  "GlobalAvgPool1d::backward: grad shape mismatch");

  Tensor grad_input(in_shape);
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float g = grad_output.at(b, c) * inv_n;
      float* row = grad_input.data() + (b * channels + c) * n;
      for (std::size_t i = 0; i < n; ++i) row[i] = g;
    }
  }
  return grad_input;
}

MaxPool1d::MaxPool1d(std::size_t kernel_size, std::size_t stride)
    : kernel_size_(kernel_size),
      stride_(stride > 0 ? stride : kernel_size) {
  detail::require(kernel_size_ >= 1, "MaxPool1d: kernel_size must be >= 1");
}

std::size_t MaxPool1d::output_length(std::size_t n) const {
  detail::require(n >= kernel_size_, "MaxPool1d: input shorter than kernel");
  return (n - kernel_size_) / stride_ + 1;
}

Tensor MaxPool1d::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 3,
                  "MaxPool1d::forward: expected [B, C, N], got " +
                      input.shape_string());
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t n = input.dim(2);
  const std::size_t out_len = output_length(n);

  Workspace::Slot& slot = ws.slot(this);
  // Backward needs the input shape and the winning positions only.
  slot.shape = training_ ? input.shape() : std::vector<std::size_t>{};
  slot.indices.clear();
  if (training_) slot.indices.resize(batch * channels * out_len);

  Tensor out({batch, channels, out_len});
  for (std::size_t bc = 0; bc < batch * channels; ++bc) {
    const float* row = input.data() + bc * n;
    float* orow = out.data() + bc * out_len;
    std::size_t* irow =
        training_ ? slot.indices.data() + bc * out_len : nullptr;
    for (std::size_t j = 0; j < out_len; ++j) {
      const std::size_t base = j * stride_;
      float best = row[base];
      std::size_t best_i = base;
      for (std::size_t k = 1; k < kernel_size_; ++k) {
        if (row[base + k] > best) {
          best = row[base + k];
          best_i = base + k;
        }
      }
      orow[j] = best;
      if (irow != nullptr) irow[j] = best_i;
    }
  }
  return out;
}

Tensor MaxPool1d::backward(const Tensor& grad_output, Workspace& ws) {
  Workspace::Slot& slot = ws.slot(this);
  const std::vector<std::size_t>& in_shape = slot.shape;
  detail::require(!in_shape.empty(), "MaxPool1d::backward before forward");
  const std::size_t batch = in_shape[0];
  const std::size_t channels = in_shape[1];
  const std::size_t n = in_shape[2];
  const std::size_t out_len = output_length(n);
  detail::require(grad_output.rank() == 3 && grad_output.dim(0) == batch &&
                      grad_output.dim(1) == channels &&
                      grad_output.dim(2) == out_len,
                  "MaxPool1d::backward: grad shape mismatch");

  Tensor grad_input(in_shape);
  for (std::size_t bc = 0; bc < batch * channels; ++bc) {
    const float* grow = grad_output.data() + bc * out_len;
    float* gxrow = grad_input.data() + bc * n;
    const std::size_t* irow = slot.indices.data() + bc * out_len;
    // Overlapping windows can pick the same sample; gradients accumulate.
    for (std::size_t j = 0; j < out_len; ++j) gxrow[irow[j]] += grow[j];
  }
  return grad_input;
}

std::string MaxPool1d::name() const {
  std::ostringstream os;
  os << "MaxPool1d(k=" << kernel_size_ << ", s=" << stride_ << ")";
  return os.str();
}

}  // namespace scalocate::nn
