#include "nn/pooling.hpp"

#include "common/error.hpp"

namespace scalocate::nn {

Tensor GlobalAvgPool1d::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 3,
                  "GlobalAvgPool1d::forward: expected [B, C, N], got " +
                      input.shape_string());
  // Backward-only cache: skipped in eval mode (see Conv1d::forward).
  ws.slot(this).shape = training_ ? input.shape() : std::vector<std::size_t>{};
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t n = input.dim(2);
  detail::require(n >= 1, "GlobalAvgPool1d::forward: empty temporal axis");

  Tensor out({batch, channels});
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* row = input.data() + (b * channels + c) * n;
      float acc = 0.0f;
      for (std::size_t i = 0; i < n; ++i) acc += row[i];
      out.at(b, c) = acc * inv_n;
    }
  }
  return out;
}

Tensor GlobalAvgPool1d::backward(const Tensor& grad_output, Workspace& ws) {
  const std::vector<std::size_t>& in_shape = ws.slot(this).shape;
  detail::require(!in_shape.empty(),
                  "GlobalAvgPool1d::backward before forward");
  const std::size_t batch = in_shape[0];
  const std::size_t channels = in_shape[1];
  const std::size_t n = in_shape[2];
  detail::require(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                      grad_output.dim(1) == channels,
                  "GlobalAvgPool1d::backward: grad shape mismatch");

  Tensor grad_input(in_shape);
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float g = grad_output.at(b, c) * inv_n;
      float* row = grad_input.data() + (b * channels + c) * n;
      for (std::size_t i = 0; i < n; ++i) row[i] = g;
    }
  }
  return grad_input;
}

}  // namespace scalocate::nn
