// Global average pooling over the temporal axis: [B, C, N] -> [B, C].
//
// This is the layer that makes the paper's CNN usable with different window
// sizes at training (Ntrain) and inference (Ninf): the feature map is
// averaged over whatever temporal length reaches it (Section III-B).
#pragma once

#include "nn/layer.hpp"

namespace scalocate::nn {

class GlobalAvgPool1d final : public Layer {
 public:
  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::string name() const override { return "GlobalAvgPool1d"; }
};

}  // namespace scalocate::nn
