// Temporal pooling layers.
//
// GlobalAvgPool1d ([B, C, N] -> [B, C]) is the layer that makes the
// paper's CNN usable with different window sizes at training (Ntrain) and
// inference (Ninf): the feature map is averaged over whatever temporal
// length reaches it (Section III-B).
//
// MaxPool1d ([B, C, N] -> [B, C, N/k]-ish) is not part of the paper
// architecture but completes the kernel backend for custom models
// (examples/train_custom_cipher-style variants); its backward routes the
// gradient to the cached argmax positions.
#pragma once

#include "nn/layer.hpp"

namespace scalocate::nn {

class GlobalAvgPool1d final : public Layer {
 public:
  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::string name() const override { return "GlobalAvgPool1d"; }
};

/// Non-overlapping-capable 1-D max pooling with the usual floor output
/// length (N - k) / stride + 1 (no padding).
class MaxPool1d final : public Layer {
 public:
  explicit MaxPool1d(std::size_t kernel_size, std::size_t stride = 0);

  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::string name() const override;

  std::size_t kernel_size() const { return kernel_size_; }
  std::size_t stride_amount() const { return stride_; }
  std::size_t output_length(std::size_t n) const;

 private:
  std::size_t kernel_size_;
  std::size_t stride_;  // defaults to kernel_size (non-overlapping)
};

}  // namespace scalocate::nn
