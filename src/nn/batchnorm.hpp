// 1-D batch normalization (Ioffe & Szegedy 2015), matching the paper's
// convolutional blocks (Conv1d -> BatchNorm -> ReLU).
//
// Input [B, C, N]: statistics are computed per channel over batch and time
// in training mode; running estimates are used in eval mode.
#pragma once

#include "nn/layer.hpp"

namespace scalocate::nn {

class BatchNorm1d final : public Layer {
 public:
  explicit BatchNorm1d(std::size_t channels, double eps = 1e-5,
                       double momentum = 0.1);

  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<std::vector<float>*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override;

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  std::span<const float> running_mean() const { return running_mean_; }
  std::span<const float> running_var() const { return running_var_; }

  /// Direct access for (de)serialization of the running statistics.
  std::vector<float>& mutable_running_mean() { return running_mean_; }
  std::vector<float>& mutable_running_var() { return running_var_; }

 private:
  std::size_t channels_;
  double eps_;
  double momentum_;
  Param gamma_;
  Param beta_;
  // Mutable: the running estimates are updated by training-mode forward
  // passes (the one place forward touches layer state). Eval-mode forward
  // only reads them, so sharing an eval model across threads stays safe.
  mutable std::vector<float> running_mean_;
  mutable std::vector<float> running_var_;
};

}  // namespace scalocate::nn
