// Fully connected layer: input [B, F_in] -> output [B, F_out].
// Both directions are single sgemm calls into the nn/kernels backend.
#pragma once

#include "nn/layer.hpp"

namespace scalocate::nn {

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override;

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

 private:
  std::size_t in_features_, out_features_;
  Param weight_;  // [F_out, F_in]
  Param bias_;    // [F_out]
};

}  // namespace scalocate::nn
