// Model checkpointing.
//
// Two formats live here:
//  - the legacy checkpoint (save_module/load_module): parameter values +
//    batch-norm buffers in enumeration order. Load requires a module
//    constructed with the same architecture; shapes are validated only
//    element-count-wise. Kept for existing tooling and tests.
//  - the self-describing payload (write_module_payload /
//    read_module_payload): every parameter is written with its name and
//    full shape, so a reader can validate the architecture field-by-field
//    and report structured errors. This is the weight section of the
//    versioned model artifacts (api/artifact).
#pragma once

#include <iosfwd>
#include <string>

#include "nn/layer.hpp"

namespace scalocate::nn {

void save_module(const Layer& module, const std::string& path);
void load_module(Layer& module, const std::string& path);

/// Writes the module's parameters (name + shape + data) and buffers to the
/// stream. Deterministic: the same module state always produces the same
/// bytes.
void write_module_payload(std::ostream& os, const Layer& module);

/// Reads a payload written by write_module_payload into a module of the
/// SAME architecture. Throws IoError when the stream ends or fails
/// mid-payload (truncation) and ShapeError when the payload disagrees with
/// the module (parameter count, name, rank, or dimension mismatch) — the
/// artifact loader maps these to its structured error types.
void read_module_payload(std::istream& is, Layer& module);

/// In-memory snapshot of a module's learnable state (used by the trainer's
/// keep-the-best-validation-model logic, Section IV-B).
struct ModuleState {
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> buffers;
};

ModuleState snapshot_module(const Layer& module);
void restore_module(Layer& module, const ModuleState& state);

}  // namespace scalocate::nn
