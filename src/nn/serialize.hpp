// Model checkpointing: parameter values + batch-norm buffers are written
// in enumeration order, so load requires a module constructed with the
// same architecture (shapes are validated element-count-wise).
#pragma once

#include <string>

#include "nn/layer.hpp"

namespace scalocate::nn {

void save_module(Layer& module, const std::string& path);
void load_module(Layer& module, const std::string& path);

/// In-memory snapshot of a module's learnable state (used by the trainer's
/// keep-the-best-validation-model logic, Section IV-B).
struct ModuleState {
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> buffers;
};

ModuleState snapshot_module(Layer& module);
void restore_module(Layer& module, const ModuleState& state);

}  // namespace scalocate::nn
