#include "nn/optimizer.hpp"

#include <cmath>

namespace scalocate::nn {

void Optimizer::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    velocity_[i].assign(params_[i]->value.numel(), 0.0f);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    float* value = p.value.data();
    const float* grad = p.grad.data();
    float* vel = velocity_[i].data();
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * grad[j];
      value[j] += vel[j];
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i]->value.numel(), 0.0f);
    v_[i].assign(params_[i]->value.numel(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    float* value = p.value.data();
    const float* grad = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const double mhat = static_cast<double>(m[j]) / bias1;
      const double vhat = static_cast<double>(v[j]) / bias2;
      value[j] -= static_cast<float>(static_cast<double>(lr_) * mhat /
                                     (std::sqrt(vhat) + static_cast<double>(eps_)));
    }
  }
}

}  // namespace scalocate::nn
