#include "nn/serialize.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"
#include "common/io.hpp"

namespace scalocate::nn {

namespace {

constexpr std::uint64_t kModelMagic = 0x5343414c4d444c31ULL;  // "SCALMDL1"

/// Upper bounds that keep a corrupt length prefix from turning into a
/// multi-gigabyte allocation before the stream's failbit is ever checked.
constexpr std::uint64_t kMaxNameBytes = 1u << 16;
constexpr std::uint64_t kMaxRank = 8;

template <typename T>
T checked_scalar(std::istream& is, const char* what) {
  const T value = io::read_scalar<T>(is);
  if (!is) throw IoError(std::string("module payload truncated reading ") + what);
  return value;
}

std::string checked_string(std::istream& is, const char* what) {
  const auto n = checked_scalar<std::uint64_t>(is, what);
  if (n > kMaxNameBytes)
    throw IoError(std::string("module payload corrupt length for ") + what);
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0) is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw IoError(std::string("module payload truncated reading ") + what);
  return s;
}

void checked_floats(std::istream& is, std::span<float> out, const char* what) {
  if (out.empty()) return;
  is.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size() * sizeof(float)));
  if (!is) throw IoError(std::string("module payload truncated reading ") + what);
}

}  // namespace

void save_module(const Layer& module, const std::string& path) {
  auto os = io::open_for_write(path, kModelMagic);
  const auto params = module.params();
  io::write_scalar<std::uint64_t>(os, params.size());
  for (const Param* p : params) {
    io::write_string(os, p->name);
    std::vector<float> values(p->value.flat().begin(), p->value.flat().end());
    io::write_vector(os, values);
  }
  const auto buffers = module.buffers();
  io::write_scalar<std::uint64_t>(os, buffers.size());
  for (const auto* b : buffers) io::write_vector(os, *b);
}

void load_module(Layer& module, const std::string& path) {
  auto is = io::open_for_read(path, kModelMagic);
  const auto params = module.params();
  const auto n_params = io::read_scalar<std::uint64_t>(is);
  detail::require(n_params == params.size(),
                  "load_module: parameter count mismatch for " + path);
  for (Param* p : params) {
    const std::string name = io::read_string(is);
    const auto values = io::read_vector<float>(is);
    detail::require(values.size() == p->value.numel(),
                    "load_module: size mismatch for parameter " + name);
    std::copy(values.begin(), values.end(), p->value.data());
  }
  const auto n_buffers = io::read_scalar<std::uint64_t>(is);
  const auto buffers = module.buffers();
  detail::require(n_buffers == buffers.size(),
                  "load_module: buffer count mismatch for " + path);
  for (auto* b : buffers) {
    const auto values = io::read_vector<float>(is);
    detail::require(values.size() == b->size(),
                    "load_module: buffer size mismatch");
    *b = values;
  }
}

void write_module_payload(std::ostream& os, const Layer& module) {
  const auto params = module.params();
  io::write_scalar<std::uint64_t>(os, params.size());
  for (const Param* p : params) {
    io::write_string(os, p->name);
    const auto& shape = p->value.shape();
    io::write_scalar<std::uint32_t>(os,
                                    static_cast<std::uint32_t>(shape.size()));
    for (std::size_t d : shape) io::write_scalar<std::uint64_t>(os, d);
    const auto flat = p->value.flat();
    os.write(reinterpret_cast<const char*>(flat.data()),
             static_cast<std::streamsize>(flat.size() * sizeof(float)));
  }
  const auto buffers = module.buffers();
  io::write_scalar<std::uint64_t>(os, buffers.size());
  for (const auto* b : buffers) {
    io::write_scalar<std::uint64_t>(os, b->size());
    if (!b->empty())
      os.write(reinterpret_cast<const char*>(b->data()),
               static_cast<std::streamsize>(b->size() * sizeof(float)));
  }
}

void read_module_payload(std::istream& is, Layer& module) {
  const auto params = module.params();
  const auto n_params = checked_scalar<std::uint64_t>(is, "parameter count");
  if (n_params != params.size())
    throw ShapeError("module payload architecture mismatch: payload has " +
                     std::to_string(n_params) + " parameters, module has " +
                     std::to_string(params.size()));
  for (Param* p : params) {
    const std::string name = checked_string(is, "parameter name");
    if (name != p->name)
      throw ShapeError("module payload architecture mismatch: expected "
                       "parameter '" +
                       p->name + "', payload has '" + name + "'");
    const auto rank = checked_scalar<std::uint32_t>(is, "parameter rank");
    if (rank > kMaxRank)
      throw IoError("module payload corrupt rank for parameter " + name);
    std::vector<std::size_t> shape(rank);
    for (auto& d : shape)
      d = static_cast<std::size_t>(
          checked_scalar<std::uint64_t>(is, "parameter dimension"));
    // The payload only ever fills the module's existing storage
    // (checked_floats below), so the shape equality is the complete guard:
    // no allocation is driven by the payload's declared sizes.
    if (shape != p->value.shape())
      throw ShapeError("module payload architecture mismatch for parameter '" +
                       name + "': payload shape differs from module shape " +
                       p->value.shape_string());
    checked_floats(is, p->value.flat(), name.c_str());
  }
  const auto buffers = module.buffers();
  const auto n_buffers = checked_scalar<std::uint64_t>(is, "buffer count");
  if (n_buffers != buffers.size())
    throw ShapeError("module payload architecture mismatch: payload has " +
                     std::to_string(n_buffers) + " buffers, module has " +
                     std::to_string(buffers.size()));
  for (auto* b : buffers) {
    const auto n = checked_scalar<std::uint64_t>(is, "buffer size");
    if (n != b->size())
      throw ShapeError(
          "module payload architecture mismatch: buffer size differs");
    checked_floats(is, std::span<float>(*b), "buffer data");
  }
}

ModuleState snapshot_module(const Layer& module) {
  ModuleState state;
  for (const Param* p : module.params())
    state.params.emplace_back(p->value.flat().begin(), p->value.flat().end());
  for (const auto* b : module.buffers()) state.buffers.push_back(*b);
  return state;
}

void restore_module(Layer& module, const ModuleState& state) {
  const auto params = module.params();
  detail::require(params.size() == state.params.size(),
                  "restore_module: parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    detail::require(state.params[i].size() == params[i]->value.numel(),
                    "restore_module: parameter size mismatch");
    std::copy(state.params[i].begin(), state.params[i].end(),
              params[i]->value.data());
  }
  const auto buffers = module.buffers();
  detail::require(buffers.size() == state.buffers.size(),
                  "restore_module: buffer count mismatch");
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    detail::require(state.buffers[i].size() == buffers[i]->size(),
                    "restore_module: buffer size mismatch");
    *buffers[i] = state.buffers[i];
  }
}

}  // namespace scalocate::nn
