#include "nn/serialize.hpp"

#include "common/error.hpp"
#include "common/io.hpp"

namespace scalocate::nn {

namespace {
constexpr std::uint64_t kModelMagic = 0x5343414c4d444c31ULL;  // "SCALMDL1"
}

void save_module(Layer& module, const std::string& path) {
  auto os = io::open_for_write(path, kModelMagic);
  const auto params = module.params();
  io::write_scalar<std::uint64_t>(os, params.size());
  for (Param* p : params) {
    io::write_string(os, p->name);
    std::vector<float> values(p->value.flat().begin(), p->value.flat().end());
    io::write_vector(os, values);
  }
  const auto buffers = module.buffers();
  io::write_scalar<std::uint64_t>(os, buffers.size());
  for (const auto* b : buffers) io::write_vector(os, *b);
}

void load_module(Layer& module, const std::string& path) {
  auto is = io::open_for_read(path, kModelMagic);
  const auto params = module.params();
  const auto n_params = io::read_scalar<std::uint64_t>(is);
  detail::require(n_params == params.size(),
                  "load_module: parameter count mismatch for " + path);
  for (Param* p : params) {
    const std::string name = io::read_string(is);
    const auto values = io::read_vector<float>(is);
    detail::require(values.size() == p->value.numel(),
                    "load_module: size mismatch for parameter " + name);
    std::copy(values.begin(), values.end(), p->value.data());
  }
  const auto n_buffers = io::read_scalar<std::uint64_t>(is);
  const auto buffers = module.buffers();
  detail::require(n_buffers == buffers.size(),
                  "load_module: buffer count mismatch for " + path);
  for (auto* b : buffers) {
    const auto values = io::read_vector<float>(is);
    detail::require(values.size() == b->size(),
                    "load_module: buffer size mismatch");
    *b = values;
  }
}

ModuleState snapshot_module(Layer& module) {
  ModuleState state;
  for (Param* p : module.params())
    state.params.emplace_back(p->value.flat().begin(), p->value.flat().end());
  for (const auto* b : module.buffers()) state.buffers.push_back(*b);
  return state;
}

void restore_module(Layer& module, const ModuleState& state) {
  const auto params = module.params();
  detail::require(params.size() == state.params.size(),
                  "restore_module: parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    detail::require(state.params[i].size() == params[i]->value.numel(),
                    "restore_module: parameter size mismatch");
    std::copy(state.params[i].begin(), state.params[i].end(),
              params[i]->value.data());
  }
  const auto buffers = module.buffers();
  detail::require(buffers.size() == state.buffers.size(),
                  "restore_module: buffer count mismatch");
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    detail::require(state.buffers[i].size() == buffers[i]->size(),
                    "restore_module: buffer size mismatch");
    *buffers[i] = state.buffers[i];
  }
}

}  // namespace scalocate::nn
