// Dense float tensor with contiguous row-major storage.
//
// The scalocate NN framework deliberately avoids a general autograd tape:
// every Layer implements an explicit forward/backward pair over these
// tensors (validated by finite-difference tests), which keeps the CPU
// training loop small, fast, and fully deterministic.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace scalocate::nn {

class Tensor {
 public:
  /// Empty tensor (numel 0).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Builds a tensor that adopts `data` (size must match the shape).
  static Tensor from_data(std::vector<std::size_t> shape,
                          std::vector<float> data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  /// Element access (rank/bounds-checked in debug; hot paths use raw
  /// data()). The single-index overload is flat access for any rank.
  float& at(std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float at(std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }
  float& at(std::size_t i, std::size_t j) {
    assert(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * stride_[0] + j];
  }
  float at(std::size_t i, std::size_t j) const {
    assert(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * stride_[0] + j];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k) {
    assert(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
    return data_[i * stride_[0] + j * stride_[1] + k];
  }
  float at(std::size_t i, std::size_t j, std::size_t k) const {
    assert(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
    return data_[i * stride_[0] + j * stride_[1] + k];
  }

  /// Stride (elements) of an axis.
  std::size_t stride(std::size_t axis) const { return stride_[axis]; }

  /// Sets every element to `value`.
  void fill(float value);

  /// Returns a copy with a new shape of equal numel.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// In-place metadata-only reshape: the storage is reused (no realloc, no
  /// copy; data() stays valid), so im2col round-trips and batch staging can
  /// re-view one allocation. The new shape must have the same numel.
  Tensor& reshape(std::vector<std::size_t> new_shape);
  Tensor& reshape(std::initializer_list<std::size_t> new_shape) {
    return reshape(std::vector<std::size_t>(new_shape));
  }

  /// Reshapes reusing the existing allocation when the new numel fits the
  /// current storage capacity, reallocating (zero-filled) only on growth.
  /// For reusable staging tensors (batched window scoring).
  Tensor& resize(std::vector<std::size_t> new_shape);
  Tensor& resize(std::initializer_list<std::size_t> new_shape) {
    return resize(std::vector<std::size_t>(new_shape));
  }

  /// "(2, 16, 192)" -- for error messages and summaries.
  std::string shape_string() const;

  /// True when shapes are identical.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  void compute_strides();

  std::vector<std::size_t> shape_;
  std::vector<std::size_t> stride_;  // strides for all but the last axis
  std::vector<float> data_;
};

}  // namespace scalocate::nn
