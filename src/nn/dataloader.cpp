#include "nn/dataloader.hpp"

#include <numeric>

#include "common/error.hpp"

namespace scalocate::nn {

DataLoader::DataLoader(std::vector<std::vector<float>> windows,
                       std::vector<std::uint8_t> labels,
                       std::size_t batch_size, std::uint64_t shuffle_seed,
                       bool shuffle)
    : windows_(std::move(windows)),
      labels_(std::move(labels)),
      batch_size_(batch_size),
      window_length_(windows_.empty() ? 0 : windows_.front().size()),
      shuffle_(shuffle),
      rng_(shuffle_seed) {
  detail::require(batch_size_ >= 1, "DataLoader: batch_size must be >= 1");
  detail::require(windows_.size() == labels_.size(),
                  "DataLoader: windows/labels size mismatch");
  for (const auto& w : windows_)
    detail::require(w.size() == window_length_,
                    "DataLoader: ragged window lengths");
  order_.resize(windows_.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  start_epoch();
}

std::size_t DataLoader::batches_per_epoch() const {
  return (windows_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  if (shuffle_) rng_.shuffle(order_);
  cursor_ = 0;
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t count = std::min(batch_size_, order_.size() - cursor_);
  out.inputs = Tensor({count, 1, window_length_});
  out.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx = order_[cursor_ + i];
    const auto& w = windows_[idx];
    std::copy(w.begin(), w.end(), out.inputs.data() + i * window_length_);
    out.labels[i] = labels_[idx];
  }
  cursor_ += count;
  return true;
}

}  // namespace scalocate::nn
