#include "nn/gradcheck.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace scalocate::nn {

namespace {

double weighted_sum(const Tensor& t, const std::vector<float>& weights) {
  double acc = 0.0;
  const float* d = t.data();
  for (std::size_t i = 0; i < t.numel(); ++i)
    acc += static_cast<double>(d[i] * weights[i]);
  return acc;
}

}  // namespace

GradCheckResult check_layer_gradients(Layer& layer, const Tensor& input,
                                      double epsilon, double tolerance,
                                      std::uint64_t seed) {
  Rng rng(seed);
  Workspace ws;  // caller-owned activation cache pairing forward/backward

  // Fixed random output weighting defines a scalar loss L = sum(w * y).
  Tensor probe_out = layer.forward(input, ws);
  std::vector<float> out_weights(probe_out.numel());
  for (auto& w : out_weights) w = static_cast<float>(rng.uniform(-1.0, 1.0));

  // Analytic gradients.
  for (Param* p : layer.params()) p->zero_grad();
  Tensor out = layer.forward(input, ws);
  Tensor grad_out = Tensor::from_data(out.shape(), out_weights);
  Tensor grad_in = layer.backward(grad_out, ws);

  GradCheckResult result;
  const auto update = [&](double analytic, double numeric) {
    const double abs_err = std::fabs(analytic - numeric);
    const double denom =
        std::max(1e-6, std::max(std::fabs(analytic), std::fabs(numeric)));
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  };

  // Finite differences on the input.
  Tensor x = input;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float orig = x.at(i);
    x.at(i) = static_cast<float>(static_cast<double>(orig) + epsilon);
    const double plus = weighted_sum(layer.forward(x, ws), out_weights);
    x.at(i) = static_cast<float>(static_cast<double>(orig) - epsilon);
    const double minus = weighted_sum(layer.forward(x, ws), out_weights);
    x.at(i) = orig;
    update(grad_in.at(i), (plus - minus) / (2.0 * epsilon));
  }

  // Finite differences on every parameter.
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float orig = p->value.at(i);
      p->value.at(i) = static_cast<float>(static_cast<double>(orig) + epsilon);
      const double plus = weighted_sum(layer.forward(input, ws), out_weights);
      p->value.at(i) = static_cast<float>(static_cast<double>(orig) - epsilon);
      const double minus = weighted_sum(layer.forward(input, ws), out_weights);
      p->value.at(i) = orig;
      update(p->grad.at(i), (plus - minus) / (2.0 * epsilon));
    }
  }

  result.passed = std::max(result.max_abs_error, result.max_rel_error) <
                  tolerance;
  return result;
}

}  // namespace scalocate::nn
