// Module containers: Sequential chains layers; Residual implements the
// ResNet shortcut y = F(x) + P(x), where P is the identity when shapes
// match and a 1x1 projection convolution otherwise (the paper's second
// residual block widens 16 -> 32 channels).
#pragma once

#include <memory>
#include <vector>

#include "nn/conv1d.hpp"
#include "nn/layer.hpp"

namespace scalocate::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Constructs a layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::vector<Param*> params() override;
  std::vector<std::vector<float>*> buffers() override;
  void set_training(bool training) override;
  std::string name() const override { return "Sequential"; }

  /// Multi-line human-readable architecture listing.
  std::string summary() const;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<LayerPtr> layers_;
};

/// Residual block: out = main(x) + shortcut(x).
class Residual final : public Layer {
 public:
  /// `main` is the residual branch. When `projection` is non-null it is
  /// applied on the shortcut path (1x1 conv for channel changes);
  /// otherwise the shortcut is the identity.
  Residual(LayerPtr main, LayerPtr projection = nullptr);

  using Layer::backward;
  using Layer::forward;
  Tensor forward(const Tensor& input, Workspace& ws) const override;
  Tensor backward(const Tensor& grad_output, Workspace& ws) override;
  std::vector<Param*> params() override;
  std::vector<std::vector<float>*> buffers() override;
  void set_training(bool training) override;
  std::string name() const override { return "Residual"; }

  Layer& main() { return *main_; }
  bool has_projection() const { return projection_ != nullptr; }

 private:
  LayerPtr main_;
  LayerPtr projection_;
};

}  // namespace scalocate::nn
