#include "nn/conv1d.hpp"

#include <sstream>

#include "common/error.hpp"

namespace scalocate::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t stride, int pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      pad_left_(pad >= 0 ? static_cast<std::size_t>(pad) : (kernel_size - 1) / 2),
      pad_right_(pad >= 0 ? static_cast<std::size_t>(pad)
                          : kernel_size - 1 - (kernel_size - 1) / 2),
      weight_({out_channels, in_channels, kernel_size}, "conv.weight"),
      bias_({out_channels}, "conv.bias") {
  detail::require(in_channels >= 1 && out_channels >= 1 && kernel_size >= 1 &&
                      stride >= 1,
                  "Conv1d: invalid configuration");
}

std::size_t Conv1d::output_length(std::size_t n) const {
  // Default padding is asymmetric "same": pad_left = (K-1)/2 on the left and
  // the remainder of (K-1) on the right, so stride-1 convolutions preserve
  // length even for even kernels (the paper's K = 64).
  const std::size_t pad_total = pad_left_ + pad_right_;
  detail::require(n + pad_total >= kernel_size_, "Conv1d: input too short");
  return (n + pad_total - kernel_size_) / stride_ + 1;
}

Tensor Conv1d::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 3 && input.dim(1) == in_channels_,
                  "Conv1d::forward: expected [B, Cin, N], got " +
                      input.shape_string());
  // The input is retained only for backward; eval-mode forward (the serving
  // hot path) skips the copy and leaves the slot empty so a stray backward
  // fails loudly instead of using stale activations.
  ws.slot(this).a = training_ ? input : Tensor();

  const std::size_t batch = input.dim(0);
  const std::size_t n = input.dim(2);
  const std::size_t out_len = output_length(n);
  const std::size_t pad_left = pad_left_;

  Tensor out({batch, out_channels_, out_len});
  const float* w = weight_.value.data();
  const float* bias = bias_.value.data();
  const float* x = input.data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t co = 0; co < out_channels_; ++co) {
      float* orow = out.data() + (b * out_channels_ + co) * out_len;
      const float bv = bias[co];
      for (std::size_t i = 0; i < out_len; ++i) orow[i] = bv;
      for (std::size_t ci = 0; ci < in_channels_; ++ci) {
        const float* xrow = x + (b * in_channels_ + ci) * n;
        const float* wrow = w + (co * in_channels_ + ci) * kernel_size_;
        for (std::size_t k = 0; k < kernel_size_; ++k) {
          const float wv = wrow[k];
          if (wv == 0.0f) continue;
          // Output positions whose tap k lands inside [0, n).
          std::size_t lo = 0;
          if (k < pad_left) lo = (pad_left - k + stride_ - 1) / stride_;
          if (lo >= out_len) continue;
          const std::size_t max_idx = n - 1 + pad_left;
          if (k > max_idx) continue;
          std::size_t hi = (max_idx - k) / stride_;  // inclusive
          if (hi >= out_len) hi = out_len - 1;
          const float* xbase = xrow + (lo * stride_ + k - pad_left);
          float* obase = orow + lo;
          const std::size_t count = hi - lo + 1;
          if (stride_ == 1) {
            for (std::size_t i = 0; i < count; ++i)
              obase[i] += wv * xbase[i];
          } else {
            for (std::size_t i = 0; i < count; ++i)
              obase[i] += wv * xbase[i * stride_];
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv1d::backward(const Tensor& grad_output, Workspace& ws) {
  const Tensor& input = ws.slot(this).a;
  detail::require(input.numel() > 0, "Conv1d::backward before forward");
  const std::size_t batch = input.dim(0);
  const std::size_t n = input.dim(2);
  const std::size_t out_len = output_length(n);
  detail::require(grad_output.rank() == 3 &&
                      grad_output.dim(0) == batch &&
                      grad_output.dim(1) == out_channels_ &&
                      grad_output.dim(2) == out_len,
                  "Conv1d::backward: grad shape mismatch");

  Tensor grad_input({batch, in_channels_, n});
  const std::size_t pad_left = pad_left_;
  const float* x = input.data();
  const float* gout = grad_output.data();
  const float* w = weight_.value.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  float* gx = grad_input.data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t co = 0; co < out_channels_; ++co) {
      const float* gorow = gout + (b * out_channels_ + co) * out_len;
      // Bias gradient.
      float acc = 0.0f;
      for (std::size_t i = 0; i < out_len; ++i) acc += gorow[i];
      gb[co] += acc;

      for (std::size_t ci = 0; ci < in_channels_; ++ci) {
        const float* xrow = x + (b * in_channels_ + ci) * n;
        float* gxrow = gx + (b * in_channels_ + ci) * n;
        const float* wrow = w + (co * in_channels_ + ci) * kernel_size_;
        float* gwrow = gw + (co * in_channels_ + ci) * kernel_size_;
        for (std::size_t k = 0; k < kernel_size_; ++k) {
          std::size_t lo = 0;
          if (k < pad_left) lo = (pad_left - k + stride_ - 1) / stride_;
          if (lo >= out_len) continue;
          const std::size_t max_idx = n - 1 + pad_left;
          if (k > max_idx) continue;
          std::size_t hi = (max_idx - k) / stride_;
          if (hi >= out_len) hi = out_len - 1;
          const std::size_t count = hi - lo + 1;
          const float* xbase = xrow + (lo * stride_ + k - pad_left);
          float* gxbase = gxrow + (lo * stride_ + k - pad_left);
          const float* gbase = gorow + lo;
          const float wv = wrow[k];
          float wacc = 0.0f;
          if (stride_ == 1) {
            for (std::size_t i = 0; i < count; ++i) {
              wacc += gbase[i] * xbase[i];
              gxbase[i] += wv * gbase[i];
            }
          } else {
            for (std::size_t i = 0; i < count; ++i) {
              wacc += gbase[i] * xbase[i * stride_];
              gxbase[i * stride_] += wv * gbase[i];
            }
          }
          gwrow[k] += wacc;
        }
      }
    }
  }
  return grad_input;
}

std::string Conv1d::name() const {
  std::ostringstream os;
  os << "Conv1d(" << in_channels_ << "->" << out_channels_
     << ", k=" << kernel_size_ << ", s=" << stride_ << ", p=" << pad_left_ << "/" << pad_right_ << ")";
  return os.str();
}

}  // namespace scalocate::nn
