#include "nn/conv1d.hpp"

#include <sstream>

#include "common/error.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/kernels/pack.hpp"
#include "nn/kernels/pointwise.hpp"

namespace scalocate::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t stride, int pad)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      pad_left_(pad >= 0 ? static_cast<std::size_t>(pad) : (kernel_size - 1) / 2),
      pad_right_(pad >= 0 ? static_cast<std::size_t>(pad)
                          : kernel_size - 1 - (kernel_size - 1) / 2),
      weight_({out_channels, in_channels, kernel_size}, "conv.weight"),
      bias_({out_channels}, "conv.bias") {
  detail::require(in_channels >= 1 && out_channels >= 1 && kernel_size >= 1 &&
                      stride >= 1,
                  "Conv1d: invalid configuration");
}

std::size_t Conv1d::output_length(std::size_t n) const {
  // Default padding is asymmetric "same": pad_left = (K-1)/2 on the left and
  // the remainder of (K-1) on the right, so stride-1 convolutions preserve
  // length even for even kernels (the paper's K = 64).
  const std::size_t pad_total = pad_left_ + pad_right_;
  detail::require(n + pad_total >= kernel_size_, "Conv1d: input too short");
  return kernels::conv_output_length(n, kernel_size_, stride_, pad_left_,
                                     pad_right_);
}

bool Conv1d::is_pointwise() const {
  return kernel_size_ == 1 && stride_ == 1 && pad_left_ == 0 && pad_right_ == 0;
}

Tensor Conv1d::forward(const Tensor& input, Workspace& ws) const {
  detail::require(input.rank() == 3 && input.dim(1) == in_channels_,
                  "Conv1d::forward: expected [B, Cin, N], got " +
                      input.shape_string());
  // The input is retained only for backward; eval-mode forward (the serving
  // hot path) skips the copy and leaves the slot empty so a stray backward
  // fails loudly instead of using stale activations.
  ws.slot(this).a = training_ ? input : Tensor();

  const std::size_t batch = input.dim(0);
  const std::size_t n = input.dim(2);
  const std::size_t out_len = output_length(n);

  Tensor out({batch, out_channels_, out_len});
  // One fused im2col+GEMM+bias over the whole batch: the column matrix is
  // virtual (packed straight from the input inside the GEMM, K dimension
  // = Cin*kernel), the weights are packed once per call, and the bias
  // rides the C write-back — a single pass over the output.
  kernels::sgemm_conv(out_channels_, out_len, batch, weight_.value.data(),
                      bias_.value.data(), input.data(), in_channels_, n,
                      kernel_size_, stride_, pad_left_, out.data(),
                      ws.kernels().gemm);
  return out;
}

Tensor Conv1d::backward(const Tensor& grad_output, Workspace& ws) {
  const Tensor& input = ws.slot(this).a;
  detail::require(input.numel() > 0, "Conv1d::backward before forward");
  const std::size_t batch = input.dim(0);
  const std::size_t n = input.dim(2);
  const std::size_t out_len = output_length(n);
  detail::require(grad_output.rank() == 3 &&
                      grad_output.dim(0) == batch &&
                      grad_output.dim(1) == out_channels_ &&
                      grad_output.dim(2) == out_len,
                  "Conv1d::backward: grad shape mismatch");

  Tensor grad_input({batch, in_channels_, n});
  const std::size_t ck = in_channels_ * kernel_size_;
  KernelScratch& ks = ws.kernels();
  const float* w = weight_.value.data();
  float* gw = weight_.grad.data();
  const bool pointwise = is_pointwise();
  if (!pointwise) {
    ks.col_a.resize(ck * out_len);
    ks.col_b.resize(ck * out_len);
  }

  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = input.data() + b * in_channels_ * n;
    const float* gob = grad_output.data() + b * out_channels_ * out_len;
    float* gxb = grad_input.data() + b * in_channels_ * n;

    // dBias[co] += sum_j dY[co, j]
    kernels::row_sums_add(gob, out_channels_, out_len, bias_.grad.data());

    // Re-lower the cached input: cheaper than retaining a col matrix per
    // batch item across the whole forward pass.
    const float* col = xb;
    if (!pointwise) {
      kernels::im2col(xb, in_channels_, n, kernel_size_, stride_, pad_left_,
                      out_len, ks.col_a.data());
      col = ks.col_a.data();
    }
    // dW += dY [Cout, out_len] x col^T [out_len, Cin*K]
    kernels::sgemm(false, true, out_channels_, ck, out_len, 1.0f, gob, out_len,
                   col, out_len, 1.0f, gw, ck, ks.gemm);
    // dCol = W^T [Cin*K, Cout] x dY [Cout, out_len], scattered back by
    // col2im (overlapping taps accumulate).
    if (pointwise) {
      kernels::sgemm(true, false, ck, out_len, out_channels_, 1.0f, w, ck, gob,
                     out_len, 0.0f, gxb, out_len, ks.gemm);
    } else {
      kernels::sgemm(true, false, ck, out_len, out_channels_, 1.0f, w, ck, gob,
                     out_len, 0.0f, ks.col_b.data(), out_len, ks.gemm);
      kernels::col2im(ks.col_b.data(), in_channels_, n, kernel_size_, stride_,
                      pad_left_, out_len, gxb);
    }
  }
  return grad_input;
}

std::string Conv1d::name() const {
  std::ostringstream os;
  os << "Conv1d(" << in_channels_ << "->" << out_channels_
     << ", k=" << kernel_size_ << ", s=" << stride_ << ", p=" << pad_left_ << "/" << pad_right_ << ")";
  return os.str();
}

}  // namespace scalocate::nn
