// Finite-difference gradient checking used by the NN unit tests.
#pragma once

#include <functional>

#include "nn/layer.hpp"

namespace scalocate::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool passed = false;
};

/// Checks dLoss/dInput of `layer` against central finite differences, where
/// Loss = sum(weights * output) for a fixed random weighting. Also checks
/// every parameter gradient. `epsilon` is the FD step; `tolerance` bounds
/// max(abs_err, rel_err) per element.
GradCheckResult check_layer_gradients(Layer& layer, const Tensor& input,
                                      double epsilon = 1e-3,
                                      double tolerance = 5e-2,
                                      std::uint64_t seed = 7);

}  // namespace scalocate::nn
