// Mini-batch loader over a window-classification dataset.
//
// Holds (window, label) pairs, reshuffles each epoch with a deterministic
// Rng, and yields [B, 1, N] batches ready for the 1-channel CNN.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace scalocate::nn {

struct Batch {
  Tensor inputs;                     // [B, 1, N]
  std::vector<std::uint8_t> labels;  // B entries
};

class DataLoader {
 public:
  /// windows: n rows of equal length N; labels: n class indices.
  DataLoader(std::vector<std::vector<float>> windows,
             std::vector<std::uint8_t> labels, std::size_t batch_size,
             std::uint64_t shuffle_seed, bool shuffle = true);

  /// Number of batches per epoch (last partial batch included).
  std::size_t batches_per_epoch() const;

  /// Begins a new epoch (reshuffles when enabled).
  void start_epoch();

  /// Fetches the next batch; returns false at epoch end.
  bool next(Batch& out);

  std::size_t size() const { return windows_.size(); }
  std::size_t window_length() const { return window_length_; }

 private:
  std::vector<std::vector<float>> windows_;
  std::vector<std::uint8_t> labels_;
  std::size_t batch_size_;
  std::size_t window_length_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace scalocate::nn
