#include "nn/init.hpp"

#include <cmath>

#include "common/error.hpp"

namespace scalocate::nn {

namespace {
std::size_t fan_in_of(const Tensor& weight) {
  detail::require(weight.rank() >= 2, "fan_in_of: rank must be >= 2");
  std::size_t fan_in = 1;
  for (std::size_t i = 1; i < weight.rank(); ++i) fan_in *= weight.dim(i);
  return fan_in;
}
}  // namespace

void he_normal_init(Tensor& weight, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in_of(weight)));
  for (float& w : weight.flat())
    w = static_cast<float>(rng.normal(0.0, stddev));
}

void xavier_uniform_init(Tensor& weight, Rng& rng) {
  const std::size_t fan_in = fan_in_of(weight);
  const std::size_t fan_out = weight.dim(0);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& w : weight.flat())
    w = static_cast<float>(rng.uniform(-limit, limit));
}

void init_module(Layer& module, Rng& rng) {
  for (Param* p : module.params()) {
    if (p->name.rfind("bn.", 0) == 0) continue;  // keep BN gamma=1, beta=0
    if (p->value.rank() >= 2) {
      he_normal_init(p->value, rng);
    } else {
      p->value.fill(0.0f);
    }
  }
}

}  // namespace scalocate::nn
