#include "core/trainer.hpp"

#include <limits>

#include "common/error.hpp"
#include "nn/dataloader.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace scalocate::core {

Trainer::Trainer(const PipelineParams& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

std::pair<double, ConfusionMatrix> Trainer::evaluate(
    nn::Sequential& model, const WindowDataset& data) const {
  model.set_training(false);
  nn::DataLoader loader(data.windows, data.labels, params_.batch_size,
                        /*shuffle_seed=*/1, /*shuffle=*/false);
  nn::SoftmaxCrossEntropy loss_fn;
  nn::Workspace ws;
  double loss_acc = 0.0;
  std::size_t batches = 0;
  ConfusionMatrix cm;

  nn::Batch batch;
  loader.start_epoch();
  while (loader.next(batch)) {
    nn::Tensor logits = model.forward(batch.inputs, ws);
    loss_acc += static_cast<double>(loss_fn.forward(logits, batch.labels));
    ++batches;
    for (std::size_t b = 0; b < batch.labels.size(); ++b) {
      const std::uint8_t pred =
          logits.at(b, 1) > logits.at(b, 0) ? std::uint8_t{1} : std::uint8_t{0};
      cm.add(batch.labels[b], pred);
    }
  }
  return {batches > 0 ? loss_acc / static_cast<double>(batches) : 0.0, cm};
}

TrainReport Trainer::fit(nn::Sequential& model,
                         const DatasetSplit& split) const {
  detail::require(split.train.size() > 0, "Trainer::fit: empty training set");
  detail::require(split.val.size() > 0, "Trainer::fit: empty validation set");

  nn::DataLoader loader(split.train.windows, split.train.labels,
                        params_.batch_size, seed_ ^ 0x7368756666ULL);
  nn::SoftmaxCrossEntropy loss_fn;
  nn::Workspace ws;
  nn::Adam optimizer(model.params(), params_.learning_rate);

  TrainReport report;
  report.best_val_loss = std::numeric_limits<double>::infinity();
  nn::ModuleState best_state = nn::snapshot_module(model);

  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    model.set_training(true);
    loader.start_epoch();
    double train_loss_acc = 0.0;
    std::size_t batches = 0;
    nn::Batch batch;
    while (loader.next(batch)) {
      optimizer.zero_grad();
      nn::Tensor logits = model.forward(batch.inputs, ws);
      train_loss_acc +=
          static_cast<double>(loss_fn.forward(logits, batch.labels));
      model.backward(loss_fn.backward(), ws);
      optimizer.step();
      ++batches;
    }

    EpochStats stats;
    stats.train_loss =
        batches > 0 ? train_loss_acc / static_cast<double>(batches) : 0.0;
    auto [val_loss, val_cm] = evaluate(model, split.val);
    stats.val_loss = val_loss;
    stats.val_accuracy = val_cm.accuracy();
    report.epochs.push_back(stats);

    if (val_loss < report.best_val_loss) {
      report.best_val_loss = val_loss;
      report.best_epoch = epoch;
      best_state = nn::snapshot_module(model);
    }
  }

  nn::restore_module(model, best_state);
  if (split.test.size() > 0) {
    auto [test_loss, test_cm] = evaluate(model, split.test);
    (void)test_loss;
    report.test_confusion = test_cm;
  }
  model.set_training(false);
  return report;
}

}  // namespace scalocate::core
