// Alignment (final inference stage, Figure 1): cuts the input trace at the
// located CO starts and stacks fixed-length segments, producing the aligned
// trace matrix a side-channel attack (CPA) consumes.
#pragma once

#include <span>
#include <vector>

namespace scalocate::core {

struct AlignedTraces {
  /// One row per located CO, each `segment_length` samples.
  std::vector<std::vector<float>> segments;
  /// Start sample of each segment in the original trace (same order).
  std::vector<std::size_t> origins;
  std::size_t segment_length = 0;
};

/// Cuts `segment_length` samples at each located start. Starts too close to
/// the end of the trace to fit a full segment are dropped (their origin is
/// not included). An optional `start_offset` shifts every cut point (e.g.
/// to skip the locator's systematic lead); negative shifts clamp at 0.
AlignedTraces align_cos(std::span<const float> trace_samples,
                        const std::vector<std::size_t>& co_starts,
                        std::size_t segment_length,
                        std::ptrdiff_t start_offset = 0);

}  // namespace scalocate::core
