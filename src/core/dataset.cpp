#include "core/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nn/kernels/pointwise.hpp"

namespace scalocate::core {

std::size_t WindowDataset::count_label(std::uint8_t label) const {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), label));
}

DatasetBuilder::DatasetBuilder(const PipelineParams& params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  detail::require(params.n_train >= 16, "DatasetBuilder: n_train too small");
}

void DatasetBuilder::standardize_window(std::vector<float>& window) {
  // One standardization path for the whole system: training windows here,
  // inference windows via SlidingWindowClassifier::score_into and the
  // streaming locator, all through the same kernel.
  nn::kernels::standardize(window, window.data());
}

WindowDataset DatasetBuilder::build(const trace::CipherAcquisition& ciphers,
                                    const trace::Trace& noise) const {
  const std::size_t n = params_.n_train;
  WindowDataset out;
  out.window_length = n;

  Rng rng(seed_ ^ 0x646174617365ULL);

  // --- c1: beginning-of-CO windows -----------------------------------------
  // One window per capture, cycling through the captures until the quota is
  // met; each window begins start_jitter-uniformly past the CO start (see
  // PipelineParams::start_jitter; jitter 0 = the paper's exact labeling).
  std::size_t starts_taken = 0;
  if (!ciphers.captures.empty()) {
    std::size_t guard = 0;
    const std::size_t max_guard = 16 * params_.sizes.cipher_start + 16;
    std::size_t cursor = 0;
    while (starts_taken < params_.sizes.cipher_start && guard++ < max_guard) {
      const auto& cap = ciphers.captures[cursor % ciphers.captures.size()];
      ++cursor;
      const std::size_t jitter =
          params_.start_jitter > 0
              ? static_cast<std::size_t>(
                    rng.next_below(params_.start_jitter + 1))
              : 0;
      if (cap.samples.size() < jitter + n) continue;
      std::vector<float> w(
          cap.samples.begin() + static_cast<std::ptrdiff_t>(jitter),
          cap.samples.begin() + static_cast<std::ptrdiff_t>(jitter + n));
      standardize_window(w);
      out.windows.push_back(std::move(w));
      out.labels.push_back(1);
      ++starts_taken;
    }
  }

  // --- c0: cipher-rest windows ---------------------------------------------
  // Paper semantics: consecutive windows at offsets N, 2N, ... Random
  // offsets (default) cover the arbitrary alignments the inference slicer
  // produces; see PipelineParams::random_rest_offsets.
  std::size_t rests_taken = 0;
  if (params_.random_rest_offsets && !ciphers.captures.empty()) {
    // Round-robin over captures, one random-offset window per visit.
    std::size_t guard = 0;
    const std::size_t max_guard = 16 * params_.sizes.cipher_rest + 16;
    while (rests_taken < params_.sizes.cipher_rest && guard++ < max_guard) {
      const auto& cap =
          ciphers.captures[rng.next_below(ciphers.captures.size())];
      if (cap.samples.size() < 2 * n) continue;
      const std::size_t max_off = cap.samples.size() - n;
      const std::size_t off =
          n + static_cast<std::size_t>(rng.next_below(max_off - n + 1));
      std::vector<float> w(
          cap.samples.begin() + static_cast<std::ptrdiff_t>(off),
          cap.samples.begin() + static_cast<std::ptrdiff_t>(off + n));
      standardize_window(w);
      out.windows.push_back(std::move(w));
      out.labels.push_back(0);
      ++rests_taken;
    }
  } else {
    for (const auto& cap : ciphers.captures) {
      if (rests_taken >= params_.sizes.cipher_rest) break;
      for (std::size_t off = n;
           off + n <= cap.samples.size() &&
           rests_taken < params_.sizes.cipher_rest;
           off += n) {
        std::vector<float> w(
            cap.samples.begin() + static_cast<std::ptrdiff_t>(off),
            cap.samples.begin() + static_cast<std::ptrdiff_t>(off + n));
        standardize_window(w);
        out.windows.push_back(std::move(w));
        out.labels.push_back(0);
        ++rests_taken;
      }
    }
  }

  // --- c0: noise windows at random offsets ---------------------------------
  if (noise.samples.size() >= n) {
    const std::size_t max_off = noise.samples.size() - n;
    for (std::size_t i = 0; i < params_.sizes.noise; ++i) {
      const auto off = static_cast<std::size_t>(rng.next_below(max_off + 1));
      std::vector<float> w(
          noise.samples.begin() + static_cast<std::ptrdiff_t>(off),
          noise.samples.begin() + static_cast<std::ptrdiff_t>(off + n));
      standardize_window(w);
      out.windows.push_back(std::move(w));
      out.labels.push_back(0);
    }
  }

  return out;
}

DatasetSplit DatasetBuilder::split(const WindowDataset& dataset) const {
  detail::require(dataset.size() >= 20, "DatasetBuilder::split: dataset too small");
  Rng rng(seed_ ^ 0x73706c6974ULL);

  // Stratified split: shuffle the indices of each class separately, then
  // take train/val/test slices per class so all splits see both labels.
  std::vector<std::size_t> idx0, idx1;
  for (std::size_t i = 0; i < dataset.size(); ++i)
    (dataset.labels[i] == 1 ? idx1 : idx0).push_back(i);
  rng.shuffle(idx0);
  rng.shuffle(idx1);

  DatasetSplit split;
  split.train.window_length = dataset.window_length;
  split.val.window_length = dataset.window_length;
  split.test.window_length = dataset.window_length;

  const auto distribute = [&](const std::vector<std::size_t>& idx) {
    const auto n = idx.size();
    const auto n_train = static_cast<std::size_t>(
        std::floor(params_.train_fraction * static_cast<double>(n)));
    const auto n_val = static_cast<std::size_t>(
        std::floor(params_.val_fraction * static_cast<double>(n)));
    for (std::size_t i = 0; i < n; ++i) {
      WindowDataset* target = &split.test;
      if (i < n_train)
        target = &split.train;
      else if (i < n_train + n_val)
        target = &split.val;
      target->windows.push_back(dataset.windows[idx[i]]);
      target->labels.push_back(dataset.labels[idx[i]]);
    }
  };
  distribute(idx0);
  distribute(idx1);
  return split;
}

}  // namespace scalocate::core
