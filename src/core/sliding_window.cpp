#include "core/sliding_window.hpp"

#include "common/error.hpp"

namespace scalocate::core {

SlidingWindowClassifier::SlidingWindowClassifier(const nn::Sequential& model,
                                                 std::size_t window,
                                                 std::size_t stride,
                                                 std::size_t batch_size)
    : model_(model), window_(window), stride_(stride), batch_size_(batch_size) {
  detail::require(window_ >= 16, "SlidingWindowClassifier: window too small");
  detail::require(stride_ >= 1, "SlidingWindowClassifier: stride must be >= 1");
  detail::require(batch_size_ >= 1,
                  "SlidingWindowClassifier: batch_size must be >= 1");
  detail::require(!model_.training(),
                  "SlidingWindowClassifier: model must be in eval mode "
                  "(call set_training(false) before classification)");
}

void SlidingWindowClassifier::score_batch(const nn::Tensor& inputs,
                                          float* scores_out,
                                          nn::Workspace& ws) const {
  const std::size_t count = inputs.dim(0);
  nn::Tensor logits = model_.forward(inputs, ws);
  // Linear class-1 margin (logit1 - logit0): the pre-softmax pattern the
  // paper exploits (Section III-C), expressed relative to class 0 so the
  // natural decision boundary sits at 0 regardless of logit scale.
  for (std::size_t i = 0; i < count; ++i)
    scores_out[i] = logits.at(i, 1) - logits.at(i, 0);
}

void SlidingWindowClassifier::score_into(std::span<const float> trace_samples,
                                         std::span<float> scores_out,
                                         nn::Workspace& ws) const {
  const std::size_t n_windows = num_windows(trace_samples.size());
  detail::require(scores_out.size() >= n_windows,
                  "SlidingWindowClassifier::score_into: scores_out too small");

  for (std::size_t base = 0; base < n_windows; base += batch_size_) {
    const std::size_t count = std::min(batch_size_, n_windows - base);
    score_window_batch(
        count,
        [&](std::size_t i) {
          return trace_samples.subspan((base + i) * stride_, window_);
        },
        scores_out.data() + base, ws);
  }
}

SlidingWindowResult SlidingWindowClassifier::classify(
    std::span<const float> trace_samples, nn::Workspace& ws) const {
  SlidingWindowResult result;
  result.stride = stride_;
  result.window = window_;
  result.scores.resize(num_windows(trace_samples.size()));
  score_into(trace_samples, result.scores, ws);
  return result;
}

}  // namespace scalocate::core
