// Segmentation (Section III-D): swc -> threshold square wave -> median
// filter -> rising edges -> CO start samples (edge index x stride).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/sliding_window.hpp"

namespace scalocate::core {

struct SegmenterConfig {
  /// Decision threshold on the linear class-1 score. NaN = automatic:
  /// Otsu's method on the score histogram, which tracks the bimodal
  /// distribution (plateau scores vs background) without per-cipher tuning.
  float threshold = std::numeric_limits<float>::quiet_NaN();
  /// Median filter window (odd). 0 = automatic, sized from the expected
  /// plateau width n_inf/stride (see auto_median_k): wide enough to remove
  /// isolated classifier glitches, narrow enough to keep real plateaus.
  std::size_t median_filter_k = 0;
  /// Inference window size (for the automatic median filter size).
  std::size_t window_size = 0;
  /// Expected CO length in samples (diagnostics/auto sizing fallback).
  std::size_t expected_co_length = 0;
};

struct Segmentation {
  std::vector<std::size_t> co_starts;  ///< located starts (sample indices)
  std::vector<float> square_wave;      ///< post-threshold (diagnostics)
  std::vector<float> filtered;         ///< post-median-filter (diagnostics)
  float threshold_used = 0.0f;
  std::size_t median_k_used = 0;
};

class Segmenter {
 public:
  explicit Segmenter(SegmenterConfig config = {});

  Segmentation segment(const SlidingWindowResult& swc) const;

  /// Automatic odd median-filter size for a given plateau width (in
  /// windows): ~3/4 of the plateau, clamped to [3, 15].
  static std::size_t auto_median_k(std::size_t plateau_windows);

  /// The concrete (odd) median-filter size `segment` will use for a config
  /// and a stride/window pair: the configured size when set, the automatic
  /// size otherwise. Exposed so the streaming runtime applies the identical
  /// filter incrementally.
  static std::size_t resolve_median_k(const SegmenterConfig& config,
                                      std::size_t stride, std::size_t window);

  /// Otsu's threshold on a score distribution (256-bin histogram).
  static float otsu_threshold(std::span<const float> scores);

 private:
  SegmenterConfig config_;
};

}  // namespace scalocate::core
