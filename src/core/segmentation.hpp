// Segmentation (Section III-D): swc -> threshold square wave -> median
// filter -> rising edges -> CO start samples (edge index x stride).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/sliding_window.hpp"

namespace scalocate::core {

struct SegmenterConfig {
  /// Decision threshold on the linear class-1 score. NaN = automatic:
  /// Otsu's method on the score histogram, which tracks the bimodal
  /// distribution (plateau scores vs background) without per-cipher tuning.
  float threshold = std::numeric_limits<float>::quiet_NaN();
  /// Median filter window (odd). 0 = automatic, sized from the expected
  /// plateau width n_inf/stride (see auto_median_k): wide enough to remove
  /// isolated classifier glitches, narrow enough to keep real plateaus.
  std::size_t median_filter_k = 0;
  /// Inference window size (for the automatic median filter size).
  std::size_t window_size = 0;
  /// Expected CO length in samples (diagnostics/auto sizing fallback).
  std::size_t expected_co_length = 0;
  /// Plateau-split merging: a low run of at most this many windows between
  /// two high runs in the filtered square wave is treated as an interior
  /// dip of one plateau, so its rising edge is not reported as a separate
  /// CO start. Bridges the raggedness countermeasure scenarios inflict
  /// (interrupt preemption splitting a start plateau, gain steps / clock
  /// jitter chipping windows out of it) without widening the median filter,
  /// which would erase short genuine plateaus. 0 disables.
  std::size_t merge_gap_windows = 0;
  /// Drift-robust automatic threshold: when > 0, the Otsu histogram range
  /// is clipped to the [p, 100-p] percentiles of the score distribution
  /// instead of [min, max], so a handful of outlier scores (AGC gain jumps,
  /// saturated drift) cannot squash the histogram into a few bins. 0 keeps
  /// the exact min/max range.
  double otsu_clip_percentile = 0.0;
};

struct Segmentation {
  std::vector<std::size_t> co_starts;  ///< located starts (sample indices)
  std::vector<float> square_wave;      ///< post-threshold (diagnostics)
  std::vector<float> filtered;         ///< post-median-filter (diagnostics)
  float threshold_used = 0.0f;
  std::size_t median_k_used = 0;
};

class Segmenter {
 public:
  explicit Segmenter(SegmenterConfig config = {});

  Segmentation segment(const SlidingWindowResult& swc) const;

  /// Automatic odd median-filter size for a given plateau width (in
  /// windows): ~3/4 of the plateau, clamped to [3, 15].
  static std::size_t auto_median_k(std::size_t plateau_windows);

  /// The concrete (odd) median-filter size `segment` will use for a config
  /// and a stride/window pair: the configured size when set, the automatic
  /// size otherwise. Exposed so the streaming runtime applies the identical
  /// filter incrementally.
  static std::size_t resolve_median_k(const SegmenterConfig& config,
                                      std::size_t stride, std::size_t window);

  /// Otsu's threshold on a score distribution (256-bin histogram). When
  /// `clip_percentile` > 0 the histogram range is clipped to the
  /// [p, 100-p] percentiles (outliers land in the edge bins); 0 uses the
  /// exact [min, max] range.
  static float otsu_threshold(std::span<const float> scores,
                              double clip_percentile);
  static float otsu_threshold(std::span<const float> scores) {
    return otsu_threshold(scores, 0.0);
  }

 private:
  SegmenterConfig config_;
};

}  // namespace scalocate::core
