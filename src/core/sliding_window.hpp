// Sliding Window Classification (Section III-C).
//
// Slices a side-channel trace into Ninf-sample windows every `stride`
// samples and scores each with the trained CNN. Per the paper, the output
// signal swc is the *linear* (pre-softmax) class-1 score of the fully
// connected block, where the recurrent localization pattern is stronger
// than in the softmax probabilities.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "nn/sequential.hpp"

namespace scalocate::core {

struct SlidingWindowResult {
  std::vector<float> scores;  ///< swc: one linear class-1 score per window
  std::size_t stride = 1;     ///< sample distance between window starts
  std::size_t window = 0;     ///< Ninf

  /// Sample position of window i.
  std::size_t window_start(std::size_t i) const { return i * stride; }
};

class SlidingWindowClassifier {
 public:
  /// `batch_size` windows are classified per forward pass.
  SlidingWindowClassifier(nn::Sequential& model, std::size_t window,
                          std::size_t stride, std::size_t batch_size = 64);

  /// Scores every window of `trace_samples`.
  SlidingWindowResult classify(std::span<const float> trace_samples) const;

 private:
  nn::Sequential& model_;
  std::size_t window_;
  std::size_t stride_;
  std::size_t batch_size_;
};

}  // namespace scalocate::core
