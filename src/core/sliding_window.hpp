// Sliding Window Classification (Section III-C).
//
// Slices a side-channel trace into Ninf-sample windows every `stride`
// samples and scores each with the trained CNN. Per the paper, the output
// signal swc is the *linear* (pre-softmax) class-1 score of the fully
// connected block, where the recurrent localization pattern is stronger
// than in the softmax probabilities.
//
// The classifier never mutates the model: it requires an eval-mode network
// and routes every forward pass through a caller-owned (or per-classifier)
// nn::Workspace, so one trained model can serve many concurrent
// classifiers (see runtime/locator_service).
#pragma once

#include <vector>

#include "core/params.hpp"
#include "nn/sequential.hpp"

namespace scalocate::core {

struct SlidingWindowResult {
  std::vector<float> scores;  ///< swc: one linear class-1 score per window
  std::size_t stride = 1;     ///< sample distance between window starts
  std::size_t window = 0;     ///< Ninf

  /// Sample position of window i.
  std::size_t window_start(std::size_t i) const { return i * stride; }
};

class SlidingWindowClassifier {
 public:
  /// `batch_size` windows are classified per forward pass. `model` must be
  /// in eval mode (set_training(false)) and must outlive the classifier.
  SlidingWindowClassifier(const nn::Sequential& model, std::size_t window,
                          std::size_t stride, std::size_t batch_size = 64);

  /// Scores every window of `trace_samples` using the given scratch
  /// workspace. Thread-safe for concurrent calls with distinct workspaces.
  SlidingWindowResult classify(std::span<const float> trace_samples,
                               nn::Workspace& ws) const;

  /// Convenience using the classifier's own workspace (not thread-safe
  /// across concurrent calls on the same classifier instance).
  SlidingWindowResult classify(std::span<const float> trace_samples) const {
    return classify(trace_samples, scratch_);
  }

  /// Scores `count` pre-extracted, pre-standardized windows laid out
  /// contiguously in `inputs` ([count, 1, window]). Used by the streaming
  /// locator, which standardizes windows as they leave its ring buffer.
  void score_batch(const nn::Tensor& inputs, float* scores_out,
                   nn::Workspace& ws) const;

  std::size_t window() const { return window_; }
  std::size_t stride() const { return stride_; }
  std::size_t batch_size() const { return batch_size_; }

 private:
  const nn::Sequential& model_;
  std::size_t window_;
  std::size_t stride_;
  std::size_t batch_size_;
  mutable nn::Workspace scratch_;
};

}  // namespace scalocate::core
