// Sliding Window Classification (Section III-C).
//
// Slices a side-channel trace into Ninf-sample windows every `stride`
// samples and scores each with the trained CNN. Per the paper, the output
// signal swc is the *linear* (pre-softmax) class-1 score of the fully
// connected block, where the recurrent localization pattern is stronger
// than in the softmax probabilities.
//
// The hot path is zero-copy: score_into standardizes each window straight
// from the trace span into the workspace's reusable batch tensor (no
// per-window staging buffer) and writes scores into caller-owned storage.
// CoLocator, StreamingLocator, and LocatorService all score through this
// one path, so they share the kernel backend's batched GEMM inference.
//
// The classifier never mutates the model: it requires an eval-mode network
// and routes every forward pass through a caller-owned (or per-classifier)
// nn::Workspace, so one trained model can serve many concurrent
// classifiers (see runtime/locator_service).
#pragma once

#include <span>
#include <vector>

#include "core/params.hpp"
#include "nn/kernels/pointwise.hpp"
#include "nn/sequential.hpp"

namespace scalocate::core {

struct SlidingWindowResult {
  std::vector<float> scores;  ///< swc: one linear class-1 score per window
  std::size_t stride = 1;     ///< sample distance between window starts
  std::size_t window = 0;     ///< Ninf

  /// Sample position of window i.
  std::size_t window_start(std::size_t i) const { return i * stride; }
};

class SlidingWindowClassifier {
 public:
  /// `batch_size` windows are classified per forward pass. `model` must be
  /// in eval mode (set_training(false)) and must outlive the classifier.
  SlidingWindowClassifier(const nn::Sequential& model, std::size_t window,
                          std::size_t stride, std::size_t batch_size = 64);

  /// Number of windows a trace of n_samples yields (0 when too short).
  std::size_t num_windows(std::size_t n_samples) const {
    return n_samples < window_ ? 0 : (n_samples - window_) / stride_ + 1;
  }

  /// Scores every window of `trace_samples` into `scores_out`, which must
  /// hold num_windows(trace_samples.size()) floats. Windows are
  /// standardized directly into the workspace's batch tensor — no
  /// intermediate copies. Thread-safe for concurrent calls with distinct
  /// workspaces.
  void score_into(std::span<const float> trace_samples,
                  std::span<float> scores_out, nn::Workspace& ws) const;

  /// Scores every window of `trace_samples` using the given scratch
  /// workspace. Thread-safe for concurrent calls with distinct workspaces.
  SlidingWindowResult classify(std::span<const float> trace_samples,
                               nn::Workspace& ws) const;

  /// Convenience using the classifier's own workspace (not thread-safe
  /// across concurrent calls on the same classifier instance).
  SlidingWindowResult classify(std::span<const float> trace_samples) const {
    return classify(trace_samples, scratch_);
  }

  /// Scores `count` pre-extracted, pre-standardized windows laid out
  /// contiguously in `inputs` ([count, 1, window]). Used by the streaming
  /// locator, which standardizes windows as they leave its ring buffer.
  void score_batch(const nn::Tensor& inputs, float* scores_out,
                   nn::Workspace& ws) const;

  /// One batch of the zero-copy path, shared by the offline (score_into)
  /// and streaming (StreamingLocator) callers so the staging contract
  /// cannot diverge between them: standardizes windows
  /// `window_at(0..count)` — each a window()-long span — straight into the
  /// workspace's staging tensor and scores them into `scores_out`. The
  /// staging tensor reuses its allocation across calls (only a changed
  /// batch count re-views it).
  template <typename WindowAt>
  void score_window_batch(std::size_t count, WindowAt&& window_at,
                          float* scores_out, nn::Workspace& ws) const {
    nn::Tensor& inputs = ws.staging();
    if (inputs.rank() != 3 || inputs.dim(0) != count || inputs.dim(1) != 1 ||
        inputs.dim(2) != window_)
      inputs.resize({count, 1, window_});
    for (std::size_t i = 0; i < count; ++i)
      nn::kernels::standardize(window_at(i), inputs.data() + i * window_);
    score_batch(inputs, scores_out, ws);
  }

  std::size_t window() const { return window_; }
  std::size_t stride() const { return stride_; }
  std::size_t batch_size() const { return batch_size_; }

 private:
  const nn::Sequential& model_;
  std::size_t window_;
  std::size_t stride_;
  std::size_t batch_size_;
  mutable nn::Workspace scratch_;
};

}  // namespace scalocate::core
