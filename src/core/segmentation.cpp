#include "core/segmentation.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/signal.hpp"
#include "common/stats.hpp"

namespace scalocate::core {

Segmenter::Segmenter(SegmenterConfig config) : config_(config) {}

std::size_t Segmenter::auto_median_k(std::size_t plateau_windows) {
  // ~half the plateau width bridges interior dips and removes glitch runs
  // while never erasing a true plateau; clamp to a sane odd range.
  std::size_t k = plateau_windows / 2;
  if (k < 3) k = 3;
  if (k > 11) k = 11;
  if (k % 2 == 0) ++k;
  return k;
}

std::size_t Segmenter::resolve_median_k(const SegmenterConfig& config,
                                        std::size_t stride,
                                        std::size_t window_from_swc) {
  if (config.median_filter_k != 0) return config.median_filter_k;
  const std::size_t window =
      config.window_size > 0 ? config.window_size : window_from_swc;
  // The high plateau spans the window offsets whose content matches the
  // start distribution: roughly (window + start-motif)/stride positions,
  // with the motif on the order of a twelfth of the CO.
  const std::size_t span = window + config.expected_co_length / 12;
  const std::size_t plateau =
      stride > 0 ? std::max<std::size_t>(1, span / stride) : 4;
  return auto_median_k(plateau);
}

float Segmenter::otsu_threshold(std::span<const float> scores,
                                double clip_percentile) {
  detail::require(!scores.empty(), "otsu_threshold: empty scores");
  detail::require(clip_percentile >= 0.0 && clip_percentile < 50.0,
                  "otsu_threshold: clip percentile must be in [0, 50)");
  float lo, hi;
  if (clip_percentile > 0.0) {
    lo = static_cast<float>(stats::percentile(scores, clip_percentile));
    hi = static_cast<float>(stats::percentile(scores, 100.0 - clip_percentile));
  } else {
    lo = stats::min_value(scores);
    hi = stats::max_value(scores);
  }
  if (hi <= lo) return lo;

  constexpr std::size_t kBins = 256;
  std::array<std::size_t, kBins> hist{};
  const double scale = static_cast<double>(kBins - 1) / static_cast<double>(hi - lo);
  for (float s : scores) {
    // Clamp before the cast: with a clipped range, outliers below `lo` map
    // to a negative offset (casting that to unsigned is UB).
    double pos = (static_cast<double>(s) - static_cast<double>(lo)) * scale;
    if (pos < 0.0) pos = 0.0;
    auto bin = static_cast<std::size_t>(pos);
    if (bin >= kBins) bin = kBins - 1;
    ++hist[bin];
  }

  const double total = static_cast<double>(scores.size());
  double sum_all = 0.0;
  for (std::size_t i = 0; i < kBins; ++i)
    sum_all += static_cast<double>(i) * static_cast<double>(hist[i]);

  double best_between = -1.0;
  std::size_t best_bin = kBins / 2;
  double w0 = 0.0, sum0 = 0.0;
  for (std::size_t i = 0; i < kBins; ++i) {
    w0 += static_cast<double>(hist[i]);
    if (w0 == 0.0) continue;
    const double w1 = total - w0;
    if (w1 == 0.0) break;
    sum0 += static_cast<double>(i) * static_cast<double>(hist[i]);
    const double mu0 = sum0 / w0;
    const double mu1 = (sum_all - sum0) / w1;
    const double between = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (between > best_between) {
      best_between = between;
      best_bin = i;
    }
  }
  return lo + static_cast<float>((static_cast<double>(best_bin) + 0.5) / scale);
}

Segmentation Segmenter::segment(const SlidingWindowResult& swc) const {
  Segmentation out;
  if (swc.scores.empty()) return out;

  // --- threshold (Th) ------------------------------------------------------
  float threshold = config_.threshold;
  if (std::isnan(threshold))
    threshold = otsu_threshold(swc.scores, config_.otsu_clip_percentile);
  out.threshold_used = threshold;
  out.square_wave = signal::threshold_square_wave(swc.scores, threshold);

  // --- median filter (MF) --------------------------------------------------
  const std::size_t k = resolve_median_k(config_, swc.stride, swc.window);
  detail::require(k % 2 == 1, "Segmenter: median filter size must be odd");
  out.median_k_used = k;
  out.filtered = signal::median_filter(out.square_wave, k);

  // --- rising edges -> sample positions ------------------------------------
  // A plateau that starts at window 0 has no -1 -> +1 transition; treat a
  // high beginning as a CO start at sample 0's window.
  if (!out.filtered.empty() && out.filtered.front() > 0.0f) {
    out.co_starts.push_back(0);
  }
  // One scan tracks the most recent falling edge so plateau-split merging
  // can suppress a rising edge whose preceding low run is at most
  // merge_gap_windows long (an interior dip, not a new CO). With the knob
  // at 0 this reduces exactly to signal::rising_edges. The streaming
  // runtime (StreamingLocator::on_filtered_value) mirrors this scan
  // incrementally; keep the two in lockstep.
  std::size_t last_fall = 0;
  bool have_fall = false;
  for (std::size_t i = 1; i < out.filtered.size(); ++i) {
    const float prev = out.filtered[i - 1];
    const float cur = out.filtered[i];
    if (prev >= 0.0f && cur < 0.0f) {
      last_fall = i;
      have_fall = true;
    } else if (prev < 0.0f && cur >= 0.0f) {
      if (have_fall && i - last_fall <= config_.merge_gap_windows) continue;
      out.co_starts.push_back(i * swc.stride);
    }
  }
  return out;
}

}  // namespace scalocate::core
