#include "core/model.hpp"

#include <sstream>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace scalocate::core {

namespace {

/// Conv1d -> BatchNorm1d -> ReLU (the paper's "convolutional block").
nn::LayerPtr conv_block(std::size_t in_ch, std::size_t out_ch,
                        std::size_t kernel) {
  auto block = std::make_unique<nn::Sequential>();
  block->emplace<nn::Conv1d>(in_ch, out_ch, kernel);
  block->emplace<nn::BatchNorm1d>(out_ch);
  block->emplace<nn::ReLU>();
  return block;
}

/// Residual block: two convolutional blocks with a shortcut; a 1x1
/// projection aligns channels when the block widens.
nn::LayerPtr residual_block(std::size_t in_ch, std::size_t out_ch,
                            std::size_t kernel) {
  auto main = std::make_unique<nn::Sequential>();
  main->add(conv_block(in_ch, out_ch, kernel));
  main->add(conv_block(out_ch, out_ch, kernel));
  nn::LayerPtr projection;
  if (in_ch != out_ch)
    projection = std::make_unique<nn::Conv1d>(in_ch, out_ch, 1);
  return std::make_unique<nn::Residual>(std::move(main), std::move(projection));
}

}  // namespace

std::unique_ptr<nn::Sequential> build_paper_cnn(const CnnConfig& config) {
  const std::size_t f = config.base_filters;
  const std::size_t k = config.kernel_size;

  auto net = std::make_unique<nn::Sequential>();
  net->add(conv_block(1, f, k));
  net->add(residual_block(f, f, k));
  net->add(residual_block(f, 2 * f, k));
  net->emplace<nn::GlobalAvgPool1d>();
  net->emplace<nn::Linear>(2 * f, config.fc_hidden);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Linear>(config.fc_hidden, 2);

  Rng rng(config.init_seed);
  nn::init_module(*net, rng);
  return net;
}

std::string describe_paper_cnn(const CnnConfig& config) {
  const std::size_t f = config.base_filters;
  const std::size_t k = config.kernel_size;
  std::ostringstream os;
  os << "1D CNN (ResNet adaptation, Fig. 2 of the paper)\n"
     << "  Input: [B, 1, N] standardized side-channel window\n"
     << "  ConvBlock: Conv1d(1->" << f << ", k=" << k
     << ", s=1, same-pad) + BatchNorm1d + ReLU\n"
     << "  ResidualBlock x2:\n"
     << "    [1] Conv1d(" << f << "->" << f << ") + BN + ReLU, Conv1d(" << f
     << "->" << f << ") + BN + ReLU, identity shortcut\n"
     << "    [2] Conv1d(" << f << "->" << 2 * f << ") + BN + ReLU, Conv1d("
     << 2 * f << "->" << 2 * f << ") + BN + ReLU, 1x1 projection shortcut\n"
     << "  GlobalAvgPool1d: [B, " << 2 * f << ", N] -> [B, " << 2 * f << "]\n"
     << "  Linear(" << 2 * f << "->" << config.fc_hidden << ") + ReLU\n"
     << "  Linear(" << config.fc_hidden << "->2)  (linear class scores)\n"
     << "  Softmax applied only when probabilities are required; the\n"
     << "  inference pipeline reads the linear class-1 score (Sec. III-C).\n";
  return os.str();
}

}  // namespace scalocate::core
