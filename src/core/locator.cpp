#include "core/locator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/signal.hpp"
#include "nn/serialize.hpp"

namespace scalocate::core {

CoLocator::CoLocator(LocatorConfig config)
    : config_(std::move(config)), model_(build_paper_cnn(config_.cnn)) {}

TrainReport CoLocator::train(const trace::CipherAcquisition& ciphers,
                             const trace::Trace& noise) {
  DatasetBuilder builder(config_.params, config_.seed ^ 0x6462ULL);
  const WindowDataset dataset = builder.build(ciphers, noise);
  const DatasetSplit split = builder.split(dataset);

  Trainer trainer(config_.params, config_.seed ^ 0x7472ULL);
  TrainReport report = trainer.fit(*model_, split);
  trained_ = true;

  // Mean CO length from the profiling captures (drives the automatic
  // median-filter size and alignment segment lengths).
  double acc = 0.0;
  std::size_t counted = 0;
  for (const auto& cap : ciphers.captures) {
    acc += static_cast<double>(cap.samples.size());
    ++counted;
  }
  mean_co_length_ = counted > 0 ? acc / static_cast<double>(counted) : 0.0;

  build_fine_template(ciphers);
  calibrate(ciphers);
  return report;
}

void CoLocator::build_fine_template(const trace::CipherAcquisition& ciphers) {
  fine_template_.clear();
  if (!config_.fine_align) return;
  const std::size_t len =
      std::min(config_.fine_template_length, config_.params.n_inf);
  std::vector<double> acc(len, 0.0);
  std::size_t used = 0;
  for (const auto& cap : ciphers.captures) {
    if (cap.samples.size() < len) continue;
    for (std::size_t j = 0; j < len; ++j)
      acc[j] += static_cast<double>(cap.samples[j]);
    ++used;
  }
  if (used == 0) return;
  fine_template_.resize(len);
  for (std::size_t j = 0; j < len; ++j)
    fine_template_[j] = static_cast<float>(acc[j] / static_cast<double>(used));
  fine_template_ = signal::moving_average(fine_template_, 5);
}

std::size_t CoLocator::fine_search_radius() const {
  return config_.fine_search_radius > 0
             ? config_.fine_search_radius
             : config_.params.n_inf + 4 * config_.params.stride;
}

SegmenterConfig CoLocator::segmenter_config() const {
  SegmenterConfig seg_cfg;
  seg_cfg.threshold = config_.params.threshold;
  seg_cfg.median_filter_k = config_.params.median_filter_k;
  seg_cfg.window_size = config_.params.n_inf;
  seg_cfg.expected_co_length = static_cast<std::size_t>(mean_co_length_);
  seg_cfg.merge_gap_windows = config_.params.merge_gap_windows;
  seg_cfg.otsu_clip_percentile = config_.params.otsu_clip_percentile;
  return seg_cfg;
}

std::size_t CoLocator::refine_in_region(std::span<const float> region,
                                        std::size_t region_begin) const {
  // Best normalized correlation of the template in the local search range.
  // Both sides are lightly smoothed so the single-sample data-dependent
  // term does not dominate the envelope match.
  const auto region_s = signal::moving_average(region, 5);
  const auto ncc = signal::normalized_cross_correlate(region_s, fine_template_);
  if (ncc.empty()) return region_begin;
  std::size_t best = 0;
  for (std::size_t i = 1; i < ncc.size(); ++i)
    if (ncc[i] > ncc[best]) best = i;
  return region_begin + best;
}

std::size_t CoLocator::refine_start(std::span<const float> trace_samples,
                                    std::size_t coarse_start) const {
  if (fine_template_.empty()) return coarse_start;
  const std::size_t len = fine_template_.size();
  const auto radius = static_cast<std::ptrdiff_t>(fine_search_radius());
  const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(
      0, static_cast<std::ptrdiff_t>(coarse_start) - radius);
  const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
      static_cast<std::ptrdiff_t>(trace_samples.size()) -
          static_cast<std::ptrdiff_t>(len),
      static_cast<std::ptrdiff_t>(coarse_start) + radius);
  if (hi < lo) return coarse_start;

  const std::span<const float> region(trace_samples.data() + lo,
                                      static_cast<std::size_t>(hi - lo) + len);
  return refine_in_region(region, static_cast<std::size_t>(lo));
}

namespace {

/// Median signed distance from each truth position to its nearest
/// detection, ignoring pairs farther apart than `max_abs`. Returns 0 when
/// nothing matches.
std::ptrdiff_t median_offset(const std::vector<std::size_t>& detections,
                             const std::vector<std::size_t>& truth,
                             std::ptrdiff_t max_abs) {
  std::vector<std::ptrdiff_t> offsets;
  for (std::size_t t : truth) {
    std::ptrdiff_t best = 0;
    std::ptrdiff_t best_abs = max_abs + 1;
    for (std::size_t loc : detections) {
      const std::ptrdiff_t d =
          static_cast<std::ptrdiff_t>(loc) - static_cast<std::ptrdiff_t>(t);
      if (std::abs(d) < best_abs) {
        best_abs = std::abs(d);
        best = d;
      }
    }
    if (best_abs <= max_abs) offsets.push_back(best);
  }
  if (offsets.empty()) return 0;
  std::nth_element(
      offsets.begin(),
      offsets.begin() + static_cast<std::ptrdiff_t>(offsets.size() / 2),
      offsets.end());
  return offsets[offsets.size() / 2];
}

}  // namespace

void CoLocator::calibrate(const trace::CipherAcquisition& ciphers) {
  coarse_offset_ = 0;
  fine_offset_ = 0;
  calibrated_threshold_ = std::numeric_limits<float>::quiet_NaN();
  // Build a calibration trace by concatenating profiling captures: their
  // true starts are the cumulative capture offsets.
  const std::size_t n_cal =
      std::min(config_.calibration_captures, ciphers.captures.size());
  if (n_cal == 0) return;
  std::vector<float> cal_trace;
  std::vector<std::size_t> truth;
  for (std::size_t i = 0; i < n_cal; ++i) {
    truth.push_back(cal_trace.size());
    const auto& s = ciphers.captures[i].samples;
    cal_trace.insert(cal_trace.end(), s.begin(), s.end());
  }

  // Stage 1: raw rising edges (no correction).
  nn::Workspace ws;
  SlidingWindowClassifier classifier(*model_, config_.params.n_inf,
                                     config_.params.stride);
  const SlidingWindowResult swc = classifier.classify(cal_trace, ws);
  const Segmentation seg = Segmenter(segmenter_config()).segment(swc);
  calibrated_threshold_ = seg.threshold_used;

  const auto half_co = static_cast<std::ptrdiff_t>(mean_co_length_ / 2.0);
  coarse_offset_ = median_offset(seg.co_starts, truth, half_co);

  // Stage 2: apply the coarse correction, refine with the template, and
  // measure the residual.
  if (!config_.fine_align) return;
  std::vector<std::size_t> refined;
  refined.reserve(seg.co_starts.size());
  for (std::size_t raw : seg.co_starts) {
    const std::ptrdiff_t corrected =
        static_cast<std::ptrdiff_t>(raw) - coarse_offset_;
    const std::size_t base =
        corrected < 0 ? 0 : static_cast<std::size_t>(corrected);
    refined.push_back(refine_start(cal_trace, base));
  }
  fine_offset_ = median_offset(refined, truth, half_co);
}

CoLocator::Located CoLocator::locate_detailed(
    std::span<const float> trace_samples, nn::Workspace& ws) const {
  detail::require(trained_, "CoLocator::locate: train() or load_model() first");
  Located out;
  SlidingWindowClassifier classifier(*model_, config_.params.n_inf,
                                     config_.params.stride);
  out.swc = classifier.classify(trace_samples, ws);
  out.segmentation = Segmenter(segmenter_config()).segment(out.swc);

  out.co_starts.reserve(out.segmentation.co_starts.size());
  for (std::size_t raw : out.segmentation.co_starts) {
    // Coarse correction -> template refinement -> residual correction.
    std::ptrdiff_t pos = static_cast<std::ptrdiff_t>(raw) - coarse_offset_;
    std::size_t start = pos < 0 ? 0 : static_cast<std::size_t>(pos);
    if (config_.fine_align) {
      start = refine_start(trace_samples, start);
      pos = static_cast<std::ptrdiff_t>(start) - fine_offset_;
      start = pos < 0 ? 0 : static_cast<std::size_t>(pos);
    }
    out.co_starts.push_back(start);
  }
  std::sort(out.co_starts.begin(), out.co_starts.end());

  // Duplicate suppression: a CO cannot restart within a fraction of its own
  // length, so later detections inside that horizon are echoes of the same
  // plateau (classifier glitches re-crossing the threshold).
  if (config_.min_separation_fraction > 0.0 && mean_co_length_ > 0.0) {
    const auto min_gap = static_cast<std::size_t>(
        config_.min_separation_fraction * mean_co_length_);
    std::vector<std::size_t> deduped;
    for (std::size_t s : out.co_starts) {
      if (deduped.empty() || s >= deduped.back() + min_gap)
        deduped.push_back(s);
    }
    out.co_starts = std::move(deduped);
  }
  return out;
}

CoLocator::Located CoLocator::locate_detailed(
    std::span<const float> trace_samples) const {
  nn::Workspace ws;
  return locate_detailed(trace_samples, ws);
}

std::vector<std::size_t> CoLocator::locate(std::span<const float> trace_samples,
                                           nn::Workspace& ws) const {
  return locate_detailed(trace_samples, ws).co_starts;
}

std::vector<std::size_t> CoLocator::locate(
    std::span<const float> trace_samples) const {
  nn::Workspace ws;
  return locate(trace_samples, ws);
}

AlignedTraces CoLocator::locate_and_align(std::span<const float> trace_samples,
                                          std::size_t segment_length) const {
  const auto starts = locate(trace_samples);
  return align_cos(trace_samples, starts, segment_length);
}

CoLocator::CalibrationState CoLocator::calibration_state() const {
  CalibrationState state;
  state.coarse_offset = coarse_offset_;
  state.fine_offset = fine_offset_;
  state.mean_co_length = mean_co_length_;
  state.calibrated_threshold = calibrated_threshold_;
  state.fine_template = fine_template_;
  return state;
}

void CoLocator::restore_calibration(CalibrationState state) {
  coarse_offset_ = state.coarse_offset;
  fine_offset_ = state.fine_offset;
  mean_co_length_ = state.mean_co_length;
  calibrated_threshold_ = state.calibrated_threshold;
  fine_template_ = std::move(state.fine_template);
  model_->set_training(false);
  trained_ = true;
}

void CoLocator::save_model(const std::string& path) const {
  nn::save_module(*model_, path);
}

void CoLocator::load_model(const std::string& path) {
  nn::load_module(*model_, path);
  model_->set_training(false);
  trained_ = true;
}

}  // namespace scalocate::core
