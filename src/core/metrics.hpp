// Evaluation metrics: binary confusion matrix (Figure 3) and the
// segmentation hit score (Section IV-B / Table II).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace scalocate::core {

/// 2x2 confusion matrix over {not-beginning (0), beginning (1)}.
class ConfusionMatrix {
 public:
  void add(std::uint8_t true_label, std::uint8_t predicted_label);

  std::size_t count(std::uint8_t true_label, std::uint8_t predicted) const;
  std::size_t total() const;

  /// Row-normalized rate, e.g. rate(0,0) is the paper's top-left
  /// percentage (true class 0 predicted as 0). Returns 0 on empty rows.
  double rate(std::uint8_t true_label, std::uint8_t predicted) const;

  double accuracy() const;
  double true_positive_rate() const { return rate(1, 1); }
  double true_negative_rate() const { return rate(0, 0); }

  /// Renders in the layout of the paper's Figure 3.
  std::string render(const std::string& title) const;

 private:
  std::array<std::array<std::size_t, 2>, 2> counts_{{{0, 0}, {0, 0}}};
};

/// Greedy matching of located CO starts against ground truth.
struct HitScore {
  std::size_t true_cos = 0;      ///< COs actually present
  std::size_t located = 0;       ///< locations reported
  std::size_t hits = 0;          ///< true COs matched within tolerance
  std::size_t false_alarms = 0;  ///< reported locations matching nothing
  double mean_abs_error = 0.0;   ///< |located-true| over hits (samples)

  double hit_rate() const {
    return true_cos == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(true_cos);
  }
};

/// Scores `located` against `truth` (both ascending sample indices): a true
/// start is hit when some located start lies within +/-tolerance of it;
/// each located start can match at most one true start.
HitScore score_hits(const std::vector<std::size_t>& located,
                    const std::vector<std::size_t>& truth,
                    std::size_t tolerance);

}  // namespace scalocate::core
