// Dataset Creation block (Section III-A).
//
// Consumes the attacker's clone-device captures -- a set of single-CO
// cipher traces (cut at the NOP-sled boundary) and a long noise trace --
// and assembles the labeled window database:
//   c1 "cipher start": the first Ntrain samples of each cipher trace;
//   c0 "cipher rest" : consecutive Ntrain windows over the remainder;
//   c0 "noise"       : Ntrain windows at random offsets of the noise trace.
// Windows are standardized (zero mean, unit variance) so the classifier is
// insensitive to the acquisition's absolute scale/drift, then split
// 80/15/5 into train/validation/test (Section IV-B).
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "trace/scenario.hpp"
#include "trace/trace.hpp"

namespace scalocate::core {

/// Labeled window database (pre-split).
struct WindowDataset {
  std::vector<std::vector<float>> windows;
  std::vector<std::uint8_t> labels;  ///< 1 = beginning-of-CO, 0 = not
  std::size_t window_length = 0;

  std::size_t size() const { return windows.size(); }
  std::size_t count_label(std::uint8_t label) const;
};

/// Train/validation/test split.
struct DatasetSplit {
  WindowDataset train;
  WindowDataset val;
  WindowDataset test;
};

class DatasetBuilder {
 public:
  explicit DatasetBuilder(const PipelineParams& params,
                          std::uint64_t seed = 11);

  /// Assembles the window database from the acquisition campaigns. Fewer
  /// captures than requested c1 windows simply yields fewer c1 windows.
  WindowDataset build(const trace::CipherAcquisition& ciphers,
                      const trace::Trace& noise) const;

  /// Splits per the paper's 80/15/5 proportions (stratified by label).
  DatasetSplit split(const WindowDataset& dataset) const;

  /// Standardizes one window in place (helper shared with inference).
  static void standardize_window(std::vector<float>& window);

 private:
  PipelineParams params_;
  std::uint64_t seed_;
};

}  // namespace scalocate::core
