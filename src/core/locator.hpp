// CoLocator: the end-to-end system of the paper.
//
// Training phase (Figure 1, left): dataset creation from clone-device
// captures -> CNN training -> calibration. Calibration is an addition over
// the paper's text made explicit here: a sliding CNN with global average
// pooling fires as soon as the CO-start motif *enters* the window, so the
// rising edge leads the true start by a roughly constant amount. We measure
// that lead once on the profiling captures (whose true starts are known)
// and subtract it at inference; the paper folds the same correction into
// the CPA's "minor aggregation over time".
//
// Inference phase (Figure 1, right): sliding-window classification ->
// segmentation -> alignment. Inference is const and thread-safe: the model
// is only read, and all per-call scratch lives in an nn::Workspace, so one
// trained CoLocator can serve concurrent locate() calls (see
// runtime/locator_service) or drive incremental detection (see
// runtime/streaming_locator).
#pragma once

#include <memory>
#include <optional>

#include "core/alignment.hpp"
#include "core/dataset.hpp"
#include "core/model.hpp"
#include "core/params.hpp"
#include "core/segmentation.hpp"
#include "core/sliding_window.hpp"
#include "core/trainer.hpp"

namespace scalocate::core {

struct LocatorConfig {
  PipelineParams params;
  CnnConfig cnn = CnnConfig::scaled();
  std::uint64_t seed = 29;
  /// Number of profiling captures used for offset calibration.
  std::size_t calibration_captures = 16;
  /// Sub-stride refinement: after segmentation, each located start is
  /// snapped to the best local match of a short mean-start template within
  /// +/-stride samples. This removes the stride quantization of the rising
  /// edge (the paper's CPA absorbs it with time aggregation instead; we do
  /// both and benchmark the difference in bench_ablations).
  bool fine_align = true;
  /// Length of the fine-alignment template (clamped to n_inf).
  std::size_t fine_template_length = 256;
  /// Search radius of the fine-alignment snap around the corrected rising
  /// edge. 0 = automatic (max(2*stride, 160) samples).
  std::size_t fine_search_radius = 0;
  /// Two detections closer than this fraction of the mean CO length are
  /// duplicates of the same CO; the earlier one is kept. 0 disables.
  double min_separation_fraction = 0.5;
};

class CoLocator {
 public:
  explicit CoLocator(LocatorConfig config);

  /// Trains the CNN from the acquisition campaigns and calibrates the
  /// systematic localization offset. Returns the training report (loss
  /// history + test confusion matrix).
  TrainReport train(const trace::CipherAcquisition& ciphers,
                    const trace::Trace& noise);

  /// Locates CO starts in a new trace (offset-corrected sample indices).
  /// Thread-safe on a trained locator when each caller passes its own
  /// workspace.
  std::vector<std::size_t> locate(std::span<const float> trace_samples,
                                  nn::Workspace& ws) const;
  std::vector<std::size_t> locate(std::span<const float> trace_samples) const;

  /// Full diagnostics: swc scores, square wave, filtered wave, raw starts.
  struct Located {
    SlidingWindowResult swc;
    Segmentation segmentation;
    std::vector<std::size_t> co_starts;  ///< offset-corrected
  };
  Located locate_detailed(std::span<const float> trace_samples,
                          nn::Workspace& ws) const;
  Located locate_detailed(std::span<const float> trace_samples) const;

  /// Locates and cuts aligned segments in one call.
  AlignedTraces locate_and_align(std::span<const float> trace_samples,
                                 std::size_t segment_length) const;

  /// Legacy weights-only persistence (architecture must match the config;
  /// calibration is NOT saved). Prefer export_artifact/from_artifact, which
  /// bundle everything a fresh process needs to serve.
  void save_model(const std::string& path) const;
  void load_model(const std::string& path);

  /// Everything train() produces beyond the CNN weights. Bundled into
  /// versioned model artifacts (api/artifact) so a fresh process can serve
  /// without retraining.
  struct CalibrationState {
    std::ptrdiff_t coarse_offset = 0;
    std::ptrdiff_t fine_offset = 0;
    double mean_co_length = 0.0;
    float calibrated_threshold = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> fine_template;
  };
  CalibrationState calibration_state() const;

  /// Marks the locator trained with externally restored state (the artifact
  /// load path): the model must already hold the loaded weights; this
  /// installs the calibration results and switches the model to eval mode.
  void restore_calibration(CalibrationState state);

  /// Versioned model artifact: self-describing bundle of config +
  /// architecture + weights + calibration (implemented in api/artifact.cpp;
  /// see scalocate::api for the format and its structured load errors).
  void export_artifact(const std::string& path) const;
  static CoLocator from_artifact(const std::string& path);

  bool is_trained() const { return trained_; }
  /// Total systematic lead removed at inference (coarse + fine stage).
  std::ptrdiff_t calibration_offset() const {
    return coarse_offset_ + fine_offset_;
  }
  std::ptrdiff_t coarse_offset() const { return coarse_offset_; }
  std::ptrdiff_t fine_offset() const { return fine_offset_; }
  double mean_co_length() const { return mean_co_length_; }
  nn::Sequential& model() { return *model_; }
  const nn::Sequential& model() const { return *model_; }
  const LocatorConfig& config() const { return config_; }

  // --- hooks for the streaming runtime (runtime/streaming_locator) ---------

  /// The segmenter configuration locate_detailed uses (threshold, median
  /// filter size, expected CO length), derived from params + calibration.
  SegmenterConfig segmenter_config() const;

  /// Decision threshold measured on the calibration trace (Otsu). Only
  /// meaningful after train(); NaN before. Streaming inference falls back
  /// to this when the configured threshold is automatic (NaN), since Otsu
  /// over a full trace is unavailable online.
  float calibrated_threshold() const { return calibrated_threshold_; }

  /// Fine-alignment template (empty when fine_align is off or training
  /// produced no template).
  std::span<const float> fine_template() const { return fine_template_; }

  /// Effective fine-alignment search radius around a corrected start.
  std::size_t fine_search_radius() const;

  /// Template-snap core shared by the offline and streaming paths: `region`
  /// holds the absolute trace samples [region_begin, region_begin +
  /// region.size()) covering every candidate template placement
  /// [lo, hi + template length); returns the absolute start with the best
  /// normalized correlation. Requires a non-empty template.
  std::size_t refine_in_region(std::span<const float> region,
                               std::size_t region_begin) const;

 private:
  void calibrate(const trace::CipherAcquisition& ciphers);
  void build_fine_template(const trace::CipherAcquisition& ciphers);
  std::size_t refine_start(std::span<const float> trace_samples,
                           std::size_t coarse_start) const;

  LocatorConfig config_;
  std::unique_ptr<nn::Sequential> model_;
  bool trained_ = false;
  /// Stage-1 offset: median (raw rising edge - true start), measured on the
  /// calibration trace before refinement. The rising edge leads the true
  /// start because the CNN fires as soon as the motif enters the window.
  std::ptrdiff_t coarse_offset_ = 0;
  /// Stage-2 offset: median residual after template refinement.
  std::ptrdiff_t fine_offset_ = 0;
  double mean_co_length_ = 0.0;
  float calibrated_threshold_ = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> fine_template_;
};

}  // namespace scalocate::core
