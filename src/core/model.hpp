// The paper's 1D CNN (Section III-B, Figure 2), a 1-D adaptation of ResNet:
//
//   ConvBlock(1 -> F, k)            ConvBlock = Conv1d + BatchNorm1d + ReLU
//   Residual[ ConvBlock(F -> F, k), ConvBlock(F -> F, k) ]       (+identity)
//   Residual[ ConvBlock(F -> 2F, k), ConvBlock(2F -> 2F, k) ] (+1x1 proj)
//   GlobalAvgPool1d                 (enables Ninf != Ntrain)
//   Linear(2F -> H) + ReLU
//   Linear(H -> 2)                  (linear class scores; softmax separate)
//
// Paper values: F = 16 filters, kernel k = 64, stride 1, zero padding.
// The kernel/filters are configurable because the scaled simulator windows
// are ~80x shorter than the paper's 22k-sample windows.
#pragma once

#include <memory>

#include "nn/sequential.hpp"

namespace scalocate::core {

struct CnnConfig {
  std::size_t base_filters = 16;  ///< paper: 16 (second block doubles to 32)
  std::size_t kernel_size = 64;   ///< paper: 64
  std::size_t fc_hidden = 32;     ///< width of the first FC layer
  std::uint64_t init_seed = 17;

  /// Paper-exact architecture.
  static CnnConfig paper() { return {}; }

  /// Kernel scaled to the simulator's shorter windows (documented in
  /// EXPERIMENTS.md); topology and filter counts unchanged.
  static CnnConfig scaled() {
    CnnConfig c;
    c.kernel_size = 16;
    return c;
  }
};

/// Builds and He-initializes the network. Output: [B, 2] linear scores.
std::unique_ptr<nn::Sequential> build_paper_cnn(const CnnConfig& config = {});

/// Multi-line description of the architecture (used by bench_fig2_arch).
std::string describe_paper_cnn(const CnnConfig& config = {});

}  // namespace scalocate::core
