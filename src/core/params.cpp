#include "core/params.hpp"

#include "common/error.hpp"

namespace scalocate::core {

PipelineParams PipelineParams::defaults_for(crypto::CipherId id) {
  PipelineParams p = paper_table1(id);  // fills the paper_* fields
  p.cipher = id;
  // Scaled values: the simulator's COs are ~20-70x shorter than the
  // paper's 125 MS/s captures, so windows/strides shrink proportionally
  // (~60-300 windows per CO at stride s). Unlike the paper we run the
  // inference window slightly LARGER than the training window (legal via
  // global average pooling): a window covering the whole random-delay
  // stretched start motif yields markedly cleaner swc plateaus.
  p.epochs = 12;
  // The class-1 margin has its natural decision boundary at 0 (see
  // SlidingWindowClassifier); NaN would select Otsu's automatic threshold.
  p.threshold = 0.0f;
  switch (id) {
    case crypto::CipherId::kAes128:
      p.n_train = 320;
      p.n_inf = 384;  // > n_train via GAP: covers the RD-stretched motif
      p.stride = 64;
      p.sizes = {512, 512, 256};
      break;
    case crypto::CipherId::kAesMasked:
      p.n_train = 512;
      p.n_inf = 384;
      p.stride = 192;
      p.sizes = {384, 288, 192};
      break;
    case crypto::CipherId::kClefia128:
      p.n_train = 256;
      p.n_inf = 288;
      p.stride = 48;
      p.sizes = {512, 256, 256};
      break;
    case crypto::CipherId::kCamellia128:
      p.n_train = 256;
      p.n_inf = 288;
      p.stride = 48;
      p.sizes = {256, 512, 256};
      break;
    case crypto::CipherId::kSimon128:
      p.n_train = 256;
      p.n_inf = 288;
      p.stride = 48;
      p.sizes = {512, 256, 256};
      break;
  }
  // Jitter c1 windows across a quarter of the training window so the
  // classifier tolerates the partial alignments the inference slicer
  // produces (see the start_jitter documentation in params.hpp).
  p.start_jitter = p.n_train / 4;
  return p;
}

PipelineParams PipelineParams::paper_table1(crypto::CipherId id) {
  PipelineParams p;
  p.cipher = id;
  switch (id) {
    case crypto::CipherId::kAes128:
      p.paper_mean_length = 220000;
      p.paper_n_train = 22000;
      p.paper_n_inf = 20000;
      p.paper_stride = 1000;
      p.paper_sizes = {65536, 65536, 32768};
      break;
    case crypto::CipherId::kAesMasked:
      p.paper_mean_length = 50000;
      p.paper_n_train = 4800;
      p.paper_n_inf = 5000;
      p.paper_stride = 100;
      p.paper_sizes = {131072, 65536, 65536};
      break;
    case crypto::CipherId::kClefia128:
      p.paper_mean_length = 108000;
      p.paper_n_train = 6000;
      p.paper_n_inf = 6000;
      p.paper_stride = 500;
      p.paper_sizes = {65536, 32768, 32768};
      break;
    case crypto::CipherId::kCamellia128:
      p.paper_mean_length = 6000;
      p.paper_n_train = 1400;
      p.paper_n_inf = 1000;
      p.paper_stride = 100;
      p.paper_sizes = {32768, 65536, 32768};
      break;
    case crypto::CipherId::kSimon128:
      p.paper_mean_length = 10000;
      p.paper_n_train = 2000;
      p.paper_n_inf = 2000;
      p.paper_stride = 100;
      p.paper_sizes = {65536, 32768, 32768};
      break;
  }
  return p;
}

}  // namespace scalocate::core
