// Pipeline parameters (the paper's Table I) and their scaled defaults.
//
// The paper tunes, per cipher: the training window size Ntrain, the
// inference window size Ninf (smaller, enabled by global average pooling),
// the sliding stride s, and the dataset composition (cipher-start /
// cipher-rest / noise window counts). Our simulator produces shorter COs
// than the 125 MS/s FPGA captures, so the defaults below are scaled to CPU
// budgets while keeping the paper's proportions; `paper_value` fields
// record the original Table I numbers for the bench printouts.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "crypto/cipher.hpp"

namespace scalocate::core {

struct DatasetSizes {
  std::size_t cipher_start = 0;  ///< class-c1 windows
  std::size_t cipher_rest = 0;   ///< class-c0 windows from cipher tails
  std::size_t noise = 0;         ///< class-c0 windows from the noise trace
};

struct PipelineParams {
  crypto::CipherId cipher = crypto::CipherId::kAes128;

  // --- window/stride parameters (scaled Table I) ---
  std::size_t n_train = 256;  ///< training window size (samples)
  std::size_t n_inf = 192;    ///< inference window size
  std::size_t stride = 48;    ///< sliding-window stride s

  // --- dataset composition (scaled Table I) ---
  DatasetSizes sizes{512, 512, 256};

  // --- training hyperparameters (Section IV-B) ---
  std::size_t batch_size = 64;
  float learning_rate = 1e-3f;
  /// The paper trains for 2 epochs over 130k-260k windows (~4000 Adam
  /// steps). The scaled datasets are ~100x smaller, so defaults_for() sets
  /// more epochs to land in a comparable gradient-step regime.
  std::size_t epochs = 2;
  double train_fraction = 0.80;
  double val_fraction = 0.15;  // test = 1 - train - val

  /// When true, cipher-rest windows are sampled at uniformly random offsets
  /// past the start window instead of the paper's consecutive N-aligned
  /// grid. At inference the slicer visits arbitrary offsets, so training on
  /// random offsets measurably improves the in-CO true-negative rate of the
  /// scaled (small-dataset) configuration; the paper's much larger datasets
  /// get the same coverage from volume. Set false for the paper's exact
  /// consecutive-split semantics.
  bool random_rest_offsets = true;

  /// Jitter augmentation for c1 windows: each cipher-start window begins at
  /// a uniform random offset in [0, start_jitter] samples past the detected
  /// CO start instead of exactly at it. 0 reproduces the paper's exact
  /// labeling. Jitter teaches the classifier to accept partially aligned
  /// windows, which widens the swc plateau the segmentation stage needs at
  /// coarse strides (the paper's 100x larger datasets achieve the same
  /// tolerance through the NOP-boundary estimation noise alone).
  std::size_t start_jitter = 0;

  // --- segmentation (Section III-D) ---
  /// Median filter window (odd). 0 selects an automatic size from the
  /// expected CO length and the stride.
  std::size_t median_filter_k = 0;
  /// Fixed decision threshold on the linear class-1 score; NaN selects the
  /// automatic percentile-midpoint threshold.
  float threshold = std::numeric_limits<float>::quiet_NaN();
  /// Plateau-split merging: low runs of at most this many windows between
  /// two high runs are bridged (one plateau, one CO). Hardens segmentation
  /// against countermeasure raggedness — preemption splits, gain steps,
  /// clock jitter (see SegmenterConfig::merge_gap_windows). 0 disables.
  std::size_t merge_gap_windows = 0;
  /// Clips the automatic (Otsu) threshold's histogram range to the
  /// [p, 100-p] score percentiles, de-weighting outlier scores from drift
  /// and AGC jumps (see SegmenterConfig::otsu_clip_percentile). 0 keeps
  /// the exact min/max range.
  double otsu_clip_percentile = 0.0;

  // --- paper's original Table I values (for reporting only) ---
  std::size_t paper_mean_length = 0;
  std::size_t paper_n_train = 0;
  std::size_t paper_n_inf = 0;
  std::size_t paper_stride = 0;
  DatasetSizes paper_sizes{};

  /// Scaled defaults for each cipher, mirroring Table I proportions.
  static PipelineParams defaults_for(crypto::CipherId id);

  /// The verbatim Table I rows of the paper (unscaled).
  static PipelineParams paper_table1(crypto::CipherId id);
};

}  // namespace scalocate::core
