#include "core/alignment.hpp"

#include "common/error.hpp"

namespace scalocate::core {

AlignedTraces align_cos(std::span<const float> trace_samples,
                        const std::vector<std::size_t>& co_starts,
                        std::size_t segment_length,
                        std::ptrdiff_t start_offset) {
  detail::require(segment_length >= 1, "align_cos: segment_length must be >= 1");
  AlignedTraces out;
  out.segment_length = segment_length;
  for (std::size_t start : co_starts) {
    std::ptrdiff_t cut = static_cast<std::ptrdiff_t>(start) + start_offset;
    if (cut < 0) cut = 0;
    const auto cut_u = static_cast<std::size_t>(cut);
    if (cut_u + segment_length > trace_samples.size()) continue;
    out.segments.emplace_back(
        trace_samples.begin() + static_cast<std::ptrdiff_t>(cut_u),
        trace_samples.begin() + static_cast<std::ptrdiff_t>(cut_u + segment_length));
    out.origins.push_back(cut_u);
  }
  return out;
}

}  // namespace scalocate::core
