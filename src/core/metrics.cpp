#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace scalocate::core {

void ConfusionMatrix::add(std::uint8_t true_label,
                          std::uint8_t predicted_label) {
  detail::require(true_label < 2 && predicted_label < 2,
                  "ConfusionMatrix::add: labels must be binary");
  ++counts_[true_label][predicted_label];
}

std::size_t ConfusionMatrix::count(std::uint8_t true_label,
                                   std::uint8_t predicted) const {
  return counts_[true_label][predicted];
}

std::size_t ConfusionMatrix::total() const {
  return counts_[0][0] + counts_[0][1] + counts_[1][0] + counts_[1][1];
}

double ConfusionMatrix::rate(std::uint8_t true_label,
                             std::uint8_t predicted) const {
  const std::size_t row = counts_[true_label][0] + counts_[true_label][1];
  if (row == 0) return 0.0;
  return static_cast<double>(counts_[true_label][predicted]) /
         static_cast<double>(row);
}

double ConfusionMatrix::accuracy() const {
  const std::size_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(counts_[0][0] + counts_[1][1]) /
         static_cast<double>(t);
}

std::string ConfusionMatrix::render(const std::string& title) const {
  TextTable table({"true \\ predicted", "0", "1"});
  table.add_row({"0", format_percent(rate(0, 0)), format_percent(rate(0, 1))});
  table.add_row({"1", format_percent(rate(1, 0)), format_percent(rate(1, 1))});
  std::ostringstream os;
  os << title << "\n" << table.render();
  return os.str();
}

HitScore score_hits(const std::vector<std::size_t>& located,
                    const std::vector<std::size_t>& truth,
                    std::size_t tolerance) {
  HitScore score;
  score.true_cos = truth.size();
  score.located = located.size();

  std::vector<bool> located_used(located.size(), false);
  double err_acc = 0.0;
  for (std::size_t t : truth) {
    // Nearest unused located start within tolerance.
    std::size_t best = located.size();
    std::size_t best_dist = tolerance + 1;
    for (std::size_t i = 0; i < located.size(); ++i) {
      if (located_used[i]) continue;
      const std::size_t dist =
          located[i] > t ? located[i] - t : t - located[i];
      if (dist <= tolerance && dist < best_dist) {
        best = i;
        best_dist = dist;
      }
    }
    if (best < located.size()) {
      located_used[best] = true;
      ++score.hits;
      err_acc += static_cast<double>(best_dist);
    }
  }
  score.false_alarms =
      score.located - static_cast<std::size_t>(
                          std::count(located_used.begin(), located_used.end(), true));
  score.mean_abs_error =
      score.hits > 0 ? err_acc / static_cast<double>(score.hits) : 0.0;
  return score;
}

}  // namespace scalocate::core
