// CNN training pipeline (Section IV-B): Adam on the cross-entropy loss,
// mini-batches of 64, validation after every epoch, and the
// lowest-validation-error model kept.
#pragma once

#include <memory>
#include <vector>

#include "core/dataset.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"
#include "nn/sequential.hpp"

namespace scalocate::core {

struct EpochStats {
  double train_loss = 0.0;
  double val_loss = 0.0;
  double val_accuracy = 0.0;
};

struct TrainReport {
  std::vector<EpochStats> epochs;
  std::size_t best_epoch = 0;
  double best_val_loss = 0.0;
  ConfusionMatrix test_confusion;  ///< on the held-out 5% test split
};

class Trainer {
 public:
  Trainer(const PipelineParams& params, std::uint64_t seed = 23);

  /// Trains `model` in place on `split.train`, selecting the epoch with the
  /// lowest validation loss (its weights are restored into `model`), then
  /// fills the test confusion matrix.
  TrainReport fit(nn::Sequential& model, const DatasetSplit& split) const;

  /// Evaluates `model` on a dataset: returns (mean loss, confusion matrix).
  std::pair<double, ConfusionMatrix> evaluate(nn::Sequential& model,
                                              const WindowDataset& data) const;

 private:
  PipelineParams params_;
  std::uint64_t seed_;
};

}  // namespace scalocate::core
