// obs::JsonValue against a corpus of hostile inputs (tests/data/json_corpus).
//
// The parser sits on a trust boundary: bench_check and the threshold gates
// parse BENCH_*.json / thresholds files they did not write. The contract is
// that NO input crashes or hangs the parser — every malformed document fails
// with a typed scalocate::InvalidArgument, and every well-formed one parses.
// Corpus naming carries the expectation: bad_*.json must throw,
// ok_*.json must parse.
//
// The deep-nesting corpus files are the regression tests for a real bug the
// static-analysis PR fixed: parse_value() recursed once per container level
// with no depth cap, so a few hundred KiB of "[[[[..." drove the parse into
// a stack overflow (SIGSEGV, not a typed error). Parser::kMaxDepth now
// bounds the recursion; bad_depth_193 / ok_depth_192 pin the boundary.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace scalocate {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() {
  return fs::path(SCALOCATE_TEST_DATA_DIR) / "json_corpus";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

std::vector<fs::path> corpus_files(const std::string& prefix) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(corpus_dir()))
    if (entry.path().filename().string().starts_with(prefix))
      out.push_back(entry.path());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(JsonCorpus, CorpusIsPresentAndNamed) {
  // A missing data dir must fail loudly, not let the suites below pass
  // vacuously over empty file lists.
  ASSERT_TRUE(fs::exists(corpus_dir())) << corpus_dir();
  EXPECT_GE(corpus_files("bad_").size(), 10u);
  EXPECT_GE(corpus_files("ok_").size(), 5u);
}

TEST(JsonCorpus, EveryBadFileFailsTyped) {
  for (const auto& p : corpus_files("bad_")) {
    const std::string text = slurp(p);
    EXPECT_THROW(
        {
          const auto v = obs::JsonValue::parse(text);
          (void)v;
        },
        InvalidArgument)
        << p.filename();
  }
}

TEST(JsonCorpus, EveryOkFileParses) {
  for (const auto& p : corpus_files("ok_")) {
    const std::string text = slurp(p);
    EXPECT_NO_THROW({
      const auto v = obs::JsonValue::parse(text);
      (void)v;
    }) << p.filename();
  }
}

// ---------------------------------------------------------------------------
// Pinned semantics for specific corpus members (beyond parse/throw).
// ---------------------------------------------------------------------------

TEST(JsonCorpus, DepthCapBoundaryIsExact) {
  // 192 levels parse; 193 fail typed. Also the programmatic million-bracket
  // version of the original crash input, which must not need a corpus file
  // big enough to matter.
  EXPECT_NO_THROW(obs::JsonValue::parse(slurp(corpus_dir() / "ok_depth_192.json")));
  EXPECT_THROW(obs::JsonValue::parse(slurp(corpus_dir() / "bad_depth_193.json")),
               InvalidArgument);
  std::string deep(1u << 20, '[');
  EXPECT_THROW(obs::JsonValue::parse(deep), InvalidArgument);
}

TEST(JsonCorpus, ExactU64MaxSurvivesRoundTrip) {
  const auto v = obs::JsonValue::parse(slurp(corpus_dir() / "ok_exact_u64_max.json"));
  const auto* c = v.find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_integer);
  EXPECT_EQ(c->integer, UINT64_MAX);
}

TEST(JsonCorpus, EscapesDecode) {
  const auto v = obs::JsonValue::parse(slurp(corpus_dir() / "ok_escapes.json"));
  const auto* s = v.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, "q\"b\\n\nt\tuA\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonCorpus, HugeExponentIsTypedErrorNotCrash) {
  EXPECT_THROW(obs::JsonValue::parse("[1e999999999]"), InvalidArgument);
  EXPECT_THROW(obs::JsonValue::parse("[-1e999999999]"), InvalidArgument);
}

}  // namespace
}  // namespace scalocate
