#!/usr/bin/env python3
"""Self-test for tools/scalocate_lint.py.

Every lint rule is exercised twice on fixture snippets written to a temp
tree: once on a fixture that MUST fire (proving the rule detects the
violation it exists for) and once on a fixture that MUST pass (proving it
does not cry wolf). A final test runs the full lint against the real
repository and requires zero findings — the same invocation CI's
static-analysis job uses.

Run directly (python3 tests/test_lint.py) or via ctest (lint_selftest).
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import scalocate_lint as lint  # noqa: E402


def make_tree(files: dict[str, str]) -> tempfile.TemporaryDirectory:
    tmp = tempfile.TemporaryDirectory(prefix="scalocate_lint_fixture_")
    for rel, content in files.items():
        path = Path(tmp.name) / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return tmp


# Minimal taxonomy header shared by the error-taxonomy fixtures; mirrors the
# real src/common/error.hpp structure (base, mixin, parseable terminal list).
ERROR_HPP = """\
class Error {};
class Transient {};
// scalocate-lint: terminal-errors
//   Okay
// scalocate-lint: end-terminal-errors
class Okay : public Error {};
class Fine : public Error, public Transient {};
"""


class MemoryOrderRule(unittest.TestCase):
    SNIPPET = "void f(std::atomic<int>& a) { a.load(std::memory_order_relaxed); }\n"

    def test_fires_outside_allowlist(self):
        with make_tree({"src/core/hot.cpp": self.SNIPPET}) as root:
            findings = lint.check_memory_order(Path(root))
        self.assertEqual(len(findings), 1)
        self.assertIn("src/core/hot.cpp:1", findings[0])
        self.assertIn("[memory-order]", findings[0])

    def test_passes_in_allowlisted_file(self):
        with make_tree({"src/obs/hot.cpp": self.SNIPPET}) as root:
            self.assertEqual(lint.check_memory_order(Path(root)), [])

    def test_comment_mention_does_not_fire(self):
        with make_tree({"src/core/doc.cpp":
                        "// beware memory_order_relaxed here\nint x;\n"}) as root:
            self.assertEqual(lint.check_memory_order(Path(root)), [])


class ErrorTaxonomyRule(unittest.TestCase):
    def test_fires_on_unclassified_error(self):
        files = {"src/common/error.hpp": ERROR_HPP,
                 "src/api/rogue.hpp": "class Rogue : public Error {};\n"}
        with make_tree(files) as root:
            findings = lint.check_error_taxonomy(Path(root))
        self.assertEqual(len(findings), 1)
        self.assertIn("Rogue", findings[0])
        self.assertIn("[error-taxonomy]", findings[0])

    def test_fires_on_stale_terminal_entry(self):
        hpp = ERROR_HPP.replace("//   Okay", "//   Okay, Ghost")
        with make_tree({"src/common/error.hpp": hpp}) as root:
            findings = lint.check_error_taxonomy(Path(root))
        self.assertEqual(len(findings), 1)
        self.assertIn("Ghost", findings[0])

    def test_passes_when_all_classified(self):
        # Classification is transitive: Sub derives Error via Fine and
        # inherits Fine's Transient mixin.
        files = {"src/common/error.hpp": ERROR_HPP,
                 "src/api/sub.hpp": "class Sub : public Fine {};\n"}
        with make_tree(files) as root:
            self.assertEqual(lint.check_error_taxonomy(Path(root)), [])


class MetricDriftRule(unittest.TestCase):
    README = """\
## Observability

| Layer | Instruments |
|---|---|
| engine | `engine.<model>.requests` counter |

## Next section
"""
    CODE = 'void reg(R& r, std::string p) { r.counter(p + ".requests"); }\n'

    def test_passes_when_in_sync(self):
        with make_tree({"README.md": self.README,
                        "src/svc.cpp": self.CODE}) as root:
            self.assertEqual(lint.check_metric_drift(Path(root)), [])

    def test_fires_on_undocumented_registration(self):
        code = self.CODE + 'void reg2(R& r, std::string p) { r.counter(p + ".bogus"); }\n'
        with make_tree({"README.md": self.README,
                        "src/svc.cpp": code}) as root:
            findings = lint.check_metric_drift(Path(root))
        self.assertEqual(len(findings), 1)
        self.assertIn("bogus", findings[0])
        self.assertIn("[metric-drift]", findings[0])

    def test_fires_on_unregistered_documented_instrument(self):
        readme = self.README.replace(
            "`engine.<model>.requests` counter",
            "`engine.<model>.requests`/`.ghost` counters")
        with make_tree({"README.md": readme,
                        "src/svc.cpp": self.CODE}) as root:
            findings = lint.check_metric_drift(Path(root))
        self.assertEqual(len(findings), 1)
        self.assertIn("ghost", findings[0])
        self.assertIn("README.md", findings[0])

    def test_dynamic_leaf_allowlist_covers_runtime_names(self):
        readme = self.README.replace(
            "`engine.<model>.requests` counter",
            "`engine.<model>.requests` counter, `k.<m>x<n>.ns` histograms")
        with make_tree({"README.md": readme,
                        "src/svc.cpp": self.CODE}) as root:
            findings = lint.check_metric_drift(Path(root))
        # ".ns" has no literal in the fixture code either, but it is a
        # declared dynamic name (DYNAMIC_METRIC_LEAVES), so no finding.
        self.assertEqual(findings, [])


class HeaderUsingRule(unittest.TestCase):
    def test_fires_at_namespace_scope(self):
        hpp = "namespace foo {\nusing namespace std;\n}\n"
        with make_tree({"src/a.hpp": hpp}) as root:
            findings = lint.check_header_using(Path(root))
        self.assertEqual(len(findings), 1)
        self.assertIn("src/a.hpp:2", findings[0])
        self.assertIn("[header-using]", findings[0])

    def test_fires_at_file_scope(self):
        with make_tree({"src/a.hpp": "using namespace std;\n"}) as root:
            self.assertEqual(len(lint.check_header_using(Path(root))), 1)

    def test_passes_inside_function_body(self):
        hpp = ("namespace foo {\n"
               "inline void f() {\n"
               "  using namespace std;\n"
               "}\n"
               "}\n")
        with make_tree({"src/b.hpp": hpp}) as root:
            self.assertEqual(lint.check_header_using(Path(root)), [])

    def test_ignores_comments_strings_and_cpp_files(self):
        files = {"src/c.hpp": ('// using namespace std;\n'
                               '/* using namespace std; */\n'
                               'inline const char* s() '
                               '{ return "using namespace std;"; }\n'),
                 "src/d.cpp": "using namespace std;\n"}
        with make_tree(files) as root:
            self.assertEqual(lint.check_header_using(Path(root)), [])


class RepositoryIsClean(unittest.TestCase):
    def test_full_lint_has_zero_findings(self):
        findings = lint.run(REPO_ROOT)
        self.assertEqual(findings, [], "\n".join(findings))


if __name__ == "__main__":
    unittest.main(verbosity=2)
