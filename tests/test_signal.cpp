// Unit and property tests for the DSP primitives (common/signal).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "common/stats.hpp"

namespace scalocate::signal {
namespace {

TEST(Signal, ThresholdSquareWave) {
  const std::vector<float> xs = {0.f, 1.f, 2.f, 1.f, 0.f};
  const auto sq = threshold_square_wave(xs, 1.0f);
  const std::vector<float> expected = {-1.f, 1.f, 1.f, 1.f, -1.f};
  EXPECT_EQ(sq, expected);
}

TEST(Signal, MedianFilterRemovesImpulse) {
  std::vector<float> xs(21, 0.f);
  xs[10] = 100.f;
  const auto out = median_filter(xs, 3);
  for (float v : out) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(Signal, MedianFilterPreservesLongRuns) {
  std::vector<float> xs(20, -1.f);
  for (int i = 5; i < 15; ++i) xs[static_cast<std::size_t>(i)] = 1.f;
  const auto out = median_filter(xs, 5);
  EXPECT_FLOAT_EQ(out[10], 1.f);
  EXPECT_FLOAT_EQ(out[2], -1.f);
  EXPECT_EQ(out.size(), xs.size());
}

TEST(Signal, MedianFilterK1IsIdentity) {
  const std::vector<float> xs = {3.f, 1.f, 4.f, 1.f, 5.f};
  EXPECT_EQ(median_filter(xs, 1), xs);
}

TEST(Signal, MedianFilterEvenKThrows) {
  const std::vector<float> xs = {1.f, 2.f};
  EXPECT_THROW(median_filter(xs, 2), InvalidArgument);
  EXPECT_THROW(median_filter(xs, 0), InvalidArgument);
}

// Property: median filter output equals a brute-force reference for random
// inputs over several window sizes.
class MedianFilterProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MedianFilterProperty, MatchesBruteForce) {
  const std::size_t k = GetParam();
  Rng rng(100 + k);
  std::vector<float> xs(64);
  for (auto& v : xs) v = static_cast<float>(rng.uniform(-10.0, 10.0));
  const auto fast = median_filter(xs, k);
  const std::size_t half = k / 2;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(xs.size() - 1, i + half);
    std::vector<float> window(xs.begin() + static_cast<std::ptrdiff_t>(lo),
                              xs.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
    const double expected = stats::median(window);
    EXPECT_NEAR(fast[i], expected, 1e-6) << "i=" << i << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MedianFilterProperty,
                         ::testing::Values(1, 3, 5, 7, 9, 15));

TEST(Signal, RisingAndFallingEdges) {
  const std::vector<float> sq = {-1, -1, 1, 1, -1, 1, -1};
  const auto rise = rising_edges(sq);
  const auto fall = falling_edges(sq);
  EXPECT_EQ(rise, (std::vector<std::size_t>{2, 5}));
  EXPECT_EQ(fall, (std::vector<std::size_t>{4, 6}));
}

TEST(Signal, EdgesOnEmptyAndConstant) {
  EXPECT_TRUE(rising_edges(std::span<const float>{}).empty());
  const std::vector<float> c(10, 1.f);
  EXPECT_TRUE(rising_edges(c).empty());
  EXPECT_TRUE(falling_edges(c).empty());
}

TEST(Signal, MovingAverageConstantIsIdentity) {
  const std::vector<float> xs(16, 2.5f);
  const auto out = moving_average(xs, 5);
  for (float v : out) EXPECT_NEAR(v, 2.5f, 1e-6);
}

TEST(Signal, MovingAverageK1IsIdentity) {
  const std::vector<float> xs = {1.f, 5.f, -2.f};
  const auto out = moving_average(xs, 1);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_NEAR(out[i], xs[i], 1e-6);
}

TEST(Signal, MovingAverageCenterValue) {
  const std::vector<float> xs = {0.f, 3.f, 6.f};
  const auto out = moving_average(xs, 3);
  EXPECT_NEAR(out[1], 3.f, 1e-6);
}

TEST(Signal, StandardizeHasZeroMeanUnitVar) {
  Rng rng(3);
  std::vector<float> xs(256);
  for (auto& v : xs) v = static_cast<float>(rng.uniform(5.0, 9.0));
  const auto out = standardize(xs);
  EXPECT_NEAR(stats::mean(out), 0.0, 1e-5);
  EXPECT_NEAR(stats::stddev(out), 1.0, 1e-4);
}

TEST(Signal, StandardizeConstantIsZeros) {
  const std::vector<float> xs(8, 4.f);
  const auto out = standardize(xs);
  for (float v : out) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(Signal, MinMaxNormalize) {
  const std::vector<float> xs = {2.f, 4.f, 6.f};
  const auto out = min_max_normalize(xs);
  EXPECT_FLOAT_EQ(out[0], 0.f);
  EXPECT_FLOAT_EQ(out[1], 0.5f);
  EXPECT_FLOAT_EQ(out[2], 1.f);
}

TEST(Signal, CrossCorrelateManual) {
  const std::vector<float> sig = {1.f, 2.f, 3.f, 4.f};
  const std::vector<float> ker = {1.f, 1.f};
  const auto out = cross_correlate(sig, ker);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[0], 3.f);
  EXPECT_FLOAT_EQ(out[1], 5.f);
  EXPECT_FLOAT_EQ(out[2], 7.f);
}

TEST(Signal, CrossCorrelateKernelTooLongThrows) {
  const std::vector<float> sig = {1.f};
  const std::vector<float> ker = {1.f, 1.f};
  EXPECT_THROW(cross_correlate(sig, ker), InvalidArgument);
}

TEST(Signal, NormalizedCrossCorrelationPeaksAtEmbedding) {
  Rng rng(7);
  std::vector<float> kernel(32);
  for (auto& v : kernel) v = static_cast<float>(rng.normal());
  std::vector<float> sig(256);
  for (auto& v : sig) v = static_cast<float>(rng.normal() * 0.2);
  // Embed a scaled+shifted copy at offset 100 (NCC is invariant to both).
  for (std::size_t i = 0; i < kernel.size(); ++i)
    sig[100 + i] = 3.0f * kernel[i] + 5.0f;
  const auto ncc = normalized_cross_correlate(sig, kernel);
  EXPECT_EQ(stats::argmax(ncc), 100u);
  EXPECT_NEAR(ncc[100], 1.0, 1e-4);
  for (float v : ncc) {
    EXPECT_LE(v, 1.0f + 1e-4f);
    EXPECT_GE(v, -1.0f - 1e-4f);
  }
}

TEST(Signal, NormalizedCrossCorrelationConstantTemplateIsZero) {
  const std::vector<float> sig(64, 1.f);
  const std::vector<float> ker(8, 3.f);
  const auto ncc = normalized_cross_correlate(sig, ker);
  for (float v : ncc) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(Signal, FindPeaksHeightAndDistance) {
  std::vector<float> xs(50, 0.f);
  xs[10] = 5.f;
  xs[12] = 4.f;   // suppressed: within min_distance of the higher peak
  xs[30] = 3.f;
  xs[40] = 0.5f;  // below min height
  const auto peaks = find_peaks(xs, 1.0f, 5);
  EXPECT_EQ(peaks, (std::vector<std::size_t>{10, 30}));
}

TEST(Signal, FindPeaksAtBoundaries) {
  std::vector<float> xs = {5.f, 0.f, 0.f, 0.f, 6.f};
  const auto peaks = find_peaks(xs, 1.0f, 2);
  EXPECT_EQ(peaks, (std::vector<std::size_t>{0, 4}));
}

TEST(Signal, Absolute) {
  const std::vector<float> xs = {-1.f, 2.f, -3.f};
  const auto out = absolute(xs);
  EXPECT_EQ(out, (std::vector<float>{1.f, 2.f, 3.f}));
}

TEST(Signal, DecimateAverages) {
  const std::vector<float> xs = {1.f, 3.f, 5.f, 7.f, 9.f};
  const auto out = decimate(xs, 2);
  EXPECT_EQ(out.size(), 2u);  // trailing partial block dropped
  EXPECT_FLOAT_EQ(out[0], 2.f);
  EXPECT_FLOAT_EQ(out[1], 6.f);
}

TEST(Signal, DecimateFactor1Copies) {
  const std::vector<float> xs = {1.f, 2.f};
  EXPECT_EQ(decimate(xs, 1), xs);
}

}  // namespace
}  // namespace scalocate::signal
