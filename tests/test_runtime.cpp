// Runtime subsystem tests: SampleRing / ThreadPool units, streaming-vs-
// offline parity across chunk sizes (including chunk < window), and a
// LocatorService smoke test running many concurrent jobs against one
// shared model.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>

#include "core/locator.hpp"
#include "runtime/locator_service.hpp"
#include "runtime/ring_buffer.hpp"
#include "runtime/streaming_locator.hpp"
#include "runtime/thread_pool.hpp"
#include "trace/scenario.hpp"

namespace scalocate {
namespace {

// ---------------------------------------------------------------------------
// SampleRing
// ---------------------------------------------------------------------------

TEST(SampleRing, AbsoluteIndexingSurvivesDiscards) {
  runtime::SampleRing ring;
  std::vector<float> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<float>(i);
  // Feed in uneven chunks.
  ring.append(std::span<const float>(data.data(), 7000));
  ring.append(std::span<const float>(data.data() + 7000, 13000));
  EXPECT_EQ(ring.size(), 20000u);

  ring.discard_below(12000);
  EXPECT_LE(ring.oldest(), 12000u);
  const auto view = ring.view(12000, 100);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_FLOAT_EQ(view[i], static_cast<float>(12000 + i));

  // Discarded samples are gone once compaction ran past them.
  if (ring.oldest() > 0) {
    EXPECT_THROW(ring.view(0, 10), Error);
  }
  // Future samples are never readable.
  EXPECT_THROW(ring.view(19990, 20), Error);
}

TEST(SampleRing, ViewRejectsHugeCountsWithoutOverflow) {
  runtime::SampleRing ring;
  std::vector<float> data(1000, 1.0f);
  ring.append(data);
  // Regression: begin + count used to wrap for counts near SIZE_MAX, so
  // the bound check passed and view() returned a span far past the buffer.
  EXPECT_THROW(ring.view(8, std::numeric_limits<std::size_t>::max() - 4),
               Error);
  EXPECT_THROW(ring.view(0, std::numeric_limits<std::size_t>::max()), Error);
  EXPECT_THROW(ring.view(999, std::numeric_limits<std::size_t>::max() - 998),
               Error);
  // A begin past the stream head is rejected even for count 0.
  EXPECT_THROW(ring.view(1001, 0), Error);
  // Exact-fit views still work.
  EXPECT_EQ(ring.view(0, 1000).size(), 1000u);
  EXPECT_EQ(ring.view(1000, 0).size(), 0u);
}

TEST(SampleRing, DiscardBelowCompactionBoundaries) {
  // Lazy compaction fires only once the dead prefix (a) reaches half the
  // buffer AND (b) strictly exceeds 4096 samples. Probe both boundaries.
  std::vector<float> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<float>(i);

  runtime::SampleRing half_only;
  half_only.append(data);
  half_only.discard_below(4096);  // exactly half AND exactly 4096: keep
  EXPECT_EQ(half_only.oldest(), 0u);
  half_only.discard_below(4097);  // one past both bounds: compact
  EXPECT_EQ(half_only.oldest(), 4097u);
  const auto v = half_only.view(4097, 64);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_FLOAT_EQ(v[i], static_cast<float>(4097 + i));

  runtime::SampleRing above_4096;
  above_4096.append(data);
  above_4096.append(data);  // 16384 resident
  above_4096.discard_below(4100);  // > 4096 but far below half: keep
  EXPECT_EQ(above_4096.oldest(), 0u);

  // Views track absolute indices across interleaved append/discard cycles
  // (each append or compaction may invalidate prior spans; fresh views
  // must still land on the right absolute samples).
  runtime::SampleRing ring;
  std::size_t expect_base = 0;
  for (int round = 0; round < 8; ++round) {
    ring.append(data);
    const std::size_t keep = ring.size() > 6000 ? ring.size() - 6000 : 0;
    ring.discard_below(keep);
    expect_base = keep;
    const auto view = ring.view(ring.size() - 10, 10);
    for (std::size_t i = 0; i < 10; ++i)
      EXPECT_FLOAT_EQ(view[i], static_cast<float>(8192 - 10 + i));
    EXPECT_LE(ring.oldest(), expect_base);
  }
}

TEST(SampleRing, DiscardIsMonotonicAndBounded) {
  runtime::SampleRing ring;
  std::vector<float> chunk(4096, 1.0f);
  for (int i = 0; i < 64; ++i) {
    ring.append(chunk);
    ring.discard_below(ring.size() > 8192 ? ring.size() - 8192 : 0);
  }
  EXPECT_EQ(ring.size(), 64u * 4096u);
  // Lazy compaction keeps at most ~2x the live tail resident.
  EXPECT_LE(ring.size() - ring.oldest(), 2u * 8192u + 4096u);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsAllTasksAndReportsWorkerIndex) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&sum](std::size_t worker) {
      sum.fetch_add(1);
      return worker;
    }));
  }
  for (auto& f : futures) {
    const std::size_t worker = f.get();
    EXPECT_LT(worker, 4u);
  }
  EXPECT_EQ(sum.load(), 64);
  pool.wait_idle();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  runtime::ThreadPool pool(2);
  auto f = pool.submit([](std::size_t) -> int {
    throw std::runtime_error("job failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ShutdownRunsQueuedButUnstartedTasks) {
  // The dtor contract: every queued task runs to completion before the
  // workers join, so a future handed out by submit() NEVER dangles — even
  // for tasks that had not started when shutdown began.
  std::vector<std::future<int>> futures;
  {
    runtime::ThreadPool pool(1);
    std::promise<void> gate;
    auto opened = gate.get_future().share();
    futures.push_back(pool.submit([opened](std::size_t) {
      opened.wait();  // pins the only worker while the backlog builds
      return 0;
    }));
    for (int i = 1; i < 9; ++i)
      futures.push_back(pool.submit([i](std::size_t) { return i; }));
    EXPECT_GT(pool.pending(), 0u);  // the backlog really is unstarted
    gate.set_value();
  }  // ~ThreadPool while most tasks are still queued
  for (int i = 0; i < 9; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPool, ShutdownResolvesQueuedFailingTasksExceptionally) {
  // Same contract for tasks that fail while draining during shutdown: the
  // exception lands in the future, typed, not on the worker thread.
  std::future<int> doomed;
  {
    runtime::ThreadPool pool(1);
    std::promise<void> gate;
    auto opened = gate.get_future().share();
    pool.post([opened](std::size_t) { opened.wait(); });
    doomed = pool.submit(
        [](std::size_t) -> int { throw InvalidArgument("queued failure"); });
    gate.set_value();
  }
  EXPECT_THROW(doomed.get(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Trained fixture shared by the parity and service tests (training is the
// expensive part, so it runs once per suite).
// ---------------------------------------------------------------------------

class RuntimeLocator : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    key_ = new crypto::Key16{};
    for (int i = 0; i < 16; ++i)
      (*key_)[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x20 + i);

    sc_ = new trace::ScenarioConfig{};
    sc_->cipher = crypto::CipherId::kAes128;
    sc_->random_delay = trace::RandomDelayConfig::kRd2;
    sc_->seed = 77;

    auto acq = trace::acquire_cipher_traces(*sc_, 320, *key_);
    auto noise = trace::acquire_noise_trace(*sc_, 80000);

    core::LocatorConfig lc;
    lc.params = core::PipelineParams::defaults_for(sc_->cipher);
    lc.params.epochs = 8;
    // Streaming cannot run whole-trace Otsu, so parity requires the fixed
    // decision boundary of the linear class margin.
    lc.params.threshold = 0.0f;
    // Plateau-split merging on, so every parity test below also proves the
    // streaming scan mirrors the offline merge rule bit for bit.
    lc.params.merge_gap_windows = 2;
    locator_ = new core::CoLocator(lc);
    locator_->train(acq, noise);

    eval_ = new trace::Trace(
        trace::acquire_eval_trace(*sc_, 16, *key_, false));
    offline_ = new std::vector<std::size_t>(locator_->locate(eval_->samples));
  }

  static void TearDownTestSuite() {
    delete offline_;
    delete eval_;
    delete locator_;
    delete sc_;
    delete key_;
  }

  /// Streams `samples` in `chunk`-sized pieces and returns every detection.
  static std::vector<std::size_t> stream_starts(
      std::span<const float> samples, std::size_t chunk) {
    runtime::StreamingLocator sl(*locator_);
    std::vector<std::size_t> starts;
    for (std::size_t off = 0; off < samples.size(); off += chunk) {
      const std::size_t n = std::min(chunk, samples.size() - off);
      for (const auto& d : sl.feed(samples.subspan(off, n)))
        starts.push_back(d.start);
    }
    for (const auto& d : sl.finish()) starts.push_back(d.start);
    return starts;
  }

  static crypto::Key16* key_;
  static trace::ScenarioConfig* sc_;
  static core::CoLocator* locator_;
  static trace::Trace* eval_;
  static std::vector<std::size_t>* offline_;
};

crypto::Key16* RuntimeLocator::key_ = nullptr;
trace::ScenarioConfig* RuntimeLocator::sc_ = nullptr;
core::CoLocator* RuntimeLocator::locator_ = nullptr;
trace::Trace* RuntimeLocator::eval_ = nullptr;
std::vector<std::size_t>* RuntimeLocator::offline_ = nullptr;

// ---------------------------------------------------------------------------
// Streaming parity
// ---------------------------------------------------------------------------

TEST_F(RuntimeLocator, OfflineBaselineDetectsSomething) {
  // The parity tests below are vacuous on an empty baseline; make sure the
  // fixture's training produced a usable detector.
  ASSERT_FALSE(offline_->empty());
}

TEST_F(RuntimeLocator, StreamingMatchesOfflineChunk256) {
  EXPECT_EQ(stream_starts(eval_->samples, 256), *offline_);
}

TEST_F(RuntimeLocator, StreamingMatchesOfflineChunk4096) {
  EXPECT_EQ(stream_starts(eval_->samples, 4096), *offline_);
}

TEST_F(RuntimeLocator, StreamingMatchesOfflineFullTrace) {
  EXPECT_EQ(stream_starts(eval_->samples, eval_->samples.size()), *offline_);
}

TEST_F(RuntimeLocator, StreamingMatchesOfflineChunkSmallerThanWindow) {
  // 48-sample chunks are far below the inference window (the classifier
  // must wait several feeds before the first window exists).
  ASSERT_LT(48u, locator_->config().params.n_inf);
  EXPECT_EQ(stream_starts(eval_->samples, 48), *offline_);
}

TEST_F(RuntimeLocator, TruncatedTailParity) {
  // A capture that stops mid-CO (trailing plateau, no falling edge) must
  // produce identical detections offline and streamed, at every cut depth
  // into the trailing CO and for chunk sizes around the window.
  const auto& last = eval_->cos.back();
  const std::size_t n_inf = locator_->config().params.n_inf;
  const std::size_t co_len = last.end_sample - last.start_sample;
  const std::size_t cuts[] = {last.start_sample + n_inf / 2,
                              last.start_sample + 2 * n_inf,
                              last.start_sample + co_len / 3,
                              last.start_sample + co_len - 1};
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, eval_->samples.size());
    const std::span<const float> sub(eval_->samples.data(), cut);
    const auto offline = locator_->locate(sub);
    EXPECT_EQ(stream_starts(sub, 1024), offline) << "cut=" << cut;
    EXPECT_EQ(stream_starts(sub, 97), offline) << "cut=" << cut;
    EXPECT_EQ(stream_starts(sub, sub.size()), offline) << "cut=" << cut;
  }
}

TEST_F(RuntimeLocator, ScenarioSuiteStreamingParity) {
  // Every countermeasure scenario in the registry must keep the streaming
  // path bit-identical to offline locate — hostile captures included.
  for (const auto& c : trace::ScenarioSuite::all()) {
    const auto cap = trace::ScenarioSuite::acquire(c, *sc_, 6, *key_);
    const auto offline = locator_->locate(cap.trace.samples);
    EXPECT_EQ(stream_starts(cap.trace.samples, 2048), offline) << c.name;
  }
}

TEST_F(RuntimeLocator, StreamingEmitsOnlineNotJustAtFinish) {
  runtime::StreamingLocator sl(*locator_);
  std::size_t before_finish = 0;
  const auto samples = std::span<const float>(eval_->samples);
  for (std::size_t off = 0; off < samples.size(); off += 2048)
    before_finish +=
        sl.feed(samples.subspan(off, std::min<std::size_t>(
                                         2048, samples.size() - off)))
            .size();
  const std::size_t at_finish = sl.finish().size();
  EXPECT_EQ(before_finish + at_finish, offline_->size());
  // All but the last few detections must be available before end-of-stream.
  EXPECT_GE(before_finish + 2, offline_->size());
}

TEST_F(RuntimeLocator, StreamingMemoryStaysBounded) {
  runtime::StreamingLocator sl(*locator_);
  const auto samples = std::span<const float>(eval_->samples);
  std::size_t max_resident = 0;
  for (std::size_t off = 0; off < samples.size(); off += 1024) {
    sl.feed(samples.subspan(off,
                            std::min<std::size_t>(1024, samples.size() - off)));
    max_resident = std::max(max_resident, sl.resident_samples());
  }
  sl.finish();
  ASSERT_GT(samples.size(), 4u * 16384u);
  // The tail the pipeline needs is the window + filter lag + alignment
  // radius + compaction slack: a few thousand samples, nowhere near the
  // full trace.
  EXPECT_LT(max_resident, samples.size() / 4);
}

TEST_F(RuntimeLocator, ResetAllowsReuse) {
  runtime::StreamingLocator sl(*locator_);
  sl.feed(eval_->samples);
  auto first = sl.finish();
  EXPECT_THROW(sl.feed(eval_->samples), Error);
  sl.reset();
  sl.feed(eval_->samples);
  auto second = sl.finish();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i].start, second[i].start);
}

// ---------------------------------------------------------------------------
// LocatorService
// ---------------------------------------------------------------------------

TEST_F(RuntimeLocator, ServiceRunsConcurrentJobsAgainstSharedModel) {
  runtime::LocatorService service(*locator_, {.workers = 4});
  EXPECT_EQ(service.worker_count(), 4u);

  constexpr std::size_t kJobs = 10;
  std::vector<std::future<std::vector<std::size_t>>> futures;
  futures.reserve(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j)
    futures.push_back(service.submit_view(eval_->samples));

  for (auto& f : futures) EXPECT_EQ(f.get(), *offline_);
  // Futures resolve before the worker-side accounting lands; drain() waits
  // for the books (same convention as every other counter check here).
  service.drain();
  EXPECT_EQ(service.jobs_submitted(), kJobs);
  EXPECT_EQ(service.jobs_completed(), kJobs);
}

TEST_F(RuntimeLocator, ServiceHandlesMixedAndEmptyTraces) {
  runtime::LocatorService service(*locator_, {.workers = 3});
  auto empty = service.submit(std::vector<float>{});
  auto shorter = service.submit(std::vector<float>(
      eval_->samples.begin(), eval_->samples.begin() + 50000));
  auto full = service.submit(std::vector<float>(eval_->samples));

  EXPECT_TRUE(empty.get().empty());
  const auto expect_short = locator_->locate(
      std::span<const float>(eval_->samples.data(), 50000));
  EXPECT_EQ(shorter.get(), expect_short);
  EXPECT_EQ(full.get(), *offline_);
  service.drain();
  EXPECT_EQ(service.jobs_completed(), 3u);
}

TEST_F(RuntimeLocator, DrainRacingSubmitNeverDeadlocksAndResolvesEveryFuture) {
  // drain() hammered from the main thread while a submitter keeps pushing
  // jobs (half of them cancelled immediately). The contract under the race:
  // no deadlock, every future resolves — with the right result or with a
  // typed error — and the accounting converges.
  runtime::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 4;  // small: drain and backpressure really contend
  runtime::LocatorService service(*locator_, cfg);

  const auto slice = std::span<const float>(eval_->samples).subspan(0, 4096);
  const auto expected = locator_->locate(slice);

  constexpr std::size_t kJobs = 60;
  std::vector<std::future<std::vector<std::size_t>>> futures(kJobs);
  std::vector<runtime::LocatorService::CancelFlag> flags(kJobs);
  std::atomic<std::size_t> produced{0};
  std::thread submitter([&] {
    for (std::size_t i = 0; i < kJobs; ++i) {
      flags[i] = std::make_shared<std::atomic<bool>>(false);
      futures[i] = service.submit_view(slice, flags[i]);
      if (i % 2 == 1) flags[i]->store(true);  // orphan every other job
      produced.store(i + 1);
    }
  });

  // Race drain() against the live submitter from this thread.
  while (produced.load() < kJobs) service.drain();
  submitter.join();
  service.drain();

  std::size_t ok = 0, cancelled = 0;
  for (auto& f : futures) {
    try {
      EXPECT_EQ(f.get(), expected);
      ++ok;
    } catch (const Cancelled&) {
      ++cancelled;  // the orphaned futures resolve exceptionally, typed
    }
  }
  EXPECT_EQ(ok + cancelled, kJobs);
  EXPECT_EQ(service.jobs_completed(), service.jobs_submitted());
  EXPECT_EQ(service.jobs_completed(), kJobs);
}

}  // namespace
}  // namespace scalocate
