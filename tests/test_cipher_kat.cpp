// Known-answer tests for the hand-rolled cipher cores against their
// official standard vectors: FIPS-197 for AES-128 and RFC 3713 for
// Camellia-128.
//
// Everything else in the test suite checks the ciphers against themselves
// (round trips, event-stream shapes, trace parity); these are the only
// tests that pin the implementations to the outside world. A cipher core
// that drifts from its specification would still "work" end-to-end — the
// locator detects the simulated power shape, not the algebra — but the
// simulated COs would no longer be executions of the real algorithm, and
// every claim the reproduction makes about AES/Camellia traces would
// silently be about something else. First slice of the ROADMAP "widen the
// cipher space" item.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "crypto/cipher.hpp"

namespace {

using scalocate::crypto::Block16;
using scalocate::crypto::CipherId;
using scalocate::crypto::Key16;
using scalocate::crypto::make_cipher;

/// Parses exactly 32 hex characters into 16 bytes.
std::array<std::uint8_t, 16> from_hex(const std::string& hex) {
  EXPECT_EQ(hex.size(), 32u);
  std::array<std::uint8_t, 16> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::string byte = hex.substr(2 * i, 2);
    out[i] = static_cast<std::uint8_t>(std::stoul(byte, nullptr, 16));
  }
  return out;
}

/// Minimal sink: proves the traced path executed without modeling power.
struct CountingSink final : scalocate::crypto::EventSink {
  std::size_t events = 0;
  void on_event(const scalocate::crypto::DataEvent&) override { ++events; }
};

struct KnownAnswer {
  const char* source;  ///< which document the vector comes from
  CipherId cipher;
  const char* key_hex;
  const char* plaintext_hex;
  const char* ciphertext_hex;
};

const KnownAnswer kVectors[] = {
    // FIPS-197 Appendix C.1 (AES-128 example vectors).
    {"FIPS-197 C.1", CipherId::kAes128, "000102030405060708090a0b0c0d0e0f",
     "00112233445566778899aabbccddeeff", "69c4e0d86a7b0430d8cdb78070b4c55a"},
    // FIPS-197 Appendix B (the worked cipher example).
    {"FIPS-197 B", CipherId::kAes128, "2b7e151628aed2a6abf7158809cf4f3c",
     "3243f6a8885a308d313198a2e0370734", "3925841d02dc09fbdc118597196a0b32"},
    // RFC 3713 section A (128-bit key test data).
    {"RFC 3713 A", CipherId::kCamellia128,
     "0123456789abcdeffedcba9876543210", "0123456789abcdeffedcba9876543210",
     "67673138549669730857065648eabe43"},
};

class CipherKat : public ::testing::TestWithParam<KnownAnswer> {};

TEST_P(CipherKat, EncryptMatchesStandardVector) {
  const KnownAnswer& ka = GetParam();
  const auto cipher = make_cipher(ka.cipher);
  cipher->set_key(Key16(from_hex(ka.key_hex)));
  const Block16 ct = cipher->encrypt(Block16(from_hex(ka.plaintext_hex)));
  EXPECT_EQ(ct, Block16(from_hex(ka.ciphertext_hex))) << ka.source;
}

TEST_P(CipherKat, DecryptInvertsStandardVector) {
  const KnownAnswer& ka = GetParam();
  const auto cipher = make_cipher(ka.cipher);
  cipher->set_key(Key16(from_hex(ka.key_hex)));
  const Block16 pt = cipher->decrypt(Block16(from_hex(ka.ciphertext_hex)));
  EXPECT_EQ(pt, Block16(from_hex(ka.plaintext_hex))) << ka.source;
}

TEST_P(CipherKat, TracedEncryptMatchesUntraced) {
  // The EventSink plumbing that feeds the power simulator must observe the
  // execution, never perturb it: tracing an encryption yields the same
  // standard ciphertext.
  const KnownAnswer& ka = GetParam();
  const auto cipher = make_cipher(ka.cipher);
  cipher->set_key(Key16(from_hex(ka.key_hex)));
  CountingSink sink;
  const Block16 ct = cipher->encrypt(Block16(from_hex(ka.plaintext_hex)), &sink);
  EXPECT_EQ(ct, Block16(from_hex(ka.ciphertext_hex))) << ka.source;
  EXPECT_GT(sink.events, 0u) << "traced run emitted no events";
}

INSTANTIATE_TEST_SUITE_P(StandardVectors, CipherKat,
                         ::testing::ValuesIn(kVectors),
                         [](const ::testing::TestParamInfo<KnownAnswer>& param_info) {
                           std::string name = param_info.param.source;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

}  // namespace
