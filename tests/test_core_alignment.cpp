// Tests for the Alignment stage.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/alignment.hpp"

namespace scalocate::core {
namespace {

std::vector<float> ramp(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i);
  return v;
}

TEST(Alignment, CutsSegmentsAtStarts) {
  const auto trace = ramp(100);
  const auto a = align_cos(trace, {10, 50}, 5);
  ASSERT_EQ(a.segments.size(), 2u);
  EXPECT_EQ(a.segment_length, 5u);
  EXPECT_FLOAT_EQ(a.segments[0][0], 10.f);
  EXPECT_FLOAT_EQ(a.segments[1][4], 54.f);
  EXPECT_EQ(a.origins, (std::vector<std::size_t>{10, 50}));
}

TEST(Alignment, DropsSegmentsPastEnd) {
  const auto trace = ramp(100);
  const auto a = align_cos(trace, {90, 96}, 10);
  ASSERT_EQ(a.segments.size(), 1u);
  EXPECT_EQ(a.origins[0], 90u);
}

TEST(Alignment, PositiveOffsetShiftsCut) {
  const auto trace = ramp(100);
  const auto a = align_cos(trace, {10}, 5, 3);
  EXPECT_FLOAT_EQ(a.segments[0][0], 13.f);
}

TEST(Alignment, NegativeOffsetClampsAtZero) {
  const auto trace = ramp(100);
  const auto a = align_cos(trace, {2}, 5, -10);
  ASSERT_EQ(a.segments.size(), 1u);
  EXPECT_FLOAT_EQ(a.segments[0][0], 0.f);
  EXPECT_EQ(a.origins[0], 0u);
}

TEST(Alignment, EmptyStartsGiveEmptyResult) {
  const auto trace = ramp(10);
  const auto a = align_cos(trace, {}, 5);
  EXPECT_TRUE(a.segments.empty());
}

TEST(Alignment, ZeroLengthThrows) {
  const auto trace = ramp(10);
  EXPECT_THROW(align_cos(trace, {0}, 0), Error);
}

}  // namespace
}  // namespace scalocate::core
