// Tests for the CPA engine and leakage models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crypto/aes128.hpp"
#include "sca/cpa.hpp"
#include "sca/leakage.hpp"

namespace scalocate::sca {
namespace {

TEST(Leakage, HammingWeightModel) {
  EXPECT_DOUBLE_EQ(apply_model(LeakageModel::kHammingWeight, 0x00), 0.0);
  EXPECT_DOUBLE_EQ(apply_model(LeakageModel::kHammingWeight, 0xff), 8.0);
  EXPECT_DOUBLE_EQ(apply_model(LeakageModel::kHammingWeight, 0x0f), 4.0);
}

TEST(Leakage, IdentityAndBitModels) {
  EXPECT_DOUBLE_EQ(apply_model(LeakageModel::kIdentity, 0xab), 171.0);
  EXPECT_DOUBLE_EQ(apply_model(LeakageModel::kBit0, 0x03), 1.0);
  EXPECT_DOUBLE_EQ(apply_model(LeakageModel::kBit0, 0x02), 0.0);
}

TEST(Leakage, AesSubbyteIntermediate) {
  crypto::Block16 pt{};
  pt[0] = 0x53;
  // sbox(0x53 ^ 0x00) = sbox(0x53) = 0xed.
  EXPECT_EQ(aes_subbyte_intermediate(pt, 0, 0x00), 0xed);
  // sbox(0x53 ^ 0x53) = sbox(0) = 0x63.
  EXPECT_EQ(aes_subbyte_intermediate(pt, 0, 0x53), 0x63);
  EXPECT_THROW(aes_subbyte_intermediate(pt, 16, 0), Error);
}

/// Builds synthetic traces leaking HW(sbox(pt ^ key)) at a known sample.
class SyntheticCpa : public ::testing::Test {
 protected:
  static constexpr std::size_t kSamples = 64;
  static constexpr std::size_t kLeakSample = 37;

  void feed(CpaAttack& cpa, std::size_t n_traces, double noise_sigma,
            std::uint64_t seed) {
    Rng rng(seed);
    for (std::size_t t = 0; t < n_traces; ++t) {
      crypto::Block16 pt{};
      rng.fill_bytes(pt.data(), 16);
      std::vector<float> trace(kSamples);
      for (auto& v : trace) v = static_cast<float>(rng.normal(0.0, noise_sigma));
      for (std::size_t b = 0; b < 16; ++b) {
        const auto inter = aes_subbyte_intermediate(pt, b, key_[b]);
        // Each byte leaks at its own sample position.
        trace[(kLeakSample + b) % kSamples] +=
            0.5f * static_cast<float>(apply_model(LeakageModel::kHammingWeight,
                                                  inter));
      }
      cpa.add_trace(trace, pt);
    }
  }

  crypto::Key16 key_ = [] {
    crypto::Key16 k{};
    for (int i = 0; i < 16; ++i)
      k[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0xa0 + i);
    return k;
  }();
};

TEST_F(SyntheticCpa, RecoversKeyFromCleanLeakage) {
  CpaConfig cfg;
  cfg.segment_length = kSamples;
  cfg.aggregate_bin = 1;
  CpaAttack cpa(cfg);
  feed(cpa, 120, 0.2, 5);
  const auto kr = cpa.rank_key(key_);
  EXPECT_TRUE(kr.full_key_rank1());
  EXPECT_EQ(cpa.recovered_key(), key_);
}

TEST_F(SyntheticCpa, RankImprovesWithTraces) {
  CpaConfig cfg;
  cfg.segment_length = kSamples;
  cfg.aggregate_bin = 1;
  CpaAttack few(cfg), many(cfg);
  feed(few, 12, 2.5, 7);
  feed(many, 400, 2.5, 7);
  const auto kr_few = few.rank_key(key_);
  const auto kr_many = many.rank_key(key_);
  EXPECT_GT(kr_many.rank1_bytes, kr_few.rank1_bytes);
}

TEST_F(SyntheticCpa, AggregationToleratesJitter) {
  // Leak position jitters +/-4 samples; per-sample CPA smears, binned CPA
  // with bin 16 still integrates the leak.
  CpaConfig cfg;
  cfg.segment_length = kSamples;
  cfg.aggregate_bin = 16;
  CpaAttack cpa(cfg);
  Rng rng(11);
  for (int t = 0; t < 600; ++t) {
    crypto::Block16 pt{};
    rng.fill_bytes(pt.data(), 16);
    std::vector<float> trace(kSamples);
    for (auto& v : trace) v = static_cast<float>(rng.normal(0.0, 0.3));
    const auto jitter = static_cast<std::size_t>(rng.uniform_int(0, 8));
    const auto inter = aes_subbyte_intermediate(pt, 0, key_[0]);
    trace[(16 + jitter) % kSamples] += 0.5f *
        static_cast<float>(apply_model(LeakageModel::kHammingWeight, inter));
    cpa.add_trace(trace, pt);
  }
  const auto rank = cpa.rank_byte(0, key_[0]);
  EXPECT_EQ(rank.true_key_rank, 0u);
}

TEST(Cpa, ConfigValidation) {
  CpaConfig bad;
  bad.segment_length = 0;
  EXPECT_THROW(CpaAttack{bad}, Error);
  CpaConfig ok;
  ok.segment_length = 8;
  ok.aggregate_bin = 16;  // bigger than segment
  EXPECT_THROW(CpaAttack{ok}, Error);
}

TEST(Cpa, ShortSegmentThrows) {
  CpaConfig cfg;
  cfg.segment_length = 32;
  CpaAttack cpa(cfg);
  std::vector<float> tiny(8);
  EXPECT_THROW(cpa.add_trace(tiny, crypto::Block16{}), Error);
}

TEST(Cpa, NoTracesGiveZeroCorrelation) {
  CpaConfig cfg;
  cfg.segment_length = 16;
  cfg.aggregate_bin = 4;
  CpaAttack cpa(cfg);
  EXPECT_DOUBLE_EQ(cpa.best_correlation(0, 0), 0.0);
  EXPECT_EQ(cpa.bins(), 4u);
}

}  // namespace
}  // namespace scalocate::sca
