// scalocate::api facade tests: versioned artifact round-trip + corruption
// handling (distinct structured error per failure mode), train-once/
// serve-anywhere parity through Engine/Session for whole-trace and
// streamed workloads, backpressure, cancellation, and the multi-model
// registry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "api/scalocate.hpp"
#include "trace/scenario.hpp"

namespace scalocate {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Streams `samples` through an api::Stream in `chunk`-sized pieces
/// (poll style) and returns every detection start.
std::vector<std::size_t> stream_starts(api::Session& session,
                                       std::span<const float> samples,
                                       std::size_t chunk) {
  auto stream = session.open_stream();
  std::vector<std::size_t> starts;
  for (std::size_t off = 0; off < samples.size(); off += chunk) {
    const std::size_t n = std::min(chunk, samples.size() - off);
    for (const auto& d : stream.feed(samples.subspan(off, n)))
      starts.push_back(d.start);
  }
  for (const auto& d : stream.finish()) starts.push_back(d.start);
  return starts;
}

// ---------------------------------------------------------------------------
// Trained fixture shared by every api test (training is the expensive part,
// so it runs once per suite). Thresh is fixed so offline, streamed, and
// artifact-loaded paths share one decision boundary.
// ---------------------------------------------------------------------------

class ApiFacade : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    key_ = new crypto::Key16{};
    for (int i = 0; i < 16; ++i)
      (*key_)[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x30 + i);

    sc_ = new trace::ScenarioConfig{};
    sc_->cipher = crypto::CipherId::kCamellia128;  // shortest CO: fast suite
    sc_->random_delay = trace::RandomDelayConfig::kRd2;
    sc_->seed = 404;

    auto acq = trace::acquire_cipher_traces(*sc_, 224, *key_);
    auto noise = trace::acquire_noise_trace(*sc_, 60000);

    core::LocatorConfig lc;
    lc.params = core::PipelineParams::defaults_for(sc_->cipher);
    lc.params.sizes = {224, 160, 96};
    lc.params.epochs = 6;
    lc.params.threshold = 0.0f;
    locator_ = new core::CoLocator(lc);
    locator_->train(acq, noise);

    artifact_ = new std::string(temp_path("scalocate_api_model.scart"));
    locator_->export_artifact(*artifact_);

    eval_ = new trace::Trace(trace::acquire_eval_trace(*sc_, 8, *key_, false));
    offline_ = new std::vector<std::size_t>(locator_->locate(eval_->samples));
  }

  static void TearDownTestSuite() {
    std::remove(artifact_->c_str());
    delete offline_;
    delete eval_;
    delete artifact_;
    delete locator_;
    delete sc_;
    delete key_;
  }

  /// Copies the pristine artifact, applies `mutate` to the bytes, and
  /// returns the mutated file's path.
  static std::string mutated_artifact(
      const char* name, const std::function<void(std::vector<char>&)>& mutate) {
    auto bytes = read_bytes(*artifact_);
    mutate(bytes);
    const auto path = temp_path(name);
    write_bytes(path, bytes);
    return path;
  }

  static crypto::Key16* key_;
  static trace::ScenarioConfig* sc_;
  static core::CoLocator* locator_;
  static std::string* artifact_;
  static trace::Trace* eval_;
  static std::vector<std::size_t>* offline_;
};

crypto::Key16* ApiFacade::key_ = nullptr;
trace::ScenarioConfig* ApiFacade::sc_ = nullptr;
core::CoLocator* ApiFacade::locator_ = nullptr;
std::string* ApiFacade::artifact_ = nullptr;
trace::Trace* ApiFacade::eval_ = nullptr;
std::vector<std::size_t>* ApiFacade::offline_ = nullptr;

TEST_F(ApiFacade, BaselineDetectsSomething) {
  ASSERT_FALSE(offline_->empty());
}

// ---------------------------------------------------------------------------
// Artifact round-trip
// ---------------------------------------------------------------------------

TEST_F(ApiFacade, RoundTripIsByteIdentical) {
  // save -> load -> save must reproduce the file bit for bit: every config
  // field, calibration value, weight, and buffer survives the trip.
  auto loaded = core::CoLocator::from_artifact(*artifact_);
  const auto second = temp_path("scalocate_api_rt.scart");
  loaded.export_artifact(second);
  EXPECT_EQ(read_bytes(*artifact_), read_bytes(second));
  std::remove(second.c_str());
}

TEST_F(ApiFacade, LoadedLocatorIsReadyToServe) {
  auto loaded = core::CoLocator::from_artifact(*artifact_);
  EXPECT_TRUE(loaded.is_trained());
  EXPECT_EQ(loaded.calibration_offset(), locator_->calibration_offset());
  EXPECT_DOUBLE_EQ(loaded.mean_co_length(), locator_->mean_co_length());
  EXPECT_EQ(loaded.calibrated_threshold(), locator_->calibrated_threshold());
  ASSERT_EQ(loaded.fine_template().size(), locator_->fine_template().size());
  // Bit-identical detections without any retraining.
  EXPECT_EQ(loaded.locate(eval_->samples), *offline_);
}

// ---------------------------------------------------------------------------
// Corruption: each failure mode raises its own scalocate::Error subtype.
// ---------------------------------------------------------------------------

TEST_F(ApiFacade, TruncatedArtifactThrowsTruncated) {
  const auto full = read_bytes(*artifact_);
  ASSERT_GT(full.size(), 64u);
  // Cut in the header, mid-config, mid-weights, and just before the end
  // marker; every cut must surface as ArtifactTruncated, never a crash or
  // a silently garbage model.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, std::size_t{40}, full.size() / 2,
        full.size() - 4}) {
    auto bytes = full;
    bytes.resize(keep);
    const auto path = temp_path("scalocate_api_trunc.scart");
    write_bytes(path, bytes);
    EXPECT_THROW(api::load_artifact(path), api::ArtifactTruncated)
        << "truncated to " << keep << " bytes";
    std::remove(path.c_str());
  }
}

TEST_F(ApiFacade, BadMagicThrowsBadMagic) {
  const auto path = mutated_artifact("scalocate_api_magic.scart",
                                     [](std::vector<char>& b) { b[0] ^= 0x5a; });
  EXPECT_THROW(api::load_artifact(path), api::ArtifactBadMagic);
  std::remove(path.c_str());
}

TEST_F(ApiFacade, WrongVersionThrowsVersionMismatch) {
  const auto path =
      mutated_artifact("scalocate_api_ver.scart", [](std::vector<char>& b) {
        b[api::kVersionOffset] = 99;  // future format version
      });
  EXPECT_THROW(api::load_artifact(path), api::ArtifactVersionMismatch);
  std::remove(path.c_str());
}

/// Recomputes and patches the integrity trailer after a byte edit, so the
/// mutation reaches the field validation instead of tripping the checksum.
void refresh_checksum(std::vector<char>& b) {
  const auto crc =
      api::artifact_checksum({b.data() + 8, b.size() - 8 - api::kTrailerBytes});
  std::memcpy(b.data() + b.size() - api::kTrailerBytes, &crc, sizeof(crc));
}

TEST_F(ApiFacade, ArchitectureMismatchThrowsArchMismatch) {
  // Grow the declared kernel size (with a valid checksum): the descriptor
  // then disagrees with the conv parameter shapes in the weight payload.
  const auto path =
      mutated_artifact("scalocate_api_arch.scart", [](std::vector<char>& b) {
        b[api::kCnnKernelSizeOffset] =
            static_cast<char>(b[api::kCnnKernelSizeOffset] + 1);
        refresh_checksum(b);
      });
  EXPECT_THROW(api::load_artifact(path), api::ArtifactArchMismatch);
  std::remove(path.c_str());
}

TEST_F(ApiFacade, CorruptedWeightByteThrowsChecksumMismatch) {
  // A flipped bit deep inside the weight payload keeps the file perfectly
  // well-formed; only the CRC trailer can catch it.
  const auto path =
      mutated_artifact("scalocate_api_crc.scart", [](std::vector<char>& b) {
        b[b.size() - 40] ^= 0x01;
      });
  EXPECT_THROW(api::load_artifact(path), api::ArtifactChecksumMismatch);
  std::remove(path.c_str());
}

TEST_F(ApiFacade, OversizedDescriptorIsRejectedBeforeAllocation) {
  // A hostile descriptor implying a weight tensor far larger than the file
  // must fail cleanly (no giant allocation, no bad_alloc escaping).
  const auto path =
      mutated_artifact("scalocate_api_huge.scart", [](std::vector<char>& b) {
        b[api::kCnnConfigOffset + 1] = 0x10;      // base_filters ~ 4096
        b[api::kCnnKernelSizeOffset + 2] = 0x08;  // kernel_size ~ 512k
        refresh_checksum(b);
      });
  EXPECT_THROW(api::load_artifact(path), api::ArtifactError);
  std::remove(path.c_str());
}

TEST_F(ApiFacade, AllArtifactErrorsShareOneBase) {
  const auto path = mutated_artifact("scalocate_api_base.scart",
                                     [](std::vector<char>& b) { b[0] ^= 1; });
  // Deployments can catch the whole family at one boundary.
  EXPECT_THROW(api::load_artifact(path), api::ArtifactError);
  EXPECT_THROW(api::load_artifact(path), Error);
  std::remove(path.c_str());
}

TEST_F(ApiFacade, ExportRequiresTrainedLocator) {
  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(sc_->cipher);
  const core::CoLocator untrained(lc);
  EXPECT_THROW(untrained.export_artifact(temp_path("scalocate_api_untrained")),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Engine/Session: train-once/serve-anywhere parity
// ---------------------------------------------------------------------------

TEST_F(ApiFacade, EngineServesLoadedArtifactWithIdenticalDetections) {
  api::Engine engine({.workers = 2});
  const auto cipher = engine.load_artifact(*artifact_);
  EXPECT_EQ(cipher, sc_->cipher);
  EXPECT_TRUE(engine.has_model(cipher));

  const auto models = engine.models();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].cipher, sc_->cipher);
  EXPECT_EQ(models[0].n_inf, locator_->config().params.n_inf);

  auto session = engine.open_session(cipher);
  EXPECT_EQ(session.submit(eval_->samples).get(), *offline_);
  EXPECT_EQ(session.submit_view(eval_->samples).get(), *offline_);
}

TEST_F(ApiFacade, StreamedSessionMatchesOfflineAcrossChunkSizes) {
  // The streaming-vs-offline parity suite, routed through the facade and a
  // freshly loaded artifact instead of the in-process trained locator.
  api::Engine engine({.workers = 1});
  engine.load_artifact(*artifact_);
  auto session = engine.open_session();
  const std::span<const float> samples(eval_->samples);
  ASSERT_LT(48u, locator_->config().params.n_inf);
  for (const std::size_t chunk :
       {std::size_t{48}, std::size_t{256}, std::size_t{4096}, samples.size()})
    EXPECT_EQ(stream_starts(session, samples, chunk), *offline_)
        << "chunk " << chunk;
}

TEST_F(ApiFacade, StreamCallbackDeliversSameDetections) {
  api::Engine engine({.workers = 1});
  engine.attach_model(*locator_);
  auto stream = engine.open_session().open_stream();
  std::vector<std::size_t> pushed;
  stream.on_detection([&](const api::Detection& d) { pushed.push_back(d.start); });
  const std::span<const float> samples(eval_->samples);
  for (std::size_t off = 0; off < samples.size(); off += 1024) {
    // With a callback installed, feed() must not double-report.
    EXPECT_TRUE(
        stream
            .feed(samples.subspan(off,
                                  std::min<std::size_t>(1024, samples.size() - off)))
            .empty());
  }
  EXPECT_TRUE(stream.finish().empty());
  EXPECT_EQ(pushed, *offline_);
}

TEST_F(ApiFacade, ThrowingCallbackKeepsDetectionsQueued) {
  // Delivery is at-least-once: a handler that throws aborts the delivery
  // loop, but the detection it choked on stays queued and arrives again on
  // the next feed — nothing is silently dropped.
  api::Engine engine({.workers = 1});
  engine.attach_model(*locator_);
  auto stream = engine.open_session().open_stream();
  std::vector<std::size_t> delivered;
  bool fail_once = true;
  stream.on_detection([&](const api::Detection& d) {
    if (fail_once) {
      fail_once = false;
      throw std::runtime_error("handler hiccup");
    }
    delivered.push_back(d.start);
  });
  const std::span<const float> samples(eval_->samples);
  std::size_t throws = 0;
  for (std::size_t off = 0; off < samples.size(); off += 1024) {
    try {
      stream.feed(samples.subspan(off,
                                  std::min<std::size_t>(1024, samples.size() - off)));
    } catch (const std::runtime_error&) {
      ++throws;
    }
  }
  stream.finish();
  EXPECT_EQ(throws, 1u);
  EXPECT_EQ(delivered, *offline_);
}

TEST_F(ApiFacade, OpenSessionWithoutModelThrows) {
  api::Engine engine({.workers = 1});
  EXPECT_THROW(engine.open_session(), InvalidArgument);
  EXPECT_THROW(engine.open_session(crypto::CipherId::kAes128), InvalidArgument);
  EXPECT_FALSE(engine.has_model(crypto::CipherId::kAes128));
}

TEST_F(ApiFacade, EngineServesMultipleCiphersSideBySide) {
  // A second (deliberately tiny) model for a different cipher: the registry
  // must route each session to its own cipher's model.
  auto noise = trace::acquire_noise_trace(*sc_, 20000);
  trace::ScenarioConfig sc2 = *sc_;
  sc2.cipher = crypto::CipherId::kAes128;
  auto acq2 = trace::acquire_cipher_traces(sc2, 96, *key_);

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(sc2.cipher);
  lc.params.sizes = {64, 64, 32};
  lc.params.epochs = 1;  // quality is irrelevant here, only routing
  core::CoLocator aes(lc);
  aes.train(acq2, noise);

  api::Engine engine({.workers = 2});
  engine.attach_model(*locator_);
  engine.add_model(std::move(aes));

  ASSERT_EQ(engine.models().size(), 2u);
  EXPECT_TRUE(engine.has_model(crypto::CipherId::kCamellia128));
  EXPECT_TRUE(engine.has_model(crypto::CipherId::kAes128));
  // Per-request model selection by cipher.
  EXPECT_EQ(engine.open_session(crypto::CipherId::kCamellia128).cipher(),
            crypto::CipherId::kCamellia128);
  EXPECT_EQ(engine.open_session(crypto::CipherId::kAes128).cipher(),
            crypto::CipherId::kAes128);
  // The ambiguous no-arg overload must refuse.
  EXPECT_THROW(engine.open_session(), InvalidArgument);
  // Both models serve from the one shared pool.
  EXPECT_EQ(engine.open_session(crypto::CipherId::kCamellia128)
                .submit(eval_->samples)
                .get(),
            *offline_);
}

// ---------------------------------------------------------------------------
// Backpressure + cancellation
// ---------------------------------------------------------------------------

TEST_F(ApiFacade, SubmitBlocksAtMaxQueueDepth) {
  constexpr std::size_t kDepth = 2;
  constexpr std::size_t kJobs = 8;
  runtime::LocatorService service(*locator_,
                                  {.workers = 1, .max_queue_depth = kDepth});
  EXPECT_EQ(service.max_queue_depth(), kDepth);

  std::vector<std::future<std::vector<std::size_t>>> futures;
  futures.reserve(kJobs);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (std::size_t j = 0; j < kJobs; ++j)
      futures.push_back(service.submit_view(eval_->samples));
    done = true;
  });

  // While the producer is pushing, in-flight jobs may never exceed the
  // bound: submit blocks instead of queueing unboundedly.
  std::size_t max_in_flight = 0;
  while (!done.load()) {
    // Read submitted before completed: a completion racing in between can
    // only shrink the apparent depth, never inflate it.
    const std::size_t submitted = service.jobs_submitted();
    const std::size_t completed = service.jobs_completed();
    if (completed <= submitted) {
      const std::size_t in_flight = submitted - completed;
      max_in_flight = std::max(max_in_flight, in_flight);
      EXPECT_LE(in_flight, kDepth);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();
  for (auto& f : futures) EXPECT_EQ(f.get(), *offline_);
  // Futures resolve before the worker-side accounting lands; drain() waits
  // for the books before the exact counter check.
  service.drain();
  EXPECT_EQ(service.jobs_completed(), kJobs);
  // The bound was actually exercised (the single worker saturated).
  EXPECT_GE(max_in_flight, kDepth - 1);
}

TEST_F(ApiFacade, CancelledQueuedJobNeverRuns) {
  api::Engine engine({.workers = 1});
  engine.attach_model(*locator_);
  auto session = engine.open_session();

  // Occupy the single worker, then cancel a queued job before it starts.
  auto running = session.submit(eval_->samples);
  auto job = session.submit_job(eval_->samples);
  job.cancel();
  EXPECT_TRUE(job.cancel_requested());

  EXPECT_EQ(running.get(), *offline_);
  EXPECT_THROW(job.get(), Cancelled);
}

TEST_F(ApiFacade, CancelAfterCompletionIsNoOp) {
  api::Engine engine({.workers = 2});
  engine.attach_model(*locator_);
  auto session = engine.open_session();
  auto job = session.submit_job(eval_->samples);
  const auto starts = job.get();
  job.cancel();  // too late: the result already exists
  EXPECT_EQ(starts, *offline_);
}

// ---------------------------------------------------------------------------
// Engine telemetry (obs wiring)
// ---------------------------------------------------------------------------

TEST_F(ApiFacade, EngineMetricsAccountForEveryJob) {
  obs::Registry registry;
  api::Engine engine({.workers = 2, .registry = &registry});
  engine.attach_model(*locator_);
  auto session = engine.open_session();
  ASSERT_TRUE(session.metrics().enabled());

  constexpr std::size_t kJobs = 10;
  std::vector<std::future<std::vector<std::size_t>>> futures;
  futures.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i)
    futures.push_back(session.submit_view(eval_->samples));
  for (auto& f : futures) EXPECT_EQ(f.get(), *offline_);

  // A resolved future proves the result, not the bookkeeping — drain()
  // waits for the worker-side accounting. After it the counters are
  // exact: one request = one completion = one latency + one queue-wait
  // sample, nothing cancelled, nothing still in flight.
  session.drain();
  const auto& m = session.metrics();
  EXPECT_EQ(m.requests->value(), kJobs);
  EXPECT_EQ(m.completed->value(), kJobs);
  EXPECT_EQ(m.cancelled->value(), 0u);
  EXPECT_EQ(m.queue_depth->value(), 0);
  EXPECT_GE(m.queue_depth->max(), 1);
  EXPECT_LE(m.queue_depth->max(), static_cast<std::int64_t>(kJobs));
  EXPECT_EQ(m.latency_ns->count(), kJobs);
  EXPECT_EQ(m.queue_wait_ns->count(), kJobs);
  // End-to-end latency includes the queue wait, so the slowest job's
  // latency can never undercut its own wait.
  const auto lat = m.latency_ns->snapshot();
  const auto wait = m.queue_wait_ns->snapshot();
  EXPECT_GE(lat.max, wait.min);

  // The rendered snapshot tells the same story through the JSON spine.
  const auto doc = obs::JsonValue::parse(engine.telemetry_json());
  const auto* completed =
      doc.at_path("counters.engine.camellia.completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->integer, kJobs);
  EXPECT_DOUBLE_EQ(
      doc.at_path("histograms.engine.camellia.latency_ns.count")->number,
      static_cast<double>(kJobs));
  // And the human rendering mentions the instrument.
  EXPECT_NE(engine.telemetry_text().find("engine.camellia.latency_ns"),
            std::string::npos);
}

TEST_F(ApiFacade, TelemetryIsObservablyFreeOfBehaviorChange) {
  // The same workload through an instrumented and an uninstrumented engine
  // must produce bit-identical detections — telemetry never perturbs the
  // pipeline. (The uninstrumented engine reports metrics as disabled.)
  obs::Registry registry;
  api::Engine instrumented({.workers = 2, .registry = &registry});
  api::Engine plain({.workers = 2});
  instrumented.attach_model(*locator_);
  plain.attach_model(*locator_);
  auto with = instrumented.open_session();
  auto without = plain.open_session();
  EXPECT_FALSE(without.metrics().enabled());

  EXPECT_EQ(with.submit_view(eval_->samples).get(),
            without.submit_view(eval_->samples).get());
  EXPECT_EQ(stream_starts(with, eval_->samples, 3000),
            stream_starts(without, eval_->samples, 3000));
  EXPECT_EQ(plain.telemetry_json(), "{}");
}

TEST_F(ApiFacade, StreamMetricsCountSamplesWindowsAndDetections) {
  obs::Registry registry;
  api::Engine engine({.workers = 1, .registry = &registry});
  engine.attach_model(*locator_);
  auto session = engine.open_session();

  const auto streamed = stream_starts(session, eval_->samples, 2048);
  EXPECT_EQ(streamed, *offline_);

  const auto doc = obs::JsonValue::parse(engine.telemetry_json());
  const auto* fed =
      doc.at_path("counters.stream.camellia.samples_fed");
  ASSERT_NE(fed, nullptr) << "open_stream must inherit the engine registry";
  EXPECT_EQ(fed->integer, eval_->samples.size());
  EXPECT_EQ(doc.at_path("counters.stream.camellia.detections")->integer,
            streamed.size());
  EXPECT_GE(doc.at_path("counters.stream.camellia.windows_scored")->integer,
            1u);
  // Every emitted detection logged its emission lag.
  EXPECT_EQ(
      doc.at_path("histograms.stream.camellia.emission_lag_samples.count")
          ->integer,
      streamed.size());
}

// ---------------------------------------------------------------------------
// Hot swap vs in-flight sessions
// ---------------------------------------------------------------------------

TEST_F(ApiFacade, ConcurrentHotSwapNeverDisturbsInFlightSessions) {
  // The hot-swap contract: a Session opened before load_artifact replaces
  // its model keeps the OLD model alive (shared ownership of the entry) and
  // keeps serving bit-identical results; only sessions opened after the
  // swap see the new entry. This hammers that contract concurrently — a
  // swapper thread re-loading the artifact in a loop while submitter
  // threads run jobs through sessions opened before, during, and after
  // swaps. Also part of the TSan CI job's test set, so the shared_ptr
  // handoff is checked for data races, not just for crashes.
  api::Engine engine({.workers = 2});
  engine.load_artifact(*artifact_);

  const std::span<const float> samples(eval_->samples);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> swaps{0};

  std::thread swapper([&] {
    while (!stop.load()) {
      engine.load_artifact(*artifact_);  // same bits: parity stays provable
      swaps.fetch_add(1);
    }
  });

  std::atomic<std::size_t> jobs{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&] {
      while (!stop.load()) {
        // A fresh session each round: taken before or after some swap,
        // nondeterministically — both must serve identical detections.
        auto session = engine.open_session();
        EXPECT_EQ(session.submit_view(samples).get(), *offline_);
        jobs.fetch_add(1);
      }
    });
  }

  // Long enough for many swaps to interleave with many jobs.
  while (swaps.load() < 50 || jobs.load() < 12)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true);
  swapper.join();
  for (auto& t : submitters) t.join();

  // A session pinned BEFORE the final swap still works after many more.
  auto pinned = engine.open_session();
  engine.load_artifact(*artifact_);
  engine.load_artifact(*artifact_);
  EXPECT_EQ(pinned.submit_view(samples).get(), *offline_);
}

// ---------------------------------------------------------------------------
// Failure-model knobs through the facade
// ---------------------------------------------------------------------------

TEST_F(ApiFacade, SessionDeadlinesAndAdmissionSurfaceTypedErrors) {
  api::EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 1;
  cfg.admission = api::AdmissionPolicy::kRejectWhenFull;
  api::Engine engine(cfg);
  engine.attach_model(*locator_);
  auto session = engine.open_session();

  // An already-expired deadline is refused before any queueing.
  api::SubmitOptions expired;
  expired.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_THROW(session.submit_view(eval_->samples, expired).get(),
               DeadlineExceeded);

  // At depth, the policy rejects synchronously with a typed transient
  // error — the retry loop's cue to back off.
  auto running = session.submit_view(eval_->samples);
  try {
    while (true) session.submit_view(eval_->samples);  // fills the slot, then throws
  } catch (const Overloaded& e) {
    EXPECT_TRUE(is_transient(e));
  }
  EXPECT_EQ(running.get(), *offline_);
}

}  // namespace
}  // namespace scalocate
