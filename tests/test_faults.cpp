// Chaos suite: the serving plane under injected faults.
//
// Every test arms runtime::FaultInjector at a named site (worker throw,
// worker stall, NaN-poisoned stream chunks, truncated artifact reads) and
// asserts the degradation contract the tentpole promises:
//
//   - no crash, no deadlock: every submit either returns a result or
//     throws a TYPED error (Overloaded / DeadlineExceeded / Cancelled /
//     CorruptSignal / InjectedFault / ArtifactTruncated);
//   - accepted work is unaffected: results of jobs that complete stay
//     bit-identical to offline CoLocator::locate;
//   - the books balance: FaultInjector::injected(site) reconciles exactly
//     with the typed errors observed and with the service/obs counters
//     (shed, rejected, deadline_exceeded, retries, watchdog_trips).
//
// Training is the expensive part, so one Camellia model (shortest CO) is
// trained per suite and shared; the injector is reset around every test so
// no armed site leaks into a neighbor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "api/scalocate.hpp"
#include "obs/registry.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/locator_service.hpp"
#include "runtime/streaming_locator.hpp"
#include "trace/scenario.hpp"

namespace scalocate {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class FaultsSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    key_ = new crypto::Key16{};
    for (int i = 0; i < 16; ++i)
      (*key_)[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x50 + i);

    sc_ = new trace::ScenarioConfig{};
    sc_->cipher = crypto::CipherId::kCamellia128;  // shortest CO: fast suite
    sc_->random_delay = trace::RandomDelayConfig::kRd2;
    sc_->seed = 505;

    auto acq = trace::acquire_cipher_traces(*sc_, 224, *key_);
    auto noise = trace::acquire_noise_trace(*sc_, 60000);

    core::LocatorConfig lc;
    lc.params = core::PipelineParams::defaults_for(sc_->cipher);
    lc.params.sizes = {224, 160, 96};
    lc.params.epochs = 6;
    lc.params.threshold = 0.0f;
    locator_ = new core::CoLocator(lc);
    locator_->train(acq, noise);

    eval_ = new trace::Trace(trace::acquire_eval_trace(*sc_, 6, *key_, false));
    offline_ = new std::vector<std::size_t>(locator_->locate(eval_->samples));

    artifact_ = new std::string(
        (fs::temp_directory_path() / "scalocate_faults_model.scart").string());
    locator_->export_artifact(*artifact_);
  }

  static void TearDownTestSuite() {
    std::remove(artifact_->c_str());
    delete artifact_;
    delete offline_;
    delete eval_;
    delete locator_;
    delete sc_;
    delete key_;
  }

  void SetUp() override { runtime::FaultInjector::instance().reset(); }
  void TearDown() override { runtime::FaultInjector::instance().reset(); }

  static std::span<const float> eval_span() { return eval_->samples; }

  static crypto::Key16* key_;
  static trace::ScenarioConfig* sc_;
  static core::CoLocator* locator_;
  static trace::Trace* eval_;
  static std::vector<std::size_t>* offline_;
  static std::string* artifact_;
};

crypto::Key16* FaultsSuite::key_ = nullptr;
trace::ScenarioConfig* FaultsSuite::sc_ = nullptr;
core::CoLocator* FaultsSuite::locator_ = nullptr;
trace::Trace* FaultsSuite::eval_ = nullptr;
std::vector<std::size_t>* FaultsSuite::offline_ = nullptr;
std::string* FaultsSuite::artifact_ = nullptr;

// ---------------------------------------------------------------------------
// Worker faults through the service
// ---------------------------------------------------------------------------

TEST_F(FaultsSuite, InjectedWorkerThrowIsTypedTransientAndAccountedFor) {
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kThrow;
  spec.times = 2;
  injector.arm("service.job", spec);

  runtime::LocatorService service(*locator_, {.workers = 2});
  std::vector<std::future<std::vector<std::size_t>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(service.submit_view(eval_span()));

  std::size_t faulted = 0;
  for (auto& f : futures) {
    try {
      EXPECT_EQ(f.get(), *offline_);  // accepted work stays bit-identical
    } catch (const runtime::InjectedFault& e) {
      EXPECT_TRUE(is_transient(e));
      ++faulted;
    }
  }
  // Exactly the injected faults surfaced, as typed errors, nowhere else.
  EXPECT_EQ(faulted, 2u);
  EXPECT_EQ(injector.injected("service.job"), 2u);
  EXPECT_EQ(injector.hits("service.job"), 6u);
  service.drain();
  EXPECT_EQ(service.jobs_completed(), service.jobs_submitted());
}

TEST_F(FaultsSuite, InjectedStallTripsWatchdog) {
  runtime::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.watchdog_p99_multiple = 3.0;
  cfg.watchdog_min_samples = 16;
  cfg.watchdog_poll = 5ms;
  runtime::LocatorService service(*locator_, cfg);

  // Establish a p99 baseline with small, fast jobs (noise-only slices).
  const auto slice = eval_span().subspan(0, 4096);
  for (int i = 0; i < 20; ++i) service.submit_view(slice).get();
  EXPECT_EQ(service.watchdog_trips(), 0u);

  // One wedged worker: stalls far past 3x the baseline p99.
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kStall;
  spec.stall = 1200ms;
  spec.times = 1;
  injector.arm("service.job", spec);

  EXPECT_EQ(service.submit_view(slice).get(),
            locator_->locate(slice));  // flagged, never killed
  EXPECT_EQ(injector.injected("service.job"), 1u);
  EXPECT_EQ(service.watchdog_trips(), 1u);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST_F(FaultsSuite, ExpiredDeadlineIsRejectedBeforeQueueing) {
  runtime::LocatorService service(*locator_, {.workers = 1});
  runtime::SubmitOptions options;
  options.deadline = std::chrono::steady_clock::now() - 1ms;
  auto future = service.submit_view(eval_span(), nullptr, options);
  try {
    future.get();
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    EXPECT_TRUE(is_transient(e));
  }
  // Rejected cheaply: never accepted, no worker touched it.
  EXPECT_EQ(service.jobs_submitted(), 0u);
  EXPECT_EQ(service.jobs_rejected(), 1u);
  EXPECT_EQ(service.jobs_deadline_exceeded(), 1u);
}

TEST_F(FaultsSuite, DeadlineExpiringInQueueFailsWithoutRunning) {
  // One worker; the first job occupies it (stall makes that deterministic),
  // so the timed-out jobs expire while still queued.
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kStall;
  spec.stall = 250ms;
  spec.times = 1;
  injector.arm("service.job", spec);

  runtime::LocatorService service(*locator_, {.workers = 1});
  auto blocker = service.submit_view(eval_span());

  runtime::SubmitOptions options;
  options.timeout = 5ms;
  std::vector<std::future<std::vector<std::size_t>>> doomed;
  for (int i = 0; i < 3; ++i)
    doomed.push_back(service.submit_view(eval_span(), nullptr, options));

  EXPECT_EQ(blocker.get(), *offline_);
  for (auto& f : doomed) EXPECT_THROW(f.get(), DeadlineExceeded);
  service.drain();
  // Expired-in-queue jobs were accepted, so they complete (exceptionally)
  // and the books still balance.
  EXPECT_EQ(service.jobs_submitted(), 4u);
  EXPECT_EQ(service.jobs_completed(), 4u);
  EXPECT_EQ(service.jobs_deadline_exceeded(), 3u);
  // The worker only ever ran the blocker: 1 hit at the job site.
  EXPECT_EQ(injector.hits("service.job"), 1u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST_F(FaultsSuite, RejectWhenFullThrowsOverloadedSynchronously) {
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kStall;
  spec.stall = 250ms;
  spec.times = 1;
  injector.arm("service.job", spec);

  runtime::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 1;
  cfg.admission = runtime::AdmissionPolicy::kRejectWhenFull;
  runtime::LocatorService service(*locator_, cfg);

  auto accepted = service.submit_view(eval_span());  // fills the only slot
  try {
    service.submit_view(eval_span());
    FAIL() << "expected Overloaded";
  } catch (const Overloaded& e) {
    EXPECT_TRUE(is_transient(e));
  }
  EXPECT_EQ(accepted.get(), *offline_);  // accepted work unaffected
  EXPECT_EQ(service.jobs_rejected(), 1u);
  EXPECT_EQ(service.jobs_submitted(), 1u);
}

TEST_F(FaultsSuite, ShedByDeadlineEvictsTheLeastViableQueuedJob) {
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kStall;
  spec.stall = 300ms;
  spec.times = 1;
  injector.arm("service.job", spec);

  runtime::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 2;
  cfg.admission = runtime::AdmissionPolicy::kShedByDeadline;
  runtime::LocatorService service(*locator_, cfg);

  const auto now = std::chrono::steady_clock::now();
  auto running = service.submit_view(eval_span());  // dispatched, stalling

  runtime::SubmitOptions tight;
  tight.deadline = now + 10s;
  auto victim = service.submit_view(eval_span(), nullptr, tight);  // queued

  // Full. A looser-deadline arrival evicts the queued tighter-deadline job
  // (the one least likely to make it).
  runtime::SubmitOptions loose;
  loose.deadline = now + 20s;
  auto admitted = service.submit_view(eval_span(), nullptr, loose);
  EXPECT_THROW(victim.get(), Overloaded);
  EXPECT_EQ(service.jobs_shed(), 1u);

  // Full again. An arrival with the tightest deadline of all is itself the
  // victim: rejected synchronously, nothing evicted.
  runtime::SubmitOptions tightest;
  tightest.deadline = now + 5s;
  EXPECT_THROW(service.submit_view(eval_span(), nullptr, tightest), Overloaded);
  EXPECT_EQ(service.jobs_shed(), 1u);
  EXPECT_EQ(service.jobs_rejected(), 1u);

  EXPECT_EQ(running.get(), *offline_);
  EXPECT_EQ(admitted.get(), *offline_);
  service.drain();
  EXPECT_EQ(service.jobs_completed(), service.jobs_submitted());
}

// ---------------------------------------------------------------------------
// Poisoned streaming chunks
// ---------------------------------------------------------------------------

TEST_F(FaultsSuite, PoisonedChunkIsRejectedAndTheStreamRecovers) {
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kPoison;
  spec.skip = 1;   // first chunk clean,
  spec.times = 1;  // second chunk poisoned, rest clean
  injector.arm("stream.feed", spec);

  const auto samples = eval_span();
  const std::size_t chunk = 4096;
  runtime::StreamingLocator stream(*locator_);  // nan_policy = kReject

  std::vector<std::size_t> starts;
  std::vector<float> accepted;  // what the stream actually ingested
  std::size_t rejected_chunks = 0, fed = 0;
  for (std::size_t off = 0; off < samples.size(); off += chunk) {
    const auto piece = samples.subspan(off, std::min(chunk, samples.size() - off));
    try {
      for (const auto& d : stream.feed(piece)) starts.push_back(d.start);
      accepted.insert(accepted.end(), piece.begin(), piece.end());
    } catch (const CorruptSignal&) {
      ++rejected_chunks;  // typed, loud, and the stream stays usable
    }
    ++fed;
  }
  for (const auto& d : stream.finish()) starts.push_back(d.start);

  EXPECT_EQ(rejected_chunks, 1u);
  EXPECT_EQ(injector.injected("stream.feed"), 1u);
  EXPECT_EQ(injector.hits("stream.feed"), fed);
  EXPECT_GT(stream.corrupt_samples(), 0u);
  // Parity over the accepted samples: the rejected chunk is simply not part
  // of the stream, everything the stream DID accept scores bit-identical.
  EXPECT_EQ(starts, locator_->locate(accepted));
}

TEST_F(FaultsSuite, SanitizePolicyScrubsPoisonAndKeepsParity) {
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kPoison;
  spec.times = 1;  // first chunk poisoned
  spec.poison_stride = 64;
  injector.arm("stream.feed", spec);

  const auto samples = eval_span();
  const std::size_t chunk = 4096;
  runtime::StreamingConfig cfg;
  cfg.nan_policy = runtime::StreamingConfig::NanPolicy::kSanitize;
  runtime::StreamingLocator stream(*locator_, cfg);

  std::vector<std::size_t> starts;
  for (std::size_t off = 0; off < samples.size(); off += chunk) {
    const auto piece = samples.subspan(off, std::min(chunk, samples.size() - off));
    for (const auto& d : stream.feed(piece)) starts.push_back(d.start);
  }
  for (const auto& d : stream.finish()) starts.push_back(d.start);

  // Reference: offline locate over the stream as sanitized — the poisoned
  // samples (every 64th of the first chunk) zeroed.
  std::vector<float> sanitized(samples.begin(), samples.end());
  for (std::size_t i = 0; i < chunk && i < sanitized.size(); i += 64)
    sanitized[i] = 0.0f;
  EXPECT_EQ(starts, locator_->locate(sanitized));
  EXPECT_EQ(stream.corrupt_samples(), (chunk + 63) / 64);
  EXPECT_EQ(injector.injected("stream.feed"), 1u);
}

TEST_F(FaultsSuite, RealNanInputIsCaughtWithoutTheInjector) {
  // The validation is not an injector artifact: a genuinely corrupt chunk
  // (dying probe) hits the same typed error with nothing armed.
  runtime::StreamingLocator stream(*locator_);
  std::vector<float> bad(1024, 0.5f);
  bad[17] = std::numeric_limits<float>::quiet_NaN();
  bad[900] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(stream.feed(bad), CorruptSignal);
  EXPECT_EQ(stream.corrupt_samples(), 2u);
  EXPECT_EQ(stream.samples_consumed(), 0u);  // state untouched
}

// ---------------------------------------------------------------------------
// Artifact read faults + retry
// ---------------------------------------------------------------------------

TEST_F(FaultsSuite, TruncatedArtifactReadFailsTypedAndRetrySucceeds) {
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kTruncate;
  spec.truncate_fraction = 0.5;
  spec.times = 1;
  injector.arm("artifact.read", spec);

  // First read sees half the file mid-"download": typed and transient.
  try {
    api::load_artifact(*artifact_);
    FAIL() << "expected ArtifactTruncated";
  } catch (const api::ArtifactTruncated& e) {
    EXPECT_TRUE(is_transient(e));
  }

  // The canonical recovery: retry after the writer finished. The injector
  // fires once, so the with_retry attempt #2 reads the full file.
  injector.arm("artifact.read", spec);
  obs::Registry registry;
  api::RetryConfig rc;
  rc.max_attempts = 3;
  rc.initial_backoff = 1ms;
  rc.jitter_seed = 7;
  rc.registry = &registry;
  const auto loaded = api::with_retry(
      [&] { return api::load_artifact(*artifact_); }, rc);
  EXPECT_EQ(loaded.locate(eval_->samples), *offline_);
  EXPECT_EQ(registry.counter("api.retries").value(), 1u);
  EXPECT_EQ(injector.injected("artifact.read"), 1u);
}

TEST_F(FaultsSuite, WithRetryRetriesOnlyTransientErrors) {
  std::size_t sleeps = 0;
  api::RetryConfig rc;
  rc.max_attempts = 4;
  rc.initial_backoff = 10ms;
  rc.jitter_seed = 11;
  rc.sleep = [&](std::chrono::nanoseconds delay) {
    ++sleeps;
    EXPECT_GE(delay, 5ms);   // jitter stays within [backoff/2, backoff]
    EXPECT_LE(delay, 80ms);  // last backoff: 10ms * 2^2, jittered below cap
  };

  // Transient failures are retried until success...
  int calls = 0;
  const int result = api::with_retry(
      [&] {
        if (++calls < 3) throw Overloaded("synthetic");
        return 42;
      },
      rc);
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps, 2u);

  // ...but never past max_attempts,
  calls = 0;
  EXPECT_THROW(api::with_retry(
                   [&]() -> int {
                     ++calls;
                     throw DeadlineExceeded("synthetic");
                   },
                   rc),
               DeadlineExceeded);
  EXPECT_EQ(calls, 4);

  // ...and terminal errors propagate on the FIRST throw: retrying a
  // cancellation would resurrect abandoned work, and a mismatched artifact
  // stays mismatched forever.
  calls = 0;
  EXPECT_THROW(api::with_retry(
                   [&]() -> int {
                     ++calls;
                     throw Cancelled("synthetic");
                   },
                   rc),
               Cancelled);
  EXPECT_EQ(calls, 1);
  calls = 0;
  EXPECT_THROW(api::with_retry(
                   [&]() -> int {
                     ++calls;
                     throw api::ArtifactArchMismatch("synthetic");
                   },
                   rc),
               api::ArtifactArchMismatch);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// End-to-end accounting through the Engine
// ---------------------------------------------------------------------------

TEST_F(FaultsSuite, RetriedInjectedFaultsReconcileWithObsCounters) {
  obs::Registry registry;
  api::EngineConfig ec;
  ec.workers = 2;
  ec.registry = &registry;
  api::Engine engine(ec);
  engine.attach_model(*locator_);
  auto session = engine.open_session();

  // The Engine names the model's fault site after its metric prefix.
  const std::string site =
      "engine." + api::metric_model_name(crypto::CipherId::kCamellia128) +
      ".job";
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kThrow;
  spec.times = 3;
  injector.arm(site, spec);

  api::RetryConfig rc;
  rc.max_attempts = 5;
  rc.initial_backoff = 1ms;
  rc.jitter_seed = 13;
  rc.registry = &registry;

  // Every request succeeds despite three injected worker faults...
  for (int i = 0; i < 6; ++i) {
    const auto starts = api::with_retry(
        [&] { return session.submit_view(eval_span()).get(); }, rc);
    EXPECT_EQ(starts, *offline_);
  }

  // ...and the books reconcile exactly: one retry per injected fault, one
  // completed job per request (original or retry), zero unexplained errors.
  // A resolved future only proves the result landed; drain() waits for the
  // worker-side accounting so the counter reads are not racy.
  session.drain();
  const auto injected = injector.injected(site);
  EXPECT_EQ(injected, 3u);
  EXPECT_EQ(registry.counter("api.retries").value(), injected);
  const auto& m = session.metrics();
  EXPECT_EQ(m.requests->value(), 6u + injected);
  EXPECT_EQ(m.completed->value(), 6u + injected);
  EXPECT_EQ(m.rejected->value(), 0u);
  EXPECT_EQ(m.queue_depth->value(), 0);
}

TEST_F(FaultsSuite, CounterIdentitiesHoldUnderMixedChaos) {
  // Mixed storm: worker throws + reject-when-full + expiring deadlines, all
  // at once. Afterwards every request must be accounted for exactly once:
  //   requests == accepted + rejected, completed == accepted.
  auto& injector = runtime::FaultInjector::instance();
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kThrow;
  spec.skip = 2;
  spec.times = 4;
  injector.arm("service.job", spec);

  obs::Registry registry;
  runtime::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 4;
  cfg.admission = runtime::AdmissionPolicy::kRejectWhenFull;
  cfg.registry = &registry;
  runtime::LocatorService service(*locator_, cfg);

  std::size_t ok = 0, injected_seen = 0, overloaded = 0, deadline = 0;
  std::vector<std::future<std::vector<std::size_t>>> futures;
  for (int i = 0; i < 24; ++i) {
    runtime::SubmitOptions options;
    if (i % 5 == 0) options.timeout = 1us;  // some of these will expire
    try {
      futures.push_back(service.submit_view(eval_span(), nullptr, options));
    } catch (const Overloaded&) {
      ++overloaded;
    }
  }
  for (auto& f : futures) {
    try {
      EXPECT_EQ(f.get(), *offline_);
      ++ok;
    } catch (const runtime::InjectedFault&) {
      ++injected_seen;
    } catch (const DeadlineExceeded&) {
      ++deadline;
    }
  }
  service.drain();

  // No untyped escapes: every submit's fate is one of the four buckets.
  EXPECT_EQ(ok + injected_seen + deadline, futures.size());
  EXPECT_EQ(injected_seen, injector.injected("service.job"));
  EXPECT_EQ(service.jobs_completed(), service.jobs_submitted());
  // Rejections = synchronous Overloaded throws + any timeout that expired
  // at submit itself (counted rejected, surfaced through the future).
  EXPECT_GE(service.jobs_rejected(), overloaded);
  EXPECT_EQ(registry.counter("service.requests").value(),
            service.jobs_submitted() + service.jobs_rejected());
  EXPECT_EQ(registry.counter("service.completed").value(),
            service.jobs_completed());
  EXPECT_EQ(registry.gauge("service.queue_depth").value(), 0);
  EXPECT_GE(service.jobs_deadline_exceeded(), deadline);
}

}  // namespace
}  // namespace scalocate
