// Fleet serving plane tests: SpscRing units + cross-thread stress, and
// WindowBatcher parity — N interleaved sessions (mixed chunk sizes, mixed
// ciphers, concurrent producers) must produce detections bit-identical to
// sequential single-session runs and to offline locate, batch composition
// and flush timing notwithstanding. Includes the FaultInjector isolation
// case (one session's injected fault must not poison its batchmates) and
// the batch/pool telemetry identities.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "core/locator.hpp"
#include "obs/registry.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/spsc_ring.hpp"
#include "runtime/streaming_locator.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/window_batcher.hpp"
#include "trace/scenario.hpp"

namespace scalocate {
namespace {

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(runtime::SpscRing(1).capacity(), 64u);
  EXPECT_EQ(runtime::SpscRing(64).capacity(), 64u);
  EXPECT_EQ(runtime::SpscRing(65).capacity(), 128u);
  EXPECT_EQ(runtime::SpscRing(4096).capacity(), 4096u);
  EXPECT_EQ(runtime::SpscRing(5000).capacity(), 8192u);
}

TEST(SpscRing, FifoAcrossManyWraps) {
  // Mirrors the SampleRing::view overflow/wrap regression posture: the
  // monotonic head/tail accounting must survive many trips around the
  // physical buffer with uneven chunk sizes.
  runtime::SpscRing ring(64);  // minimal capacity: wraps constantly
  std::vector<float> out;
  std::size_t produced = 0;
  const std::size_t kTotal = 10000;
  std::size_t chunk_len = 1;
  while (produced < kTotal) {
    std::vector<float> chunk;
    const std::size_t n = std::min(chunk_len % 97 + 1, kTotal - produced);
    for (std::size_t i = 0; i < n; ++i)
      chunk.push_back(static_cast<float>(produced + i));
    std::size_t off = 0;
    while (off < chunk.size()) {
      off += ring.try_push(std::span<const float>(chunk).subspan(off));
      if (off < chunk.size())
        ring.drain([&](std::span<const float> part) {
          out.insert(out.end(), part.begin(), part.end());
        });
    }
    produced += n;
    chunk_len += 13;
  }
  ring.drain([&](std::span<const float> part) {
    out.insert(out.end(), part.begin(), part.end());
  });
  ASSERT_EQ(out.size(), kTotal);
  for (std::size_t i = 0; i < kTotal; ++i)
    ASSERT_FLOAT_EQ(out[i], static_cast<float>(i)) << "i=" << i;
  EXPECT_EQ(ring.pushed(), kTotal);
  EXPECT_EQ(ring.size_approx(), 0u);
  EXPECT_LE(ring.high_watermark(), ring.capacity());
  EXPECT_GT(ring.high_watermark(), 0u);
}

TEST(SpscRing, PartialAcceptAtCapacityNeverOverflows) {
  runtime::SpscRing ring(64);
  std::vector<float> big(1000, 1.0f);
  // A chunk larger than the whole ring is accepted as a capacity-sized
  // prefix, never silently dropped or overflowed.
  const std::size_t accepted = ring.try_push(big);
  EXPECT_EQ(accepted, ring.capacity());
  EXPECT_EQ(ring.size_approx(), ring.capacity());
  EXPECT_EQ(ring.try_push(big), 0u);  // full: zero accepted
  EXPECT_EQ(ring.high_watermark(), ring.capacity());
  std::size_t drained = 0;
  ring.drain([&](std::span<const float> part) { drained += part.size(); });
  EXPECT_EQ(drained, ring.capacity());
  EXPECT_EQ(ring.size_approx(), 0u);
  // Empty push is a no-op.
  EXPECT_EQ(ring.try_push({}), 0u);
}

TEST(SpscRing, CrossThreadStress) {
  // One producer, one consumer, minimal capacity, adversarial chunk sizes:
  // every sample must arrive exactly once, in order.
  runtime::SpscRing ring(256);
  const std::size_t kTotal = 1 << 18;
  std::vector<float> received;
  received.reserve(kTotal);
  std::atomic<bool> done{false};

  std::thread producer([&] {
    std::mt19937 rng(123);
    std::uniform_int_distribution<std::size_t> len(1, 700);
    std::vector<float> chunk;
    std::size_t sent = 0;
    while (sent < kTotal) {
      const std::size_t n = std::min(len(rng), kTotal - sent);
      chunk.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        chunk[i] = static_cast<float>(sent + i);
      std::size_t off = 0;
      while (off < n) {
        off += ring.try_push(std::span<const float>(chunk).subspan(off));
        if (off < n) std::this_thread::yield();
      }
      sent += n;
    }
    done.store(true);
  });

  while (!done.load() || ring.size_approx() != 0) {
    ring.drain([&](std::span<const float> part) {
      received.insert(received.end(), part.begin(), part.end());
    });
  }
  producer.join();
  ring.drain([&](std::span<const float> part) {
    received.insert(received.end(), part.begin(), part.end());
  });

  ASSERT_EQ(received.size(), kTotal);
  for (std::size_t i = 0; i < kTotal; ++i)
    ASSERT_FLOAT_EQ(received[i], static_cast<float>(i)) << "i=" << i;
  EXPECT_EQ(ring.pushed(), kTotal);
  EXPECT_LE(ring.high_watermark(), ring.capacity());
}

// ---------------------------------------------------------------------------
// ThreadPool telemetry
// ---------------------------------------------------------------------------

TEST(ThreadPoolMetrics, TasksAndQueueDepth) {
  obs::Registry registry;
  runtime::ThreadPool pool(2);
  pool.attach_metrics(registry);
  std::atomic<std::size_t> ran{0};
  for (int i = 0; i < 50; ++i)
    pool.post([&](std::size_t) { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 50u);
  EXPECT_EQ(registry.counter("pool.tasks").value(), 50u);
  EXPECT_EQ(registry.gauge("pool.queue_depth").value(), 0);
  EXPECT_GE(registry.gauge("pool.queue_depth").max(), 1);
  EXPECT_LE(registry.gauge("pool.queue_depth").max(), 50);
}

// ---------------------------------------------------------------------------
// Fleet fixture: two trained models (mixed ciphers) + eval traces with
// offline references. Training budget is kept small — parity tests need
// determinism, not accuracy.
// ---------------------------------------------------------------------------

struct FleetModel {
  trace::ScenarioConfig sc;
  core::CoLocator* locator = nullptr;
  std::vector<trace::Trace> traces;
  std::vector<std::vector<std::size_t>> offline;  ///< locate() per trace
};

class Fleet : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    key_ = new crypto::Key16{};
    for (int i = 0; i < 16; ++i)
      (*key_)[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x40 + i);

    aes_ = train_model(crypto::CipherId::kAes128, 31, 192, 4);
    camellia_ = train_model(crypto::CipherId::kCamellia128, 32, 96, 2);
  }

  static void TearDownTestSuite() {
    delete aes_->locator;
    delete camellia_->locator;
    delete aes_;
    delete camellia_;
    delete key_;
  }

  static FleetModel* train_model(crypto::CipherId cipher, unsigned seed,
                                 std::size_t captures, std::size_t epochs) {
    auto* m = new FleetModel;
    m->sc.cipher = cipher;
    m->sc.random_delay = trace::RandomDelayConfig::kRd2;
    m->sc.seed = seed;
    auto acq = trace::acquire_cipher_traces(m->sc, captures, *key_);
    auto noise = trace::acquire_noise_trace(m->sc, 40000);
    core::LocatorConfig lc;
    lc.params = core::PipelineParams::defaults_for(cipher);
    lc.params.epochs = epochs;
    lc.params.threshold = 0.0f;  // fixed boundary: streaming parity
    lc.params.merge_gap_windows = 2;
    m->locator = new core::CoLocator(lc);
    m->locator->train(acq, noise);
    for (const std::size_t n_cos : {std::size_t{5}, std::size_t{8}, std::size_t{11}}) {
      m->traces.push_back(trace::acquire_eval_trace(m->sc, n_cos, *key_,
                                                    /*interleave=*/false));
      m->offline.push_back(m->locator->locate(m->traces.back().samples));
    }
    return m;
  }

  /// Feeds `samples` through one batched stream in `chunk`-sized pieces
  /// and returns every detection start.
  static std::vector<std::size_t> batched_starts(
      runtime::WindowBatcher& batcher, std::span<const float> samples,
      std::size_t chunk, runtime::StreamingConfig config = {}) {
    auto stream = batcher.open_stream(config);
    std::vector<runtime::Detection> dets;
    for (std::size_t off = 0; off < samples.size(); off += chunk) {
      const std::size_t n = std::min(chunk, samples.size() - off);
      stream->feed(samples.subspan(off, n));
      stream->poll(dets);
    }
    for (const auto& d : stream->finish()) dets.push_back(d);
    std::vector<std::size_t> starts;
    starts.reserve(dets.size());
    for (const auto& d : dets) starts.push_back(d.start);
    return starts;
  }

  static crypto::Key16* key_;
  static FleetModel* aes_;
  static FleetModel* camellia_;
};

crypto::Key16* Fleet::key_ = nullptr;
FleetModel* Fleet::aes_ = nullptr;
FleetModel* Fleet::camellia_ = nullptr;

// ---------------------------------------------------------------------------
// Batched parity
// ---------------------------------------------------------------------------

TEST_F(Fleet, SingleStreamParityAcrossChunkSizes) {
  // Small max_batch_windows forces many multi-flush ticks; every chunking
  // must still match offline locate bit for bit.
  runtime::BatchConfig bc;
  bc.max_batch_windows = 16;
  bc.batch_linger = std::chrono::microseconds(100);
  runtime::WindowBatcher batcher(*aes_->locator, bc);
  const auto& samples = aes_->traces[1].samples;
  const auto& offline = aes_->offline[1];
  EXPECT_EQ(batched_starts(batcher, samples, 48), offline);
  EXPECT_EQ(batched_starts(batcher, samples, 1024), offline);
  EXPECT_EQ(batched_starts(batcher, samples, samples.size()), offline);
}

TEST_F(Fleet, InterleavedSessionsBitIdenticalToSequential) {
  // Six sessions over three distinct traces, fed round-robin with mixed
  // chunk sizes from ONE thread (deterministic interleaving): every
  // session's detections must equal its offline reference — i.e. the
  // batch composition (which mixes windows of all six streams into shared
  // GEMMs) must not leak between sessions.
  runtime::BatchConfig bc;
  bc.max_batch_windows = 32;
  bc.batch_linger = std::chrono::microseconds(200);
  runtime::WindowBatcher batcher(*aes_->locator, bc);

  constexpr std::size_t kSessions = 6;
  const std::size_t chunks[kSessions] = {97, 256, 513, 1024, 2048, 331};
  std::vector<std::shared_ptr<runtime::BatchedStream>> streams;
  std::vector<std::size_t> offsets(kSessions, 0);
  std::vector<std::vector<runtime::Detection>> dets(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s)
    streams.push_back(batcher.open_stream({}));

  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t s = 0; s < kSessions; ++s) {
      const auto& samples = aes_->traces[s % 3].samples;
      if (offsets[s] >= samples.size()) continue;
      const std::size_t n =
          std::min(chunks[s], samples.size() - offsets[s]);
      streams[s]->feed(
          std::span<const float>(samples).subspan(offsets[s], n));
      streams[s]->poll(dets[s]);
      offsets[s] += n;
      progress = true;
    }
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    for (const auto& d : streams[s]->finish()) dets[s].push_back(d);
    std::vector<std::size_t> starts;
    for (const auto& d : dets[s]) starts.push_back(d.start);
    EXPECT_EQ(starts, aes_->offline[s % 3]) << "session " << s;
  }
}

TEST_F(Fleet, ConcurrentProducersBitIdentical) {
  // Each stream fed from its own thread: exercises the wait-free SPSC
  // hand-off and scheduler-side demux under real concurrency.
  runtime::BatchConfig bc;
  bc.max_batch_windows = 48;
  bc.ingest_capacity = 1024;  // small ring: backpressure spins exercised
  runtime::WindowBatcher batcher(*aes_->locator, bc);

  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<std::size_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto& samples = aes_->traces[t % 3].samples;
      auto stream = batcher.open_stream({});
      const std::size_t chunk = 128 + 64 * t;
      std::vector<runtime::Detection> dets;
      for (std::size_t off = 0; off < samples.size(); off += chunk) {
        const std::size_t n = std::min(chunk, samples.size() - off);
        stream->feed(std::span<const float>(samples).subspan(off, n));
        stream->poll(dets);
      }
      for (const auto& d : stream->finish()) dets.push_back(d);
      for (const auto& d : dets) got[t].push_back(d.start);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(got[t], aes_->offline[t % 3]) << "producer " << t;
}

TEST_F(Fleet, EngineMixedCipherBatchedParity) {
  // The full serving surface: a two-model Engine with batching on. Streams
  // of both ciphers interleave; each must match its model's offline
  // reference, and the batch/stream telemetry must reconcile.
  obs::Registry registry;
  api::EngineConfig ec;
  ec.workers = 2;
  ec.max_batch_windows = 24;
  ec.batch_linger_us = 200;
  ec.registry = &registry;
  api::Engine engine(ec);
  engine.attach_model(*aes_->locator);
  engine.attach_model(*camellia_->locator);

  auto aes_session = engine.open_session(crypto::CipherId::kAes128);
  auto cam_session = engine.open_session(crypto::CipherId::kCamellia128);
  auto s1 = aes_session.open_stream();
  auto s2 = cam_session.open_stream();
  auto s3 = aes_session.open_stream();
  EXPECT_TRUE(s1.batched());

  const auto& aes_samples = aes_->traces[0].samples;
  const auto& cam_samples = camellia_->traces[2].samples;
  std::vector<std::size_t> got1, got2, got3;
  auto drain = [](std::vector<std::size_t>& into,
                  const std::vector<runtime::Detection>& from) {
    for (const auto& d : from) into.push_back(d.start);
  };
  std::size_t o1 = 0, o2 = 0, o3 = 0;
  while (o1 < aes_samples.size() || o2 < cam_samples.size() ||
         o3 < aes_samples.size()) {
    if (o1 < aes_samples.size()) {
      const std::size_t n = std::min<std::size_t>(512, aes_samples.size() - o1);
      drain(got1, s1.feed(std::span<const float>(aes_samples).subspan(o1, n)));
      o1 += n;
    }
    if (o2 < cam_samples.size()) {
      const std::size_t n = std::min<std::size_t>(768, cam_samples.size() - o2);
      drain(got2, s2.feed(std::span<const float>(cam_samples).subspan(o2, n)));
      o2 += n;
    }
    if (o3 < aes_samples.size()) {
      const std::size_t n = std::min<std::size_t>(256, aes_samples.size() - o3);
      drain(got3, s3.feed(std::span<const float>(aes_samples).subspan(o3, n)));
      o3 += n;
    }
  }
  drain(got1, s1.finish());
  drain(got2, s2.finish());
  drain(got3, s3.finish());

  EXPECT_EQ(got1, aes_->offline[0]);
  EXPECT_EQ(got2, camellia_->offline[2]);
  EXPECT_EQ(got3, aes_->offline[0]);

  // Telemetry identities: every window scored for a model went through its
  // batcher (coalesced == stream windows_scored), every flush recorded one
  // occupancy sample, and every flush has exactly one reason.
  const std::uint64_t aes_windows =
      registry.counter("stream.aes.windows_scored").value();
  EXPECT_EQ(registry.counter("batch.aes.coalesced_windows").value(),
            aes_windows);
  EXPECT_GT(aes_windows, 0u);
  const auto batches = registry.counter("batch.aes.batches").value();
  EXPECT_EQ(registry.histogram("batch.aes.occupancy_windows").count(),
            batches);
  EXPECT_EQ(registry.counter("batch.aes.flush_full").value() +
                registry.counter("batch.aes.flush_linger").value() +
                registry.counter("batch.aes.flush_eof").value(),
            batches);
  EXPECT_GE(registry.gauge("batch.aes.sessions").max(), 2);
  EXPECT_GE(registry.gauge("batch.aes.ingest_resident_samples").max(), 0);
}

TEST_F(Fleet, DefaultEngineKeepsLegacyPath) {
  obs::Registry registry;
  api::EngineConfig ec;
  ec.workers = 1;
  ec.registry = &registry;
  api::Engine engine(ec);  // max_batch_windows defaults to 0 = off
  engine.attach_model(*aes_->locator);
  auto stream = engine.open_session().open_stream();
  EXPECT_FALSE(stream.batched());
  const auto& samples = aes_->traces[0].samples;
  std::vector<std::size_t> got;
  for (const auto& d : stream.feed(samples)) got.push_back(d.start);
  for (const auto& d : stream.finish()) got.push_back(d.start);
  EXPECT_EQ(got, aes_->offline[0]);
  // No batcher, no batch.* instruments.
  EXPECT_EQ(registry.render_json().find("batch."), std::string::npos);
}

// ---------------------------------------------------------------------------
// Failure isolation and flush policy
// ---------------------------------------------------------------------------

TEST_F(Fleet, InjectedFaultFailsOneStreamNotBatchmates) {
  runtime::FaultInjector::instance().reset();
  runtime::BatchConfig bc;
  bc.max_batch_windows = 32;
  runtime::WindowBatcher batcher(*aes_->locator, bc);

  constexpr std::size_t kStreams = 3;
  std::vector<std::shared_ptr<runtime::BatchedStream>> streams;
  for (std::size_t s = 0; s < kStreams; ++s)
    streams.push_back(batcher.open_stream({}));

  // Exactly one staging hit fails; which stream takes it depends on
  // scheduler timing, so assert on the count and on batchmate parity.
  runtime::FaultSpec spec;
  spec.action = runtime::FaultSpec::Action::kThrow;
  spec.times = 1;
  runtime::FaultInjector::instance().arm("batch.stage", spec);

  const auto& samples = aes_->traces[0].samples;
  std::size_t failures = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    std::vector<std::size_t> got;
    try {
      std::vector<runtime::Detection> dets;
      for (std::size_t off = 0; off < samples.size(); off += 512) {
        const std::size_t n = std::min<std::size_t>(512, samples.size() - off);
        streams[s]->feed(std::span<const float>(samples).subspan(off, n));
        streams[s]->poll(dets);
      }
      for (const auto& d : streams[s]->finish()) dets.push_back(d);
      for (const auto& d : dets) got.push_back(d.start);
      // A surviving stream is bit-identical despite a batchmate's fault.
      EXPECT_EQ(got, aes_->offline[0]) << "stream " << s;
    } catch (const runtime::InjectedFault&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 1u);
  EXPECT_EQ(runtime::FaultInjector::instance().injected("batch.stage"), 1u);
  runtime::FaultInjector::instance().reset();
}

TEST_F(Fleet, LingerFlushesPartialBatch) {
  // A batch far below max_batch_windows must still flush once the linger
  // expires, without any further input.
  obs::Registry registry;
  runtime::BatchConfig bc;
  bc.max_batch_windows = 4096;  // never reached
  bc.batch_linger = std::chrono::microseconds(500);
  bc.registry = &registry;
  runtime::WindowBatcher batcher(*aes_->locator, bc);
  auto stream = batcher.open_stream({});

  const auto& params = aes_->locator->config().params;
  const std::size_t samples_for_4 = params.n_inf + 3 * params.stride;
  std::vector<float> chunk(samples_for_4);
  for (std::size_t i = 0; i < chunk.size(); ++i)
    chunk[i] = static_cast<float>(i % 17) * 0.1f - 0.8f;
  stream->feed(chunk);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (registry.counter("batch.coalesced_windows").value() < 4 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(registry.counter("batch.coalesced_windows").value(), 4u);
  EXPECT_GE(registry.counter("batch.flush_linger").value(), 1u);
  EXPECT_EQ(registry.counter("batch.flush_full").value(), 0u);
  stream->finish();
}

TEST_F(Fleet, FinishFlushesWithoutWaitingForLinger) {
  // A huge linger must not delay finish(): eof forces the flush.
  obs::Registry registry;
  runtime::BatchConfig bc;
  bc.max_batch_windows = 4096;
  bc.batch_linger = std::chrono::seconds(30);
  bc.registry = &registry;
  runtime::WindowBatcher batcher(*aes_->locator, bc);

  const auto& samples = aes_->traces[0].samples;
  const auto start = std::chrono::steady_clock::now();
  auto stream = batcher.open_stream({});
  stream->feed(samples);
  std::vector<std::size_t> got;
  for (const auto& d : stream->finish()) got.push_back(d.start);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(got, aes_->offline[0]);
  EXPECT_LT(elapsed, std::chrono::seconds(20));
  EXPECT_GE(registry.counter("batch.flush_eof").value(), 1u);
}

TEST_F(Fleet, BatchedStreamRejectsNaNAtIngest) {
  runtime::BatchConfig bc;
  bc.max_batch_windows = 32;
  runtime::WindowBatcher batcher(*aes_->locator, bc);
  auto stream = batcher.open_stream({});  // default policy: kReject

  const auto& samples = aes_->traces[0].samples;
  const std::size_t half = samples.size() / 2;
  stream->feed(std::span<const float>(samples).subspan(0, half));
  std::vector<float> poisoned(64, std::numeric_limits<float>::quiet_NaN());
  EXPECT_THROW(stream->feed(poisoned), CorruptSignal);
  EXPECT_EQ(stream->corrupt_samples(), 64u);
  // The rejected chunk never entered the stream: parity over the accepted
  // samples holds.
  stream->feed(std::span<const float>(samples).subspan(half));
  std::vector<std::size_t> got;
  std::vector<runtime::Detection> dets;
  stream->poll(dets);
  for (const auto& d : stream->finish()) dets.push_back(d);
  for (const auto& d : dets) got.push_back(d.start);
  EXPECT_EQ(got, aes_->offline[0]);
}

TEST_F(Fleet, StreamResetReopensBatchedPath) {
  api::EngineConfig ec;
  ec.workers = 1;
  ec.max_batch_windows = 16;
  api::Engine engine(ec);
  engine.attach_model(*aes_->locator);
  auto stream = engine.open_session().open_stream();
  const auto& samples = aes_->traces[0].samples;
  std::vector<std::size_t> first, second;
  for (const auto& d : stream.feed(samples)) first.push_back(d.start);
  for (const auto& d : stream.finish()) first.push_back(d.start);
  stream.reset();
  for (const auto& d : stream.feed(samples)) second.push_back(d.start);
  for (const auto& d : stream.finish()) second.push_back(d.start);
  EXPECT_EQ(first, aes_->offline[0]);
  EXPECT_EQ(second, aes_->offline[0]);
}

}  // namespace
}  // namespace scalocate
