// End-to-end training tests for the NN framework: can it actually learn?
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/dataloader.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace scalocate::nn {
namespace {

/// Two-moon-ish separable 2D dataset.
void make_blobs(std::size_t n, std::vector<std::vector<float>>& xs,
                std::vector<std::uint8_t>& ys, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cls = rng.bernoulli(0.5);
    const double cx = cls ? 1.5 : -1.5;
    xs.push_back({static_cast<float>(rng.normal(cx, 0.6)),
                  static_cast<float>(rng.normal(cls ? 0.5 : -0.5, 0.6))});
    ys.push_back(cls ? 1 : 0);
  }
}

double accuracy(Sequential& net, const std::vector<std::vector<float>>& xs,
                const std::vector<std::uint8_t>& ys) {
  net.set_training(false);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    Tensor x = Tensor::from_data({1, 2}, {xs[i][0], xs[i][1]});
    const Tensor logits = net.forward(x);
    const std::uint8_t pred = logits.at(0, 1) > logits.at(0, 0) ? 1 : 0;
    correct += pred == ys[i];
  }
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

Sequential make_mlp(std::uint64_t seed) {
  Sequential net;
  net.emplace<Linear>(2, 16);
  net.emplace<ReLU>();
  net.emplace<Linear>(16, 2);
  Rng rng(seed);
  init_module(net, rng);
  return net;
}

template <typename OptFactory>
double train_and_eval(OptFactory make_opt, std::uint64_t seed) {
  std::vector<std::vector<float>> xs;
  std::vector<std::uint8_t> ys;
  make_blobs(400, xs, ys, seed);

  Sequential net = make_mlp(seed + 1);
  auto opt = make_opt(net.params());
  SoftmaxCrossEntropy loss;
  // Reshape rows into [B, 2] batches via the DataLoader's [B,1,N] output.
  DataLoader loader(xs, ys, 32, seed + 2);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    net.set_training(true);
    loader.start_epoch();
    Batch b;
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    while (loader.next(b)) {
      Tensor x = b.inputs.reshaped({b.labels.size(), 2});
      opt->zero_grad();
      const Tensor logits = net.forward(x);
      epoch_loss += static_cast<double>(loss.forward(logits, b.labels));
      net.backward(loss.backward());
      opt->step();
      ++batches;
    }
    last_loss = epoch_loss / static_cast<double>(batches);
  }
  EXPECT_LT(last_loss, 0.4);
  return accuracy(net, xs, ys);
}

TEST(Training, AdamLearnsSeparableBlobs) {
  const double acc = train_and_eval(
      [](std::vector<Param*> p) {
        return std::make_unique<Adam>(std::move(p), 1e-2f);
      },
      5);
  EXPECT_GT(acc, 0.9);
}

TEST(Training, SgdWithMomentumLearns) {
  const double acc = train_and_eval(
      [](std::vector<Param*> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05f, 0.9f);
      },
      9);
  EXPECT_GT(acc, 0.85);
}

TEST(Training, LossDecreasesMonotonicallyOnAverage) {
  std::vector<std::vector<float>> xs;
  std::vector<std::uint8_t> ys;
  make_blobs(200, xs, ys, 13);
  Sequential net = make_mlp(14);
  Adam opt(net.params(), 1e-2f);
  SoftmaxCrossEntropy loss;
  DataLoader loader(xs, ys, 32, 15);

  std::vector<double> losses;
  for (int epoch = 0; epoch < 8; ++epoch) {
    loader.start_epoch();
    Batch b;
    double acc = 0.0;
    std::size_t n = 0;
    while (loader.next(b)) {
      Tensor x = b.inputs.reshaped({b.labels.size(), 2});
      opt.zero_grad();
      acc += static_cast<double>(loss.forward(net.forward(x), b.labels));
      net.backward(loss.backward());
      opt.step();
      ++n;
    }
    losses.push_back(acc / static_cast<double>(n));
  }
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Training, ZeroGradClearsAccumulation) {
  Linear lin(2, 2);
  Adam opt({&lin.weight(), &lin.bias()}, 1e-3f);
  SoftmaxCrossEntropy loss;
  Tensor x = Tensor::from_data({1, 2}, {1.f, 2.f});
  loss.forward(lin.forward(x), {0});
  lin.backward(loss.backward());
  const float g1 = lin.weight().grad.at(0);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(lin.weight().grad.at(0), 0.f);
  loss.forward(lin.forward(x), {0});
  lin.backward(loss.backward());
  EXPECT_FLOAT_EQ(lin.weight().grad.at(0), g1);
}

TEST(Training, AdamStepChangesParams) {
  Linear lin(2, 2);
  Rng rng(17);
  he_normal_init(lin.weight().value, rng);
  const float before = lin.weight().value.at(0);
  lin.weight().grad.fill(1.0f);
  Adam opt({&lin.weight(), &lin.bias()}, 1e-2f);
  opt.step();
  EXPECT_NE(lin.weight().value.at(0), before);
}

}  // namespace
}  // namespace scalocate::nn
