// Telemetry subsystem tests: lock-free counter/gauge semantics under
// concurrency, histogram bucket math and quantiles against a sorted-vector
// oracle, the system-wide exact percentile, span nesting and trace rings,
// registry snapshot determinism, JSON round trips through the parser, and
// the SCALOCATE_PROFILE gating of the kernel instrumentation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/kernels/gemm.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace scalocate {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);

  counter.add(42);
  EXPECT_EQ(counter.value(), kThreads * kPerThread + 42);
}

TEST(ObsGauge, TracksLevelAndHighWatermark) {
  obs::Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(gauge.max(), 0);

  gauge.add(3);
  gauge.add(2);
  EXPECT_EQ(gauge.value(), 5);
  gauge.sub(4);
  EXPECT_EQ(gauge.value(), 1);
  // The watermark survives the drop.
  EXPECT_EQ(gauge.max(), 5);
  gauge.set(9);
  EXPECT_EQ(gauge.value(), 9);
  EXPECT_EQ(gauge.max(), 9);
  gauge.set(-2);
  EXPECT_EQ(gauge.value(), -2);
  EXPECT_EQ(gauge.max(), 9);
}

TEST(ObsGauge, ConcurrentBalancedAddSubReturnsToZero) {
  obs::Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 10000; ++i) {
        gauge.add();
        gauge.sub();
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_GE(gauge.max(), 1);
  EXPECT_LE(gauge.max(), kThreads);
}

// ---------------------------------------------------------------------------
// Exact percentile (the system-wide implementation)
// ---------------------------------------------------------------------------

TEST(ObsPercentile, EdgeCases) {
  EXPECT_EQ(obs::percentile({}, 0.5), 0.0);
  EXPECT_EQ(obs::percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(obs::percentile({7.0}, 0.5), 7.0);
  EXPECT_EQ(obs::percentile({7.0}, 1.0), 7.0);
  // q clamps rather than reading out of range.
  EXPECT_EQ(obs::percentile({1.0, 2.0}, -3.0), 1.0);
  EXPECT_EQ(obs::percentile({1.0, 2.0}, 42.0), 2.0);
}

TEST(ObsPercentile, LinearInterpolationRank) {
  // pos = q * (n - 1): for n = 5, q = 0.25 lands exactly on index 1.
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(obs::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(obs::percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(obs::percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(obs::percentile(v, 1.0), 50.0);
  // Between ranks: q = 0.1 -> pos 0.4 -> 10 + 0.4 * 10.
  EXPECT_DOUBLE_EQ(obs::percentile(v, 0.1), 14.0);
  // Unsorted input is sorted internally.
  EXPECT_DOUBLE_EQ(obs::percentile({50, 10, 40, 20, 30}, 0.5), 30.0);
}

TEST(ObsPercentile, SortedVariantMatches) {
  Rng rng(11);
  std::vector<double> v(257);
  for (auto& x : v) x = rng.normal() * 100.0;
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(obs::percentile(v, q), obs::percentile_sorted(sorted, q));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundsContainTheirValues) {
  // Every probed value must fall inside [lower(i), lower(i+1)) of its own
  // bucket, and the midpoint must too.
  std::vector<std::uint64_t> probes{0, 1, 15, 16, 17, 255, 256, 1000,
                                    (1ull << 32) - 1, 1ull << 32,
                                    (1ull << 63) + 12345};
  Rng rng(5);
  for (int i = 0; i < 200; ++i)
    probes.push_back(static_cast<std::uint64_t>(
        std::exp(rng.uniform() * 40.0)));  // log-uniform over ~17 octaves
  for (const std::uint64_t v : probes) {
    const std::size_t idx = obs::Histogram::bucket_index(v);
    ASSERT_LT(idx, obs::Histogram::kBuckets);
    EXPECT_GE(v, obs::Histogram::bucket_lower(idx)) << "value " << v;
    if (idx + 1 < obs::Histogram::kBuckets) {
      EXPECT_LT(v, obs::Histogram::bucket_lower(idx + 1)) << "value " << v;
    }
    const std::uint64_t mid = obs::Histogram::bucket_midpoint(idx);
    EXPECT_EQ(obs::Histogram::bucket_index(mid), idx) << "value " << v;
  }
}

TEST(ObsHistogram, EmptySnapshot) {
  obs::Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(ObsHistogram, SmallValuesAreExact) {
  // Below 2^kSubBits every value has its own unit bucket, so quantiles are
  // exact, not approximate.
  obs::Histogram h;
  for (std::uint64_t v : {3u, 1u, 4u, 1u, 5u, 9u, 2u, 6u}) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 9.0);
  // Rank of q=0.5 over 8 samples {1,1,2,3,4,5,6,9}: index 3 (0-based
  // floor of 0.5 * 7) lands in the bucket holding 3..4; midpoints are the
  // values themselves in the unit range.
  EXPECT_NEAR(s.quantile(0.5), 4.0, 1.0);
}

TEST(ObsHistogram, QuantilesMatchSortedOracleWithinBucketResolution) {
  // Log-uniform samples spanning microseconds..minutes in ns; every
  // quantile answered from the buckets must be within the documented
  // relative error of the exact sorted-vector answer (2^-(kSubBits+1)
  // midpoint error, doubled for the rank landing one bucket over).
  Rng rng(23);
  obs::Histogram h;
  std::vector<double> oracle;
  oracle.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double ns = std::exp(rng.uniform() * (std::log(1e11) - std::log(1e3)) +
                               std::log(1e3));
    const auto v = static_cast<std::uint64_t>(ns);
    h.record(v);
    oracle.push_back(static_cast<double>(v));
  }
  std::sort(oracle.begin(), oracle.end());
  const auto s = h.snapshot();
  ASSERT_EQ(s.count, oracle.size());

  const double rel = 2.0 / static_cast<double>(obs::Histogram::kSubBuckets);
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double exact = obs::percentile_sorted(oracle, q);
    const double approx = s.quantile(q);
    EXPECT_NEAR(approx, exact, rel * exact) << "q = " << q;
  }
  // Tails are exact by construction.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), oracle.front());
  EXPECT_DOUBLE_EQ(s.quantile(1.0), oracle.back());
  // Mean is exact (sum and count are tracked outside the buckets).
  double acc = 0.0;
  for (const double v : oracle) acc += v;
  EXPECT_NEAR(s.mean(), acc / static_cast<double>(oracle.size()),
              1e-6 * s.mean());
}

TEST(ObsHistogram, ConcurrentRecordingLosesNothing) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
    });
  for (auto& t : threads) t.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, static_cast<std::uint64_t>(kThreads * kPerThread - 1));
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(ObsHistogram, SnapshotMergeAddsDistributions) {
  obs::Histogram a, b;
  for (std::uint64_t v = 1; v <= 100; ++v) a.record(v);
  for (std::uint64_t v = 1000; v <= 1100; ++v) b.record(v);
  auto sa = a.snapshot();
  const auto sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.count, 201u);
  EXPECT_EQ(sa.min, 1u);
  EXPECT_EQ(sa.max, 1100u);
  // Median of the merged set: rank 100 of 201 is the high block's first
  // sample (indices 0..99 hold 1..100), answered within bucket resolution.
  EXPECT_NEAR(sa.quantile(0.5), 1000.0, 1000.0 / 16.0);
  // The low block's top sits right at the 49.75th percentile.
  EXPECT_NEAR(sa.quantile(0.49), 100.0, 100.0 / 16.0);
}

// ---------------------------------------------------------------------------
// Spans + trace ring
// ---------------------------------------------------------------------------

TEST(ObsSpan, RecordsIntoHistogramOnDestruction) {
  obs::Histogram h;
  {
    obs::SpanTimer span(h);
    EXPECT_EQ(h.snapshot().count, 0u) << "records at scope exit, not entry";
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(ObsSpan, NestingDepthAndContainment) {
  obs::Histogram h;
  obs::TraceRing ring(16);
  {
    obs::SpanTimer outer(h, &ring, "outer");
    EXPECT_EQ(outer.depth(), 0u);
    {
      obs::SpanTimer inner(h, &ring, "inner");
      EXPECT_EQ(inner.depth(), 1u);
      {
        obs::SpanTimer leaf(h, &ring, "leaf");
        EXPECT_EQ(leaf.depth(), 2u);
      }
    }
    {
      obs::SpanTimer sibling(h, &ring, "sibling");
      EXPECT_EQ(sibling.depth(), 1u) << "depth reuses freed levels";
    }
  }
  const auto events = ring.dump();
  ASSERT_EQ(events.size(), 4u);
  // Completion order: leaf, inner, sibling, outer.
  EXPECT_EQ(events[0].name, "leaf");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].depth, 0u);
  // The outer span contains every inner one in time.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(events[i].start_ns, events[3].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].duration_ns,
              events[3].start_ns + events[3].duration_ns);
  }
  EXPECT_EQ(h.snapshot().count, 4u);
}

TEST(ObsTraceRing, OverwritesOldestAtCapacity) {
  obs::TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::string name("e");
    name += std::to_string(i);
    ring.push({name, i, 1, 0});
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  const auto events = ring.dump();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first dump of the survivors: e6..e9.
  for (std::size_t i = 0; i < 4; ++i) {
    // += form sidesteps gcc 12's spurious -Wrestrict on the inlined append.
    std::string expect("e");
    expect += std::to_string(6 + i);
    EXPECT_EQ(events[i].name, expect);
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, FindOrCreateReturnsStableReferences) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.requests");
  a.add(5);
  // Same name resolves to the same instrument...
  EXPECT_EQ(&reg.counter("x.requests"), &a);
  EXPECT_EQ(reg.counter("x.requests").value(), 5u);
  // ...and stays valid as later registrations land around it.
  for (int i = 0; i < 100; ++i)
    reg.counter("x.other" + std::to_string(i)).add();
  EXPECT_EQ(a.value(), 5u);
  // Kinds are separate namespaces at the type level.
  reg.gauge("x.requests").set(3);
  EXPECT_EQ(reg.counter("x.requests").value(), 5u);
}

TEST(ObsRegistry, SnapshotIndependentOfRegistrationOrder) {
  // Two registries with the same instruments and values, registered in
  // opposite orders, must render byte-identical snapshots.
  obs::Registry forward, backward;
  const std::vector<std::string> names{"b.count", "a.count", "c.count"};
  for (auto it = names.begin(); it != names.end(); ++it)
    forward.counter(*it).add(7);
  for (auto it = names.rbegin(); it != names.rend(); ++it)
    backward.counter(*it).add(7);
  forward.histogram("z.latency_ns").record(1000);
  backward.histogram("z.latency_ns").record(1000);
  forward.gauge("q.depth").set(2);
  backward.gauge("q.depth").set(2);

  EXPECT_EQ(forward.render_json(), backward.render_json());
  EXPECT_EQ(forward.render_text(), backward.render_text());
}

TEST(ObsRegistry, JsonRoundTripThroughParser) {
  obs::Registry reg;
  reg.counter("engine.aes128.requests").add(12);
  reg.counter("kernels.gemm.flops").add(123456789012345ull);
  reg.gauge("engine.aes128.queue_depth").set(4);
  reg.gauge("engine.aes128.queue_depth").sub(3);
  auto& h = reg.histogram("engine.aes128.latency_ns");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 1000);

  const std::string doc = reg.render_json();
  const auto parsed = obs::JsonValue::parse(doc);

  // Dotted metric names are leaf keys; at_path reaches them via greedy
  // longest-key matching (bench_check thresholds rely on this).
  const auto* requests = parsed.at_path("counters.engine.aes128.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->integer, 12u);
  const auto* flops = parsed.find("counters")->find("kernels.gemm.flops");
  ASSERT_NE(flops, nullptr);
  // Large counters survive exactly (the parser keeps integer tokens).
  EXPECT_TRUE(flops->is_integer);
  EXPECT_EQ(flops->integer, 123456789012345ull);

  const auto* depth =
      parsed.find("gauges")->find("engine.aes128.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->find("value")->number, 1.0);
  EXPECT_EQ(depth->find("max")->number, 4.0);

  const auto* lat = parsed.find("histograms")->find("engine.aes128.latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->number, 1000.0);
  const auto live = h.snapshot();
  EXPECT_DOUBLE_EQ(lat->find("p50")->number, live.quantile(0.5));
  EXPECT_DOUBLE_EQ(lat->find("p999")->number, live.quantile(0.999));
  EXPECT_DOUBLE_EQ(lat->find("min")->number,
                   static_cast<double>(live.min));
}

TEST(ObsJson, WriterEscapesAndParserUnescapes) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("weird \"key\"\n", "tab\there \\ done");
  w.end_object();
  const auto parsed = obs::JsonValue::parse(w.str());
  ASSERT_TRUE(parsed.is_object());
  ASSERT_EQ(parsed.object.size(), 1u);
  EXPECT_EQ(parsed.object[0].first, "weird \"key\"\n");
  EXPECT_EQ(parsed.object[0].second.string, "tab\there \\ done");
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::JsonValue::parse(""), InvalidArgument);
  EXPECT_THROW(obs::JsonValue::parse("{"), InvalidArgument);
  EXPECT_THROW(obs::JsonValue::parse("{\"a\": }"), InvalidArgument);
  EXPECT_THROW(obs::JsonValue::parse("[1, 2,]"), InvalidArgument);
  EXPECT_THROW(obs::JsonValue::parse("{} trailing"), InvalidArgument);
  EXPECT_THROW(obs::JsonValue::parse("nul"), InvalidArgument);
}

TEST(ObsJson, AtPathWalksObjectsAndArrays) {
  const auto doc = obs::JsonValue::parse(
      R"({"rows": [{"p99_ms": 4.5}, {"p99_ms": 9.0}], "n": 2})");
  ASSERT_NE(doc.at_path("rows.1.p99_ms"), nullptr);
  EXPECT_DOUBLE_EQ(doc.at_path("rows.1.p99_ms")->number, 9.0);
  EXPECT_EQ(doc.at_path("rows.2.p99_ms"), nullptr);
  EXPECT_EQ(doc.at_path("rows.x"), nullptr);
  EXPECT_EQ(doc.at_path("missing"), nullptr);
  EXPECT_DOUBLE_EQ(doc.at_path("n")->number, 2.0);
}

TEST(ObsJson, AtPathGreedyLongestKeyMatch) {
  // Dotted keys resolve as single steps, longest match first, and the walk
  // continues past them into their children.
  const auto doc = obs::JsonValue::parse(
      R"({"gauges": {"engine.aes.queue_depth": {"value": 1, "max": 4}},
          "a": {"b": 1}, "a.b": 2})");
  ASSERT_NE(doc.at_path("gauges.engine.aes.queue_depth.max"), nullptr);
  EXPECT_DOUBLE_EQ(doc.at_path("gauges.engine.aes.queue_depth.max")->number,
                   4.0);
  // Longest match wins when both "a.b" and "a"->"b" exist.
  EXPECT_DOUBLE_EQ(doc.at_path("a.b")->number, 2.0);
  EXPECT_EQ(doc.at_path("gauges.engine.aes.queue_depth.missing"), nullptr);
}

// ---------------------------------------------------------------------------
// Kernel profiling gate
// ---------------------------------------------------------------------------

TEST(ObsKernelProfile, GemmCountersAdvanceOnlyUnderProfileBuilds) {
  auto& flops = obs::Registry::global().counter("kernels.gemm.flops");
  auto& calls = obs::Registry::global().counter("kernels.gemm.calls");
  const std::uint64_t flops_before = flops.value();
  const std::uint64_t calls_before = calls.value();

  constexpr std::size_t m = 8, n = 8, k = 8;
  std::vector<float> a(m * k, 1.0f), b(k * n, 1.0f), c(m * n, 0.0f);
  nn::kernels::GemmScratch scratch;
  nn::kernels::sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                     0.0f, c.data(), n, scratch);
  EXPECT_FLOAT_EQ(c[0], static_cast<float>(k));

#if defined(SCALOCATE_PROFILE)
  EXPECT_EQ(flops.value() - flops_before, 2ull * m * n * k);
  EXPECT_EQ(calls.value() - calls_before, 1u);
#else
  EXPECT_EQ(flops.value(), flops_before)
      << "profiling must be compile-time off by default";
  EXPECT_EQ(calls.value(), calls_before);
#endif
}

}  // namespace
}  // namespace scalocate
