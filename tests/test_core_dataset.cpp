// Tests for the Dataset Creation block (Section III-A) and the split.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/dataset.hpp"
#include "trace/scenario.hpp"

namespace scalocate::core {
namespace {

PipelineParams small_params() {
  auto p = PipelineParams::defaults_for(crypto::CipherId::kCamellia128);
  p.n_train = 128;
  p.sizes = {32, 48, 24};
  return p;
}

trace::CipherAcquisition make_acq(std::size_t n, std::uint64_t seed) {
  trace::ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kCamellia128;
  sc.random_delay = trace::RandomDelayConfig::kRd2;
  sc.seed = seed;
  return trace::acquire_cipher_traces(sc, n, crypto::Key16{});
}

TEST(Dataset, BuildsRequestedComposition) {
  const auto acq = make_acq(40, 3);
  const auto noise = trace::acquire_noise_trace({}, 20000);
  DatasetBuilder builder(small_params(), 7);
  const auto ds = builder.build(acq, noise);
  EXPECT_EQ(ds.window_length, 128u);
  EXPECT_EQ(ds.count_label(1), 32u);
  EXPECT_EQ(ds.count_label(0), 48u + 24u);
  for (const auto& w : ds.windows) EXPECT_EQ(w.size(), 128u);
}

TEST(Dataset, WindowsAreStandardized) {
  const auto acq = make_acq(16, 5);
  const auto noise = trace::acquire_noise_trace({}, 10000);
  DatasetBuilder builder(small_params(), 7);
  const auto ds = builder.build(acq, noise);
  for (const auto& w : ds.windows) {
    EXPECT_NEAR(stats::mean(w), 0.0, 1e-4);
    EXPECT_NEAR(stats::stddev(w), 1.0, 1e-3);
  }
}

TEST(Dataset, StandardizeWindowHelper) {
  std::vector<float> w = {1.f, 2.f, 3.f, 4.f};
  DatasetBuilder::standardize_window(w);
  EXPECT_NEAR(stats::mean(w), 0.0, 1e-6);
  std::vector<float> constant(4, 2.f);
  DatasetBuilder::standardize_window(constant);
  for (float v : constant) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(Dataset, SplitFractionsAreRespected) {
  const auto acq = make_acq(64, 9);
  const auto noise = trace::acquire_noise_trace({}, 30000);
  auto params = small_params();
  params.sizes = {64, 64, 64};
  DatasetBuilder builder(params, 11);
  const auto ds = builder.build(acq, noise);
  const auto split = builder.split(ds);
  const auto total = split.train.size() + split.val.size() + split.test.size();
  EXPECT_EQ(total, ds.size());
  EXPECT_NEAR(static_cast<double>(split.train.size()) /
                  static_cast<double>(total),
              0.80, 0.03);
  EXPECT_NEAR(static_cast<double>(split.val.size()) /
                  static_cast<double>(total),
              0.15, 0.03);
}

TEST(Dataset, SplitIsStratified) {
  const auto acq = make_acq(64, 13);
  const auto noise = trace::acquire_noise_trace({}, 30000);
  auto params = small_params();
  params.sizes = {64, 64, 64};
  DatasetBuilder builder(params, 13);
  const auto split = builder.split(builder.build(acq, noise));
  // Every split contains both classes.
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    EXPECT_GT(part->count_label(0), 0u);
    EXPECT_GT(part->count_label(1), 0u);
  }
  // Class ratio in train close to global ratio (1/3 positives).
  const double ratio = static_cast<double>(split.train.count_label(1)) /
                       static_cast<double>(split.train.size());
  EXPECT_NEAR(ratio, 1.0 / 3.0, 0.05);
}

TEST(Dataset, JitterZeroTakesExactStartWindows) {
  const auto acq = make_acq(8, 17);
  const auto noise = trace::acquire_noise_trace({}, 10000);
  auto params = small_params();
  params.start_jitter = 0;
  params.sizes = {8, 0, 0};
  DatasetBuilder builder(params, 19);
  const auto ds = builder.build(acq, noise);
  ASSERT_EQ(ds.size(), 8u);
  // With zero jitter, window i is the standardized prefix of capture i.
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<float> expected(
        acq.captures[i].samples.begin(),
        acq.captures[i].samples.begin() + 128);
    DatasetBuilder::standardize_window(expected);
    EXPECT_EQ(ds.windows[i], expected);
  }
}

TEST(Dataset, FewerCapturesThanQuotaStillWorks) {
  const auto acq = make_acq(4, 21);
  const auto noise = trace::acquire_noise_trace({}, 10000);
  auto params = small_params();
  params.sizes = {100, 20, 10};  // quota > captures: cycles through captures
  DatasetBuilder builder(params, 23);
  const auto ds = builder.build(acq, noise);
  EXPECT_EQ(ds.count_label(1), 100u);
}

TEST(Dataset, ConsecutiveRestModeMatchesPaperSemantics) {
  const auto acq = make_acq(4, 25);
  const auto noise = trace::acquire_noise_trace({}, 10000);
  auto params = small_params();
  params.random_rest_offsets = false;
  params.start_jitter = 0;
  params.sizes = {0, 6, 0};
  DatasetBuilder builder(params, 27);
  const auto ds = builder.build(acq, noise);
  ASSERT_GE(ds.size(), 1u);
  // First rest window = capture 0 at offset exactly N.
  std::vector<float> expected(acq.captures[0].samples.begin() + 128,
                              acq.captures[0].samples.begin() + 256);
  DatasetBuilder::standardize_window(expected);
  EXPECT_EQ(ds.windows[0], expected);
}

TEST(Dataset, SplitTooSmallThrows) {
  WindowDataset tiny;
  tiny.window_length = 4;
  for (int i = 0; i < 5; ++i) {
    tiny.windows.push_back({0.f, 0.f, 0.f, 0.f});
    tiny.labels.push_back(static_cast<std::uint8_t>(i % 2));
  }
  DatasetBuilder builder(small_params(), 29);
  EXPECT_THROW(builder.split(tiny), Error);
}

}  // namespace
}  // namespace scalocate::core
