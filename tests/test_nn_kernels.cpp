// Kernel-backend parity suite: the blocked GEMM path vs the naive
// reference kernels, im2col/col2im round trips, the fused pointwise ops,
// Tensor reshape/view semantics, and gradient checks routed through the
// new backend (Conv1d/Linear/MaxPool1d).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/conv1d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/init.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/kernels/pack.hpp"
#include "nn/kernels/parallel.hpp"
#include "nn/kernels/pointwise.hpp"
#include "nn/kernels/reference.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/tensor.hpp"

namespace scalocate::nn {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (float& v : t.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

void expect_close(std::span<const float> a, std::span<const float> b,
                  float tol, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float denom = std::max({1.0f, std::fabs(a[i]), std::fabs(b[i])});
    ASSERT_NEAR(a[i], b[i], tol * denom) << what << " at index " << i;
  }
}

// ---------------------------------------------------------------------------
// GEMM: blocked vs naive reference
// ---------------------------------------------------------------------------

struct GemmCase {
  std::size_t m, n, k;
};

class GemmParity : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParity, AllTransposesAlphaBeta) {
  const auto p = GetParam();
  kernels::GemmScratch scratch;
  std::uint64_t seed = 1000;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      // Row-major storage of op(A) (m x k) and op(B) (k x n).
      const auto a = random_vec(p.m * p.k, seed++);
      const auto b = random_vec(p.k * p.n, seed++);
      const std::size_t lda = ta ? p.m : p.k;
      const std::size_t ldb = tb ? p.k : p.n;
      for (float alpha : {1.0f, -0.5f}) {
        for (float beta : {0.0f, 1.0f, 0.25f}) {
          auto c_ref = random_vec(p.m * p.n, seed);
          auto c_blk = c_ref;  // identical prior contents for beta != 0
          kernels::sgemm_naive(ta, tb, p.m, p.n, p.k, alpha, a.data(), lda,
                               b.data(), ldb, beta, c_ref.data(), p.n);
          kernels::sgemm(ta, tb, p.m, p.n, p.k, alpha, a.data(), lda, b.data(),
                         ldb, beta, c_blk.data(), p.n, scratch);
          expect_close(c_blk, c_ref, 1e-5f, "gemm");
        }
      }
      ++seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParity,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{3, 5, 7}, GemmCase{4, 8, 16},
                      GemmCase{5, 9, 300},   // k spans multiple KC panels? no,
                                             // but exercises long-k loop
                      GemmCase{33, 17, 129}, // ragged in every dimension
                      GemmCase{64, 192, 257},
                      GemmCase{130, 40, 300}));  // m spans multiple MC blocks

TEST(Gemm, KZeroAppliesBetaOnly) {
  kernels::GemmScratch scratch;
  std::vector<float> c = {1.f, 2.f, 3.f, 4.f};
  kernels::sgemm(false, false, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 0.5f,
                 c.data(), 2, scratch);
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
  kernels::sgemm(false, false, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 0.0f,
                 c.data(), 2, scratch);
  for (float v : c) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Gemm, BetaZeroIgnoresGarbageC) {
  kernels::GemmScratch scratch;
  const auto a = random_vec(6, 1);
  const auto b = random_vec(6, 2);
  std::vector<float> c_ref(4, 0.0f);
  std::vector<float> c(4, std::numeric_limits<float>::quiet_NaN());
  kernels::sgemm_naive(false, false, 2, 2, 3, 1.0f, a.data(), 3, b.data(), 2,
                       0.0f, c_ref.data(), 2);
  kernels::sgemm(false, false, 2, 2, 3, 1.0f, a.data(), 3, b.data(), 2, 0.0f,
                 c.data(), 2, scratch);
  expect_close(c, c_ref, 1e-6f, "beta=0");
}

// ---------------------------------------------------------------------------
// im2col / col2im
// ---------------------------------------------------------------------------

TEST(Im2Col, MatchesDirectIndexing) {
  const std::size_t cin = 3, n = 11, k = 4, stride = 2, pad = 1;
  const std::size_t out_len = kernels::conv_output_length(n, k, stride, pad, pad);
  const auto x = random_vec(cin * n, 7);
  std::vector<float> col(cin * k * out_len, -99.0f);
  kernels::im2col(x.data(), cin, n, k, stride, pad, out_len, col.data());
  for (std::size_t ci = 0; ci < cin; ++ci) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t j = 0; j < out_len; ++j) {
        const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(j * stride + kk) -
                                   static_cast<std::ptrdiff_t>(pad);
        const float expected =
            (src >= 0 && src < static_cast<std::ptrdiff_t>(n))
                ? x[ci * n + static_cast<std::size_t>(src)]
                : 0.0f;
        ASSERT_FLOAT_EQ(col[(ci * k + kk) * out_len + j], expected)
            << "ci=" << ci << " k=" << kk << " j=" << j;
      }
    }
  }
}

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <im2col(x), c> == <x, col2im(c)> for random x, c — the defining
  // property of the transpose, which is exactly what backward needs.
  const std::size_t cin = 2, n = 9, k = 3, stride = 1, pad = 1;
  const std::size_t out_len = kernels::conv_output_length(n, k, stride, pad, pad);
  const auto x = random_vec(cin * n, 11);
  const auto c = random_vec(cin * k * out_len, 13);
  std::vector<float> col(cin * k * out_len);
  kernels::im2col(x.data(), cin, n, k, stride, pad, out_len, col.data());
  std::vector<float> xt(cin * n, 0.0f);
  kernels::col2im(c.data(), cin, n, k, stride, pad, out_len, xt.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i)
    lhs += static_cast<double>(col[i] * c[i]);
  for (std::size_t i = 0; i < x.size(); ++i)
    rhs += static_cast<double>(x[i] * xt[i]);
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

// ---------------------------------------------------------------------------
// Conv1d / Linear layer parity against the naive reference kernels
// ---------------------------------------------------------------------------

struct ConvShape {
  std::size_t batch, cin, cout, k, stride, n;
  int pad;  // -1 = same padding
};

class ConvParity : public ::testing::TestWithParam<ConvShape> {};

TEST_P(ConvParity, ForwardAndBackwardMatchReference) {
  const auto p = GetParam();
  Conv1d conv(p.cin, p.cout, p.k, p.stride, p.pad);
  Rng rng(17);
  he_normal_init(conv.weight().value, rng);
  for (float& v : conv.bias().value.flat())
    v = static_cast<float>(rng.uniform(-0.5, 0.5));
  const auto x = random_tensor({p.batch, p.cin, p.n}, 19);
  const std::size_t out_len = conv.output_length(p.n);

  // Forward parity.
  conv.set_training(true);
  Workspace ws;
  const Tensor y = conv.forward(x, ws);
  std::vector<float> y_ref(p.batch * p.cout * out_len);
  kernels::conv1d_forward_naive(x.data(), p.batch, p.cin, p.n,
                                conv.weight().value.data(),
                                conv.bias().value.data(), p.cout, p.k,
                                p.stride, conv.pad_left(), out_len,
                                y_ref.data());
  expect_close(y.flat(), y_ref, 1e-4f, "conv forward");

  // Backward parity (input, weight, and bias gradients).
  const auto gout = random_tensor({p.batch, p.cout, out_len}, 23);
  conv.weight().zero_grad();
  conv.bias().zero_grad();
  const Tensor gx = conv.backward(gout, ws);
  std::vector<float> gx_ref(x.numel(), 0.0f);
  std::vector<float> gw_ref(conv.weight().value.numel(), 0.0f);
  std::vector<float> gb_ref(p.cout, 0.0f);
  kernels::conv1d_backward_naive(x.data(), p.batch, p.cin, p.n,
                                 conv.weight().value.data(), p.cout, p.k,
                                 p.stride, conv.pad_left(), out_len,
                                 gout.data(), gx_ref.data(), gw_ref.data(),
                                 gb_ref.data());
  expect_close(gx.flat(), gx_ref, 1e-4f, "conv grad_input");
  expect_close(conv.weight().grad.flat(), gw_ref, 1e-4f, "conv grad_weight");
  expect_close(conv.bias().grad.flat(), gb_ref, 1e-4f, "conv grad_bias");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvParity,
    ::testing::Values(ConvShape{2, 1, 4, 3, 1, 16, -1},   // tiny same-pad
                      ConvShape{1, 1, 16, 16, 1, 192, -1},  // paper entry conv
                      ConvShape{2, 16, 32, 16, 1, 192, -1},  // paper widening
                      ConvShape{1, 16, 32, 1, 1, 50, 0},  // 1x1 projection
                      ConvShape{2, 3, 5, 4, 2, 37, -1},   // even k, stride 2
                      ConvShape{1, 2, 2, 5, 3, 29, 0},    // no pad, stride 3
                      ConvShape{3, 4, 4, 7, 1, 21, 2}));  // explicit pad

TEST(LinearParity, ForwardAndBackwardMatchReference) {
  Linear lin(37, 11);
  Rng rng(29);
  he_normal_init(lin.weight().value, rng);
  for (float& v : lin.bias().value.flat())
    v = static_cast<float>(rng.uniform(-0.5, 0.5));
  const auto x = random_tensor({5, 37}, 31);

  Workspace ws;
  lin.set_training(true);
  const Tensor y = lin.forward(x, ws);
  std::vector<float> y_ref(5 * 11);
  kernels::linear_forward_naive(x.data(), 5, 37, lin.weight().value.data(),
                                lin.bias().value.data(), 11, y_ref.data());
  expect_close(y.flat(), y_ref, 1e-4f, "linear forward");

  const auto gout = random_tensor({5, 11}, 37);
  lin.weight().zero_grad();
  lin.bias().zero_grad();
  const Tensor gx = lin.backward(gout, ws);
  std::vector<float> gx_ref(x.numel(), 0.0f);
  std::vector<float> gw_ref(lin.weight().value.numel(), 0.0f);
  std::vector<float> gb_ref(11, 0.0f);
  kernels::linear_backward_naive(x.data(), 5, 37, lin.weight().value.data(),
                                 11, gout.data(), gx_ref.data(), gw_ref.data(),
                                 gb_ref.data());
  expect_close(gx.flat(), gx_ref, 1e-4f, "linear grad_input");
  expect_close(lin.weight().grad.flat(), gw_ref, 1e-4f, "linear grad_weight");
  expect_close(lin.bias().grad.flat(), gb_ref, 1e-4f, "linear grad_bias");
}

// ---------------------------------------------------------------------------
// Gradient checks through the GEMM backend
// ---------------------------------------------------------------------------

TEST(KernelGradcheck, ConvThroughGemmBackend) {
  for (const auto& p :
       {ConvShape{2, 2, 3, 5, 1, 14, -1}, ConvShape{1, 3, 2, 4, 2, 13, -1},
        ConvShape{2, 2, 2, 1, 1, 8, 0}}) {
    Conv1d conv(p.cin, p.cout, p.k, p.stride, p.pad);
    Rng rng(41);
    he_normal_init(conv.weight().value, rng);
    const auto x = random_tensor({p.batch, p.cin, p.n}, 43);
    // Slightly larger FD step than the default: near-zero gradient entries
    // otherwise sit at the float forward-pass noise floor and trip the
    // relative bound (the FMA contraction of the GEMM path shifts rounding
    // by a few ulp vs plain mul+add).
    const auto result = check_layer_gradients(conv, x, /*epsilon=*/4e-3);
    EXPECT_TRUE(result.passed)
        << "k=" << p.k << " s=" << p.stride
        << " abs=" << result.max_abs_error << " rel=" << result.max_rel_error;
  }
}

TEST(KernelGradcheck, LinearThroughGemmBackend) {
  Linear lin(9, 6);
  Rng rng(47);
  he_normal_init(lin.weight().value, rng);
  EXPECT_TRUE(check_layer_gradients(lin, random_tensor({3, 9}, 53)).passed);
}

// ---------------------------------------------------------------------------
// Intra-op threading: bit-identical to the single-threaded kernels
// ---------------------------------------------------------------------------
// The threaded drivers only repartition the macro-loops; the per-element
// summation order is untouched, so these compare BITWISE (not within a
// tolerance). ParallelGrainGuard(1) forces even these small shapes through
// the parallel path; on a single-core machine the chunks still execute
// (oversubscribed), so the coverage does not depend on the host's cores.

void expect_bit_equal(std::span<const float> a, std::span<const float> b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << what << " at index " << i << ": " << a[i] << " vs " << b[i];
}

TEST(GemmThreaded, BitIdenticalAcrossThreadCounts) {
  kernels::ParallelGrainGuard grain(1);
  struct Shape {
    std::size_t m, n, k;
  };
  // Wide shapes take the column partition, the tall one the row partition
  // (n = 8 < kMinColsPerChunk); the last is ragged in every dimension and
  // spans multiple cache blocks.
  for (const auto& p :
       {Shape{5, 301, 40}, Shape{301, 8, 40}, Shape{130, 97, 129}}) {
    std::uint64_t seed = 900;
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        const auto a = random_vec(p.m * p.k, seed++);
        const auto b = random_vec(p.k * p.n, seed++);
        const std::size_t lda = ta ? p.m : p.k;
        const std::size_t ldb = tb ? p.k : p.n;
        for (float alpha : {1.0f, -0.5f}) {
          for (float beta : {0.0f, 0.25f}) {
            const auto c0 = random_vec(p.m * p.n, seed);
            auto c_ref = c0;
            {
              kernels::IntraOpGuard intra(1);
              kernels::GemmScratch scratch;
              kernels::sgemm(ta, tb, p.m, p.n, p.k, alpha, a.data(), lda,
                             b.data(), ldb, beta, c_ref.data(), p.n, scratch);
            }
            for (std::size_t threads : {2u, 3u, 8u}) {
              kernels::IntraOpGuard intra(threads);
              kernels::GemmScratch scratch;
              auto c_thr = c0;
              kernels::sgemm(ta, tb, p.m, p.n, p.k, alpha, a.data(), lda,
                             b.data(), ldb, beta, c_thr.data(), p.n, scratch);
              expect_bit_equal(c_thr, c_ref, "threaded gemm");
            }
            ++seed;
          }
        }
      }
    }
  }
}

TEST(GemmThreaded, ConvBitIdenticalAcrossThreadCounts) {
  kernels::ParallelGrainGuard grain(1);
  struct Shape {
    std::size_t batch, cin, cout, k, stride, pad, n;
  };
  // batch > 1 exercises the batch partition (including a ragged 5-way
  // split), batch == 1 the out-channel partition; stride 2 covers the
  // strided packing path.
  for (const auto& p :
       {Shape{5, 3, 8, 7, 1, 3, 40}, Shape{1, 4, 32, 5, 1, 2, 33},
        Shape{3, 2, 12, 6, 2, 2, 37}, Shape{8, 1, 16, 64, 1, 31, 192}}) {
    const std::size_t out_len =
        kernels::conv_output_length(p.n, p.k, p.stride, p.pad, p.pad);
    const auto w = random_vec(p.cout * p.cin * p.k, 501);
    const auto bias = random_vec(p.cout, 503);
    const auto x = random_vec(p.batch * p.cin * p.n, 505);
    std::vector<float> out_ref(p.batch * p.cout * out_len);
    {
      kernels::IntraOpGuard intra(1);
      kernels::GemmScratch scratch;
      kernels::sgemm_conv(p.cout, out_len, p.batch, w.data(), bias.data(),
                          x.data(), p.cin, p.n, p.k, p.stride, p.pad,
                          out_ref.data(), scratch);
    }
    for (std::size_t threads : {2u, 3u, 8u}) {
      kernels::IntraOpGuard intra(threads);
      kernels::GemmScratch scratch;
      std::vector<float> out(p.batch * p.cout * out_len,
                             std::numeric_limits<float>::quiet_NaN());
      kernels::sgemm_conv(p.cout, out_len, p.batch, w.data(), bias.data(),
                          x.data(), p.cin, p.n, p.k, p.stride, p.pad,
                          out.data(), scratch);
      expect_bit_equal(out, out_ref, "threaded conv");
    }
  }
}

TEST(GemmThreaded, GradcheckThroughThreadedBackward) {
  kernels::ParallelGrainGuard grain(1);
  kernels::IntraOpGuard intra(4);
  // out_len 70 >= 2 * kMinColsPerChunk, so the backward dX/dW products
  // actually split under the 4-thread budget.
  Conv1d conv(2, 3, 5, 1, -1);
  Rng rng(41);
  he_normal_init(conv.weight().value, rng);
  // FD step larger again than the 4e-3 of the unthreaded gradchecks: the
  // longer out_len (70 vs 14) deepens the reductions, pushing the noise
  // floor of near-zero gradient entries above the smaller steps.
  const auto result = check_layer_gradients(
      conv, random_tensor({2, 2, 70}, 43), /*epsilon=*/1.6e-2);
  EXPECT_TRUE(result.passed) << "abs=" << result.max_abs_error
                             << " rel=" << result.max_rel_error;

  // in = 70 so the backward dX (m=batch, n=70) and dW (m=6, n=70)
  // products split as well.
  Linear lin(70, 6);
  Rng rng_lin(47);
  he_normal_init(lin.weight().value, rng_lin);
  const auto lin_result = check_layer_gradients(
      lin, random_tensor({3, 70}, 53), /*epsilon=*/4e-3);
  EXPECT_TRUE(lin_result.passed) << "abs=" << lin_result.max_abs_error
                                 << " rel=" << lin_result.max_rel_error;
}

/// Runs a few SGD steps on a Conv1d+Linear stack under the given intra-op
/// budget and returns all trained parameters plus the final forward
/// output (the "detections" of this toy model).
std::vector<float> train_tiny_stack(std::size_t threads) {
  kernels::ParallelGrainGuard grain(1);
  kernels::IntraOpGuard intra(threads);
  const std::size_t batch = 6, cin = 2, cout = 4, n = 20, classes = 3;
  Conv1d conv(cin, cout, 5, 1, -1);
  const std::size_t out_len = conv.output_length(n);
  Linear lin(cout * out_len, classes);
  Rng rng(71);
  he_normal_init(conv.weight().value, rng);
  he_normal_init(lin.weight().value, rng);
  conv.set_training(true);
  lin.set_training(true);
  Workspace ws_conv, ws_lin;
  const auto x = random_tensor({batch, cin, n}, 73);
  Param* params[] = {&conv.weight(), &conv.bias(), &lin.weight(),
                     &lin.bias()};
  for (int step = 0; step < 4; ++step) {
    Tensor y = conv.forward(x, ws_conv);
    y.reshape({batch, cout * out_len});
    const Tensor z = lin.forward(y, ws_lin);
    for (Param* p : params) p->zero_grad();
    Tensor gy = lin.backward(z, ws_lin);  // dL/dz = z for L = 0.5*|z|^2
    gy.reshape({batch, cout, out_len});
    conv.backward(gy, ws_conv);
    for (Param* p : params) {
      auto vals = p->value.flat();
      const auto grads = p->grad.flat();
      for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] -= 0.01f * grads[i];
    }
  }
  Tensor y = conv.forward(x, ws_conv);
  y.reshape({batch, cout * out_len});
  const Tensor z = lin.forward(y, ws_lin);
  std::vector<float> result;
  for (const Param* p : params)
    result.insert(result.end(), p->value.flat().begin(),
                  p->value.flat().end());
  result.insert(result.end(), z.flat().begin(), z.flat().end());
  return result;
}

TEST(GemmThreaded, TrainingBitParityAcrossThreadBudgets) {
  // Whole training runs — every weight after 4 SGD steps AND the final
  // model output — must be bit-identical whatever the kernel fan-out.
  const auto ref = train_tiny_stack(1);
  expect_bit_equal(train_tiny_stack(2), ref, "trained params+output, t=2");
  expect_bit_equal(train_tiny_stack(8), ref, "trained params+output, t=8");
}

// ---------------------------------------------------------------------------
// MaxPool1d
// ---------------------------------------------------------------------------

TEST(MaxPool, KnownValues) {
  MaxPool1d pool(2);  // stride defaults to kernel (non-overlapping)
  const auto y = pool.forward(
      Tensor::from_data({1, 1, 6}, {1.f, 3.f, -2.f, -5.f, 7.f, 7.f}));
  ASSERT_EQ(y.dim(2), 3u);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 3.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), -2.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2), 7.f);
}

TEST(MaxPool, OverlappingStride) {
  MaxPool1d pool(3, 1);
  const auto y =
      pool.forward(Tensor::from_data({1, 1, 5}, {0.f, 1.f, 2.f, 1.f, 0.f}));
  ASSERT_EQ(y.dim(2), 3u);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 2.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 2.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2), 2.f);
}

TEST(MaxPool, Gradient) {
  for (std::size_t stride : {0u, 1u, 2u}) {
    MaxPool1d pool(3, stride);
    const auto result =
        check_layer_gradients(pool, random_tensor({2, 2, 9}, 59));
    EXPECT_TRUE(result.passed) << "stride=" << stride;
  }
}

// ---------------------------------------------------------------------------
// Pointwise kernels
// ---------------------------------------------------------------------------

TEST(Pointwise, BiasReluRowsFusesBothOps) {
  std::vector<float> c = {-1.f, 0.5f, 1.f, -2.f};
  const std::vector<float> bias = {0.25f, 1.f};
  kernels::bias_relu_rows(c.data(), bias.data(), 2, 2);
  EXPECT_FLOAT_EQ(c[0], 0.0f);   // -1 + 0.25 clamped
  EXPECT_FLOAT_EQ(c[1], 0.75f);
  EXPECT_FLOAT_EQ(c[2], 2.0f);   // 1 + 1
  EXPECT_FLOAT_EQ(c[3], 0.0f);
}

TEST(Pointwise, AxpyAndAdd) {
  std::vector<float> y = {1.f, 2.f};
  const std::vector<float> x = {10.f, -10.f};
  kernels::axpy(2, 0.5f, x.data(), y.data());
  EXPECT_FLOAT_EQ(y[0], 6.f);
  EXPECT_FLOAT_EQ(y[1], -3.f);
  kernels::add_inplace(2, x.data(), y.data());
  EXPECT_FLOAT_EQ(y[0], 16.f);
}

TEST(Pointwise, ScaleShiftAndNormalize) {
  const std::vector<float> x = {1.f, 2.f, 3.f};
  std::vector<float> y(3), xhat(3);
  kernels::scale_shift(3, x.data(), 2.0f, -1.0f, y.data());
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  kernels::normalize_scale_shift(3, x.data(), 2.0f, 0.5f, 3.0f, 1.0f,
                                 xhat.data(), y.data());
  EXPECT_FLOAT_EQ(xhat[0], -0.5f);  // (1-2)*0.5
  EXPECT_FLOAT_EQ(y[0], -0.5f);     // 3*(-0.5)+1
  EXPECT_FLOAT_EQ(xhat[2], 0.5f);
}

TEST(Pointwise, StandardizeMatchesDefinition) {
  const auto src = random_vec(64, 61);
  std::vector<float> dst(64);
  kernels::standardize(src, dst.data());
  double m = 0.0;
  for (float v : dst) m += static_cast<double>(v);
  m /= 64.0;
  double var = 0.0;
  for (float v : dst) var += (static_cast<double>(v) - m) * (static_cast<double>(v) - m);
  var /= 64.0;
  EXPECT_NEAR(m, 0.0, 1e-6);
  EXPECT_NEAR(var, 1.0, 1e-5);
}

TEST(Pointwise, StandardizeConstantWindowIsZero) {
  const std::vector<float> src(16, 3.25f);
  std::vector<float> dst(16, 99.f);
  kernels::standardize(src, dst.data());
  for (float v : dst) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Pointwise, StandardizeInPlaceAliasingIsSafe) {
  // DatasetBuilder::standardize_window standardizes a vector onto itself;
  // the kernel computes both statistics before writing, so src == dst must
  // be supported.
  auto v = random_vec(32, 67);
  auto expected = v;
  std::vector<float> out(32);
  kernels::standardize(expected, out.data());
  kernels::standardize(v, v.data());
  expect_close(v, out, 1e-6f, "in-place standardize");
}

// ---------------------------------------------------------------------------
// Tensor reshape/view
// ---------------------------------------------------------------------------

TEST(TensorReshape, ReusesStorage) {
  Tensor t({4, 6});
  const float* before = t.data();
  t.reshape({2, 12});
  EXPECT_EQ(t.data(), before);  // no realloc, no copy
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 12u);
  t.reshape({24});
  EXPECT_EQ(t.data(), before);
  EXPECT_EQ(t.rank(), 1u);
}

TEST(TensorReshape, StridesFollowNewShape) {
  Tensor t({2, 3, 4});
  for (std::size_t i = 0; i < t.numel(); ++i) t.at(i) = static_cast<float>(i);
  t.reshape({4, 6});
  EXPECT_FLOAT_EQ(t.at(1, 2), 8.0f);  // row-major flat index 1*6+2
}

TEST(TensorReshape, NumelMismatchThrows) {
  Tensor t({3, 5});
  EXPECT_THROW(t.reshape({4, 4}), Error);
}

TEST(TensorResize, ShrinkKeepsAllocation) {
  Tensor t({8, 1, 64});
  const float* before = t.data();
  t.resize({3, 1, 64});
  EXPECT_EQ(t.data(), before);
  EXPECT_EQ(t.dim(0), 3u);
  t.resize({8, 1, 64});  // regrow within capacity
  EXPECT_EQ(t.data(), before);
}

}  // namespace
}  // namespace scalocate::nn
