// Tests for the paper-CNN builder (Section III-B / Figure 2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/model.hpp"
#include "nn/loss.hpp"

namespace scalocate::core {
namespace {

nn::Tensor random_window(std::size_t batch, std::size_t n, std::uint64_t seed) {
  nn::Tensor t({batch, 1, n});
  Rng rng(seed);
  for (float& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(PaperCnn, OutputsTwoClassScores) {
  auto net = build_paper_cnn(CnnConfig::scaled());
  const auto y = net->forward(random_window(3, 128, 1));
  EXPECT_EQ(y.rank(), 2u);
  EXPECT_EQ(y.dim(0), 3u);
  EXPECT_EQ(y.dim(1), 2u);
}

TEST(PaperCnn, GlobalPoolingAcceptsDifferentWindowSizes) {
  // The property Section III-B highlights: Ntrain != Ninf with one model.
  auto net = build_paper_cnn(CnnConfig::scaled());
  net->set_training(false);
  EXPECT_NO_THROW(net->forward(random_window(1, 320, 2)));
  EXPECT_NO_THROW(net->forward(random_window(1, 192, 3)));
  EXPECT_NO_THROW(net->forward(random_window(1, 64, 4)));
}

TEST(PaperCnn, PaperConfigUsesKernel64And16Filters) {
  const auto cfg = CnnConfig::paper();
  EXPECT_EQ(cfg.kernel_size, 64u);
  EXPECT_EQ(cfg.base_filters, 16u);
}

TEST(PaperCnn, ParameterCountMatchesArchitecture) {
  const CnnConfig cfg = CnnConfig::scaled();  // F=16, k=16, H=32
  auto net = build_paper_cnn(cfg);
  std::size_t total = 0;
  for (auto* p : net->params()) total += p->value.numel();
  // conv1: 1*16*16+16; bn1: 32
  // rb1: 2x(16*16*16+16) + 2x32
  // rb2: (16*32*16+32) + (32*32*16+32) + 2x64 + proj(16*32*1+32)
  // fc1: 32*32+32; fc2: 32*2+2
  const std::size_t expected =
      (1 * 16 * 16 + 16) + 32 + 2 * (16 * 16 * 16 + 16) + 2 * 32 +
      (16 * 32 * 16 + 32) + (32 * 32 * 16 + 32) + 2 * 64 +
      (16 * 32 * 1 + 32) + (32 * 32 + 32) + (32 * 2 + 2);
  EXPECT_EQ(total, expected);
}

TEST(PaperCnn, DeterministicInitPerSeed) {
  CnnConfig cfg = CnnConfig::scaled();
  cfg.init_seed = 42;
  auto a = build_paper_cnn(cfg);
  auto b = build_paper_cnn(cfg);
  a->set_training(false);
  b->set_training(false);
  const auto x = random_window(1, 96, 5);
  const auto ya = a->forward(x);
  const auto yb = b->forward(x);
  EXPECT_FLOAT_EQ(ya.at(0, 0), yb.at(0, 0));
  EXPECT_FLOAT_EQ(ya.at(0, 1), yb.at(0, 1));
}

TEST(PaperCnn, TrainableEndToEnd) {
  // One Adam-free gradient step through the full network must not throw and
  // must produce finite gradients.
  auto net = build_paper_cnn(CnnConfig::scaled());
  net->set_training(true);
  nn::SoftmaxCrossEntropy loss;
  const auto x = random_window(4, 96, 7);
  const auto logits = net->forward(x);
  loss.forward(logits, {0, 1, 0, 1});
  net->backward(loss.backward());
  for (auto* p : net->params())
    for (float g : p->grad.flat()) EXPECT_TRUE(std::isfinite(g));
}

TEST(PaperCnn, DescribeMentionsAllStages) {
  const std::string desc = describe_paper_cnn(CnnConfig::paper());
  EXPECT_NE(desc.find("Conv1d(1->16, k=64"), std::string::npos);
  EXPECT_NE(desc.find("ResidualBlock"), std::string::npos);
  EXPECT_NE(desc.find("GlobalAvgPool1d"), std::string::npos);
  EXPECT_NE(desc.find("Linear(32->2)"), std::string::npos);
  EXPECT_NE(desc.find("Softmax"), std::string::npos);
}

}  // namespace
}  // namespace scalocate::core
