// Tests for the paper-CNN builder (Section III-B / Figure 2) and the
// zero-copy sliding-window scoring path built on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/dataset.hpp"
#include "core/model.hpp"
#include "core/sliding_window.hpp"
#include "nn/loss.hpp"

namespace scalocate::core {
namespace {

nn::Tensor random_window(std::size_t batch, std::size_t n, std::uint64_t seed) {
  nn::Tensor t({batch, 1, n});
  Rng rng(seed);
  for (float& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(PaperCnn, OutputsTwoClassScores) {
  auto net = build_paper_cnn(CnnConfig::scaled());
  const auto y = net->forward(random_window(3, 128, 1));
  EXPECT_EQ(y.rank(), 2u);
  EXPECT_EQ(y.dim(0), 3u);
  EXPECT_EQ(y.dim(1), 2u);
}

TEST(PaperCnn, GlobalPoolingAcceptsDifferentWindowSizes) {
  // The property Section III-B highlights: Ntrain != Ninf with one model.
  auto net = build_paper_cnn(CnnConfig::scaled());
  net->set_training(false);
  EXPECT_NO_THROW(net->forward(random_window(1, 320, 2)));
  EXPECT_NO_THROW(net->forward(random_window(1, 192, 3)));
  EXPECT_NO_THROW(net->forward(random_window(1, 64, 4)));
}

TEST(PaperCnn, PaperConfigUsesKernel64And16Filters) {
  const auto cfg = CnnConfig::paper();
  EXPECT_EQ(cfg.kernel_size, 64u);
  EXPECT_EQ(cfg.base_filters, 16u);
}

TEST(PaperCnn, ParameterCountMatchesArchitecture) {
  const CnnConfig cfg = CnnConfig::scaled();  // F=16, k=16, H=32
  auto net = build_paper_cnn(cfg);
  std::size_t total = 0;
  for (auto* p : net->params()) total += p->value.numel();
  // conv1: 1*16*16+16; bn1: 32
  // rb1: 2x(16*16*16+16) + 2x32
  // rb2: (16*32*16+32) + (32*32*16+32) + 2x64 + proj(16*32*1+32)
  // fc1: 32*32+32; fc2: 32*2+2
  const std::size_t expected =
      (1 * 16 * 16 + 16) + 32 + 2 * (16 * 16 * 16 + 16) + 2 * 32 +
      (16 * 32 * 16 + 32) + (32 * 32 * 16 + 32) + 2 * 64 +
      (16 * 32 * 1 + 32) + (32 * 32 + 32) + (32 * 2 + 2);
  EXPECT_EQ(total, expected);
}

TEST(PaperCnn, DeterministicInitPerSeed) {
  CnnConfig cfg = CnnConfig::scaled();
  cfg.init_seed = 42;
  auto a = build_paper_cnn(cfg);
  auto b = build_paper_cnn(cfg);
  a->set_training(false);
  b->set_training(false);
  const auto x = random_window(1, 96, 5);
  const auto ya = a->forward(x);
  const auto yb = b->forward(x);
  EXPECT_FLOAT_EQ(ya.at(0, 0), yb.at(0, 0));
  EXPECT_FLOAT_EQ(ya.at(0, 1), yb.at(0, 1));
}

TEST(PaperCnn, TrainableEndToEnd) {
  // One Adam-free gradient step through the full network must not throw and
  // must produce finite gradients.
  auto net = build_paper_cnn(CnnConfig::scaled());
  net->set_training(true);
  nn::SoftmaxCrossEntropy loss;
  const auto x = random_window(4, 96, 7);
  const auto logits = net->forward(x);
  loss.forward(logits, {0, 1, 0, 1});
  net->backward(loss.backward());
  for (auto* p : net->params())
    for (float g : p->grad.flat()) EXPECT_TRUE(std::isfinite(g));
}

TEST(PaperCnn, DescribeMentionsAllStages) {
  const std::string desc = describe_paper_cnn(CnnConfig::paper());
  EXPECT_NE(desc.find("Conv1d(1->16, k=64"), std::string::npos);
  EXPECT_NE(desc.find("ResidualBlock"), std::string::npos);
  EXPECT_NE(desc.find("GlobalAvgPool1d"), std::string::npos);
  EXPECT_NE(desc.find("Linear(32->2)"), std::string::npos);
  EXPECT_NE(desc.find("Softmax"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SlidingWindowClassifier: the zero-copy score_into path
// ---------------------------------------------------------------------------

std::vector<float> random_trace(std::size_t n, std::uint64_t seed) {
  std::vector<float> t(n);
  Rng rng(seed);
  for (float& v : t) v = static_cast<float>(rng.normal());
  return t;
}

TEST(SlidingWindow, NumWindowsEdgeCases) {
  auto net = build_paper_cnn(CnnConfig::scaled());
  net->set_training(false);
  SlidingWindowClassifier c(*net, 192, 48);
  EXPECT_EQ(c.num_windows(191), 0u);  // too short
  EXPECT_EQ(c.num_windows(192), 1u);
  EXPECT_EQ(c.num_windows(192 + 47), 1u);
  EXPECT_EQ(c.num_windows(192 + 48), 2u);
}

TEST(SlidingWindow, ScoreIntoMatchesClassify) {
  auto net = build_paper_cnn(CnnConfig::scaled());
  net->set_training(false);
  SlidingWindowClassifier c(*net, 192, 48, /*batch_size=*/7);
  const auto trace = random_trace(2000, 11);

  nn::Workspace ws_a, ws_b;
  const auto result = c.classify(trace, ws_a);
  std::vector<float> scores(c.num_windows(trace.size()), -1e30f);
  c.score_into(trace, scores, ws_b);
  ASSERT_EQ(result.scores.size(), scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    EXPECT_FLOAT_EQ(result.scores[i], scores[i]) << "window " << i;
}

TEST(SlidingWindow, ZeroCopyPathMatchesExplicitStaging) {
  // The in-place standardize-into-batch path must produce exactly what
  // the old copy-out/standardize/copy-in staging produced.
  auto net = build_paper_cnn(CnnConfig::scaled());
  net->set_training(false);
  const std::size_t window = 192, stride = 48;
  SlidingWindowClassifier c(*net, window, stride);
  const auto trace = random_trace(1500, 13);

  nn::Workspace ws;
  const auto fast = c.classify(trace, ws);

  const std::size_t n_windows = c.num_windows(trace.size());
  std::vector<float> manual(n_windows);
  for (std::size_t i = 0; i < n_windows; ++i) {
    std::vector<float> buf(trace.begin() + static_cast<std::ptrdiff_t>(i * stride),
                           trace.begin() + static_cast<std::ptrdiff_t>(i * stride + window));
    DatasetBuilder::standardize_window(buf);
    nn::Tensor one({1, 1, window});
    std::copy(buf.begin(), buf.end(), one.data());
    c.score_batch(one, manual.data() + i, ws);
  }
  ASSERT_EQ(fast.scores.size(), manual.size());
  for (std::size_t i = 0; i < n_windows; ++i)
    EXPECT_FLOAT_EQ(fast.scores[i], manual[i]) << "window " << i;
}

TEST(SlidingWindow, BatchSizeDoesNotChangeScores) {
  // Batch grouping is an implementation detail: each row is independent,
  // so any batch size must give identical scores.
  auto net = build_paper_cnn(CnnConfig::scaled());
  net->set_training(false);
  const auto trace = random_trace(1800, 17);
  SlidingWindowClassifier c1(*net, 192, 48, 1);
  SlidingWindowClassifier c64(*net, 192, 48, 64);
  const auto a = c1.classify(trace);
  const auto b = c64.classify(trace);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i)
    EXPECT_FLOAT_EQ(a.scores[i], b.scores[i]);
}

}  // namespace
}  // namespace scalocate::core
