// Unit tests for descriptive statistics (common/stats).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace scalocate::stats {
namespace {

const std::vector<float> kSimple = {1.f, 2.f, 3.f, 4.f, 5.f};

TEST(Stats, MeanBasic) { EXPECT_DOUBLE_EQ(mean(kSimple), 3.0); }

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::span<const float>{}), 0.0);
}

TEST(Stats, VarianceBasic) { EXPECT_DOUBLE_EQ(variance(kSimple), 2.0); }

TEST(Stats, VarianceSingletonIsZero) {
  const std::vector<float> one = {5.f};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Stats, StddevBasic) { EXPECT_NEAR(stddev(kSimple), std::sqrt(2.0), 1e-12); }

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<float> x = {1, 2, 3, 4};
  const std::vector<float> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-9);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<float> x = {1, 2, 3, 4};
  const std::vector<float> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-9);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<float> x = {1, 1, 1, 1};
  const std::vector<float> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonLengthMismatchThrows) {
  const std::vector<float> x = {1, 2};
  const std::vector<float> y = {1, 2, 3};
  EXPECT_THROW(pearson(x, y), InvalidArgument);
}

TEST(Stats, MedianOdd) { EXPECT_DOUBLE_EQ(median(kSimple), 3.0); }

TEST(Stats, MedianEven) {
  const std::vector<float> v = {4.f, 1.f, 3.f, 2.f};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, MedianDoesNotReorderInput) {
  std::vector<float> v = {3.f, 1.f, 2.f};
  (void)median(v);
  EXPECT_EQ(v[0], 3.f);
  EXPECT_EQ(v[1], 1.f);
  EXPECT_EQ(v[2], 2.f);
}

TEST(Stats, MedianEmptyThrows) {
  EXPECT_THROW(median(std::span<const float>{}), InvalidArgument);
}

TEST(Stats, PercentileEndpoints) {
  EXPECT_FLOAT_EQ(static_cast<float>(percentile(kSimple, 0.0)), 1.f);
  EXPECT_FLOAT_EQ(static_cast<float>(percentile(kSimple, 100.0)), 5.f);
  EXPECT_FLOAT_EQ(static_cast<float>(percentile(kSimple, 50.0)), 3.f);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<float> v = {0.f, 10.f};
  EXPECT_NEAR(percentile(v, 25.0), 2.5, 1e-9);
}

TEST(Stats, PercentileOutOfRangeThrows) {
  EXPECT_THROW(percentile(kSimple, -1.0), InvalidArgument);
  EXPECT_THROW(percentile(kSimple, 101.0), InvalidArgument);
}

TEST(Stats, MinMaxArg) {
  const std::vector<float> v = {3.f, -1.f, 7.f, 0.f};
  EXPECT_FLOAT_EQ(min_value(v), -1.f);
  EXPECT_FLOAT_EQ(max_value(v), 7.f);
  EXPECT_EQ(argmin(v), 1u);
  EXPECT_EQ(argmax(v), 2u);
}

TEST(Stats, ArgmaxFirstOccurrence) {
  const std::vector<float> v = {1.f, 5.f, 5.f};
  EXPECT_EQ(argmax(v), 1u);
}

TEST(Stats, RunningMomentsMatchBatch) {
  Rng rng(5);
  std::vector<float> xs;
  RunningMoments rm;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    xs.push_back(static_cast<float>(x));
    rm.add(x);
  }
  EXPECT_EQ(rm.count(), 1000u);
  EXPECT_NEAR(rm.mean(), mean(xs), 1e-4);
  EXPECT_NEAR(rm.variance(), variance(xs), 1e-2);
  EXPECT_NEAR(rm.stddev(), stddev(xs), 1e-2);
}

TEST(Stats, RunningMomentsFewSamples) {
  RunningMoments rm;
  EXPECT_DOUBLE_EQ(rm.variance(), 0.0);
  rm.add(4.0);
  EXPECT_DOUBLE_EQ(rm.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rm.variance(), 0.0);
}

TEST(Stats, RunningCorrelationMatchesPearson) {
  Rng rng(9);
  std::vector<float> xs, ys;
  RunningCorrelation rc;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    const double y = 0.7 * x + 0.3 * rng.normal();
    xs.push_back(static_cast<float>(x));
    ys.push_back(static_cast<float>(y));
    rc.add(x, y);
  }
  EXPECT_NEAR(rc.correlation(), pearson(xs, ys), 1e-4);
}

TEST(Stats, RunningCorrelationDegenerate) {
  RunningCorrelation rc;
  EXPECT_DOUBLE_EQ(rc.correlation(), 0.0);
  rc.add(1.0, 1.0);
  EXPECT_DOUBLE_EQ(rc.correlation(), 0.0);
  rc.add(1.0, 2.0);  // zero variance in x
  EXPECT_DOUBLE_EQ(rc.correlation(), 0.0);
}

}  // namespace
}  // namespace scalocate::stats
