// Tests for the Segmentation stage (Section III-D) and the metrics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/metrics.hpp"
#include "core/segmentation.hpp"

namespace scalocate::core {
namespace {

SlidingWindowResult make_swc(std::vector<float> scores, std::size_t stride,
                             std::size_t window = 64) {
  SlidingWindowResult r;
  r.scores = std::move(scores);
  r.stride = stride;
  r.window = window;
  return r;
}

TEST(Segmenter, LocatesPlateauRisingEdges) {
  // Background -3, two 6-window plateaus at indices 10 and 30.
  std::vector<float> scores(48, -3.f);
  for (int i = 10; i < 16; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  for (int i = 30; i < 36; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  SegmenterConfig cfg;
  cfg.threshold = 0.0f;
  cfg.median_filter_k = 3;
  const auto seg = Segmenter(cfg).segment(make_swc(scores, 100));
  EXPECT_EQ(seg.co_starts, (std::vector<std::size_t>{1000, 3000}));
  EXPECT_EQ(seg.threshold_used, 0.0f);
  EXPECT_EQ(seg.median_k_used, 3u);
}

TEST(Segmenter, MedianFilterRemovesGlitches) {
  std::vector<float> scores(40, -3.f);
  scores[5] = 3.f;  // single-window glitch
  for (int i = 20; i < 28; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  SegmenterConfig cfg;
  cfg.threshold = 0.0f;
  cfg.median_filter_k = 3;
  const auto seg = Segmenter(cfg).segment(make_swc(scores, 10));
  EXPECT_EQ(seg.co_starts, (std::vector<std::size_t>{200}));
}

TEST(Segmenter, PlateauAtStartIsReported) {
  std::vector<float> scores(20, -3.f);
  for (int i = 0; i < 6; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  SegmenterConfig cfg;
  cfg.threshold = 0.0f;
  cfg.median_filter_k = 3;
  const auto seg = Segmenter(cfg).segment(make_swc(scores, 10));
  ASSERT_EQ(seg.co_starts.size(), 1u);
  EXPECT_EQ(seg.co_starts[0], 0u);
}

TEST(Segmenter, EmptyInputYieldsNothing) {
  const auto seg = Segmenter(SegmenterConfig{}).segment(make_swc({}, 10));
  EXPECT_TRUE(seg.co_starts.empty());
}

TEST(Segmenter, AutoMedianKIsOddAndClamped) {
  EXPECT_EQ(Segmenter::auto_median_k(1), 3u);
  EXPECT_EQ(Segmenter::auto_median_k(8), 5u);
  EXPECT_EQ(Segmenter::auto_median_k(100), 11u);
  for (std::size_t p : {1u, 2u, 5u, 9u, 33u})
    EXPECT_EQ(Segmenter::auto_median_k(p) % 2, 1u);
}

TEST(Segmenter, OtsuSeparatesBimodalScores) {
  std::vector<float> scores;
  for (int i = 0; i < 100; ++i)
    scores.push_back(-5.f + 0.01f * static_cast<float>(i));
  for (int i = 0; i < 100; ++i)
    scores.push_back(5.f + 0.01f * static_cast<float>(i));
  const float th = Segmenter::otsu_threshold(scores);
  EXPECT_GT(th, -4.2f);
  EXPECT_LT(th, 5.0f);
}

TEST(Segmenter, AutoThresholdViaNaN) {
  std::vector<float> scores(30, -4.f);
  for (int i = 10; i < 20; ++i) scores[static_cast<std::size_t>(i)] = 4.f;
  SegmenterConfig cfg;  // threshold NaN -> Otsu
  cfg.median_filter_k = 3;
  const auto seg = Segmenter(cfg).segment(make_swc(scores, 10));
  EXPECT_GT(seg.threshold_used, -4.0f);
  EXPECT_LT(seg.threshold_used, 4.0f);
  EXPECT_EQ(seg.co_starts, (std::vector<std::size_t>{100}));
}

TEST(Segmenter, MergeGapBridgesShortPlateauSplits) {
  // Plateau 10..16, two-window dip, plateau 18..24 — the shape interrupt
  // preemption / gain steps leave behind.
  std::vector<float> scores(40, -3.f);
  for (int i = 10; i < 16; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  for (int i = 18; i < 24; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  SegmenterConfig cfg;
  cfg.threshold = 0.0f;
  cfg.median_filter_k = 1;  // identity filter: the dip reaches the scan
  const auto split = Segmenter(cfg).segment(make_swc(scores, 10));
  EXPECT_EQ(split.co_starts, (std::vector<std::size_t>{100, 180}));

  cfg.merge_gap_windows = 2;
  const auto merged = Segmenter(cfg).segment(make_swc(scores, 10));
  EXPECT_EQ(merged.co_starts, (std::vector<std::size_t>{100}));
}

TEST(Segmenter, MergeGapKeepsGenuinelySeparatePlateaus) {
  std::vector<float> scores(40, -3.f);
  for (int i = 5; i < 11; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  for (int i = 20; i < 26; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  SegmenterConfig cfg;
  cfg.threshold = 0.0f;
  cfg.median_filter_k = 1;
  cfg.merge_gap_windows = 2;  // gap of 9 windows stays a real separation
  const auto seg = Segmenter(cfg).segment(make_swc(scores, 10));
  EXPECT_EQ(seg.co_starts, (std::vector<std::size_t>{50, 200}));
}

TEST(Segmenter, MergeGapBridgesDipAfterFrontPlateau) {
  std::vector<float> scores(20, -3.f);
  for (int i = 0; i < 4; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  for (int i = 6; i < 10; ++i) scores[static_cast<std::size_t>(i)] = 3.f;
  SegmenterConfig cfg;
  cfg.threshold = 0.0f;
  cfg.median_filter_k = 1;
  cfg.merge_gap_windows = 2;
  const auto seg = Segmenter(cfg).segment(make_swc(scores, 10));
  // The window-0 plateau and its resumption are one CO at sample 0.
  EXPECT_EQ(seg.co_starts, (std::vector<std::size_t>{0}));
}

TEST(Segmenter, OtsuClippedRangeShrugsOffOutliers) {
  // Bimodal mass at -5 and +5 with AGC-style outlier spikes: the unclipped
  // histogram squashes the real modes into a couple of bins.
  std::vector<float> scores;
  for (int i = 0; i < 100; ++i)
    scores.push_back(-5.f + 0.01f * static_cast<float>(i));
  for (int i = 0; i < 100; ++i)
    scores.push_back(5.f + 0.01f * static_cast<float>(i));
  scores.push_back(1000.f);
  scores.push_back(-1000.f);
  const float clipped = Segmenter::otsu_threshold(scores, 2.0);
  EXPECT_GT(clipped, -5.0f);
  EXPECT_LT(clipped, 5.1f);
  // Zero clip is exactly the legacy overload.
  EXPECT_EQ(Segmenter::otsu_threshold(scores, 0.0),
            Segmenter::otsu_threshold(scores));
  EXPECT_THROW(Segmenter::otsu_threshold(scores, 50.0), Error);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ConfusionMatrix, RatesAndAccuracy) {
  ConfusionMatrix cm;
  for (int i = 0; i < 90; ++i) cm.add(0, 0);
  for (int i = 0; i < 10; ++i) cm.add(0, 1);
  for (int i = 0; i < 30; ++i) cm.add(1, 1);
  for (int i = 0; i < 10; ++i) cm.add(1, 0);
  EXPECT_DOUBLE_EQ(cm.rate(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(cm.rate(1, 1), 0.75);
  EXPECT_DOUBLE_EQ(cm.true_negative_rate(), 0.9);
  EXPECT_DOUBLE_EQ(cm.true_positive_rate(), 0.75);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 120.0 / 140.0);
  EXPECT_EQ(cm.total(), 140u);
}

TEST(ConfusionMatrix, EmptyRatesAreZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.rate(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(ConfusionMatrix, RenderContainsPercentages) {
  ConfusionMatrix cm;
  cm.add(0, 0);
  cm.add(1, 1);
  const auto s = cm.render("AES");
  EXPECT_NE(s.find("AES"), std::string::npos);
  EXPECT_NE(s.find("100.00%"), std::string::npos);
}

TEST(ConfusionMatrix, InvalidLabelThrows) {
  ConfusionMatrix cm;
  EXPECT_THROW(cm.add(2, 0), Error);
}

TEST(HitScore, ExactMatches) {
  const auto s = score_hits({100, 200, 300}, {100, 200, 300}, 10);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.false_alarms, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 1.0);
  EXPECT_DOUBLE_EQ(s.mean_abs_error, 0.0);
}

TEST(HitScore, ToleranceWindow) {
  const auto s = score_hits({105, 250}, {100, 200}, 10);
  EXPECT_EQ(s.hits, 1u);           // 105 matches 100; 250 too far from 200
  EXPECT_EQ(s.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(s.mean_abs_error, 5.0);
}

TEST(HitScore, EachDetectionMatchesOnce) {
  // One detection cannot satisfy two true starts.
  const auto s = score_hits({100}, {95, 105}, 20);
  EXPECT_EQ(s.hits, 1u);
}

TEST(HitScore, MissedAndEmpty) {
  const auto s = score_hits({}, {100, 200}, 10);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.0);
  const auto t = score_hits({5}, {}, 10);
  EXPECT_EQ(t.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(t.hit_rate(), 0.0);
}

TEST(HitScore, NearestDetectionWins) {
  const auto s = score_hits({98, 110}, {100}, 20);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_DOUBLE_EQ(s.mean_abs_error, 2.0);  // 98 is closer than 110
  EXPECT_EQ(s.false_alarms, 1u);
}

}  // namespace
}  // namespace scalocate::core
