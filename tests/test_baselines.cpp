// Tests for the two state-of-the-art baseline locators ([10], [11]).
//
// The load-bearing claims of Table II are exercised here: both baselines
// locate COs reliably when the random-delay countermeasure is OFF, and
// degrade to (near-)zero hit rate when it is ON.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/metrics.hpp"
#include "sca/matched_filter.hpp"
#include "sca/waveform_matching.hpp"
#include "trace/scenario.hpp"

namespace scalocate::sca {
namespace {

struct Setup {
  trace::CipherAcquisition acq;
  trace::Trace eval;
  std::vector<std::size_t> truth;
};

Setup make_setup(trace::RandomDelayConfig rd, std::uint64_t seed,
                 std::size_t n_cos = 24) {
  trace::ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;
  sc.random_delay = rd;
  sc.seed = seed;
  crypto::Key16 key{};
  key[0] = 0x2b;
  Setup s;
  s.acq = trace::acquire_cipher_traces(sc, 48, key);
  s.eval = trace::acquire_eval_trace(sc, n_cos, key, /*interleave_noise=*/false);
  s.truth = s.eval.co_starts();
  return s;
}

TEST(MatchedFilter, LocatesAllCosWithoutRandomDelay) {
  const auto s = make_setup(trace::RandomDelayConfig::kOff, 101);
  MatchedFilterLocator mf;
  mf.fit(s.acq);
  const auto located = mf.locate(s.eval.samples);
  const auto score = core::score_hits(located, s.truth, 128);
  EXPECT_GE(score.hit_rate(), 0.90);
}

TEST(MatchedFilter, DegradesUnderRd4) {
  const auto s = make_setup(trace::RandomDelayConfig::kRd4, 103);
  MatchedFilterLocator mf;
  mf.fit(s.acq);
  const auto located = mf.locate(s.eval.samples);
  const auto score = core::score_hits(located, s.truth, 128);
  EXPECT_LE(score.hit_rate(), 0.5);  // far from its RD-0 performance
}

TEST(MatchedFilter, CalibrationResponseDropsUnderRd) {
  const auto clean = make_setup(trace::RandomDelayConfig::kOff, 105, 4);
  const auto rd = make_setup(trace::RandomDelayConfig::kRd4, 105, 4);
  MatchedFilterLocator mf_clean, mf_rd;
  mf_clean.fit(clean.acq);
  mf_rd.fit(rd.acq);
  EXPECT_GT(mf_clean.calibration_response(), mf_rd.calibration_response());
  EXPECT_GT(mf_clean.calibration_response(), 0.55);
}

TEST(MatchedFilter, RequiresFitBeforeLocate) {
  MatchedFilterLocator mf;
  std::vector<float> t(1000);
  EXPECT_THROW(mf.locate(t), Error);
  EXPECT_FALSE(mf.is_fitted());
}

TEST(MatchedFilter, TemplateHasConfiguredLength) {
  const auto s = make_setup(trace::RandomDelayConfig::kOff, 107, 4);
  MatchedFilterConfig cfg;
  cfg.template_length = 256;
  MatchedFilterLocator mf(cfg);
  mf.fit(s.acq);
  EXPECT_EQ(mf.template_waveform().size(), 256u);
}

TEST(WaveformMatching, LocatesAllCosWithoutRandomDelay) {
  const auto s = make_setup(trace::RandomDelayConfig::kOff, 109);
  WaveformMatchingLocator wm;
  wm.fit(s.acq);
  const auto located = wm.locate(s.eval.samples);
  const auto score = core::score_hits(located, s.truth, 128);
  EXPECT_GE(score.hit_rate(), 0.75);
}

TEST(WaveformMatching, FailsUnderRd4) {
  const auto s = make_setup(trace::RandomDelayConfig::kRd4, 111);
  WaveformMatchingLocator wm;
  wm.fit(s.acq);
  const auto located = wm.locate(s.eval.samples);
  const auto score = core::score_hits(located, s.truth, 128);
  EXPECT_LE(score.hit_rate(), 0.3);
}

TEST(WaveformMatching, SelectsAMedoidReference) {
  const auto s = make_setup(trace::RandomDelayConfig::kOff, 113, 4);
  WaveformMatchingConfig cfg;
  cfg.candidate_pool = 8;
  WaveformMatchingLocator wm(cfg);
  wm.fit(s.acq);
  EXPECT_LT(wm.medoid_index(), 8u);
  EXPECT_EQ(wm.reference_waveform().size(), cfg.reference_length);
}

TEST(WaveformMatching, RequiresFitBeforeLocate) {
  WaveformMatchingLocator wm;
  std::vector<float> t(1000);
  EXPECT_THROW(wm.locate(t), Error);
}

}  // namespace
}  // namespace scalocate::sca
