// Tests for binary IO helpers and the text-table renderer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "common/io.hpp"
#include "common/table.hpp"

namespace scalocate {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Io, ScalarRoundTrip) {
  std::stringstream ss;
  io::write_scalar<std::uint32_t>(ss, 0xdeadbeefu);
  io::write_scalar<double>(ss, 3.25);
  EXPECT_EQ(io::read_scalar<std::uint32_t>(ss), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(io::read_scalar<double>(ss), 3.25);
}

TEST(Io, VectorRoundTrip) {
  std::stringstream ss;
  const std::vector<float> v = {1.f, -2.f, 3.5f};
  io::write_vector(ss, v);
  EXPECT_EQ(io::read_vector<float>(ss), v);
}

TEST(Io, EmptyVectorRoundTrip) {
  std::stringstream ss;
  io::write_vector(ss, std::vector<float>{});
  EXPECT_TRUE(io::read_vector<float>(ss).empty());
}

TEST(Io, StringRoundTrip) {
  std::stringstream ss;
  io::write_string(ss, "hello scalocate");
  io::write_string(ss, "");
  EXPECT_EQ(io::read_string(ss), "hello scalocate");
  EXPECT_EQ(io::read_string(ss), "");
}

TEST(Io, MagicValidation) {
  const auto path = temp_path("scalocate_io_test.bin");
  {
    auto os = io::open_for_write(path, 0x1122334455667788ULL);
    io::write_scalar<std::uint32_t>(os, 7);
  }
  {
    auto is = io::open_for_read(path, 0x1122334455667788ULL);
    EXPECT_EQ(io::read_scalar<std::uint32_t>(is), 7u);
  }
  EXPECT_THROW(io::open_for_read(path, 0x9999999999999999ULL), IoError);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(io::open_for_read("/nonexistent/dir/file.bin", 1), IoError);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha |"), std::string::npos);
  EXPECT_NE(s.find("+-"), std::string::npos);
}

TEST(Table, SeparatorProducesExtraRule) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.render();
  // header top + header bottom + separator + final = at least 4 rules
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = s.find("+-", pos)) != std::string::npos;
       pos += 2)
    ++rules;
  EXPECT_GE(rules, 4u);
}

TEST(Table, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(Format, Fixed) { EXPECT_EQ(format_fixed(3.14159, 2), "3.14"); }

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.9956), "99.56%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Format, Kilo) {
  EXPECT_EQ(format_kilo(22000), "22k");
  EXPECT_EQ(format_kilo(4800), "4.8k");
  EXPECT_EQ(format_kilo(137), "137");
}

}  // namespace
}  // namespace scalocate
