// Tests for the Tensor container.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/tensor.hpp"

namespace scalocate::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (float v : t.flat()) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(Tensor, ShapeAndDims) {
  Tensor t({4, 2, 8});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(0), 4u);
  EXPECT_EQ(t.dim(1), 2u);
  EXPECT_EQ(t.dim(2), 8u);
  EXPECT_THROW(t.dim(3), InvalidArgument);
}

TEST(Tensor, StridesAreRowMajor) {
  Tensor t({4, 2, 8});
  EXPECT_EQ(t.stride(0), 16u);
  EXPECT_EQ(t.stride(1), 8u);
  EXPECT_EQ(t.stride(2), 1u);
}

TEST(Tensor, IndexingIsConsistentWithStrides) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 42.f;
  EXPECT_FLOAT_EQ(t.at(1 * 12 + 2 * 4 + 3), 42.f);
  t.at(0, 1, 0) = 7.f;
  EXPECT_FLOAT_EQ(t.data()[4], 7.f);
}

TEST(Tensor, Rank2Indexing) {
  Tensor t({3, 5});
  t.at(2, 4) = 1.5f;
  EXPECT_FLOAT_EQ(t.at(14), 1.5f);
}

TEST(Tensor, FromDataAdoptsValues) {
  auto t = Tensor::from_data({2, 2}, {1.f, 2.f, 3.f, 4.f});
  EXPECT_FLOAT_EQ(t.at(1, 1), 4.f);
}

TEST(Tensor, FromDataSizeMismatchThrows) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.f}), InvalidArgument);
}

TEST(Tensor, Fill) {
  Tensor t({3});
  t.fill(2.5f);
  for (float v : t.flat()) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Tensor, ReshapedPreservesData) {
  auto t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  auto u = t.reshaped({3, 2});
  EXPECT_EQ(u.dim(0), 3u);
  EXPECT_FLOAT_EQ(u.at(2, 1), 6.f);
  EXPECT_THROW(t.reshaped({5}), InvalidArgument);
}

TEST(Tensor, ShapeString) {
  Tensor t({2, 16, 192});
  EXPECT_EQ(t.shape_string(), "(2, 16, 192)");
}

TEST(Tensor, SameShape) {
  Tensor a({2, 3}), b({2, 3}), c({3, 2});
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

}  // namespace
}  // namespace scalocate::nn
