// Known-answer, round-trip, and statistical tests for the cipher substrate.
//
// AES and Camellia vectors were generated/validated against OpenSSL
// (FIPS-197 and RFC 3713 vectors included); the Simon vector is from the
// Simon & Speck paper appendix. Clefia is a structure-faithful variant
// (see clefia128.hpp), so it is validated by round-trip, bijectivity and
// avalanche tests instead of external vectors.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crypto/aes128.hpp"
#include "crypto/camellia128.hpp"
#include "crypto/cipher.hpp"
#include "crypto/clefia128.hpp"
#include "crypto/masked_aes.hpp"
#include "crypto/simon128.hpp"

namespace scalocate::crypto {
namespace {

Block16 from_hex(const std::string& hex) {
  Block16 out{};
  for (std::size_t i = 0; i < 16; ++i)
    out[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  return out;
}

std::string to_hex(const Block16& b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (auto v : b) {
    s += digits[v >> 4];
    s += digits[v & 0xf];
  }
  return s;
}

/// Counts events emitted by one traced encryption.
class CountingSink final : public EventSink {
 public:
  void on_event(const DataEvent& event) override {
    ++count_;
    per_class_[static_cast<std::size_t>(event.op)]++;
  }
  std::size_t count() const { return count_; }
  std::size_t of(OpClass op) const {
    return per_class_[static_cast<std::size_t>(op)];
  }

 private:
  std::size_t count_ = 0;
  std::array<std::size_t, static_cast<std::size_t>(OpClass::kCount)>
      per_class_{};
};

// ---------------------------------------------------------------------------
// AES-128
// ---------------------------------------------------------------------------

TEST(Aes128, Fips197KnownAnswer) {
  Aes128 aes;
  aes.set_key(from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto ct = aes.encrypt(from_hex("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, DecryptInvertsEncrypt) {
  Aes128 aes;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Key16 key{};
    Block16 pt{};
    rng.fill_bytes(key.data(), 16);
    rng.fill_bytes(pt.data(), 16);
    aes.set_key(key);
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

TEST(Aes128, SboxIsBijective) {
  std::set<std::uint8_t> seen;
  for (int x = 0; x < 256; ++x)
    seen.insert(Aes128::sbox(static_cast<std::uint8_t>(x)));
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Aes128, InvSboxInvertsSbox) {
  for (int x = 0; x < 256; ++x) {
    const auto v = static_cast<std::uint8_t>(x);
    EXPECT_EQ(Aes128::inv_sbox(Aes128::sbox(v)), v);
  }
}

TEST(Aes128, XtimeMatchesGf2) {
  EXPECT_EQ(Aes128::xtime(0x57), 0xae);
  EXPECT_EQ(Aes128::xtime(0xae), 0x47);  // wraps modulo the AES polynomial
}

TEST(Aes128, EncryptWithoutKeyThrows) {
  Aes128 aes;
  EXPECT_THROW(aes.encrypt(Block16{}), Error);
}

TEST(Aes128, EmitsEventsWhenTraced) {
  Aes128 aes;
  aes.set_key(Key16{});
  CountingSink sink;
  aes.encrypt(Block16{}, &sink);
  EXPECT_GT(sink.count(), 500u);
  EXPECT_EQ(sink.of(OpClass::kSbox), 160u);  // 16 bytes x 10 rounds
  EXPECT_GT(sink.of(OpClass::kLoad), 0u);
  EXPECT_GT(sink.of(OpClass::kStore), 0u);
}

TEST(Aes128, NullSinkProducesSameCiphertext) {
  Aes128 aes;
  aes.set_key(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block16 pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  CountingSink sink;
  EXPECT_EQ(aes.encrypt(pt), aes.encrypt(pt, &sink));
}

// ---------------------------------------------------------------------------
// Masked AES-128
// ---------------------------------------------------------------------------

TEST(MaskedAes, FunctionallyEqualToAes) {
  Aes128 plain;
  MaskedAes128 masked(1234);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    Key16 key{};
    Block16 pt{};
    rng.fill_bytes(key.data(), 16);
    rng.fill_bytes(pt.data(), 16);
    plain.set_key(key);
    masked.set_key(key);
    EXPECT_EQ(masked.encrypt(pt), plain.encrypt(pt));
  }
}

TEST(MaskedAes, DecryptInverts) {
  MaskedAes128 masked(9);
  Key16 key{};
  key[3] = 0xaa;
  masked.set_key(key);
  Block16 pt{};
  pt[0] = 0x42;
  EXPECT_EQ(masked.decrypt(masked.encrypt(pt)), pt);
}

TEST(MaskedAes, IsMaskedFlag) {
  MaskedAes128 masked(9);
  EXPECT_TRUE(masked.is_masked());
  Aes128 plain;
  EXPECT_FALSE(plain.is_masked());
}

TEST(MaskedAes, EventStreamDiffersBetweenEncryptions) {
  // Fresh masks per encryption: the traced values of two identical
  // encryptions must differ (first-order masking at work).
  MaskedAes128 masked(77);
  masked.set_key(Key16{});

  struct Collect final : EventSink {
    std::vector<std::uint64_t> values;
    void on_event(const DataEvent& e) override { values.push_back(e.value); }
  };
  Collect a, b;
  const Block16 pt{};
  const auto ct1 = masked.encrypt(pt, &a);
  const auto ct2 = masked.encrypt(pt, &b);
  EXPECT_EQ(ct1, ct2);             // same function
  EXPECT_NE(a.values, b.values);   // different masked intermediates
}

TEST(MaskedAes, EmitsSboxRemaskingBurst) {
  MaskedAes128 masked(5);
  masked.set_key(Key16{});
  CountingSink sink;
  masked.encrypt(Block16{}, &sink);
  // 256-entry masked S-box recomputation dominates the load/store counts.
  EXPECT_GT(sink.of(OpClass::kLoad), 256u);
  EXPECT_GT(sink.of(OpClass::kStore), 256u);
}

// ---------------------------------------------------------------------------
// Camellia-128
// ---------------------------------------------------------------------------

TEST(Camellia128, Rfc3713KnownAnswer) {
  Camellia128 cam;
  cam.set_key(from_hex("0123456789abcdeffedcba9876543210"));
  const auto ct = cam.encrypt(from_hex("0123456789abcdeffedcba9876543210"));
  EXPECT_EQ(to_hex(ct), "67673138549669730857065648eabe43");
}

TEST(Camellia128, OpensslGeneratedVectors) {
  // Generated with `openssl enc -camellia-128-ecb -nopad`.
  struct Vector {
    const char* key;
    const char* pt;
    const char* ct;
  };
  const Vector vectors[] = {
      {"810c8ca0fc0aeba00e169d7583176280", "2366f69d6ab981be4ac1e63240c0e5ec",
       "1da96a314f416be40b5ef09affc30281"},
      {"91f4a6175f09826c9b9fd7c65e6078d6", "6318eb96c65fd6e5b0bbd1fe14ef7500",
       "2e7546dfe9bfc56b33994100d0dea507"},
      {"381fa04befa694cecb61463fde27cbf5", "9a63355927485689ee58ae68cfb79409",
       "dab049cc79cfaedbce1252e554d41f35"},
  };
  Camellia128 cam;
  for (const auto& v : vectors) {
    cam.set_key(from_hex(v.key));
    EXPECT_EQ(to_hex(cam.encrypt(from_hex(v.pt))), v.ct);
  }
}

TEST(Camellia128, DecryptInvertsEncrypt) {
  Camellia128 cam;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Key16 key{};
    Block16 pt{};
    rng.fill_bytes(key.data(), 16);
    rng.fill_bytes(pt.data(), 16);
    cam.set_key(key);
    EXPECT_EQ(cam.decrypt(cam.encrypt(pt)), pt);
  }
}

TEST(Camellia128, EmitsSboxEvents) {
  Camellia128 cam;
  cam.set_key(Key16{});
  CountingSink sink;
  cam.encrypt(Block16{}, &sink);
  EXPECT_EQ(sink.of(OpClass::kSbox), 144u);  // 8 per F, 18 rounds
}

// ---------------------------------------------------------------------------
// Simon-128/128
// ---------------------------------------------------------------------------

TEST(Simon128, PaperKnownAnswer) {
  Simon128 simon;
  Key16 key{};
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  simon.set_key(key);
  Block16 pt{};
  const std::uint64_t y = 0x6c6c657661727420ULL;
  const std::uint64_t x = 0x6373656420737265ULL;
  for (int i = 0; i < 8; ++i) {
    pt[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(y >> (8 * i));
    pt[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(x >> (8 * i));
  }
  const auto ct = simon.encrypt(pt);
  std::uint64_t cy = 0, cx = 0;
  for (int i = 7; i >= 0; --i) {
    cy = (cy << 8) | ct[static_cast<std::size_t>(i)];
    cx = (cx << 8) | ct[static_cast<std::size_t>(8 + i)];
  }
  EXPECT_EQ(cx, 0x49681b1e1e54fe3fULL);
  EXPECT_EQ(cy, 0x65aa832af84e0bbcULL);
}

TEST(Simon128, DecryptInvertsEncrypt) {
  Simon128 simon;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    Key16 key{};
    Block16 pt{};
    rng.fill_bytes(key.data(), 16);
    rng.fill_bytes(pt.data(), 16);
    simon.set_key(key);
    EXPECT_EQ(simon.decrypt(simon.encrypt(pt)), pt);
  }
}

TEST(Simon128, NoSboxEvents) {
  Simon128 simon;
  simon.set_key(Key16{});
  CountingSink sink;
  simon.encrypt(Block16{}, &sink);
  EXPECT_EQ(sink.of(OpClass::kSbox), 0u);  // ARX cipher: no table lookups
  EXPECT_GE(sink.of(OpClass::kXor), Simon128::kRounds);
}

// ---------------------------------------------------------------------------
// Clefia-128 (structure-faithful variant)
// ---------------------------------------------------------------------------

TEST(Clefia128, DecryptInvertsEncrypt) {
  Clefia128 clefia;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Key16 key{};
    Block16 pt{};
    rng.fill_bytes(key.data(), 16);
    rng.fill_bytes(pt.data(), 16);
    clefia.set_key(key);
    EXPECT_EQ(clefia.decrypt(clefia.encrypt(pt)), pt);
  }
}

TEST(Clefia128, SboxesAreBijective) {
  std::set<std::uint8_t> s0, s1;
  for (int x = 0; x < 256; ++x) {
    s0.insert(Clefia128::s0(static_cast<std::uint8_t>(x)));
    s1.insert(Clefia128::s1(static_cast<std::uint8_t>(x)));
  }
  EXPECT_EQ(s0.size(), 256u);
  EXPECT_EQ(s1.size(), 256u);
}

TEST(Clefia128, AvalancheOnPlaintext) {
  // Flipping one plaintext bit should flip ~half the ciphertext bits.
  Clefia128 clefia;
  Key16 key{};
  key[7] = 0x5a;
  clefia.set_key(key);
  Block16 pt{};
  const auto c1 = clefia.encrypt(pt);
  pt[0] ^= 0x01;
  const auto c2 = clefia.encrypt(pt);
  int flipped = 0;
  for (std::size_t i = 0; i < 16; ++i)
    flipped += __builtin_popcount(static_cast<unsigned>(c1[i] ^ c2[i]));
  EXPECT_GT(flipped, 40);
  EXPECT_LT(flipped, 88);
}

TEST(Clefia128, AvalancheOnKey) {
  Clefia128 clefia;
  Key16 key{};
  clefia.set_key(key);
  const auto c1 = clefia.encrypt(Block16{});
  key[15] ^= 0x80;
  clefia.set_key(key);
  const auto c2 = clefia.encrypt(Block16{});
  int flipped = 0;
  for (std::size_t i = 0; i < 16; ++i)
    flipped += __builtin_popcount(static_cast<unsigned>(c1[i] ^ c2[i]));
  EXPECT_GT(flipped, 40);
  EXPECT_LT(flipped, 88);
}

TEST(Clefia128, EmitsSboxEvents) {
  Clefia128 clefia;
  clefia.set_key(Key16{});
  CountingSink sink;
  clefia.encrypt(Block16{}, &sink);
  EXPECT_EQ(sink.of(OpClass::kSbox), 144u);  // 8 per round, 18 rounds
}

// ---------------------------------------------------------------------------
// Factory / registry -- parameterized round-trip across all ciphers
// ---------------------------------------------------------------------------

class AllCiphers : public ::testing::TestWithParam<CipherId> {};

TEST_P(AllCiphers, EncryptDecryptRoundTrip) {
  auto cipher = make_cipher(GetParam(), 99);
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    Key16 key{};
    Block16 pt{};
    rng.fill_bytes(key.data(), 16);
    rng.fill_bytes(pt.data(), 16);
    cipher->set_key(key);
    EXPECT_EQ(cipher->decrypt(cipher->encrypt(pt)), pt);
  }
}

TEST_P(AllCiphers, TracedAndUntracedAgree) {
  auto cipher = make_cipher(GetParam(), 42);
  cipher->set_key(Key16{});
  CountingSink sink;
  const Block16 pt{};
  // Note: the masked cipher consumes fresh randomness per call, but its
  // *ciphertext* is mask-independent by construction.
  EXPECT_EQ(cipher->encrypt(pt, &sink), cipher->encrypt(pt));
  EXPECT_GT(sink.count(), 100u);
}

TEST_P(AllCiphers, DeterministicCiphertext) {
  auto a = make_cipher(GetParam(), 7);
  auto b = make_cipher(GetParam(), 8);  // different mask seed: same function
  Key16 key{};
  key[0] = 1;
  a->set_key(key);
  b->set_key(key);
  Block16 pt{};
  pt[5] = 9;
  EXPECT_EQ(a->encrypt(pt), b->encrypt(pt));
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllCiphers,
    ::testing::Values(CipherId::kAes128, CipherId::kAesMasked,
                      CipherId::kClefia128, CipherId::kCamellia128,
                      CipherId::kSimon128));

TEST(CipherRegistry, ParseAndDisplayNames) {
  EXPECT_EQ(parse_cipher_id("aes"), CipherId::kAes128);
  EXPECT_EQ(parse_cipher_id("AES-128"), CipherId::kAes128);
  EXPECT_EQ(parse_cipher_id("aes-mask"), CipherId::kAesMasked);
  EXPECT_EQ(parse_cipher_id("Clefia"), CipherId::kClefia128);
  EXPECT_EQ(parse_cipher_id("camellia"), CipherId::kCamellia128);
  EXPECT_EQ(parse_cipher_id("simon"), CipherId::kSimon128);
  EXPECT_THROW(parse_cipher_id("des"), InvalidArgument);
  EXPECT_EQ(cipher_display_name(CipherId::kAesMasked), "AES mask");
  EXPECT_EQ(all_cipher_ids().size(), 5u);
}

}  // namespace
}  // namespace scalocate::crypto
