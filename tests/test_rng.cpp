// Unit tests for the deterministic RNG (common/rng).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace scalocate {
namespace {

TEST(Rng, EqualSeedsProduceEqualStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expected, 0.05 * expected);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntBadRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(4, 3), InvalidArgument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, NormalMomentsMatchStandardGaussian) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(29);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // overwhelmingly unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, FillBytesDeterministic) {
  Rng a(41), b(41);
  std::uint8_t x[64], y[64];
  a.fill_bytes(x, 64);
  b.fill_bytes(y, 64);
  EXPECT_TRUE(std::equal(x, x + 64, y));
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng parent(43);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Splitmix64, StableAndAdvancesState) {
  std::uint64_t s1 = 42, s2 = 42;
  const auto v1 = splitmix64(s1);
  const auto v2 = splitmix64(s2);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), v1);  // state advanced -> new value
}

}  // namespace
}  // namespace scalocate
