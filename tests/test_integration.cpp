// Integration test: the full training + inference pipeline of the paper on
// a reduced configuration (AES-128 under RD-2 with a small dataset and few
// epochs so the test stays within CI budgets).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/locator.hpp"
#include "core/metrics.hpp"
#include "trace/scenario.hpp"

namespace scalocate {
namespace {

class PipelineIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    key_ = new crypto::Key16{};
    for (int i = 0; i < 16; ++i)
      (*key_)[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x10 + i);

    sc_ = new trace::ScenarioConfig{};
    sc_->cipher = crypto::CipherId::kAes128;
    sc_->random_delay = trace::RandomDelayConfig::kRd2;
    sc_->seed = 42;

    auto acq = trace::acquire_cipher_traces(*sc_, 640, *key_);
    auto noise = trace::acquire_noise_trace(*sc_, 150000);

    core::LocatorConfig lc;
    lc.params = core::PipelineParams::defaults_for(sc_->cipher);
    lc.params.epochs = 12;
    
    locator_ = new core::CoLocator(lc);
    report_ = new core::TrainReport(locator_->train(acq, noise));
  }

  static void TearDownTestSuite() {
    delete locator_;
    delete report_;
    delete sc_;
    delete key_;
  }

  static crypto::Key16* key_;
  static trace::ScenarioConfig* sc_;
  static core::CoLocator* locator_;
  static core::TrainReport* report_;
};

crypto::Key16* PipelineIntegration::key_ = nullptr;
trace::ScenarioConfig* PipelineIntegration::sc_ = nullptr;
core::CoLocator* PipelineIntegration::locator_ = nullptr;
core::TrainReport* PipelineIntegration::report_ = nullptr;

TEST_F(PipelineIntegration, TrainingReachesHighTestAccuracy) {
  EXPECT_TRUE(locator_->is_trained());
  EXPECT_GE(report_->test_confusion.accuracy(), 0.85);
  EXPECT_EQ(report_->epochs.size(), 12u);
  EXPECT_LE(report_->best_val_loss,
            report_->epochs.front().val_loss + 1e-6);
}

TEST_F(PipelineIntegration, LocatesConsecutiveCos) {
  // Hit rates at this scaled training budget land in the 50-100% band
  // depending on seed (the paper's 100% uses ~100x more training data);
  // the bound asserts the pipeline is far above the chance/baseline level.
  const auto eval = trace::acquire_eval_trace(*sc_, 24, *key_, false);
  const auto located = locator_->locate(eval.samples);
  const auto score =
      core::score_hits(located, eval.co_starts(), locator_->config().params.n_inf);
  EXPECT_GE(score.hit_rate(), 0.50);
}

TEST_F(PipelineIntegration, LocatesCosInterleavedWithNoise) {
  // Noise-interleaved localization is the harder scenario at this scaled
  // training budget (table-lookup noise phases mimic cipher windows); the
  // paper reaches 100% with ~100x more training data. See EXPERIMENTS.md.
  const auto eval = trace::acquire_eval_trace(*sc_, 24, *key_, true);
  const auto located = locator_->locate(eval.samples);
  const auto score =
      core::score_hits(located, eval.co_starts(), locator_->config().params.n_inf);
  EXPECT_GE(score.hit_rate(), 0.50);
}

TEST_F(PipelineIntegration, AlignmentProducesUsableSegments) {
  const auto eval = trace::acquire_eval_trace(*sc_, 12, *key_, false);
  const auto seg_len = static_cast<std::size_t>(locator_->mean_co_length() / 4);
  const auto aligned = locator_->locate_and_align(eval.samples, seg_len);
  EXPECT_GE(aligned.segments.size(), 9u);
  for (const auto& s : aligned.segments) EXPECT_EQ(s.size(), seg_len);
}

TEST_F(PipelineIntegration, DetailedOutputIsConsistent) {
  const auto eval = trace::acquire_eval_trace(*sc_, 6, *key_, false);
  auto det = locator_->locate_detailed(eval.samples);
  EXPECT_EQ(det.segmentation.square_wave.size(), det.swc.scores.size());
  EXPECT_EQ(det.segmentation.filtered.size(), det.swc.scores.size());
  // corrected starts shifted from raw by at most the calibration offsets +
  // refinement radius.
  EXPECT_LE(det.co_starts.size(), det.segmentation.co_starts.size());
}

TEST_F(PipelineIntegration, ModelSaveLoadKeepsPredictions) {
  const auto path =
      (std::filesystem::temp_directory_path() / "scalocate_locator.bin")
          .string();
  locator_->save_model(path);

  core::LocatorConfig lc2 = locator_->config();
  core::CoLocator clone(lc2);
  clone.load_model(path);

  const auto eval = trace::acquire_eval_trace(*sc_, 4, *key_, false);
  core::SlidingWindowClassifier ca(locator_->model(), lc2.params.n_inf,
                                   lc2.params.stride);
  core::SlidingWindowClassifier cb(clone.model(), lc2.params.n_inf,
                                   lc2.params.stride);
  const auto sa = ca.classify(eval.samples);
  const auto sb = cb.classify(eval.samples);
  ASSERT_EQ(sa.scores.size(), sb.scores.size());
  for (std::size_t i = 0; i < sa.scores.size(); ++i)
    EXPECT_FLOAT_EQ(sa.scores[i], sb.scores[i]);
  std::remove(path.c_str());
}

TEST_F(PipelineIntegration, CalibrationOffsetIsSmall) {
  // After two-stage calibration the residual lead should be well under one
  // inference window.
  EXPECT_LT(std::llabs(static_cast<long long>(locator_->fine_offset())),
            static_cast<long long>(locator_->config().params.n_inf));
}

}  // namespace
}  // namespace scalocate
