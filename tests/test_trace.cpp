// Tests for the SoC trace-simulator substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "trace/acquisition.hpp"
#include "trace/noise_apps.hpp"
#include "trace/power_model.hpp"
#include "trace/random_delay.hpp"
#include "trace/scenario.hpp"
#include "trace/soc_simulator.hpp"
#include "trace/trng.hpp"

namespace scalocate::trace {
namespace {

using crypto::DataEvent;
using crypto::OpClass;

// ---------------------------------------------------------------------------
// Power model
// ---------------------------------------------------------------------------

TEST(PowerModel, RendersSamplesPerOp) {
  PowerModel pm;
  std::vector<float> out;
  pm.render(DataEvent{OpClass::kXor, 0xff, 8}, out);
  EXPECT_EQ(out.size(), pm.config().samples_per_op);
}

TEST(PowerModel, NopIsLowestPower) {
  PowerModel pm;
  std::vector<float> nop, others;
  pm.render(DataEvent{OpClass::kNop, 0, 8}, nop);
  for (auto op : {OpClass::kLoad, OpClass::kStore, OpClass::kXor,
                  OpClass::kSbox, OpClass::kBranch}) {
    others.clear();
    // Use a mid-HW value so the data term does not dominate.
    pm.render(DataEvent{op, 0x0f, 8}, others);
    EXPECT_LT(stats::mean(nop), stats::mean(others));
  }
}

TEST(PowerModel, HammingWeightShiftsWriteBackSample) {
  PowerModel pm;
  std::vector<float> low, high;
  pm.render(DataEvent{OpClass::kXor, 0x00, 8}, low);   // HW 0
  pm.render(DataEvent{OpClass::kXor, 0xff, 8}, high);  // HW 8
  const std::size_t wb = pm.config().samples_per_op - 2;
  EXPECT_NEAR(high[wb] - low[wb], pm.config().data_alpha, 1e-5);
}

TEST(PowerModel, WidthNormalizesLeakage) {
  PowerModel pm;
  std::vector<float> v8, v32;
  pm.render(DataEvent{OpClass::kXor, 0xff, 8}, v8);          // full HW at w=8
  pm.render(DataEvent{OpClass::kXor, 0xffffffffull, 32}, v32);  // full at w=32
  const std::size_t wb = pm.config().samples_per_op - 2;
  EXPECT_NEAR(v8[wb], v32[wb], 1e-5);
}

TEST(PowerModel, HammingWeight) {
  EXPECT_EQ(hamming_weight(0), 0);
  EXPECT_EQ(hamming_weight(0xff), 8);
  EXPECT_EQ(hamming_weight(0x8000000000000000ull), 1);
}

// ---------------------------------------------------------------------------
// TRNG and random delay
// ---------------------------------------------------------------------------

TEST(Trng, DeterministicPerSeed) {
  Trng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_word(), b.next_word());
}

TEST(Trng, DelayWithinBound) {
  Trng t(7);
  for (int i = 0; i < 1000; ++i) {
    const auto d = t.next_delay(4);
    EXPECT_LE(d, 4u);
  }
  EXPECT_EQ(t.next_delay(0), 0u);
}

TEST(Trng, DelayRoughlyUniform) {
  Trng t(11);
  int counts[5] = {};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[t.next_delay(4)];
  for (int c : counts) EXPECT_NEAR(c, n / 5.0, 0.06 * n / 5.0);
}

TEST(Trng, HealthCounters) {
  Trng t(13);
  for (int i = 0; i < 100; ++i) t.next_word();
  EXPECT_EQ(t.words_produced(), 100u);
  EXPECT_LT(t.longest_repetition(), 3u);  // 32-bit repeats are ~2^-32
}

TEST(RandomDelay, OffInsertsNothing) {
  RandomDelayInjector inj(RandomDelayConfig::kOff, 1);
  int emitted = 0;
  for (int i = 0; i < 100; ++i) inj.inject([&](const DataEvent&) { ++emitted; });
  EXPECT_EQ(emitted, 0);
  EXPECT_EQ(inj.dummies_inserted(), 0u);
}

TEST(RandomDelay, Rd4InsertsAtMostFourPerGap) {
  RandomDelayInjector inj(RandomDelayConfig::kRd4, 2);
  for (int i = 0; i < 1000; ++i) {
    int emitted = 0;
    inj.inject([&](const DataEvent&) { ++emitted; });
    EXPECT_LE(emitted, 4);
  }
  // Expected total approx 1000 * 2.
  EXPECT_NEAR(static_cast<double>(inj.dummies_inserted()), 2000.0, 200.0);
}

TEST(RandomDelay, DummiesAreAluOps) {
  RandomDelayInjector inj(RandomDelayConfig::kRd4, 3);
  std::set<OpClass> seen;
  for (int i = 0; i < 500; ++i)
    inj.inject([&](const DataEvent& e) { seen.insert(e.op); });
  for (auto op : seen)
    EXPECT_TRUE(op == OpClass::kArith || op == OpClass::kXor ||
                op == OpClass::kShift);
  EXPECT_GE(seen.size(), 2u);
}

TEST(RandomDelay, Names) {
  EXPECT_STREQ(random_delay_name(RandomDelayConfig::kOff), "RD-0");
  EXPECT_STREQ(random_delay_name(RandomDelayConfig::kRd2), "RD-2");
  EXPECT_STREQ(random_delay_name(RandomDelayConfig::kRd4), "RD-4");
  EXPECT_EQ(random_delay_bound(RandomDelayConfig::kRd2), 2u);
}

// ---------------------------------------------------------------------------
// Noise applications
// ---------------------------------------------------------------------------

TEST(NoiseApps, EmitsRequestedVolume) {
  NoiseAppGenerator gen(1);
  std::size_t emitted = 0;
  gen.run_app(1000, [&](const DataEvent&) { ++emitted; });
  EXPECT_EQ(emitted, 1000u);
}

TEST(NoiseApps, PhasesHaveDistinctMixes) {
  NoiseAppGenerator gen(2);
  std::size_t loads_mem = 0, loads_idle = 0, total = 2000;
  gen.run_phase(NoisePhase::kMemoryBurst, total, [&](const DataEvent& e) {
    loads_mem += e.op == OpClass::kLoad;
  });
  gen.run_phase(NoisePhase::kIdle, total, [&](const DataEvent& e) {
    loads_idle += e.op == OpClass::kLoad;
  });
  EXPECT_GT(loads_mem, total / 3);
  EXPECT_EQ(loads_idle, 0u);
}

TEST(NoiseApps, TableLookupPhaseContainsSbox) {
  NoiseAppGenerator gen(3);
  std::size_t sbox = 0;
  gen.run_phase(NoisePhase::kTableLookup, 400, [&](const DataEvent& e) {
    sbox += e.op == OpClass::kSbox;
  });
  EXPECT_EQ(sbox, 100u);  // every 4th instruction
}

TEST(NoiseApps, PhaseNames) {
  EXPECT_EQ(noise_phase_name(NoisePhase::kMemoryBurst), "memory-burst");
  EXPECT_EQ(noise_phase_name(NoisePhase::kMixed), "mixed");
}

// ---------------------------------------------------------------------------
// Acquisition model
// ---------------------------------------------------------------------------

TEST(Acquisition, AddsNoiseOfConfiguredSigma) {
  AcquisitionConfig cfg;
  cfg.drift_amplitude = 0.0;
  cfg.enable_quantization = false;
  cfg.noise_sigma = 0.1;
  AcquisitionModel acq(cfg, 5);
  std::vector<float> samples(20000, 1.0f);
  acq.apply(samples);
  EXPECT_NEAR(stats::mean(samples), 1.0, 0.01);
  EXPECT_NEAR(stats::stddev(samples), 0.1, 0.01);
}

TEST(Acquisition, QuantizationSnapsToAdcGrid) {
  AcquisitionConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.drift_amplitude = 0.0;
  cfg.adc_bits = 4;  // coarse grid to make steps visible
  cfg.full_scale_min = 0.0;
  cfg.full_scale_max = 1.5;
  AcquisitionModel acq(cfg, 5);
  std::vector<float> samples = {0.2f, 0.7f, 1.4f};
  acq.apply(samples);
  const double step = 1.5 / 15.0;
  for (float v : samples) {
    const double code = static_cast<double>(v) / step;
    EXPECT_NEAR(code, std::round(code), 1e-4);
  }
}

TEST(Acquisition, ClampsToFullScale) {
  AcquisitionConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.drift_amplitude = 0.0;
  AcquisitionModel acq(cfg, 5);
  std::vector<float> samples = {-10.0f, 10.0f};
  acq.apply(samples);
  EXPECT_GE(samples[0], cfg.full_scale_min - 1e-5);
  EXPECT_LE(samples[1], cfg.full_scale_max + 1e-5);
}

TEST(Acquisition, DriftIsSlowAndBounded) {
  AcquisitionConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.enable_quantization = false;
  cfg.drift_amplitude = 0.05;
  cfg.drift_period = 1000;
  AcquisitionModel acq(cfg, 5);
  std::vector<float> samples(2000, 0.0f);
  acq.apply(samples);
  EXPECT_NEAR(stats::max_value(samples), 0.05f, 1e-3);
  EXPECT_NEAR(stats::min_value(samples), -0.05f, 1e-3);
}

// ---------------------------------------------------------------------------
// SoC simulator + scenarios
// ---------------------------------------------------------------------------

TEST(SocSimulator, CipherRunAnnotatesGroundTruth) {
  SocConfig cfg;
  cfg.random_delay = RandomDelayConfig::kRd2;
  SocSimulator sim(cfg);
  auto cipher = crypto::make_cipher(crypto::CipherId::kAes128);
  cipher->set_key(crypto::Key16{});
  Trace t;
  sim.run_nop_sled(64, t);
  const std::size_t sled_end = t.size();
  crypto::Block16 pt{};
  pt[0] = 0x42;
  sim.run_cipher(*cipher, pt, t);
  ASSERT_EQ(t.cos.size(), 1u);
  EXPECT_GE(t.cos[0].start_sample, sled_end);
  EXPECT_EQ(t.cos[0].end_sample, t.size());
  EXPECT_EQ(t.cos[0].plaintext, pt);
  cipher->set_key(crypto::Key16{});
  EXPECT_EQ(t.cos[0].ciphertext, cipher->encrypt(pt));
  EXPECT_EQ(t.random_delay_max, 2u);
}

TEST(SocSimulator, RandomDelayLengthensTraces) {
  auto run = [](RandomDelayConfig rd) {
    SocConfig cfg;
    cfg.random_delay = rd;
    SocSimulator sim(cfg);
    auto cipher = crypto::make_cipher(crypto::CipherId::kCamellia128);
    cipher->set_key(crypto::Key16{});
    Trace t;
    sim.run_cipher(*cipher, crypto::Block16{}, t);
    return t.size();
  };
  const auto len0 = run(RandomDelayConfig::kOff);
  const auto len2 = run(RandomDelayConfig::kRd2);
  const auto len4 = run(RandomDelayConfig::kRd4);
  EXPECT_LT(len0, len2);
  EXPECT_LT(len2, len4);
  // RD-k inserts on average k/2 dummies per instruction.
  EXPECT_NEAR(static_cast<double>(len2) / static_cast<double>(len0), 2.0, 0.3);
  EXPECT_NEAR(static_cast<double>(len4) / static_cast<double>(len0), 3.0, 0.4);
}

TEST(SocSimulator, CipherRunsDifferInLengthUnderRd) {
  SocConfig cfg;
  cfg.random_delay = RandomDelayConfig::kRd4;
  SocSimulator sim(cfg);
  auto cipher = crypto::make_cipher(crypto::CipherId::kAes128);
  cipher->set_key(crypto::Key16{});
  std::set<std::size_t> lengths;
  for (int i = 0; i < 5; ++i) {
    Trace t;
    sim.run_cipher(*cipher, crypto::Block16{}, t);
    lengths.insert(t.size());
  }
  EXPECT_GT(lengths.size(), 1u);  // desynchronization at work
}

TEST(Scenario, NopBoundaryDetectorIsAccurate) {
  ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;
  sc.random_delay = RandomDelayConfig::kRd4;
  sc.seed = 55;
  const auto acq = acquire_cipher_traces(sc, 32, crypto::Key16{});
  ASSERT_EQ(acq.captures.size(), 32u);
  double mean_err = 0.0;
  for (const auto& cap : acq.captures)
    mean_err += static_cast<double>(cap.true_start_error);
  mean_err /= 32.0;
  EXPECT_LT(mean_err, 64.0);
}

TEST(Scenario, EvalTraceCarriesAllCos) {
  ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kCamellia128;
  sc.random_delay = RandomDelayConfig::kRd2;
  sc.seed = 77;
  crypto::Key16 key{};
  key[1] = 0x77;
  const auto t = acquire_eval_trace(sc, 10, key, /*interleave_noise=*/true);
  ASSERT_EQ(t.cos.size(), 10u);
  // Starts are increasing and separated by at least one CO length.
  for (std::size_t i = 1; i < t.cos.size(); ++i)
    EXPECT_GT(t.cos[i].start_sample, t.cos[i - 1].end_sample - 1);
  EXPECT_GT(t.mean_co_length(), 500.0);
  // Ciphertext annotations are genuine encryptions of the plaintexts.
  auto cipher = crypto::make_cipher(sc.cipher);
  cipher->set_key(key);
  for (const auto& co : t.cos)
    EXPECT_EQ(co.ciphertext, cipher->encrypt(co.plaintext));
}

TEST(Scenario, NopBoundaryDegenerateInputsAreDefined) {
  // Shorter than one op, and shorter than the smoothing/hold horizon: no
  // boundary is measurable; 0 = "whole capture is CO".
  EXPECT_EQ(detect_nop_boundary({}, 4), 0u);
  const std::vector<float> tiny(3, 0.5f);
  EXPECT_EQ(detect_nop_boundary(tiny, 4), 0u);
  const std::vector<float> sub(16 * 4 - 1, 0.5f);
  EXPECT_EQ(detect_nop_boundary(sub, 4), 0u);
}

TEST(Scenario, NopBoundaryAllSledReturnsZero) {
  // A pure NOP sled has no activity boundary to find.
  SocConfig cfg;
  cfg.random_delay = RandomDelayConfig::kOff;
  SocSimulator sim(cfg);
  Trace t;
  sim.run_nop_sled(512, t);
  EXPECT_EQ(detect_nop_boundary(t.samples, cfg.power.samples_per_op), 0u);
}

TEST(Scenario, NopBoundaryActiveFromSampleZeroIsDefined) {
  // A capture with activity from sample 0 (no sled) has a head level equal
  // to the activity level: the detector must return a defined in-range
  // index (ideally 0) instead of a noise-band scan.
  SocConfig cfg;
  cfg.random_delay = RandomDelayConfig::kRd2;
  SocSimulator sim(cfg);
  auto cipher = crypto::make_cipher(crypto::CipherId::kAes128);
  cipher->set_key(crypto::Key16{});
  Trace t;
  sim.run_cipher(*cipher, crypto::Block16{}, t);
  const auto b = detect_nop_boundary(t.samples, cfg.power.samples_per_op);
  EXPECT_LE(b, t.samples.size());
  // The boundary must not claim the bulk of the CO is sled.
  EXPECT_LT(b, t.samples.size() / 4);
}

TEST(Acquisition, GainStepsArePiecewiseConstantWithinRange) {
  AcquisitionConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.drift_amplitude = 0.0;
  cfg.enable_quantization = false;
  cfg.gain_step_prob = 1.0 / 100.0;
  cfg.gain_min = 0.5;
  cfg.gain_max = 2.0;
  AcquisitionModel acq(cfg, 9);
  std::vector<float> samples(20000, 1.0f);
  acq.apply(samples);
  std::set<float> levels(samples.begin(), samples.end());
  EXPECT_GT(levels.size(), 3u);  // several AGC re-rangings happened
  for (float v : samples) {
    EXPECT_GE(v, 0.5f - 1e-6f);
    EXPECT_LE(v, 2.0f + 1e-6f);
  }
  // Piecewise constant: far fewer level changes than samples.
  std::size_t changes = 0;
  for (std::size_t i = 1; i < samples.size(); ++i)
    changes += samples[i] != samples[i - 1];
  EXPECT_LT(changes, samples.size() / 10);
}

TEST(Acquisition, GainStepsOffKeepsLegacyRngStream) {
  // The AGC path must not consume RNG draws when disabled, so default
  // captures stay bit-identical to the pre-AGC implementation.
  AcquisitionConfig with_fields;
  with_fields.gain_step_prob = 0.0;
  with_fields.gain_min = 0.1;  // ignored while prob is 0
  with_fields.gain_max = 7.0;
  AcquisitionModel a(AcquisitionConfig{}, 11), b(with_fields, 11);
  std::vector<float> x(5000, 0.8f), y(5000, 0.8f);
  a.apply(x);
  b.apply(y);
  EXPECT_EQ(x, y);
}

TEST(SocSimulator, PreemptedCipherIsLongerAndAnnotated) {
  const auto run = [](bool preempted) {
    SocConfig cfg;
    cfg.random_delay = RandomDelayConfig::kRd2;
    SocSimulator sim(cfg);
    auto cipher = crypto::make_cipher(crypto::CipherId::kAes128);
    cipher->set_key(crypto::Key16{});
    crypto::Block16 pt{};
    pt[3] = 0x5a;
    Trace t;
    if (preempted) {
      PreemptionConfig pc;
      pc.irqs_per_co = 2;
      pc.isr_min_instr = 200;
      pc.isr_max_instr = 400;
      sim.run_cipher_preempted(*cipher, pt, pc, 123, t);
    } else {
      sim.run_cipher(*cipher, pt, t);
    }
    return t;
  };
  const Trace plain = run(false);
  const Trace preempted = run(true);
  // Two ISRs of >= 200 instructions each, with prologue/epilogue, rendered
  // at >= samples_per_op samples per instruction.
  EXPECT_GT(preempted.size(), plain.size() + 2 * 200 * 4);
  ASSERT_EQ(preempted.cos.size(), 1u);
  EXPECT_LT(preempted.cos[0].start_sample, preempted.cos[0].end_sample);
  EXPECT_EQ(preempted.cos[0].end_sample, preempted.size());
  // The suspended execution still computes the right ciphertext.
  auto cipher = crypto::make_cipher(crypto::CipherId::kAes128);
  cipher->set_key(crypto::Key16{});
  EXPECT_EQ(preempted.cos[0].ciphertext,
            cipher->encrypt(preempted.cos[0].plaintext));
}

TEST(Scenario, ClockJitterRemapsGroundTruthThroughTheWarp) {
  // On a ramp trace, linear interpolation preserves sample values as
  // original positions: samples[warped_index] ~ original_index, which
  // verifies the annotation remap agrees with the sample warp.
  Trace t;
  t.samples.resize(30000);
  for (std::size_t i = 0; i < t.samples.size(); ++i)
    t.samples[i] = static_cast<float>(i);
  t.cos.push_back({5000, 12000, {}, {}});
  t.cos.push_back({20000, 28000, {}, {}});

  ClockJitterConfig cfg;  // wobble 0.08
  apply_clock_jitter(t, cfg, 99);

  EXPECT_GT(t.samples.size(), static_cast<std::size_t>(30000 * 0.90));
  EXPECT_LT(t.samples.size(), static_cast<std::size_t>(30000 * 1.10));
  const std::size_t originals[] = {5000, 12000, 20000, 28000};
  const std::size_t warped[] = {t.cos[0].start_sample, t.cos[0].end_sample,
                                t.cos[1].start_sample, t.cos[1].end_sample};
  for (int i = 0; i < 4; ++i) {
    ASSERT_LT(warped[static_cast<std::size_t>(i)], t.samples.size() + 1);
    const std::size_t w = std::min(warped[static_cast<std::size_t>(i)],
                                   t.samples.size() - 1);
    EXPECT_NEAR(t.samples[w], static_cast<float>(originals[i]), 4.0f);
  }
  EXPECT_LT(t.cos[0].start_sample, t.cos[0].end_sample);
  EXPECT_LT(t.cos[0].end_sample, t.cos[1].start_sample);
}

TEST(Scenario, ClockJitterZeroWobbleIsIdentity) {
  Trace t;
  t.samples = {1.f, 2.f, 3.f, 4.f};
  t.cos.push_back({1, 3, {}, {}});
  ClockJitterConfig cfg;
  cfg.wobble = 0.0;
  apply_clock_jitter(t, cfg, 7);
  EXPECT_EQ(t.samples, (std::vector<float>{1.f, 2.f, 3.f, 4.f}));
  EXPECT_EQ(t.cos[0].start_sample, 1u);
}

TEST(Scenario, MixedCaptureInterleavesTwoCiphers) {
  ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;
  sc.mixed_cipher = crypto::CipherId::kClefia128;
  sc.random_delay = RandomDelayConfig::kRd2;
  sc.seed = 31;
  crypto::Key16 key{};
  key[0] = 0x11;
  const auto cap = acquire_mixed_eval_trace(sc, 6, key);
  ASSERT_EQ(cap.trace.cos.size(), 6u);
  ASSERT_EQ(cap.co_ciphers.size(), 6u);
  EXPECT_EQ(cap.starts_of(crypto::CipherId::kAes128).size(), 3u);
  EXPECT_EQ(cap.starts_of(crypto::CipherId::kClefia128).size(), 3u);
  // Each annotated ciphertext verifies against its own cipher.
  auto aes = crypto::make_cipher(crypto::CipherId::kAes128);
  auto clefia = crypto::make_cipher(crypto::CipherId::kClefia128);
  aes->set_key(key);
  clefia->set_key(key);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& co = cap.trace.cos[i];
    const auto& c =
        cap.co_ciphers[i] == crypto::CipherId::kAes128 ? aes : clefia;
    EXPECT_EQ(co.ciphertext, c->encrypt(co.plaintext));
  }
  EXPECT_THROW(
      {
        ScenarioConfig bad = sc;
        bad.mixed_cipher = bad.cipher;
        acquire_mixed_eval_trace(bad, 2, key);
      },
      Error);
}

TEST(Scenario, SuiteEnumeratesEveryScenarioUniformly) {
  const auto cases = ScenarioSuite::all();
  ASSERT_GE(cases.size(), 7u);
  std::set<std::string> names;
  for (const auto& c : cases) names.insert(c.name);
  EXPECT_EQ(names.size(), cases.size());  // stable unique names
  EXPECT_EQ(ScenarioSuite::find("clock-jitter").kind,
            ScenarioKind::kClockJitter);
  EXPECT_THROW(ScenarioSuite::find("no-such-scenario"), Error);

  ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;
  sc.random_delay = RandomDelayConfig::kRd2;
  sc.seed = 41;
  crypto::Key16 key{};
  for (const auto& c : cases) {
    const auto cap = ScenarioSuite::acquire(c, sc, 2, key);
    ASSERT_EQ(cap.trace.cos.size(), 2u) << c.name;
    ASSERT_EQ(cap.co_ciphers.size(), 2u) << c.name;
    for (const auto& co : cap.trace.cos) {
      EXPECT_LT(co.start_sample, co.end_sample) << c.name;
      EXPECT_LE(co.end_sample, cap.trace.size()) << c.name;
    }
  }
}

TEST(Scenario, SuiteWalkWorksWhenPrimaryEqualsDefaultPartner) {
  // A registry walk must not throw for the cipher that happens to be the
  // default mixed partner (Camellia): the suite substitutes a differing
  // partner. Explicit misuse of the mixed API still throws (tested above).
  ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kCamellia128;
  ASSERT_EQ(sc.mixed_cipher, sc.cipher);
  sc.random_delay = RandomDelayConfig::kRd2;
  sc.seed = 47;
  crypto::Key16 key{};
  const auto cap = ScenarioSuite::acquire(ScenarioSuite::find("mixed-cipher"),
                                          sc, 4, key);
  ASSERT_EQ(cap.trace.cos.size(), 4u);
  EXPECT_EQ(cap.starts_of(crypto::CipherId::kCamellia128).size(), 2u);
  EXPECT_EQ(cap.starts_of(crypto::CipherId::kAes128).size(), 2u);
}

TEST(Scenario, TruncatedTailEndsMidCo) {
  ScenarioConfig sc;
  sc.random_delay = RandomDelayConfig::kRd2;
  sc.seed = 43;
  crypto::Key16 key{};
  const auto& c = ScenarioSuite::find("truncated-tail");
  const auto cap = ScenarioSuite::acquire(c, sc, 3, key);
  ASSERT_EQ(cap.trace.cos.size(), 3u);
  // The capture stops exactly at the trailing CO's (clamped) end: there is
  // CO material after the last start but no falling edge.
  EXPECT_EQ(cap.trace.cos.back().end_sample, cap.trace.size());
  EXPECT_GT(cap.trace.size(), cap.trace.cos.back().start_sample);
}

TEST(Scenario, NoiseTraceHasNoCos) {
  ScenarioConfig sc;
  sc.seed = 88;
  const auto t = acquire_noise_trace(sc, 5000);
  EXPECT_TRUE(t.cos.empty());
  EXPECT_GT(t.size(), 5000u);
}

TEST(TraceIo, SaveLoadRoundTrip) {
  Trace t;
  t.samples = {1.f, 2.f, 3.f};
  t.cipher_name = "AES-128";
  t.random_delay_max = 4;
  CoAnnotation co;
  co.start_sample = 1;
  co.end_sample = 3;
  co.plaintext[0] = 0xab;
  co.ciphertext[15] = 0xcd;
  t.cos.push_back(co);

  const auto path =
      (std::filesystem::temp_directory_path() / "scalocate_trace.bin").string();
  save_trace(t, path);
  const Trace u = load_trace(path);
  EXPECT_EQ(u.samples, t.samples);
  EXPECT_EQ(u.cipher_name, t.cipher_name);
  EXPECT_EQ(u.random_delay_max, 4u);
  ASSERT_EQ(u.cos.size(), 1u);
  EXPECT_EQ(u.cos[0].start_sample, 1u);
  EXPECT_EQ(u.cos[0].plaintext[0], 0xab);
  EXPECT_EQ(u.cos[0].ciphertext[15], 0xcd);
  std::remove(path.c_str());
}

TEST(TraceContainer, CoStartsAndMeanLength) {
  Trace t;
  t.cos.push_back({10, 110, {}, {}});
  t.cos.push_back({200, 320, {}, {}});
  EXPECT_EQ(t.co_starts(), (std::vector<std::size_t>{10, 200}));
  EXPECT_DOUBLE_EQ(t.mean_co_length(), 110.0);
  EXPECT_DOUBLE_EQ(Trace{}.mean_co_length(), 0.0);
}

}  // namespace
}  // namespace scalocate::trace
