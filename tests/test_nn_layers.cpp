// Layer-level tests: shape rules, reference values, and finite-difference
// gradient checks for every layer of the NN framework.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/dataloader.hpp"
#include "nn/gradcheck.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"

namespace scalocate::nn {
namespace {

Tensor random_input(std::vector<std::size_t> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (float& v : t.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

TEST(Conv1d, SamePaddingPreservesLength) {
  for (std::size_t k : {1u, 3u, 16u, 64u}) {
    Conv1d conv(1, 4, k);
    const auto out = conv.forward(random_input({2, 1, 100}, k));
    EXPECT_EQ(out.dim(2), 100u) << "kernel " << k;
    EXPECT_EQ(out.dim(1), 4u);
  }
}

TEST(Conv1d, StrideReducesLength) {
  Conv1d conv(1, 2, 8, /*stride=*/4);
  const auto out = conv.forward(random_input({1, 1, 64}, 1));
  EXPECT_EQ(out.dim(2), conv.output_length(64));
  EXPECT_EQ(out.dim(2), (64 + 7 - 8) / 4 + 1);
}

TEST(Conv1d, IdentityKernelCopiesInput) {
  Conv1d conv(1, 1, 1, 1, 0);
  conv.weight().value.at(0) = 1.0f;
  conv.bias().value.at(0) = 0.0f;
  const auto x = random_input({1, 1, 10}, 2);
  const auto y = conv.forward(x);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_FLOAT_EQ(y.at(0, 0, i), x.at(0, 0, i));
}

TEST(Conv1d, KnownValueWithZeroPadding) {
  // kernel [1, 2, 3], pad 1, input [1, 1, 1]: out[0] = 0*1 + 1*2 + 1*3 = 5.
  Conv1d conv(1, 1, 3);
  conv.weight().value.at(0) = 1.f;
  conv.weight().value.at(1) = 2.f;
  conv.weight().value.at(2) = 3.f;
  conv.bias().value.at(0) = 0.f;
  const auto y =
      conv.forward(Tensor::from_data({1, 1, 3}, {1.f, 1.f, 1.f}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 5.f);   // left edge: zero-padded
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 6.f);   // full overlap
  EXPECT_FLOAT_EQ(y.at(0, 0, 2), 3.f);   // right edge
}

TEST(Conv1d, BiasIsAdded) {
  Conv1d conv(1, 1, 1, 1, 0);
  conv.weight().value.at(0) = 0.f;
  conv.bias().value.at(0) = 2.5f;
  const auto y = conv.forward(random_input({1, 1, 4}, 3));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.at(0, 0, i), 2.5f);
}

TEST(Conv1d, WrongChannelCountThrows) {
  Conv1d conv(2, 4, 3);
  EXPECT_THROW(conv.forward(random_input({1, 3, 8}, 1)), Error);
}

struct ConvCase {
  std::size_t cin, cout, kernel, stride, n;
};

class ConvGradient : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradient, MatchesFiniteDifferences) {
  const auto p = GetParam();
  Conv1d conv(p.cin, p.cout, p.kernel, p.stride);
  Rng rng(11);
  he_normal_init(conv.weight().value, rng);
  const auto x = random_input({2, p.cin, p.n}, 5);
  const auto result = check_layer_gradients(conv, x);
  EXPECT_TRUE(result.passed)
      << "abs=" << result.max_abs_error << " rel=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradient,
    ::testing::Values(ConvCase{1, 2, 3, 1, 12}, ConvCase{2, 3, 5, 1, 10},
                      ConvCase{1, 1, 4, 1, 9}, ConvCase{2, 2, 3, 2, 11},
                      ConvCase{3, 1, 1, 1, 6}));

// ---------------------------------------------------------------------------
// BatchNorm1d
// ---------------------------------------------------------------------------

TEST(BatchNorm, NormalizesPerChannelInTraining) {
  BatchNorm1d bn(2);
  bn.set_training(true);
  auto x = random_input({4, 2, 16}, 7);
  // Shift channel 1 far away to verify per-channel statistics.
  for (std::size_t b = 0; b < 4; ++b)
    for (std::size_t i = 0; i < 16; ++i) x.at(b, 1, i) += 50.f;
  const auto y = bn.forward(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t b = 0; b < 4; ++b)
      for (std::size_t i = 0; i < 16; ++i)
        mean += static_cast<double>(y.at(b, c, i));
    mean /= 64.0;
    for (std::size_t b = 0; b < 4; ++b)
      for (std::size_t i = 0; i < 16; ++i) {
        const double d = static_cast<double>(y.at(b, c, i)) - mean;
        var += d * d;
      }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm1d bn(1);
  bn.set_training(true);
  // Feed constant-distribution batches to converge the running stats.
  for (int i = 0; i < 200; ++i) {
    auto x = random_input({8, 1, 4}, 100 + static_cast<std::uint64_t>(i));
    for (float& v : x.flat()) v = v * 2.f + 3.f;  // mean 3, var ~4/3
    bn.forward(x);
  }
  bn.set_training(false);
  auto probe = Tensor::from_data({1, 1, 1}, {3.f});
  const auto y = bn.forward(probe);
  EXPECT_NEAR(y.at(0), 0.0f, 0.15f);  // input at the running mean -> ~0
}

TEST(BatchNorm, GammaBetaApplied) {
  BatchNorm1d bn(1);
  bn.gamma().value.at(0) = 2.0f;
  bn.beta().value.at(0) = 1.0f;
  bn.set_training(false);  // running stats: mean 0, var 1
  auto x = Tensor::from_data({1, 1, 2}, {1.f, -1.f});
  const auto y = bn.forward(x);
  EXPECT_NEAR(y.at(0, 0, 0), 3.0f, 1e-4);
  EXPECT_NEAR(y.at(0, 0, 1), -1.0f, 1e-4);
}

TEST(BatchNorm, GradientTrainingMode) {
  BatchNorm1d bn(2);
  bn.set_training(true);
  const auto x = random_input({3, 2, 5}, 13);
  const auto result = check_layer_gradients(bn, x);
  EXPECT_TRUE(result.passed)
      << "abs=" << result.max_abs_error << " rel=" << result.max_rel_error;
}

TEST(BatchNorm, GradientEvalMode) {
  BatchNorm1d bn(2);
  bn.set_training(true);
  bn.forward(random_input({4, 2, 8}, 17));  // warm up running stats
  bn.set_training(false);
  const auto x = random_input({3, 2, 5}, 19);
  const auto result = check_layer_gradients(bn, x);
  EXPECT_TRUE(result.passed);
}

// ---------------------------------------------------------------------------
// ReLU / softmax
// ---------------------------------------------------------------------------

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  const auto y = relu.forward(Tensor::from_data({1, 4}, {-1.f, 0.f, 2.f, -3.f}));
  EXPECT_FLOAT_EQ(y.at(0), 0.f);
  EXPECT_FLOAT_EQ(y.at(1), 0.f);
  EXPECT_FLOAT_EQ(y.at(2), 2.f);
  EXPECT_FLOAT_EQ(y.at(3), 0.f);
}

TEST(ReLU, Gradient) {
  ReLU relu;
  const auto x = random_input({2, 8}, 23);
  EXPECT_TRUE(check_layer_gradients(relu, x).passed);
}

TEST(Softmax, RowsSumToOne) {
  const auto p = softmax(random_input({4, 3}, 29));
  for (std::size_t b = 0; b < 4; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(b, c), 0.f);
      sum += static_cast<double>(p.at(b, c));
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableForLargeLogits) {
  const auto p = softmax(Tensor::from_data({1, 2}, {1000.f, 1000.f}));
  EXPECT_NEAR(p.at(0, 0), 0.5f, 1e-5);
}

// ---------------------------------------------------------------------------
// Linear / pooling
// ---------------------------------------------------------------------------

TEST(Linear, KnownValue) {
  Linear lin(2, 1);
  lin.weight().value.at(0) = 2.f;
  lin.weight().value.at(1) = -1.f;
  lin.bias().value.at(0) = 0.5f;
  const auto y = lin.forward(Tensor::from_data({1, 2}, {3.f, 4.f}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.f * 3.f - 4.f + 0.5f);
}

TEST(Linear, Gradient) {
  Linear lin(4, 3);
  Rng rng(31);
  he_normal_init(lin.weight().value, rng);
  EXPECT_TRUE(check_layer_gradients(lin, random_input({2, 4}, 37)).passed);
}

TEST(GlobalAvgPool, AveragesTemporalAxis) {
  GlobalAvgPool1d gap;
  const auto y =
      gap.forward(Tensor::from_data({1, 2, 3}, {1, 2, 3, 10, 20, 30}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 20.f);
}

TEST(GlobalAvgPool, WorksForAnyLength) {
  GlobalAvgPool1d gap;
  EXPECT_EQ(gap.forward(random_input({2, 4, 100}, 1)).dim(1), 4u);
  EXPECT_EQ(gap.forward(random_input({2, 4, 7}, 2)).dim(1), 4u);
}

TEST(GlobalAvgPool, Gradient) {
  GlobalAvgPool1d gap;
  EXPECT_TRUE(check_layer_gradients(gap, random_input({2, 3, 6}, 41)).passed);
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

TEST(Sequential, ChainsLayersAndCollectsParams) {
  Sequential seq;
  seq.emplace<Linear>(4, 8);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 2);
  EXPECT_EQ(seq.params().size(), 4u);  // two weights + two biases
  const auto y = seq.forward(random_input({3, 4}, 43));
  EXPECT_EQ(y.dim(1), 2u);
}

TEST(Sequential, Gradient) {
  Sequential seq;
  seq.emplace<Linear>(3, 5);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(5, 2);
  Rng rng(47);
  init_module(seq, rng);
  EXPECT_TRUE(check_layer_gradients(seq, random_input({2, 3}, 53)).passed);
}

TEST(Residual, IdentityShortcutAddsInput) {
  // Main branch with zero weights -> output == input (identity shortcut).
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv1d>(2, 2, 3);
  Residual res(std::move(main));
  const auto x = random_input({1, 2, 6}, 59);
  const auto y = res.forward(x);
  for (std::size_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(y.at(i), x.at(i));  // conv weights start at zero
}

TEST(Residual, ProjectionAlignsChannels) {
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv1d>(2, 4, 3);
  auto proj = std::make_unique<Conv1d>(2, 4, 1);
  Residual res(std::move(main), std::move(proj));
  EXPECT_TRUE(res.has_projection());
  const auto y = res.forward(random_input({1, 2, 6}, 61));
  EXPECT_EQ(y.dim(1), 4u);
}

TEST(Residual, GradientWithProjection) {
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv1d>(2, 3, 3);
  auto proj = std::make_unique<Conv1d>(2, 3, 1);
  Residual res(std::move(main), std::move(proj));
  Rng rng(67);
  init_module(res, rng);
  EXPECT_TRUE(check_layer_gradients(res, random_input({2, 2, 5}, 71)).passed);
}

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

TEST(Loss, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  const auto logits = Tensor({4, 2});  // zeros -> uniform distribution
  const float l = loss.forward(logits, {0, 1, 0, 1});
  EXPECT_NEAR(l, std::log(2.0), 1e-5);
}

TEST(Loss, PerfectPredictionHasLowLoss) {
  SoftmaxCrossEntropy loss;
  auto logits = Tensor({1, 2});
  logits.at(0, 1) = 20.f;
  EXPECT_LT(loss.forward(logits, {1}), 1e-4f);
}

TEST(Loss, GradientIsSoftmaxMinusOnehotOverB) {
  SoftmaxCrossEntropy loss;
  const auto logits = Tensor({2, 2});  // uniform
  loss.forward(logits, {0, 1});
  const auto g = loss.backward();
  EXPECT_NEAR(g.at(0, 0), (0.5 - 1.0) / 2.0, 1e-5);
  EXPECT_NEAR(g.at(0, 1), 0.5 / 2.0, 1e-5);
  EXPECT_NEAR(g.at(1, 1), (0.5 - 1.0) / 2.0, 1e-5);
}

TEST(Loss, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.forward(Tensor({1, 2}), {2}), Error);
}

// ---------------------------------------------------------------------------
// Init / serialization / data loading
// ---------------------------------------------------------------------------

TEST(Init, HeNormalHasExpectedScale) {
  Tensor w({64, 32, 8});  // fan_in = 256 -> std = sqrt(2/256)
  Rng rng(73);
  he_normal_init(w, rng);
  double sum = 0.0, sum_sq = 0.0;
  for (float v : w.flat()) {
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const double n = static_cast<double>(w.numel());
  EXPECT_NEAR(sum / n, 0.0, 5e-3);
  EXPECT_NEAR(std::sqrt(sum_sq / n), std::sqrt(2.0 / 256.0), 5e-3);
}

TEST(Init, ModuleInitSkipsBatchNorm) {
  Sequential seq;
  seq.emplace<Conv1d>(1, 2, 3);
  seq.emplace<BatchNorm1d>(2);
  Rng rng(79);
  init_module(seq, rng);
  auto params = seq.params();
  // BN gamma stays 1, beta stays 0.
  bool saw_gamma = false;
  for (Param* p : params) {
    if (p->name == "bn.gamma") {
      saw_gamma = true;
      for (float v : p->value.flat()) EXPECT_FLOAT_EQ(v, 1.0f);
    }
  }
  EXPECT_TRUE(saw_gamma);
}

TEST(Serialize, SaveLoadRoundTrip) {
  Sequential a, b;
  for (Sequential* s : {&a, &b}) {
    s->emplace<Conv1d>(1, 2, 3);
    s->emplace<BatchNorm1d>(2);
    s->emplace<ReLU>();
    s->emplace<GlobalAvgPool1d>();
    s->emplace<Linear>(2, 2);
  }
  Rng rng(83);
  init_module(a, rng);
  a.set_training(true);
  a.forward(random_input({4, 1, 10}, 89));  // give BN nontrivial stats

  const auto path =
      (std::filesystem::temp_directory_path() / "scalocate_model.bin").string();
  // Saving must not require mutable access (const CoLocator::export_artifact
  // depends on this).
  const Layer& a_const = a;
  save_module(a_const, path);
  load_module(b, path);

  a.set_training(false);
  b.set_training(false);
  const auto x = random_input({2, 1, 10}, 97);
  const auto ya = a.forward(x);
  const auto yb = b.forward(x);
  for (std::size_t i = 0; i < ya.numel(); ++i)
    EXPECT_FLOAT_EQ(ya.at(i), yb.at(i));
  std::remove(path.c_str());
}

TEST(Serialize, SnapshotRestore) {
  Linear lin(2, 2);
  Rng rng(101);
  he_normal_init(lin.weight().value, rng);
  const auto snap = snapshot_module(static_cast<const Layer&>(lin));
  const float orig = lin.weight().value.at(0);
  lin.weight().value.at(0) = 999.f;
  restore_module(lin, snap);
  EXPECT_FLOAT_EQ(lin.weight().value.at(0), orig);
}

TEST(DataLoader, BatchesCoverDataset) {
  std::vector<std::vector<float>> windows(10, std::vector<float>(4, 1.f));
  std::vector<std::uint8_t> labels(10, 0);
  DataLoader loader(windows, labels, 3, 1);
  EXPECT_EQ(loader.batches_per_epoch(), 4u);
  Batch b;
  std::size_t seen = 0;
  while (loader.next(b)) {
    EXPECT_EQ(b.inputs.dim(1), 1u);
    EXPECT_EQ(b.inputs.dim(2), 4u);
    seen += b.labels.size();
  }
  EXPECT_EQ(seen, 10u);
}

TEST(DataLoader, ShuffleIsDeterministicPerSeed) {
  std::vector<std::vector<float>> windows;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 8; ++i) {
    windows.push_back({static_cast<float>(i)});
    labels.push_back(static_cast<std::uint8_t>(i % 2));
  }
  DataLoader a(windows, labels, 8, 42), b(windows, labels, 8, 42);
  Batch ba, bb;
  a.next(ba);
  b.next(bb);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_FLOAT_EQ(ba.inputs.at(i), bb.inputs.at(i));
}

TEST(DataLoader, RaggedWindowsThrow) {
  std::vector<std::vector<float>> windows = {{1.f, 2.f}, {1.f}};
  std::vector<std::uint8_t> labels = {0, 1};
  EXPECT_THROW(DataLoader(windows, labels, 2, 1), Error);
}

}  // namespace
}  // namespace scalocate::nn
