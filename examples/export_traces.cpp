// Exports a small simulated dataset to disk in the scalocate trace format
// and reads it back -- the workflow for sharing traces with other tools
// (the paper ships a set of traces with its open-source release).
//
//   $ ./examples/export_traces [output_dir]
#include <cstdio>
#include <filesystem>

#include "trace/scenario.hpp"
#include "trace/trace.hpp"

using namespace scalocate;

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path() / "scalocate_traces";
  std::filesystem::create_directories(dir);

  trace::ScenarioConfig scenario;
  scenario.cipher = crypto::CipherId::kAes128;
  scenario.random_delay = trace::RandomDelayConfig::kRd4;
  scenario.seed = 21;

  crypto::Key16 key{};
  key[0] = 0x2b;

  // One evaluation trace with ground truth + one noise trace.
  const auto eval = trace::acquire_eval_trace(scenario, 8, key, true);
  const auto noise = trace::acquire_noise_trace(scenario, 20000);

  const auto eval_path = (dir / "aes_rd4_eval.trace").string();
  const auto noise_path = (dir / "noise_rd4.trace").string();
  trace::save_trace(eval, eval_path);
  trace::save_trace(noise, noise_path);
  std::printf("wrote %s (%zu samples, %zu COs)\n", eval_path.c_str(),
              eval.size(), eval.cos.size());
  std::printf("wrote %s (%zu samples)\n", noise_path.c_str(), noise.size());

  // Read back and verify the annotations survived.
  const auto loaded = trace::load_trace(eval_path);
  std::printf("reloaded: cipher=%s rd=%u cos=%zu\n",
              loaded.cipher_name.c_str(), loaded.random_delay_max,
              loaded.cos.size());
  for (const auto& co : loaded.cos)
    std::printf("  CO @ [%zu, %zu)\n", co.start_sample, co.end_sample);
  return loaded.cos.size() == eval.cos.size() ? 0 : 1;
}
