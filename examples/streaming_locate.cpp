// Streaming localization demo through the api facade: a trace "arrives"
// from the scope in small chunks and CO starts are reported online via the
// Session/Stream API, while the capture is still running — with exactly
// the detections the offline pipeline would produce on the full recording.
//
// Build & run:  ./streaming_locate   (SCALOCATE_EPOCHS=4 for a quick run)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "api/scalocate.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

int main() {
  // --- train a locator on clone-device captures (offline, once) -----------
  trace::ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;
  sc.random_delay = trace::RandomDelayConfig::kRd2;
  sc.seed = 1234;

  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);

  const auto acq = trace::acquire_cipher_traces(sc, 384, key);
  const auto noise = trace::acquire_noise_trace(sc, 100000);

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(sc.cipher);
  lc.params.epochs = 8;
  if (const char* e = std::getenv("SCALOCATE_EPOCHS")) {
    const int v = std::atoi(e);
    if (v > 0) lc.params.epochs = static_cast<std::size_t>(v);
  }
  core::CoLocator locator(lc);
  const auto report = locator.train(acq, noise);
  std::printf("trained: test accuracy %.3f, calibration offset %td\n\n",
              report.test_confusion.accuracy(), locator.calibration_offset());

  // Serve through the facade. The locator is borrowed (attach_model) so the
  // offline cross-check below can still use it directly.
  api::Engine engine({.workers = 2});
  engine.attach_model(locator);
  auto session = engine.open_session();

  // --- "live" capture: feed 1024-sample chunks as they arrive --------------
  const auto eval = trace::acquire_eval_trace(sc, 10, key, false);
  const std::span<const float> samples(eval.samples);
  constexpr std::size_t kChunk = 1024;

  auto stream = session.open_stream();
  std::printf("streaming %zu samples in %zu-sample chunks "
              "(threshold %.2f, median k=%zu):\n",
              samples.size(), kChunk, static_cast<double>(stream.threshold()),
              stream.median_k());

  // Push delivery: the callback fires as each detection becomes final.
  std::size_t detections = 0;
  stream.on_detection([&](const api::Detection& d) {
    // Emission lag: how far the stream head had advanced past the CO
    // start when the detection became final.
    std::printf("  CO #%zu at sample %8zu  (edge %8zu, emitted at head "
                "%8zu, lag %6zu, resident %6zu)\n",
                ++detections, d.start, d.raw_edge, stream.samples_consumed(),
                stream.samples_consumed() - d.start, stream.resident_samples());
  });
  for (std::size_t off = 0; off < samples.size(); off += kChunk)
    stream.feed(samples.subspan(off, std::min(kChunk, samples.size() - off)));
  stream.finish();

  // --- cross-check against the offline pipeline ----------------------------
  const auto offline = session.submit_view(eval.samples).get();
  const auto truth = eval.co_starts();
  std::printf("\nstreaming found %zu COs, offline %zu, ground truth %zu\n",
              detections, offline.size(), truth.size());
  std::printf("parity with offline: %s\n",
              [&] {
                // Poll-style second pass over the same model.
                auto again = session.open_stream();
                std::vector<std::size_t> got;
                for (const auto& d : again.feed(samples)) got.push_back(d.start);
                for (const auto& d : again.finish()) got.push_back(d.start);
                return got == offline;
              }()
                  ? "EXACT"
                  : "MISMATCH");
  return 0;
}
