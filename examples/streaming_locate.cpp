// Streaming localization demo: a trace "arrives" from the scope in small
// chunks and CO starts are reported online, while the capture is still
// running — with exactly the detections the offline CoLocator would
// produce on the full recording.
//
// Build & run:  ./streaming_locate   (SCALOCATE_EPOCHS=4 for a quick run)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/locator.hpp"
#include "runtime/streaming_locator.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

int main() {
  // --- train a locator on clone-device captures (offline, once) -----------
  trace::ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;
  sc.random_delay = trace::RandomDelayConfig::kRd2;
  sc.seed = 1234;

  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);

  const auto acq = trace::acquire_cipher_traces(sc, 384, key);
  const auto noise = trace::acquire_noise_trace(sc, 100000);

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(sc.cipher);
  lc.params.epochs = 8;
  if (const char* e = std::getenv("SCALOCATE_EPOCHS")) {
    const int v = std::atoi(e);
    if (v > 0) lc.params.epochs = static_cast<std::size_t>(v);
  }
  core::CoLocator locator(lc);
  const auto report = locator.train(acq, noise);
  std::printf("trained: test accuracy %.3f, calibration offset %td\n\n",
              report.test_confusion.accuracy(), locator.calibration_offset());

  // --- "live" capture: feed 1024-sample chunks as they arrive --------------
  const auto eval = trace::acquire_eval_trace(sc, 10, key, false);
  const std::span<const float> samples(eval.samples);
  constexpr std::size_t kChunk = 1024;

  runtime::StreamingLocator streaming(locator);
  std::printf("streaming %zu samples in %zu-sample chunks "
              "(threshold %.2f, median k=%zu):\n",
              samples.size(), kChunk, static_cast<double>(streaming.threshold()),
              streaming.median_k());

  std::size_t detections = 0;
  for (std::size_t off = 0; off < samples.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, samples.size() - off);
    for (const auto& d : streaming.feed(samples.subspan(off, n))) {
      // Emission lag: how far the stream head had advanced past the CO
      // start when the detection became final.
      std::printf("  CO #%zu at sample %8zu  (edge %8zu, emitted at head "
                  "%8zu, lag %6zu, resident %6zu)\n",
                  ++detections, d.start, d.raw_edge, streaming.samples_consumed(),
                  streaming.samples_consumed() - d.start,
                  streaming.resident_samples());
    }
  }
  for (const auto& d : streaming.finish())
    std::printf("  CO #%zu at sample %8zu  (flushed at end-of-stream)\n",
                ++detections, d.start);

  // --- cross-check against the offline pipeline ----------------------------
  const auto offline = locator.locate(samples);
  const auto truth = eval.co_starts();
  std::printf("\nstreaming found %zu COs, offline %zu, ground truth %zu\n",
              detections, offline.size(), truth.size());
  std::printf("parity with offline: %s\n",
              [&] {
                std::vector<std::size_t> got;
                runtime::StreamingLocator again(locator);
                for (const auto& d : again.feed(samples)) got.push_back(d.start);
                for (const auto& d : again.finish()) got.push_back(d.start);
                return got == offline;
              }()
                  ? "EXACT"
                  : "MISMATCH");
  return 0;
}
