// Compares the CNN locator against the two state-of-the-art baselines
// ([10] matched filter, [11] waveform matching) with the random-delay
// countermeasure off and on -- the qualitative story of Table II.
//
//   $ ./examples/baseline_comparison
#include <array>
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "core/locator.hpp"
#include "core/metrics.hpp"
#include "sca/matched_filter.hpp"
#include "sca/waveform_matching.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

int main() {
  TextTable table({"Locator", "RD off", "RD-4"});
  std::array<std::string, 3> rows_off, rows_rd4;

  for (int rd_case = 0; rd_case < 2; ++rd_case) {
    trace::ScenarioConfig scenario;
    scenario.cipher = crypto::CipherId::kCamellia128;
    scenario.random_delay = rd_case == 0 ? trace::RandomDelayConfig::kOff
                                         : trace::RandomDelayConfig::kRd4;
    scenario.seed = 11;
    crypto::Key16 key{};
    key[7] = 0x33;

    std::printf("acquiring + fitting (%s)...\n",
                trace::random_delay_name(scenario.random_delay));
    const auto captures = trace::acquire_cipher_traces(scenario, 256, key);
    const auto noise = trace::acquire_noise_trace(scenario, 80000);
    const auto eval = trace::acquire_eval_trace(scenario, 16, key, true);
    const auto truth = eval.co_starts();

    core::LocatorConfig config;
    config.params = core::PipelineParams::defaults_for(scenario.cipher);
    config.params.sizes = {224, 160, 96};
    config.params.epochs = 6;
    core::CoLocator cnn(config);
    cnn.train(captures, noise);

    sca::MatchedFilterLocator mf;
    mf.fit(captures);
    sca::WaveformMatchingLocator wm;
    wm.fit(captures);

    const auto tol = config.params.n_inf / 2;
    auto& rows = rd_case == 0 ? rows_off : rows_rd4;
    rows[0] = format_percent(
        core::score_hits(cnn.locate(eval.samples), truth, tol).hit_rate(), 1);
    rows[1] = format_percent(
        core::score_hits(mf.locate(eval.samples), truth, tol).hit_rate(), 1);
    rows[2] = format_percent(
        core::score_hits(wm.locate(eval.samples), truth, tol).hit_rate(), 1);
  }

  table.add_row({"This work (CNN)", rows_off[0], rows_rd4[0]});
  table.add_row({"[10] matched filter", rows_off[1], rows_rd4[1]});
  table.add_row({"[11] waveform matching", rows_off[2], rows_rd4[2]});
  std::printf("\nHit rates (Camellia-128, 16 COs, noise-interleaved):\n%s",
              table.render().c_str());
  std::printf(
      "\nAll three locate the COs without the countermeasure; only the\n"
      "deep-learning locator survives the random-delay morphing.\n");
  return 0;
}
