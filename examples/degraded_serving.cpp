// Degraded-mode serving tour: the failure-model knobs working together.
//
// Trains a small AES locator, then serves an overload burst through an
// Engine configured for graceful degradation instead of the default
// blocking backpressure:
//
//   - every job carries a per-job timeout (SubmitOptions), so nothing can
//     wait in the queue forever;
//   - admission is kRejectWhenFull, so excess load fails fast with a typed
//     Overloaded instead of stretching every caller's latency;
//   - the client wraps each submit in api::with_retry, which backs off and
//     re-offers transient failures (Overloaded, DeadlineExceeded) but
//     propagates terminal ones untouched;
//   - a watchdog flags any job running past 4x the rolling p99, the
//     "stuck, not slow" tripwire;
//   - the whole story lands in an obs::Registry, dumped at the end — the
//     numbers to alert on in a real deployment.
//
// Every retry-winner's detections are checked against the offline
// reference: degraded mode changes WHEN work is done, never the answer.
//
// SCALOCATE_SCALE scales the training workload (0.25 = CI smoke);
// SCALOCATE_EPOCHS overrides the training epochs.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/scalocate.hpp"
#include "core/metrics.hpp"
#include "obs/registry.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;
using namespace std::chrono_literals;

namespace {

double env_scale() {
  if (const char* s = std::getenv("SCALOCATE_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

std::size_t scaled(std::size_t base) {
  const auto v =
      static_cast<std::size_t>(static_cast<double>(base) * env_scale());
  return v > 0 ? v : 1;
}

std::size_t env_epochs() {
  if (const char* s = std::getenv("SCALOCATE_EPOCHS")) {
    const auto v = static_cast<std::size_t>(std::atoi(s));
    if (v > 0) return v;
  }
  return 8;
}

}  // namespace

int main() {
  std::printf("== degraded serving: deadlines + rejection + retry ==\n\n");

  trace::ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;
  sc.random_delay = trace::RandomDelayConfig::kRd2;
  sc.seed = 29;
  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0xc0 + i);

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(sc.cipher);
  lc.params.epochs = env_epochs();
  lc.seed = 3131;
  core::CoLocator locator(lc);
  const auto report =
      locator.train(trace::acquire_cipher_traces(sc, scaled(384), key),
                    trace::acquire_noise_trace(sc, scaled(120000)));
  std::printf("trained: test accuracy %.3f\n", report.test_confusion.accuracy());

  const auto eval = trace::acquire_eval_trace(sc, 8, key, false);
  const auto offline = locator.locate(eval.samples);
  std::printf("offline reference: %zu detections\n\n", offline.size());

  // Degraded-mode engine: bounded in-flight work, fail-fast admission, a
  // stuck-job watchdog, and full telemetry.
  obs::Registry registry;
  api::EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 4;
  cfg.admission = api::AdmissionPolicy::kRejectWhenFull;
  cfg.watchdog_p99_multiple = 4.0;
  cfg.registry = &registry;
  api::Engine engine(cfg);
  engine.attach_model(locator);
  auto session = engine.open_session();

  api::RetryConfig retry;
  retry.max_attempts = 6;
  retry.initial_backoff = 20ms;
  retry.registry = &registry;

  // An aggressive concurrent burst: more clients than the engine will
  // ever admit at once. Each client gives its job 10 s of budget and
  // retries typed transient rejections; the burst thins itself out
  // through backoff instead of queueing without bound.
  const std::size_t clients = scaled(16);
  std::atomic<std::size_t> served{0}, gave_up{0}, wrong{0};
  std::vector<std::thread> burst;
  burst.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    burst.emplace_back([&] {
      api::SubmitOptions options;
      options.timeout = 10s;
      try {
        const auto starts = api::with_retry(
            [&] { return session.submit_view(eval.samples, options).get(); },
            retry);
        served.fetch_add(1);
        if (starts != offline) wrong.fetch_add(1);
      } catch (const api::Overloaded&) {
        gave_up.fetch_add(1);  // still overloaded after every backoff
      } catch (const api::DeadlineExceeded&) {
        gave_up.fetch_add(1);  // budget spent before a worker freed up
      }
    });
  }
  for (auto& t : burst) t.join();
  session.drain();

  std::printf("burst of %zu clients: %zu served, %zu gave up, %zu wrong\n",
              clients, served.load(), gave_up.load(), wrong.load());
  std::printf("\n-- engine telemetry --\n%s\n", registry.render_text().c_str());

  if (wrong.load() > 0) {
    std::fprintf(stderr, "degraded mode changed detections!\n");
    return 1;
  }
  std::printf(
      "degraded mode dropped load, never correctness: every served job "
      "matched the offline reference.\n");
  return 0;
}
