// Shows how to plug a *custom* cryptographic operation into the framework:
// implement crypto::BlockCipher (+ event emission), then the acquisition,
// training, and localization pipeline works unchanged.
//
//   $ ./examples/train_custom_cipher
//
// The toy cipher here is a 32-round XTEA-like ARX network -- not the paper's
// workload, precisely the point: the locator is cipher-agnostic.
#include <cstdio>

#include "core/locator.hpp"
#include "core/metrics.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

namespace {

/// Toy 128-bit ARX block cipher (two independent XTEA-like 64-bit halves).
/// Demonstration only -- do not use for actual cryptography.
class ToyArx final : public crypto::BlockCipher {
 public:
  std::string name() const override { return "ToyARX-128"; }

  void set_key(const crypto::Key16& key) override {
    for (int i = 0; i < 4; ++i) {
      k_[static_cast<std::size_t>(i)] = 0;
      for (int j = 0; j < 4; ++j)
        k_[static_cast<std::size_t>(i)] =
            (k_[static_cast<std::size_t>(i)] << 8) |
            key[static_cast<std::size_t>(4 * i + j)];
    }
    has_key_ = true;
  }

  crypto::Block16 encrypt(const crypto::Block16& pt,
                          crypto::EventSink* sink) const override {
    crypto::Tracer tr(sink);
    crypto::Block16 out{};
    for (int half = 0; half < 2; ++half) {
      std::uint32_t v0 = 0, v1 = 0;
      for (int j = 0; j < 4; ++j) {
        v0 = (v0 << 8) | pt[static_cast<std::size_t>(8 * half + j)];
        v1 = (v1 << 8) | pt[static_cast<std::size_t>(8 * half + 4 + j)];
      }
      tr.emit(crypto::OpClass::kLoad, v0, 32);
      tr.emit(crypto::OpClass::kLoad, v1, 32);
      std::uint32_t sum = 0;
      for (int round = 0; round < 32; ++round) {
        v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k_[sum & 3]);
        tr.emit(crypto::OpClass::kShift, v1 << 4, 32);
        tr.emit(crypto::OpClass::kArith, v0, 32);
        sum += 0x9e3779b9u;
        v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k_[(sum >> 11) & 3]);
        tr.emit(crypto::OpClass::kArith, v1, 32);
      }
      for (int j = 0; j < 4; ++j) {
        out[static_cast<std::size_t>(8 * half + j)] =
            static_cast<std::uint8_t>(v0 >> (24 - 8 * j));
        out[static_cast<std::size_t>(8 * half + 4 + j)] =
            static_cast<std::uint8_t>(v1 >> (24 - 8 * j));
      }
      tr.emit(crypto::OpClass::kStore, v0, 32);
      tr.emit(crypto::OpClass::kStore, v1, 32);
    }
    return out;
  }

  crypto::Block16 decrypt(const crypto::Block16& ct) const override {
    crypto::Block16 out{};
    for (int half = 0; half < 2; ++half) {
      std::uint32_t v0 = 0, v1 = 0;
      for (int j = 0; j < 4; ++j) {
        v0 = (v0 << 8) | ct[static_cast<std::size_t>(8 * half + j)];
        v1 = (v1 << 8) | ct[static_cast<std::size_t>(8 * half + 4 + j)];
      }
      std::uint32_t sum = 0x9e3779b9u * 32;
      for (int round = 0; round < 32; ++round) {
        v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k_[(sum >> 11) & 3]);
        sum -= 0x9e3779b9u;
        v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k_[sum & 3]);
      }
      for (int j = 0; j < 4; ++j) {
        out[static_cast<std::size_t>(8 * half + j)] =
            static_cast<std::uint8_t>(v0 >> (24 - 8 * j));
        out[static_cast<std::size_t>(8 * half + 4 + j)] =
            static_cast<std::uint8_t>(v1 >> (24 - 8 * j));
      }
    }
    return out;
  }

 private:
  std::array<std::uint32_t, 4> k_{};
  bool has_key_ = false;
};

}  // namespace

int main() {
  // Acquire captures for the custom cipher with a hand-rolled campaign
  // (acquire_cipher_traces works on the built-in registry; custom ciphers
  // drive the SocSimulator directly).
  trace::SocConfig soc;
  soc.random_delay = trace::RandomDelayConfig::kRd2;
  soc.seed = 3;
  trace::SocSimulator sim(soc);

  ToyArx cipher;
  crypto::Key16 key{};
  key[0] = 0x01;
  cipher.set_key(key);

  std::printf("acquiring 256 ToyARX captures...\n");
  Rng rng(5);
  trace::CipherAcquisition acq;
  acq.key = key;
  for (int i = 0; i < 256; ++i) {
    trace::Trace t;
    sim.run_nop_sled(192, t);
    crypto::Block16 pt{};
    rng.fill_bytes(pt.data(), 16);
    sim.run_cipher(cipher, pt, t);
    const auto cut = trace::detect_nop_boundary(t.samples, 4);
    trace::CipherCapture cap;
    const auto start = cut > 0 && cut < t.size() ? cut : t.cos[0].start_sample;
    cap.samples.assign(t.samples.begin() + static_cast<std::ptrdiff_t>(start),
                       t.samples.end());
    cap.plaintext = pt;
    cap.ciphertext = t.cos[0].ciphertext;
    acq.captures.push_back(std::move(cap));
  }
  std::printf("mean CO length: %zu samples\n",
              acq.captures.front().samples.size());

  trace::ScenarioConfig noise_sc;
  noise_sc.random_delay = soc.random_delay;
  noise_sc.seed = 9;
  const auto noise = trace::acquire_noise_trace(noise_sc, 80000);

  core::LocatorConfig config;
  config.params = core::PipelineParams::defaults_for(crypto::CipherId::kSimon128);
  config.params.sizes = {224, 160, 96};
  config.params.epochs = 6;
  core::CoLocator locator(config);
  const auto report = locator.train(acq, noise);
  std::printf("locator test accuracy: %.1f%%\n",
              100.0 * report.test_confusion.accuracy());

  // Evaluation capture: interleave ToyARX executions with noise apps.
  trace::Trace eval;
  trace::SocSimulator eval_sim([&] {
    trace::SocConfig c = soc;
    c.seed = 17;
    return c;
  }());
  for (int i = 0; i < 12; ++i) {
    eval_sim.run_noise_app(600, eval);
    crypto::Block16 pt{};
    rng.fill_bytes(pt.data(), 16);
    eval_sim.run_cipher(cipher, pt, eval);
  }
  eval_sim.run_noise_app(600, eval);

  const auto located = locator.locate(eval.samples);
  const auto score =
      core::score_hits(located, eval.co_starts(), config.params.n_inf / 2);
  std::printf("located %zu/%zu ToyARX executions (%.1f%% hits)\n", score.hits,
              score.true_cos, 100.0 * score.hit_rate());
  return 0;
}
