// Train-once / serve-anywhere smoke: exercises the deployment path end to
// end across two separate processes.
//
//   $ ./serve_artifact train /tmp/camellia.scart   # clone device: train + export
//   $ ./serve_artifact serve /tmp/camellia.scart   # fresh process: load + locate
//
// Both modes rebuild the same deterministic evaluation trace (seeded
// simulator) and print its detections as `whole:` (Session::submit) and
// `stream:` (Session::open_stream, 2048-sample chunks). The CI job diffs
// those lines between the two processes: an artifact round trip must be
// bit-identical to the in-process trained locator, for both workloads.
//
// SCALOCATE_SCALE scales the training workload (0.25 = CI smoke);
// SCALOCATE_EPOCHS overrides the training epochs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/scalocate.hpp"
#include "core/metrics.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

namespace {

double env_scale() {
  if (const char* s = std::getenv("SCALOCATE_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

std::size_t scaled(std::size_t base) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * env_scale());
  return v > 0 ? v : 1;
}

trace::ScenarioConfig scenario() {
  trace::ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;  // the Table-2 serving workload
  sc.random_delay = trace::RandomDelayConfig::kRd2;
  sc.seed = 11;
  return sc;
}

crypto::Key16 victim_key() {
  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0xa0 + i);
  return key;
}

/// The evaluation capture both processes locate: fully determined by the
/// scenario seed, so the clone process and the serving process see the
/// same samples without shipping them.
trace::Trace eval_trace() {
  return trace::acquire_eval_trace(scenario(), 10, victim_key(), false);
}

void print_starts(const char* tag, const std::vector<std::size_t>& starts) {
  std::printf("%s:", tag);
  for (std::size_t s : starts) std::printf(" %zu", s);
  std::printf("\n");
}

int run_train(const std::string& path) {
  const auto sc = scenario();
  crypto::Key16 profiling_key{};
  profiling_key[0] = 0x2b;

  std::printf("[train] acquiring %zu captures on the clone device...\n",
              scaled(256));
  const auto captures =
      trace::acquire_cipher_traces(sc, scaled(256), profiling_key);
  const auto noise = trace::acquire_noise_trace(sc, scaled(100000));

  core::LocatorConfig config;
  config.params = core::PipelineParams::defaults_for(sc.cipher);
  // Dataset sizes stay at the cipher defaults (windows are cycled over the
  // captures); SCALOCATE_SCALE only shrinks the acquisition workload.
  config.params.epochs = 6;
  if (const char* e = std::getenv("SCALOCATE_EPOCHS")) {
    const int v = std::atoi(e);
    if (v > 0) config.params.epochs = static_cast<std::size_t>(v);
  }
  // Fix the decision threshold so offline and streamed detections agree
  // (whole-trace Otsu is unavailable online).
  config.params.threshold = 0.0f;

  std::printf("[train] training the locator...\n");
  core::CoLocator locator(config);
  const auto report = locator.train(captures, noise);
  std::printf("[train] test accuracy %.1f%%\n",
              100.0 * report.test_confusion.accuracy());

  locator.export_artifact(path);
  std::printf("[train] exported artifact to %s\n", path.c_str());

  // In-process reference detections (the numbers the serving process must
  // reproduce bit-for-bit from the artifact alone).
  const auto eval = eval_trace();
  print_starts("whole", locator.locate(eval.samples));

  api::Engine engine({.workers = 2});
  engine.attach_model(locator);
  auto stream = engine.open_session().open_stream();
  std::vector<std::size_t> streamed;
  const std::span<const float> samples(eval.samples);
  for (std::size_t off = 0; off < samples.size(); off += 2048)
    for (const auto& d : stream.feed(samples.subspan(
             off, std::min<std::size_t>(2048, samples.size() - off))))
      streamed.push_back(d.start);
  for (const auto& d : stream.finish()) streamed.push_back(d.start);
  print_starts("stream", streamed);

  const auto score = core::score_hits(streamed, eval.co_starts(),
                                      config.params.n_inf / 2);
  std::printf("[train] %zu/%zu true COs hit\n", score.hits, score.true_cos);
  return score.hits > 0 ? 0 : 1;
}

int run_serve(const std::string& path) {
  std::printf("[serve] loading artifact %s (no training)...\n", path.c_str());
  api::Engine engine({.workers = 2});
  const auto cipher = engine.load_artifact(path);
  for (const auto& m : engine.models())
    std::printf("[serve] serving %s (n_inf=%zu stride=%zu offset=%td)\n",
                m.display_name.c_str(), m.n_inf, m.stride,
                m.calibration_offset);

  const auto eval = eval_trace();
  auto session = engine.open_session(cipher);
  print_starts("whole", session.submit_view(eval.samples).get());

  auto stream = session.open_stream();
  std::vector<std::size_t> streamed;
  const std::span<const float> samples(eval.samples);
  for (std::size_t off = 0; off < samples.size(); off += 2048)
    for (const auto& d : stream.feed(samples.subspan(
             off, std::min<std::size_t>(2048, samples.size() - off))))
      streamed.push_back(d.start);
  for (const auto& d : stream.finish()) streamed.push_back(d.start);
  print_starts("stream", streamed);
  return streamed.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 || (std::strcmp(argv[1], "train") != 0 &&
                    std::strcmp(argv[1], "serve") != 0)) {
    std::fprintf(stderr, "usage: %s train|serve <artifact-path>\n", argv[0]);
    return 2;
  }
  try {
    return std::strcmp(argv[1], "train") == 0 ? run_train(argv[2])
                                              : run_serve(argv[2]);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
