// The complete attack flow of Section IV-C: receive an unknown side-channel
// trace, locate & align the AES executions with the CNN locator, and
// extract the secret key with CPA on the sub-byte intermediate.
//
//   $ ./examples/full_attack_flow [n_cos]
//
// With the default budget (448 COs) the CPA typically recovers a large part
// of the key; pass a larger budget (e.g. 1500) for full rank 1 on all 16
// bytes (cf. Table II and bench_cpa_reference).
#include <cstdio>
#include <cstdlib>

#include "api/scalocate.hpp"
#include "core/metrics.hpp"
#include "sca/cpa.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

int main(int argc, char** argv) {
  const std::size_t n_cos =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 448;

  trace::ScenarioConfig scenario;
  scenario.cipher = crypto::CipherId::kAes128;
  scenario.random_delay = trace::RandomDelayConfig::kRd2;
  scenario.seed = 7;

  // --- profiling phase on the clone device ---------------------------------
  crypto::Key16 profiling_key{};
  profiling_key[0] = 0x42;
  std::printf("[profiling] acquiring captures and training the locator...\n");
  const auto captures =
      trace::acquire_cipher_traces(scenario, 448, profiling_key);
  const auto noise = trace::acquire_noise_trace(scenario, 120000);

  core::LocatorConfig config;
  config.params = core::PipelineParams::defaults_for(scenario.cipher);
  config.params.epochs = 6;
  core::CoLocator locator(config);
  const auto report = locator.train(captures, noise);
  std::printf("[profiling] locator test accuracy: %.1f%%\n",
              100.0 * report.test_confusion.accuracy());

  // The attack rig serves the trained model through the api facade (an
  // engine adopting the in-process locator; a remote rig would
  // export_artifact + load_artifact instead).
  api::Engine engine({.workers = 2});
  engine.add_model(std::move(locator));
  auto session = engine.open_session();

  // --- attack phase on the victim device -----------------------------------
  crypto::Key16 secret_key{};
  for (int i = 0; i < 16; ++i)
    secret_key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(0xc0 + 3 * i);

  std::printf("[attack] capturing one long trace with %zu COs...\n", n_cos);
  const auto victim =
      trace::acquire_eval_trace(scenario, n_cos, secret_key, /*noise=*/false);

  std::printf("[attack] locating and aligning the COs...\n");
  const double mean_co = session.locator().mean_co_length();
  const auto seg_len = static_cast<std::size_t>(mean_co * 0.2);
  const auto starts = session.submit_view(victim.samples).get();
  const auto aligned = core::align_cos(victim.samples, starts, seg_len);
  std::printf("[attack] %zu aligned segments of %zu samples\n",
              aligned.segments.size(), aligned.segment_length);

  // CPA on the sub-byte intermediate with time aggregation (Section IV-C).
  sca::CpaConfig cpa_cfg;
  cpa_cfg.segment_length = seg_len;
  cpa_cfg.aggregate_bin = 32;
  sca::CpaAttack cpa(cpa_cfg);
  std::size_t fed = 0;
  for (std::size_t i = 0; i < aligned.segments.size(); ++i) {
    // The attacker chooses/knows the plaintexts; recover each segment's
    // plaintext by matching its origin to the encryption schedule.
    std::size_t best = 0;
    std::size_t best_d = static_cast<std::size_t>(-1);
    for (std::size_t j = 0; j < victim.cos.size(); ++j) {
      const auto s = victim.cos[j].start_sample;
      const std::size_t d =
          s > aligned.origins[i] ? s - aligned.origins[i] : aligned.origins[i] - s;
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    if (best_d > static_cast<std::size_t>(mean_co / 2)) continue;
    cpa.add_trace(aligned.segments[i], victim.cos[best].plaintext);
    ++fed;
  }

  const auto rank = cpa.rank_key(secret_key);
  const auto recovered = cpa.recovered_key();
  std::printf("[attack] CPA over %zu aligned traces:\n", fed);
  std::printf("  secret   : ");
  for (auto b : secret_key) std::printf("%02x", b);
  std::printf("\n  recovered: ");
  for (auto b : recovered) std::printf("%02x", b);
  std::printf("\n  bytes at rank 1: %zu/16\n", rank.rank1_bytes);
  for (std::size_t b = 0; b < 16; ++b)
    std::printf("  byte %2zu: guess 0x%02x rho=%.3f (true key rank %zu)\n", b,
                rank.bytes[b].best_guess, rank.bytes[b].best_correlation,
                rank.bytes[b].true_key_rank + 1);
  return 0;
}
