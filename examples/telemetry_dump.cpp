// Telemetry tour: wires an obs::Registry through an Engine, serves a small
// mixed workload (concurrent whole-trace jobs + a chunked stream), and
// dumps what the instruments saw — first the human rendering, then the
// machine JSON, then a span/trace-ring demo showing how nested timers
// reconstruct a pipeline's call structure.
//
// This is the "getting started" companion of the README's Observability
// section. Run it and read the output top to bottom:
//
//   $ ./telemetry_dump
//
// SCALOCATE_SCALE scales the training workload (0.25 = quick look);
// SCALOCATE_EPOCHS overrides the training epochs.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/scalocate.hpp"
#include "obs/registry.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

namespace {

std::size_t scaled(std::size_t base) {
  double scale = 1.0;
  if (const char* s = std::getenv("SCALOCATE_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) scale = v;
  }
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return v > 0 ? v : 1;
}

}  // namespace

int main() {
  // --- Train a small model (the workload everything below observes) ------
  trace::ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kCamellia128;  // shortest CO: fast example
  sc.random_delay = trace::RandomDelayConfig::kRd2;
  sc.seed = 77;

  crypto::Key16 key{};
  key[0] = 0x2b;
  std::printf("[1/4] training a %s locator (%zu captures)...\n",
              crypto::cipher_display_name(sc.cipher).c_str(), scaled(224));
  const auto captures = trace::acquire_cipher_traces(sc, scaled(224), key);
  const auto noise = trace::acquire_noise_trace(sc, scaled(60000));

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(sc.cipher);
  lc.params.epochs = 6;
  if (const char* e = std::getenv("SCALOCATE_EPOCHS")) {
    const int v = std::atoi(e);
    if (v > 0) lc.params.epochs = static_cast<std::size_t>(v);
  }
  lc.params.threshold = 0.0f;  // fixed boundary: stream == offline
  core::CoLocator locator(lc);
  locator.train(captures, noise);

  // --- Serve through an instrumented Engine ------------------------------
  // One registry observes everything this engine does. Every instrument is
  // named <layer>.<model>.<metric>[_unit]; the engine registers
  // engine.camellia.* for the request path and stream.camellia.* for
  // streams opened from its sessions.
  obs::Registry registry;
  api::Engine engine({.workers = 2, .registry = &registry});
  engine.attach_model(locator);
  auto session = engine.open_session();

  const auto eval = trace::acquire_eval_trace(sc, 8, key, false);
  std::printf("[2/4] serving 6 whole-trace jobs + 1 chunked stream...\n");
  std::vector<std::future<std::vector<std::size_t>>> jobs;
  for (int i = 0; i < 6; ++i)
    jobs.push_back(session.submit_view(eval.samples));
  for (auto& j : jobs) j.get();

  auto stream = session.open_stream();
  const std::span<const float> samples(eval.samples);
  std::size_t detections = 0;
  for (std::size_t off = 0; off < samples.size(); off += 2048)
    detections += stream
                      .feed(samples.subspan(
                          off, std::min<std::size_t>(2048,
                                                     samples.size() - off)))
                      .size();
  detections += stream.finish().size();
  std::printf("      %zu detections from the stream\n", detections);

  // --- Dump the registry --------------------------------------------------
  // render_text(): aligned columns for humans; time histograms print their
  // quantiles in milliseconds.
  std::printf("\n[3/4] registry snapshot (render_text):\n\n%s\n",
              engine.telemetry_text().c_str());
  // render_json(): the machine twin — same numbers, stable layout, the
  // format the BENCH_*.json perf gates consume (see bench/thresholds/).
  std::printf("[3/4] registry snapshot (render_json):\n\n%s\n\n",
              engine.telemetry_json().c_str());

  // --- Spans + trace ring -------------------------------------------------
  // SpanTimer is the zero-ceremony way to time any scope into a histogram;
  // with a TraceRing attached, completed spans also land in a bounded
  // event buffer whose dump reconstructs the nesting.
  std::printf("[4/4] span timers + trace ring:\n\n");
  auto& span_hist = registry.histogram("example.pipeline.stage_ns");
  auto& ring = registry.trace_ring("example.pipeline.trace", 64);
  {
    obs::SpanTimer whole(span_hist, &ring, "locate");
    {
      obs::SpanTimer stage(span_hist, &ring, "locate/score");
      (void)locator.locate(eval.samples);
    }
    obs::SpanTimer emit(span_hist, &ring, "locate/emit");
  }
  for (const auto& ev : ring.dump())
    std::printf("  %*s%-14s %8.3f ms\n", 2 * static_cast<int>(ev.depth), "",
                ev.name.c_str(), static_cast<double>(ev.duration_ns) / 1e6);

  std::printf("\ndone: p99 job latency %.1f ms\n",
              session.metrics().latency_ns->snapshot().quantile(0.99) / 1e6);
  return 0;
}
