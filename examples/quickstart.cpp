// Quickstart: train a CO locator on simulated clone-device captures, export
// it as a versioned model artifact, and serve it through the stable
// scalocate::api facade.
//
//   $ ./examples/quickstart
//
// Walks through the full train-once/serve-anywhere flow at a small scale
// (~1 minute):
//   1. acquire profiling captures (NOP-sled single-CO traces) and a noise
//      trace on the "clone device" (the SoC simulator, RD-4 active);
//   2. train the CNN locator (dataset creation -> training -> calibration)
//      and export it to a self-describing artifact;
//   3. load the artifact into an Engine — exactly what a fresh serving
//      process would do — and locate COs in an unseen protected trace
//      through a Session.
#include <cstdio>
#include <filesystem>

#include "api/scalocate.hpp"
#include "core/metrics.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

int main() {
  // --- 1. acquisition on the clone device ---------------------------------
  trace::ScenarioConfig scenario;
  scenario.cipher = crypto::CipherId::kCamellia128;  // shortest CO: fast demo
  scenario.random_delay = trace::RandomDelayConfig::kRd4;
  scenario.seed = 1;

  crypto::Key16 profiling_key{};  // attacker-chosen key on the clone
  profiling_key[0] = 0x2b;

  std::printf("[1/3] acquiring 256 cipher captures + noise trace...\n");
  const auto captures =
      trace::acquire_cipher_traces(scenario, 256, profiling_key);
  const auto noise = trace::acquire_noise_trace(scenario, 100000);
  std::printf("      mean CO length: %.0f samples (RD-4 active)\n",
              static_cast<double>(captures.captures.front().samples.size()));

  // --- 2. train the locator and export the artifact -------------------------
  core::LocatorConfig config;
  config.params = core::PipelineParams::defaults_for(scenario.cipher);
  config.params.sizes = {224, 160, 96};  // demo-sized dataset
  config.params.epochs = 6;

  std::printf("[2/3] training the CNN locator...\n");
  core::CoLocator locator(config);
  const auto report = locator.train(captures, noise);
  std::printf("      test accuracy: %.1f%% (best epoch %zu)\n",
              100.0 * report.test_confusion.accuracy(), report.best_epoch + 1);

  const auto artifact =
      (std::filesystem::temp_directory_path() / "quickstart.scart").string();
  locator.export_artifact(artifact);
  std::printf("      exported model artifact: %s (%ju bytes)\n",
              artifact.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(artifact)));

  // --- 3. serve the artifact through the api facade -------------------------
  // A deployment does only this part: no trainer, no acquisition — just the
  // artifact file. (load_artifact validates magic/version/architecture and
  // throws a structured api::Artifact* error on any mismatch.)
  api::Engine engine({.workers = 4});
  engine.load_artifact(artifact);
  auto session = engine.open_session();

  crypto::Key16 victim_key{};  // unknown to the attacker in a real attack
  victim_key[5] = 0x99;
  const auto eval =
      trace::acquire_eval_trace(scenario, 12, victim_key, /*noise=*/true);

  std::printf("[3/3] locating COs in a %zu-sample capture...\n", eval.size());
  const auto located = session.submit_view(eval.samples).get();

  const auto score =
      core::score_hits(located, eval.co_starts(), config.params.n_inf / 2);
  std::printf("      located %zu candidates, %zu/%zu true COs hit (%.1f%%),"
              " mean error %.1f samples\n",
              located.size(), score.hits, score.true_cos,
              100.0 * score.hit_rate(), score.mean_abs_error);

  for (std::size_t i = 0; i < located.size(); ++i)
    std::printf("      CO %2zu @ sample %zu\n", i, located[i]);
  std::filesystem::remove(artifact);
  return score.hit_rate() > 0.5 ? 0 : 1;
}
