// Tour of the countermeasure scenario suite: trains one locator, then
// enumerates every registered capture condition through trace::ScenarioSuite
// — the same registry bench_robustness and the test suite iterate — and
// locates each hostile capture twice through an Engine session: the
// whole-trace path and the chunked streaming path, which must agree
// bit for bit.
//
// Build & run:  ./scenario_tour   (SCALOCATE_EPOCHS=4 for a quick run)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/scalocate.hpp"
#include "core/metrics.hpp"
#include "trace/scenario.hpp"

using namespace scalocate;

int main() {
  // --- train once on clone-device captures --------------------------------
  trace::ScenarioConfig sc;
  sc.cipher = crypto::CipherId::kAes128;
  sc.random_delay = trace::RandomDelayConfig::kRd2;
  sc.seed = 4321;

  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);

  const auto acq = trace::acquire_cipher_traces(sc, 384, key);
  const auto noise = trace::acquire_noise_trace(sc, 100000);

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(sc.cipher);
  lc.params.epochs = 8;
  if (const char* e = std::getenv("SCALOCATE_EPOCHS")) {
    const int v = std::atoi(e);
    if (v > 0) lc.params.epochs = static_cast<std::size_t>(v);
  }
  // Countermeasure hardening: bridge plateau splits (interrupt preemption,
  // gain steps) up to half a dozen windows wide.
  lc.params.merge_gap_windows = 6;
  core::CoLocator locator(lc);
  const auto report = locator.train(acq, noise);
  std::printf("trained %s: test accuracy %.3f\n\n",
              crypto::cipher_display_name(sc.cipher).c_str(),
              report.test_confusion.accuracy());

  api::Engine engine({.workers = 2});
  engine.attach_model(locator);
  auto session = engine.open_session();

  // --- one hostile capture per registered scenario ------------------------
  constexpr std::size_t kCos = 4;
  constexpr std::size_t kChunk = 1024;
  const std::size_t tol = lc.params.n_inf;

  for (const auto& scenario : trace::ScenarioSuite::all()) {
    const auto cap = trace::ScenarioSuite::acquire(scenario, sc, kCos, key);

    const auto offline = session.submit_view(cap.trace.samples).get();

    auto stream = session.open_stream();
    std::vector<std::size_t> streamed;
    const std::span<const float> samples(cap.trace.samples);
    for (std::size_t off = 0; off < samples.size(); off += kChunk) {
      const std::size_t n = std::min(kChunk, samples.size() - off);
      for (const auto& d : stream.feed(samples.subspan(off, n)))
        streamed.push_back(d.start);
    }
    for (const auto& d : stream.finish()) streamed.push_back(d.start);

    // Mixed captures interleave a second cipher this engine has no model
    // for; only the primary cipher's COs are this locator's ground truth.
    const auto truth = cap.starts_of(sc.cipher);
    const auto score = core::score_hits(offline, truth, tol);
    std::printf("%-15s %s\n", scenario.name, scenario.description);
    std::printf("                hits %zu/%zu, false alarms %zu, "
                "stream parity %s\n",
                score.hits, score.true_cos, score.false_alarms,
                streamed == offline ? "EXACT" : "MISMATCH");
  }
  return 0;
}
