// Reproduces Table I: per-cipher pipeline parameters and dataset sizes.
//
// Prints the paper's original values next to this reproduction's scaled
// values, together with the *measured* mean CO length of the simulator
// (the paper's "Mean length" column is a property of their 125 MS/s FPGA
// captures; ours follows from the instruction-level simulator).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/params.hpp"

using namespace scalocate;

int main() {
  std::printf("=== Table I: parameters for each pipeline stage ===\n\n");

  TextTable table({"Cipher", "Mean length", "Ntrain", "Ninf", "s",
                   "Cipher Start", "Cipher Rest", "Noise"});

  for (auto id : crypto::all_cipher_ids()) {
    const auto p = core::PipelineParams::paper_table1(id);
    table.add_row({cipher_display_name(id) + " (paper)",
                   format_kilo(p.paper_mean_length),
                   format_kilo(p.paper_n_train), format_kilo(p.paper_n_inf),
                   format_kilo(p.paper_stride),
                   std::to_string(p.paper_sizes.cipher_start),
                   std::to_string(p.paper_sizes.cipher_rest),
                   std::to_string(p.paper_sizes.noise)});
  }
  table.add_separator();

  for (auto id : crypto::all_cipher_ids()) {
    const auto p = core::PipelineParams::defaults_for(id);
    // Measure the simulator's mean CO length under RD-4 (Table I context).
    trace::ScenarioConfig sc;
    sc.cipher = id;
    sc.random_delay = trace::RandomDelayConfig::kRd4;
    sc.seed = 1;
    const auto acq = trace::acquire_cipher_traces(sc, 16, crypto::Key16{});
    double mean_len = 0.0;
    for (const auto& cap : acq.captures)
      mean_len += static_cast<double>(cap.samples.size());
    mean_len /= static_cast<double>(acq.captures.size());

    table.add_row({cipher_display_name(id) + " (this repro)",
                   format_kilo(static_cast<std::size_t>(mean_len)),
                   std::to_string(p.n_train), std::to_string(p.n_inf),
                   std::to_string(p.stride),
                   std::to_string(p.sizes.cipher_start),
                   std::to_string(p.sizes.cipher_rest),
                   std::to_string(p.sizes.noise)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Scaled values keep the paper's proportions (Ninf <= Ntrain, tens to\n"
      "hundreds of windows per CO at stride s) at simulator CO lengths.\n");
  return 0;
}
