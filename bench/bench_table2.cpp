// Reproduces Table II: segmentation hits and CPA results targeting AES-128
// under RD-2/RD-4, with and without interleaved noise applications, for
// this work vs the two baselines ([10] matched filter, [11] waveform
// matching).
//
// The CPA consumes the locator-aligned segments; the number of COs needed
// to reach rank 1 on all 16 key bytes is reported (or the rank progress at
// the trace budget -- raise SCALOCATE_SCALE to extend the budget; see also
// bench_cpa_reference for the alignment-independent convergence numbers).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sca/cpa.hpp"
#include "sca/matched_filter.hpp"
#include "sca/waveform_matching.hpp"

using namespace scalocate;

namespace {

struct CpaOutcome {
  std::size_t fed = 0;
  std::size_t rank1 = 0;
  std::size_t full_at = 0;  // 0 = not reached
};

/// Feeds locator-aligned segments into the CPA until full rank or budget.
CpaOutcome run_cpa(const trace::Trace& eval,
                   const core::AlignedTraces& aligned,
                   const crypto::Key16& key, double mean_co) {
  CpaOutcome out;
  if (aligned.segments.empty()) return out;
  sca::CpaConfig cc;
  cc.segment_length = aligned.segment_length;
  cc.aggregate_bin = 32;
  sca::CpaAttack cpa(cc);
  for (std::size_t i = 0; i < aligned.segments.size(); ++i) {
    // The attacker knows the plaintext sequence; map the located segment to
    // the nearest true CO to retrieve it.
    std::size_t best = 0;
    std::size_t best_d = static_cast<std::size_t>(-1);
    for (std::size_t j = 0; j < eval.cos.size(); ++j) {
      const std::size_t d =
          eval.cos[j].start_sample > aligned.origins[i]
              ? eval.cos[j].start_sample - aligned.origins[i]
              : aligned.origins[i] - eval.cos[j].start_sample;
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    if (best_d > static_cast<std::size_t>(mean_co / 2)) continue;
    cpa.add_trace(aligned.segments[i], eval.cos[best].plaintext);
    ++out.fed;
    if (out.fed % 64 == 0) {
      const auto kr = cpa.rank_key(key);
      out.rank1 = kr.rank1_bytes;
      if (kr.full_key_rank1() && out.full_at == 0) {
        out.full_at = out.fed;
        break;
      }
    }
  }
  out.rank1 = cpa.rank_key(key).rank1_bytes;
  return out;
}

std::string cpa_cell(const CpaOutcome& o) {
  if (o.full_at > 0) return std::to_string(o.full_at);
  return "> " + std::to_string(o.fed) + " (" + std::to_string(o.rank1) +
         "/16 bytes)";
}

}  // namespace

int main() {
  const std::size_t n_cos = bench::scaled(320);
  std::printf("=== Table II: segmentation + CPA targeting AES-128 ===\n");
  std::printf("(budget: %zu COs per scenario; paper used up to 3695)\n\n",
              n_cos);

  TextTable table({"Method", "RD", "Noise", "Hits", "CPA (N. COs)", "Paper"});

  bench::Timer total;
  for (auto rd : {trace::RandomDelayConfig::kRd2, trace::RandomDelayConfig::kRd4}) {
    // --- acquire profiling data and train all three locators --------------
    trace::ScenarioConfig sc;
    sc.cipher = crypto::CipherId::kAes128;
    sc.random_delay = rd;
    sc.seed = 0x7ab1e2 + static_cast<std::uint64_t>(rd);
    crypto::Key16 key{};
    for (int i = 0; i < 16; ++i)
      key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x10 + i);

    auto acq = trace::acquire_cipher_traces(sc, bench::scaled(512), key);
    auto noise_trace = trace::acquire_noise_trace(sc, bench::scaled(150000));

    core::LocatorConfig lc;
    lc.params = core::PipelineParams::defaults_for(crypto::CipherId::kAes128);
    lc.params.epochs = bench::bench_epochs();
    lc.seed = sc.seed ^ 0x1;
    core::CoLocator locator(lc);
    locator.train(acq, noise_trace);

    sca::MatchedFilterLocator mf;
    mf.fit(acq);
    sca::WaveformMatchingLocator wm;
    wm.fit(acq);

    const auto tol = lc.params.n_inf;
    const std::string paper_hits_ours = "100%";

    for (bool with_noise : {true, false}) {
      auto eval = trace::acquire_eval_trace(sc, n_cos, key, with_noise);
      const auto truth = eval.co_starts();
      const char* noise_str = with_noise ? "yes" : "no";

      // Paper reference values per scenario.
      const char* paper_cpa =
          rd == trace::RandomDelayConfig::kRd2
              ? (with_noise ? "3695" : "1125")
              : (with_noise ? "3365" : "1220");

      // --- baselines: hits only; their alignment never feeds a working CPA
      for (int which = 0; which < 2; ++which) {
        const auto located =
            which == 0 ? mf.locate(eval.samples) : wm.locate(eval.samples);
        const auto score = core::score_hits(located, truth, tol);
        table.add_row({which == 0 ? "[10] matched filter" : "[11] waveform match",
                       trace::random_delay_name(rd), noise_str,
                       format_percent(score.hit_rate(), 1), "x (attack fails)",
                       "0% / x"});
      }

      // --- this work ---------------------------------------------------------
      const auto located = locator.locate(eval.samples);
      const auto score = core::score_hits(located, truth, tol);
      const auto seg_len =
          static_cast<std::size_t>(locator.mean_co_length() * 0.20);
      const auto aligned = core::align_cos(eval.samples, located, seg_len);
      const auto cpa = run_cpa(eval, aligned, key, locator.mean_co_length());
      table.add_row({"This work", trace::random_delay_name(rd), noise_str,
                     format_percent(score.hit_rate(), 1), cpa_cell(cpa),
                     paper_hits_ours + std::string(" / ") + paper_cpa});
    }
  }

  std::printf("%s\ntotal: %.0fs\n", table.render().c_str(), total.seconds());
  std::printf(
      "\nNotes: baselines cannot align the COs under random delay, so the\n"
      "subsequent CPA has nothing to work with (the paper's 'x'). Raise\n"
      "SCALOCATE_SCALE to extend the CO budget until full rank 1 (see\n"
      "bench_cpa_reference for alignment-independent convergence).\n");
  return 0;
}
