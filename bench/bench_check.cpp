// bench_check: gates CI on the BENCH_*.json snapshots the benches emit.
//
//   bench_check <thresholds.json> <snapshot.json> [<snapshot.json> ...]
//
// Thresholds file layout:
//
//   {
//     "checks": [
//       {"bench": "service", "path": "rows.0.traces_per_s", "min": 0.05},
//       {"bench": "robustness", "path": "parity_failures", "max": 0},
//       {"bench": "micro", "path": "gflops.BM_GemmBlocked/256",
//        "ref": 2.0, "tol": 0.5}
//     ]
//   }
//
// Each check names the snapshot it applies to by its top-level "bench"
// field (snapshots are matched by content, not filename, so CI can glob
// BENCH_*.json without caring about ordering). "path" is a dotted path into
// the snapshot (array indices are numeric steps; path segments themselves
// never contain '.'). Constraints, any combination:
//
//   min        value >= min
//   max        value <= max
//   ref + tol  |value - ref| <= tol * ref  (relative tolerance band; with
//              ref == 0 the band degenerates to |value| <= tol)
//   min_items  path resolves to an array with >= min_items entries
//
// A missing snapshot, unparseable JSON, missing path, or non-numeric value
// is a violation, not a skip: thresholds reference what the benches promise
// to emit, and silent skips would let the contract rot. Independently of
// the checks file, any snapshot whose top-level "cases" is an empty array
// is rejected outright — a bench that ran zero cases produced a vacuous
// snapshot (a filter mismatch or silent crash), and every per-case
// threshold against it would "pass" by reporting the path missing in a
// single, easily-ignored line. Exit status is the number of violations
// (capped at 125), each listed on stderr.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using scalocate::obs::JsonValue;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Violation {
  std::string text;
};

/// Numeric field of a check object, or fallback when absent.
bool get_number(const JsonValue& obj, const std::string& key, double* out) {
  const JsonValue* v = obj.find(key);
  if (!v || !v->is_number()) return false;
  *out = v->number;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_check <thresholds.json> <snapshot.json>...\n");
    return 64;
  }

  std::vector<Violation> violations;
  auto violate = [&](const std::string& text) {
    violations.push_back({text});
    std::fprintf(stderr, "VIOLATION: %s\n", text.c_str());
  };

  JsonValue thresholds;
  try {
    thresholds = JsonValue::parse(read_file(argv[1]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_check: bad thresholds file %s: %s\n", argv[1],
                 e.what());
    return 65;
  }
  const JsonValue* checks = thresholds.find("checks");
  if (!checks || !checks->is_array()) {
    std::fprintf(stderr, "bench_check: thresholds file has no \"checks\"\n");
    return 65;
  }

  // Snapshots keyed by their self-declared "bench" name.
  std::vector<std::pair<std::string, JsonValue>> snapshots;
  for (int i = 2; i < argc; ++i) {
    try {
      JsonValue snap = JsonValue::parse(read_file(argv[i]));
      const JsonValue* bench = snap.find("bench");
      if (!bench || !bench->is_string())
        throw std::runtime_error("no top-level \"bench\" string");
      std::printf("loaded %s (bench \"%s\")\n", argv[i],
                  bench->string.c_str());
      // Vacuous-snapshot guard: "cases": [] means the bench ran nothing.
      const JsonValue* cases = snap.find("cases");
      if (cases && cases->is_array() && cases->array.empty())
        violate(std::string(argv[i]) + " (bench \"" + bench->string +
                "\"): \"cases\" is empty — the bench ran zero cases");
      snapshots.emplace_back(bench->string, std::move(snap));
    } catch (const std::exception& e) {
      violate(std::string(argv[i]) + ": " + e.what());
    }
  }

  std::size_t passed = 0;
  for (const JsonValue& check : checks->array) {
    const JsonValue* bench = check.find("bench");
    const JsonValue* path = check.find("path");
    if (!bench || !bench->is_string() || !path || !path->is_string()) {
      violate("malformed check (needs \"bench\" and \"path\" strings)");
      continue;
    }
    const std::string where = bench->string + ":" + path->string;

    const JsonValue* snap = nullptr;
    for (const auto& [name, value] : snapshots)
      if (name == bench->string) snap = &value;
    if (!snap) {
      violate(where + ": no snapshot with bench \"" + bench->string + "\"");
      continue;
    }

    const JsonValue* node = snap->at_path(path->string);
    if (!node) {
      violate(where + ": path missing from snapshot");
      continue;
    }

    // min_items is a structural constraint (array length), checked before
    // the numeric ones; a check may carry it alone.
    double min_items = 0;
    const bool has_min_items = get_number(check, "min_items", &min_items);
    if (has_min_items) {
      if (!node->is_array()) {
        violate(where + ": min_items check but value is not an array");
        continue;
      }
      if (static_cast<double>(node->array.size()) < min_items) {
        violate(where + ": array has " + std::to_string(node->array.size()) +
                " items < min_items " +
                std::to_string(static_cast<std::size_t>(min_items)));
        continue;
      }
      double ignored;
      if (!get_number(check, "min", &ignored) &&
          !get_number(check, "max", &ignored) &&
          !get_number(check, "ref", &ignored)) {
        ++passed;
        continue;
      }
    }

    if (!node->is_number()) {
      violate(where + ": value is not numeric");
      continue;
    }
    const double value = node->number;

    bool ok = true;
    double min = 0, max = 0, ref = 0, tol = 0;
    std::string detail;
    if (get_number(check, "min", &min) && value < min) {
      ok = false;
      detail = "value " + std::to_string(value) + " < min " +
               std::to_string(min);
    }
    if (get_number(check, "max", &max) && value > max) {
      ok = false;
      detail = "value " + std::to_string(value) + " > max " +
               std::to_string(max);
    }
    if (get_number(check, "ref", &ref) && get_number(check, "tol", &tol)) {
      const double band = ref != 0.0 ? tol * (ref < 0 ? -ref : ref) : tol;
      const double diff = value - ref;
      if ((diff < 0 ? -diff : diff) > band) {
        ok = false;
        detail = "value " + std::to_string(value) + " outside " +
                 std::to_string(ref) + " +/- " + std::to_string(band);
      }
    }
    if (ok) {
      ++passed;
    } else {
      violate(where + ": " + detail);
    }
  }

  std::printf("bench_check: %zu checks passed, %zu violations\n", passed,
              violations.size());
  const std::size_t n = violations.size();
  return static_cast<int>(n > 125 ? 125 : n);
}
