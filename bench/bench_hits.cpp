// Reproduces the Section IV-B segmentation scores: hit rate of the full
// inference pipeline per cipher, for consecutive COs and COs interleaved
// with noise applications, under RD-2 and RD-4.
//
// The paper reports 100% hits (512/512 executions) for every cipher in all
// scenarios. We evaluate a scaled number of executions (SCALOCATE_SCALE
// multiplies it) with a hit tolerance of half an inference window.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace scalocate;

int main() {
  std::printf("=== Section IV-B: segmentation hit scores ===\n");
  const std::size_t n_cos = bench::scaled(24);
  std::printf("(paper: 100%% on 512 executions; this repro: %zu executions,\n"
              " tolerance = Ninf samples)\n\n",
              n_cos);

  TextTable table({"Cipher", "RD", "Scenario", "Hits", "Located/True",
                   "MeanErr(samples)", "Paper"});

  struct Config {
    crypto::CipherId id;
    trace::RandomDelayConfig rd;
  };
  const Config configs[] = {
      {crypto::CipherId::kAes128, trace::RandomDelayConfig::kRd2},
      {crypto::CipherId::kAes128, trace::RandomDelayConfig::kRd4},
      {crypto::CipherId::kAesMasked, trace::RandomDelayConfig::kRd4},
      {crypto::CipherId::kClefia128, trace::RandomDelayConfig::kRd4},
      {crypto::CipherId::kCamellia128, trace::RandomDelayConfig::kRd4},
      {crypto::CipherId::kSimon128, trace::RandomDelayConfig::kRd4},
  };

  bench::Timer total;
  for (const auto& cfg : configs) {
    auto setup = bench::train_locator(
        cfg.id, cfg.rd,
        0x417'5000 + 16 * static_cast<std::uint64_t>(cfg.id) +
            static_cast<std::uint64_t>(cfg.rd));
    for (bool with_noise : {false, true}) {
      auto eval =
          trace::acquire_eval_trace(setup.scenario, n_cos, setup.key, with_noise);
      const auto located = setup.locator.locate(eval.samples);
      // "Located" tolerance: one inference window (~2% of a CO); the
      // reported MeanErr shows the residual alignment precision.
      const auto tol = setup.locator.config().params.n_inf;
      const auto score = core::score_hits(located, eval.co_starts(), tol);
      table.add_row({crypto::cipher_display_name(cfg.id),
                     trace::random_delay_name(cfg.rd),
                     with_noise ? "noise apps" : "consecutive",
                     format_percent(score.hit_rate(), 1),
                     std::to_string(score.located) + "/" +
                         std::to_string(score.true_cos),
                     format_fixed(score.mean_abs_error, 1), "100%"});
    }
  }

  std::printf("%s\ntotal: %.0fs\n", table.render().c_str(), total.seconds());
  return 0;
}
