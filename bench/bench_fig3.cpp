// Reproduces Figure 3: test confusion matrices for all five ciphers under
// the RD-4 random delay. One CNN is trained per cipher on an ad-hoc dataset
// (Section IV-B), then evaluated on the held-out 5% test split.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace scalocate;

int main() {
  std::printf("=== Figure 3: test confusion matrices (RD-4) ===\n");
  std::printf("(paper values in parentheses; row = true class)\n\n");

  // Paper Figure 3 percentages: {tn, fp, fn, tp} per cipher.
  struct PaperCm {
    crypto::CipherId id;
    double tn, fp, fn, tp;
  };
  const PaperCm paper[] = {
      {crypto::CipherId::kAes128, 99.56, 0.44, 2.70, 97.30},
      {crypto::CipherId::kAesMasked, 99.87, 0.13, 0.07, 99.93},
      {crypto::CipherId::kCamellia128, 99.92, 0.08, 0.00, 100.00},
      {crypto::CipherId::kClefia128, 88.08, 11.92, 0.03, 99.97},
      {crypto::CipherId::kSimon128, 94.30, 5.70, 7.90, 92.10},
  };

  bench::Timer total;
  for (const auto& ref : paper) {
    bench::Timer t;
    auto setup = bench::train_locator(ref.id, trace::RandomDelayConfig::kRd4,
                                      0xF16'3000 + static_cast<std::uint64_t>(ref.id));
    const auto& cm = setup.report.test_confusion;
    std::printf("--- %s (trained %.0fs, %zu test windows) ---\n",
                crypto::cipher_display_name(ref.id).c_str(), t.seconds(),
                cm.total());
    std::printf("  true 0: %6.2f%% (%.2f)   %6.2f%% (%.2f)\n",
                100.0 * cm.rate(0, 0), ref.tn, 100.0 * cm.rate(0, 1), ref.fp);
    std::printf("  true 1: %6.2f%% (%.2f)   %6.2f%% (%.2f)\n",
                100.0 * cm.rate(1, 0), ref.fn, 100.0 * cm.rate(1, 1), ref.tp);
    std::printf("  accuracy: %.2f%%\n\n", 100.0 * cm.accuracy());
  }
  std::printf("total: %.0fs\n", total.seconds());
  return 0;
}
