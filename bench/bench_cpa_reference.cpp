// CPA convergence reference: number of COs to reach rank 1 on all 16 key
// bytes with ground-truth alignment, per random-delay configuration.
//
// This isolates the attack-side claim of Table II from locator quality:
// after (perfect) alignment, the random delay alone does not prevent the
// CPA -- it only multiplies the required traces, matching the paper's
// 1-4k range (vs a few hundred without the countermeasure).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sca/cpa.hpp"

using namespace scalocate;

int main() {
  const std::size_t budget = bench::scaled(3072);
  std::printf("=== CPA convergence with ground-truth alignment ===\n");
  std::printf("(budget: %zu COs; aggregation bin 32 samples)\n\n", budget);

  TextTable table({"RD config", "COs to rank 1 (all 16 bytes)", "Paper (aligned)"});

  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x10 + i);

  for (auto rd : {trace::RandomDelayConfig::kOff, trace::RandomDelayConfig::kRd2,
                  trace::RandomDelayConfig::kRd4}) {
    trace::SocConfig soc;
    soc.random_delay = rd;
    soc.seed = 99;
    trace::SocSimulator sim(soc);
    auto cipher = crypto::make_cipher(crypto::CipherId::kAes128);
    cipher->set_key(key);

    Rng rng(5);
    trace::Trace t;
    for (std::size_t i = 0; i < budget; ++i) {
      crypto::Block16 pt{};
      rng.fill_bytes(pt.data(), 16);
      sim.run_cipher(*cipher, pt, t);
    }

    const auto seg = static_cast<std::size_t>(t.mean_co_length() * 0.20);
    sca::CpaConfig cc;
    cc.segment_length = seg;
    cc.aggregate_bin = 32;
    sca::CpaAttack cpa(cc);

    std::size_t fed = 0, full_at = 0;
    for (const auto& co : t.cos) {
      if (co.start_sample + seg > t.samples.size()) break;
      cpa.add_trace(
          std::span<const float>(t.samples.data() + co.start_sample, seg),
          co.plaintext);
      ++fed;
      if (fed % 128 == 0 && cpa.rank_key(key).full_key_rank1()) {
        full_at = fed;
        break;
      }
    }
    const auto kr = cpa.rank_key(key);
    const std::string result =
        full_at > 0 ? std::to_string(full_at)
                    : "> " + std::to_string(fed) + " (" +
                          std::to_string(kr.rank1_bytes) + "/16)";
    const char* paper = rd == trace::RandomDelayConfig::kOff
                            ? "(not reported; trivial)"
                            : rd == trace::RandomDelayConfig::kRd2
                                  ? "1125-3695"
                                  : "1220-3365";
    table.add_row({trace::random_delay_name(rd), result, paper});
    std::printf("%s done\n", trace::random_delay_name(rd));
  }

  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
