// Concurrent serving benchmark through the api facade: traces/sec and
// p50/p99 job latency of an Engine/Session on the Table-2 workload
// (AES-128 under RD-2) as the worker count grows, plus the streaming
// session's single-stream overhead vs the offline path.
//
// One model is trained once and shared read-only by every worker; each
// worker owns only its activation workspace. On a machine with >= 4 cores
// the 4-worker row should show close to 4x the 1-worker throughput (the
// per-job latency stays roughly flat until workers exceed cores).
//
// Every worker row runs its Engine against a fresh obs::Registry, and the
// whole run is emitted as BENCH_service.json (see bench_common.hpp for the
// layout contract): the row's latency summary comes from the per-job
// submit_timed values, the embedded "metrics" object is the engine's own
// telemetry snapshot — the two must tell the same story, which is how the
// telemetry subsystem earns its numbers.
//
// SCALOCATE_SCALE scales the workload (0.25 = CI smoke run).
#include <cstdio>

#include "api/scalocate.hpp"
#include "bench_common.hpp"
#include "obs/registry.hpp"

using namespace scalocate;

int main() {
  std::printf("== bench_service: concurrent locate throughput ==\n");
  std::printf("scale=%.2f  hardware threads=%u\n\n", bench::scale(),
              std::thread::hardware_concurrency());

  bench::Timer setup_timer;
  auto setup = bench::train_locator(crypto::CipherId::kAes128,
                                    trace::RandomDelayConfig::kRd2, 0xbe5eed);
  const double train_seconds = setup_timer.seconds();
  std::printf("trained in %.1f s (test accuracy %.3f)\n", train_seconds,
              setup.report.test_confusion.accuracy());

  // Job pool: distinct eval traces so workers do not share cache lines.
  const std::size_t n_traces = bench::scaled(8);
  const std::size_t n_cos = bench::scaled(12);
  std::vector<trace::Trace> traces;
  traces.reserve(n_traces);
  for (std::size_t i = 0; i < n_traces; ++i)
    traces.push_back(trace::acquire_eval_trace(setup.scenario, n_cos,
                                               setup.key, i % 2 == 1));
  const std::size_t n_jobs = bench::scaled(32);

  // Reference result per trace (sequential offline path).
  std::vector<std::vector<std::size_t>> reference;
  reference.reserve(traces.size());
  for (const auto& t : traces)
    reference.push_back(setup.locator.locate(t.samples));

  obs::JsonWriter json;
  json.begin_object();
  json.kv("bench", "service");
  json.kv("scale", bench::scale());
  json.kv("epochs", bench::bench_epochs());
  json.kv("hardware_threads",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.kv("train_seconds", train_seconds);
  json.kv("accuracy", setup.report.test_confusion.accuracy());
  json.kv("jobs_per_row", n_jobs);
  json.key("rows").begin_array();

  std::printf("\n%-8s %12s %10s %10s %10s %9s\n", "workers", "traces/s",
              "p50 ms", "p99 ms", "mean ms", "speedup");
  double baseline_tput = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    // Fresh registry per row: each engine's counters start at zero, so the
    // embedded snapshot is exactly this row's story.
    obs::Registry registry;
    api::Engine engine({.workers = workers, .registry = &registry});
    engine.attach_model(setup.locator);
    auto session = engine.open_session();
    std::vector<std::future<api::Session::TimedResult>> futures;
    futures.reserve(n_jobs);

    bench::Timer wall;
    for (std::size_t j = 0; j < n_jobs; ++j)
      futures.push_back(
          session.submit_timed(traces[j % traces.size()].samples));

    std::vector<double> latencies;
    latencies.reserve(n_jobs);
    std::size_t mismatches = 0;
    for (std::size_t j = 0; j < n_jobs; ++j) {
      auto result = futures[j].get();
      latencies.push_back(result.latency_seconds);
      if (result.starts != reference[j % traces.size()]) ++mismatches;
    }
    const double elapsed = wall.seconds();

    const auto s = bench::summarize_latencies(latencies, elapsed);
    if (baseline_tput == 0.0) baseline_tput = s.throughput_per_s;
    std::printf("%-8zu %12.2f %10.1f %10.1f %10.1f %8.2fx", workers,
                s.throughput_per_s, s.p50_ms, s.p99_ms, s.mean_ms,
                baseline_tput > 0.0 ? s.throughput_per_s / baseline_tput
                                    : 0.0);
    if (mismatches > 0)
      std::printf("  [%zu MISMATCHED JOBS]", mismatches);
    std::printf("\n");

    json.begin_object();
    json.kv("workers", workers);
    json.kv("wall_seconds", elapsed);
    json.kv("mismatches", mismatches);
    json.kv("p50_ms", s.p50_ms);
    json.kv("p99_ms", s.p99_ms);
    json.kv("mean_ms", s.mean_ms);
    json.kv("max_ms", s.max_ms);
    json.kv("traces_per_s", s.throughput_per_s);
    json.key("metrics");
    registry.render_json_into(json);
    json.end_object();
  }
  json.end_array();

  // Streaming overhead: one stream fed in 4096-sample chunks vs the
  // offline locate on the same trace.
  const auto& probe = traces.front();
  bench::Timer offline_timer;
  const auto offline = setup.locator.locate(probe.samples);
  const double offline_s = offline_timer.seconds();

  obs::Registry stream_registry;
  api::Engine stream_engine({.workers = 1, .registry = &stream_registry});
  stream_engine.attach_model(setup.locator);
  auto streaming = stream_engine.open_session().open_stream();
  bench::Timer stream_timer;
  std::size_t streamed = 0;
  const std::span<const float> samples(probe.samples);
  for (std::size_t off = 0; off < samples.size(); off += 4096)
    streamed += streaming
                    .feed(samples.subspan(
                        off, std::min<std::size_t>(4096, samples.size() - off)))
                    .size();
  streamed += streaming.finish().size();
  const double stream_s = stream_timer.seconds();

  std::printf(
      "\nstreaming single trace: %.3f s vs offline %.3f s (%.2fx), "
      "%zu detections (offline %zu), resident tail %zu of %zu samples\n",
      stream_s, offline_s, offline_s > 0 ? stream_s / offline_s : 0.0,
      streamed, offline.size(), streaming.resident_samples(),
      probe.samples.size());

  json.key("streaming").begin_object();
  json.kv("stream_seconds", stream_s);
  json.kv("offline_seconds", offline_s);
  json.kv("overhead_x", offline_s > 0 ? stream_s / offline_s : 0.0);
  json.kv("detections", streamed);
  json.kv("offline_detections", offline.size());
  json.kv("resident_samples", streaming.resident_samples());
  json.kv("trace_samples", probe.samples.size());
  json.key("metrics");
  stream_registry.render_json_into(json);
  json.end_object();
  json.end_object();
  bench::write_bench_json("service", json);
  return 0;
}
